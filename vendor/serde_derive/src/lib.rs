//! No-op stand-ins for serde's derive macros.
//!
//! The stub `serde` crate blanket-implements `Serialize`/`Deserialize`,
//! so the derives only need to exist for `#[derive(Serialize)]`
//! attributes to resolve; they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
