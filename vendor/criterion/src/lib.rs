//! Minimal Criterion-compatible benchmark harness for offline builds.
//!
//! Implements the subset of the Criterion API used by
//! `crates/bench/benches/*.rs`: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group` / `bench_function`, `BenchmarkGroup`
//! with `sample_size` / `throughput` / `finish`, `Bencher::iter`, and
//! `black_box`. Instead of Criterion's statistical analysis it runs a
//! short warm-up plus a fixed number of timed samples and reports the
//! mean and minimum wall time per iteration.
//!
//! Benches must set `harness = false` in the manifest, exactly as with
//! the real Criterion.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted and echoed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and an input parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up batch then `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also sizes the batch so one sample takes >= ~1ms.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed.push(start.elapsed() / batch as u32);
        }
    }
}

/// Benchmark registry/runner standing in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    fn effective_samples(&self) -> u64 {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_samples();
        run_one(&id.into().id, samples, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.effective_samples(), _parent: self }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares the throughput of subsequent benches (echoed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        println!("group {}: throughput {t:?}", self.name);
        self
    }

    /// Runs a single named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u64, mut f: F) {
    let mut bencher = Bencher { samples, elapsed: Vec::new() };
    f(&mut bencher);
    if bencher.elapsed.is_empty() {
        println!("{name:<52} (no samples)");
        return;
    }
    let total: Duration = bencher.elapsed.iter().sum();
    let mean = total / bencher.elapsed.len() as u32;
    let min = bencher.elapsed.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<52} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        bencher.elapsed.len()
    );
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
