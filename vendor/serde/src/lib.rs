//! Minimal stand-in for `serde` used by the offline build.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so that downstream consumers can
//! serialize evaluation results, but nothing in the repo serializes at
//! runtime yet. This stub keeps those annotations compiling without
//! network access: the traits are blanket-implemented and the derives
//! (re-exported from the stub `serde_derive`) expand to nothing.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stub of serde's `de` module (trait re-exports only).
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stub of serde's `ser` module (trait re-exports only).
pub mod ser {
    pub use super::Serialize;
}
