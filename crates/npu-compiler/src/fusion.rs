//! Operator fusion: vector post-processing (activations, residual adds,
//! normalization) that immediately follows a matrix operator is fused into
//! it, so the vector unit consumes systolic-array outputs as they are popped
//! instead of round-tripping through HBM.
//!
//! The paper's simulator frontend "applies common ML compiler optimizations
//! used in production, such as tiling, operator fusion, and operator
//! reordering" (§4.4); fusion is also what creates the VU activity pattern
//! of Figure 15 (the VU is busy a couple of cycles per SA pop).

use serde::{Deserialize, Serialize};

use npu_models::{ExecutionUnit, OperatorGraph};

/// Fusion decision for a whole graph: for every operator, which fusion
/// group it belongs to and whether it is the group's anchor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionPlan {
    /// `group[i]` is the fusion-group id of operator `i`.
    group: Vec<usize>,
    /// `anchor[g]` is the operator id that anchors group `g` (the operator
    /// the fused work is attached to).
    anchors: Vec<usize>,
}

impl FusionPlan {
    /// Builds the fusion plan for a graph.
    ///
    /// A *pure* vector operator (elementwise, softmax, layer normalization)
    /// with exactly one producer is fused into that producer's group when
    /// the group is anchored by a compute operator (post-processing fusion,
    /// e.g. MatMul→ReLU or Conv→GeLU), and chains of such vector operators
    /// fuse together. Matrix multiplications and convolutions always anchor
    /// their own group — even when they are small enough to execute on the
    /// vector unit — and collectives and embedding lookups always break a
    /// chain. The decision follows the real producer edges, not adjacency
    /// in the operator stream: a vector operator that joins two branches
    /// (fan-in) or reads a gather/collective output anchors its own group.
    #[must_use]
    pub fn for_graph(graph: &OperatorGraph) -> Self {
        let mut group: Vec<usize> = Vec::with_capacity(graph.len());
        let mut anchors = Vec::new();
        // Execution unit of each group's anchor, indexed by group id.
        let mut anchor_unit: Vec<ExecutionUnit> = Vec::new();

        for op in graph.iter() {
            let unit = op.execution_unit();
            let pure_vector = matches!(
                op.kind,
                npu_models::OpKind::Elementwise { .. }
                    | npu_models::OpKind::Softmax { .. }
                    | npu_models::OpKind::LayerNorm { .. }
            );
            let producers = graph.producers_of(op.id);
            let fuse_into = if pure_vector && producers.len() == 1 {
                let g = group[producers[0]];
                matches!(anchor_unit[g], ExecutionUnit::Sa | ExecutionUnit::Vu).then_some(g)
            } else {
                None
            };
            if let Some(g) = fuse_into {
                group.push(g);
            } else {
                let g = anchors.len();
                anchors.push(op.id);
                anchor_unit.push(unit);
                group.push(g);
            }
        }
        FusionPlan { group, anchors }
    }

    /// Number of fusion groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.anchors.len()
    }

    /// Number of operators covered by the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// Whether the plan covers no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// Fusion-group id of operator `op_id`.
    #[must_use]
    pub fn group_of(&self, op_id: usize) -> usize {
        self.group[op_id]
    }

    /// Anchor operator id of group `group_id`.
    #[must_use]
    pub fn anchor_of(&self, group_id: usize) -> usize {
        self.anchors[group_id]
    }

    /// Whether operator `op_id` is fused into an earlier anchor (i.e. it is
    /// not itself a group anchor).
    #[must_use]
    pub fn is_fused(&self, op_id: usize) -> bool {
        self.anchors[self.group[op_id]] != op_id
    }

    /// Operator ids fused into the group anchored at `anchor_id`
    /// (excluding the anchor itself).
    #[must_use]
    pub fn fused_into(&self, anchor_id: usize) -> Vec<usize> {
        let g = self.group[anchor_id];
        if self.anchors[g] != anchor_id {
            return Vec::new();
        }
        self.group
            .iter()
            .enumerate()
            .filter(|&(id, &grp)| grp == g && id != anchor_id)
            .map(|(id, _)| id)
            .collect()
    }

    /// Fraction of operators that were fused away (not anchors).
    #[must_use]
    pub fn fusion_rate(&self) -> f64 {
        if self.group.is_empty() {
            return 0.0;
        }
        1.0 - self.anchors.len() as f64 / self.group.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::ParallelismConfig;
    use npu_models::{DataType, LlamaModel, LlmPhase, OpKind, Operator, Workload};

    fn graph_mm_relu_mm() -> OperatorGraph {
        let mut g = OperatorGraph::new("t");
        g.push(Operator::new(
            "mm1",
            OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "relu",
            OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "add",
            OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 2 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "mm2",
            OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
            DataType::Bf16,
        ));
        g
    }

    #[test]
    fn vector_postprocessing_fuses_into_matmul() {
        let g = graph_mm_relu_mm();
        let plan = FusionPlan::for_graph(&g);
        assert_eq!(plan.num_groups(), 2);
        assert_eq!(plan.group_of(0), plan.group_of(1));
        assert_eq!(plan.group_of(1), plan.group_of(2));
        assert_ne!(plan.group_of(0), plan.group_of(3));
        assert!(plan.is_fused(1));
        assert!(plan.is_fused(2));
        assert!(!plan.is_fused(0));
        assert_eq!(plan.fused_into(0), vec![1, 2]);
        assert!(plan.fused_into(1).is_empty());
        assert!((plan.fusion_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collectives_break_fusion_chains() {
        let mut g = OperatorGraph::new("t");
        g.push(Operator::new(
            "mm",
            OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "ar",
            OpKind::Collective {
                kind: npu_models::CollectiveKind::AllReduce,
                bytes_per_chip: 1 << 20,
            },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "relu",
            OpKind::Elementwise { elements: 512, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        let plan = FusionPlan::for_graph(&g);
        // relu follows the collective, so it cannot fuse into the matmul.
        assert_eq!(plan.num_groups(), 3);
        assert!(!plan.is_fused(2));
    }

    #[test]
    fn fan_in_vector_op_anchors_its_own_group() {
        // A join with two producers cannot be folded into either branch:
        // its inputs only exist once *both* producers have finished.
        let mut g = OperatorGraph::new("t");
        let mm = |name: &str| {
            Operator::new(
                name,
                OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
                DataType::Bf16,
            )
        };
        let a = g.push_source(mm("a"));
        let b = g.push_source(mm("b"));
        let join = g.push_with_producers(
            Operator::new(
                "join",
                OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 2 },
                DataType::Bf16,
            ),
            vec![a, b],
        );
        let plan = FusionPlan::for_graph(&g);
        assert_eq!(plan.num_groups(), 3);
        assert!(!plan.is_fused(join));
    }

    #[test]
    fn vector_op_after_gather_is_not_fused() {
        let mut g = OperatorGraph::new("t");
        g.push_source(Operator::new(
            "gather",
            OpKind::EmbeddingLookup { lookups: 1024, dim: 128, table_bytes: 1 << 30 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "pool",
            OpKind::Elementwise { elements: 1024 * 128, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        let plan = FusionPlan::for_graph(&g);
        assert_eq!(plan.num_groups(), 2, "HBM-anchored groups accept no fused VU work");
    }

    #[test]
    fn llm_prefill_has_substantial_fusion() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        let plan = FusionPlan::for_graph(&g);
        assert_eq!(plan.len(), g.len());
        assert!(plan.fusion_rate() > 0.3, "fusion rate {}", plan.fusion_rate());
        // Every fused operator is a VU operator.
        for op in g.iter() {
            if plan.is_fused(op.id) {
                assert_eq!(op.execution_unit(), npu_models::ExecutionUnit::Vu);
            }
        }
    }

    #[test]
    fn empty_graph_plan() {
        let plan = FusionPlan::for_graph(&OperatorGraph::new("empty"));
        assert!(plan.is_empty());
        assert_eq!(plan.num_groups(), 0);
        assert_eq!(plan.fusion_rate(), 0.0);
    }
}
