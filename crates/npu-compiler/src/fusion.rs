//! Operator fusion: vector post-processing (activations, residual adds,
//! normalization) that immediately follows a matrix operator is fused into
//! it, so the vector unit consumes systolic-array outputs as they are popped
//! instead of round-tripping through HBM.
//!
//! The paper's simulator frontend "applies common ML compiler optimizations
//! used in production, such as tiling, operator fusion, and operator
//! reordering" (§4.4); fusion is also what creates the VU activity pattern
//! of Figure 15 (the VU is busy a couple of cycles per SA pop).

use serde::{Deserialize, Serialize};

use npu_models::{ExecutionUnit, OperatorGraph};

/// Fusion decision for a whole graph: for every operator, which fusion
/// group it belongs to and whether it is the group's anchor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionPlan {
    /// `group[i]` is the fusion-group id of operator `i`.
    group: Vec<usize>,
    /// `anchor[g]` is the operator id that anchors group `g` (the operator
    /// the fused work is attached to).
    anchors: Vec<usize>,
}

impl FusionPlan {
    /// Builds the fusion plan for a graph.
    ///
    /// A *pure* vector operator (elementwise, softmax, layer normalization)
    /// is fused into the immediately preceding operator's group when that
    /// group is anchored by a compute operator (post-processing fusion,
    /// e.g. MatMul→ReLU or Conv→GeLU), and chains of such vector operators
    /// fuse together. Matrix multiplications and convolutions always anchor
    /// their own group — even when they are small enough to execute on the
    /// vector unit — and collectives and embedding lookups always break a
    /// chain.
    #[must_use]
    pub fn for_graph(graph: &OperatorGraph) -> Self {
        let mut group = Vec::with_capacity(graph.len());
        let mut anchors = Vec::new();
        let mut current_group: Option<usize> = None;
        let mut current_anchor_unit: Option<ExecutionUnit> = None;

        for op in graph.iter() {
            let unit = op.execution_unit();
            let pure_vector = matches!(
                op.kind,
                npu_models::OpKind::Elementwise { .. }
                    | npu_models::OpKind::Softmax { .. }
                    | npu_models::OpKind::LayerNorm { .. }
            );
            let fuse = pure_vector
                && matches!(current_anchor_unit, Some(ExecutionUnit::Sa) | Some(ExecutionUnit::Vu));
            if fuse {
                group.push(current_group.expect("fusing requires an open group"));
            } else {
                let g = anchors.len();
                anchors.push(op.id);
                group.push(g);
                current_group = Some(g);
                current_anchor_unit = Some(unit);
            }
        }
        FusionPlan { group, anchors }
    }

    /// Number of fusion groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.anchors.len()
    }

    /// Number of operators covered by the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// Whether the plan covers no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// Fusion-group id of operator `op_id`.
    #[must_use]
    pub fn group_of(&self, op_id: usize) -> usize {
        self.group[op_id]
    }

    /// Anchor operator id of group `group_id`.
    #[must_use]
    pub fn anchor_of(&self, group_id: usize) -> usize {
        self.anchors[group_id]
    }

    /// Whether operator `op_id` is fused into an earlier anchor (i.e. it is
    /// not itself a group anchor).
    #[must_use]
    pub fn is_fused(&self, op_id: usize) -> bool {
        self.anchors[self.group[op_id]] != op_id
    }

    /// Operator ids fused into the group anchored at `anchor_id`
    /// (excluding the anchor itself).
    #[must_use]
    pub fn fused_into(&self, anchor_id: usize) -> Vec<usize> {
        let g = self.group[anchor_id];
        if self.anchors[g] != anchor_id {
            return Vec::new();
        }
        self.group
            .iter()
            .enumerate()
            .filter(|&(id, &grp)| grp == g && id != anchor_id)
            .map(|(id, _)| id)
            .collect()
    }

    /// Fraction of operators that were fused away (not anchors).
    #[must_use]
    pub fn fusion_rate(&self) -> f64 {
        if self.group.is_empty() {
            return 0.0;
        }
        1.0 - self.anchors.len() as f64 / self.group.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::ParallelismConfig;
    use npu_models::{DataType, LlamaModel, LlmPhase, OpKind, Operator, Workload};

    fn graph_mm_relu_mm() -> OperatorGraph {
        let mut g = OperatorGraph::new("t");
        g.push(Operator::new(
            "mm1",
            OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "relu",
            OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "add",
            OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 2 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "mm2",
            OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
            DataType::Bf16,
        ));
        g
    }

    #[test]
    fn vector_postprocessing_fuses_into_matmul() {
        let g = graph_mm_relu_mm();
        let plan = FusionPlan::for_graph(&g);
        assert_eq!(plan.num_groups(), 2);
        assert_eq!(plan.group_of(0), plan.group_of(1));
        assert_eq!(plan.group_of(1), plan.group_of(2));
        assert_ne!(plan.group_of(0), plan.group_of(3));
        assert!(plan.is_fused(1));
        assert!(plan.is_fused(2));
        assert!(!plan.is_fused(0));
        assert_eq!(plan.fused_into(0), vec![1, 2]);
        assert!(plan.fused_into(1).is_empty());
        assert!((plan.fusion_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collectives_break_fusion_chains() {
        let mut g = OperatorGraph::new("t");
        g.push(Operator::new(
            "mm",
            OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "ar",
            OpKind::Collective {
                kind: npu_models::CollectiveKind::AllReduce,
                bytes_per_chip: 1 << 20,
            },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "relu",
            OpKind::Elementwise { elements: 512, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        let plan = FusionPlan::for_graph(&g);
        // relu follows the collective, so it cannot fuse into the matmul.
        assert_eq!(plan.num_groups(), 3);
        assert!(!plan.is_fused(2));
    }

    #[test]
    fn llm_prefill_has_substantial_fusion() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        let plan = FusionPlan::for_graph(&g);
        assert_eq!(plan.len(), g.len());
        assert!(plan.fusion_rate() > 0.3, "fusion rate {}", plan.fusion_rate());
        // Every fused operator is a VU operator.
        for op in g.iter() {
            if plan.is_fused(op.id) {
                assert_eq!(op.execution_unit(), npu_models::ExecutionUnit::Vu);
            }
        }
    }

    #[test]
    fn empty_graph_plan() {
        let plan = FusionPlan::for_graph(&OperatorGraph::new("empty"));
        assert!(plan.is_empty());
        assert_eq!(plan.num_groups(), 0);
        assert_eq!(plan.fusion_rate(), 0.0);
    }
}
