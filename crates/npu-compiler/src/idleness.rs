//! Component idleness analysis (paper §4.3).
//!
//! The compiler walks the statically scheduled VLIW program and, for every
//! functional-unit slot, computes the distance in cycles between consecutive
//! instructions issued to that slot. If a DMA operation separates two
//! vector-unit instructions, the distance is treated as unbounded — the DMA
//! takes at least the HBM latency, which is far longer than the VU's
//! break-even time.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_isa::bundle::{Slot, SlotOp};
use npu_isa::Program;

/// One idle interval of a functional-unit slot, in issue cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleInterval {
    /// First idle cycle (the cycle after the previous instruction finished).
    pub start_cycle: u64,
    /// First busy cycle after the interval (the next instruction's issue
    /// cycle), or the end of the program for the trailing interval.
    pub end_cycle: u64,
    /// Whether the interval is known to be effectively unbounded because a
    /// DMA (HBM access) occurs inside it.
    pub unbounded: bool,
    /// Index of the bundle that ends the interval (where a wake-up would
    /// need to complete), if any.
    pub ending_bundle: Option<usize>,
    /// Index of the bundle after which the interval starts.
    pub starting_bundle: usize,
}

impl IdleInterval {
    /// Length of the interval in cycles.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Whether the interval has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Idle intervals per functional-unit slot of one program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IdlenessReport {
    intervals: BTreeMap<Slot, Vec<IdleInterval>>,
    busy_cycles: BTreeMap<Slot, u64>,
    total_cycles: u64,
}

impl IdlenessReport {
    /// Analyzes a program.
    #[must_use]
    pub fn analyze(program: &Program) -> Self {
        let mut last_busy_end: BTreeMap<Slot, (u64, usize)> = BTreeMap::new();
        // Index of the most recent bundle containing a DMA. An interval is
        // unbounded iff a DMA bundle falls *strictly after* the bundle that
        // started the interval — tracked by index rather than by per-slot
        // flags so that DMAs issued before a slot's very first instruction
        // also mark its leading idle interval.
        let mut last_dma_bundle: Option<usize> = None;
        let mut intervals: BTreeMap<Slot, Vec<IdleInterval>> = BTreeMap::new();
        let mut busy_cycles: BTreeMap<Slot, u64> = BTreeMap::new();

        let mut cycle: u64 = 0;
        for (index, bundle) in program.iter() {
            let issue_cycle = cycle;
            let bundle_cycles = 1 + u64::from(bundle.extra_issue_cycles());
            if bundle.iter().any(|(_, op)| matches!(op, SlotOp::Dma { .. })) {
                last_dma_bundle = Some(index);
            }
            for (slot, op) in bundle.iter() {
                let duration = slot_busy_cycles(slot, op);
                if duration == 0 {
                    continue;
                }
                // Close the idle interval that this instruction terminates.
                if let Some(&(prev_end, prev_bundle)) = last_busy_end.get(&slot) {
                    if issue_cycle > prev_end {
                        intervals.entry(slot).or_default().push(IdleInterval {
                            start_cycle: prev_end,
                            end_cycle: issue_cycle,
                            unbounded: last_dma_bundle.is_some_and(|dma| dma > prev_bundle),
                            ending_bundle: Some(index),
                            starting_bundle: prev_bundle,
                        });
                    }
                } else if issue_cycle > 0 {
                    intervals.entry(slot).or_default().push(IdleInterval {
                        start_cycle: 0,
                        end_cycle: issue_cycle,
                        unbounded: last_dma_bundle.is_some(),
                        ending_bundle: Some(index),
                        starting_bundle: 0,
                    });
                }
                last_busy_end.insert(slot, (issue_cycle + duration, index));
                *busy_cycles.entry(slot).or_default() += duration;
            }
            cycle += bundle_cycles;
        }
        let total_cycles = cycle;
        // Trailing idle intervals until the end of the program.
        for (&slot, &(end, bundle)) in &last_busy_end {
            if total_cycles > end {
                intervals.entry(slot).or_default().push(IdleInterval {
                    start_cycle: end,
                    end_cycle: total_cycles,
                    unbounded: last_dma_bundle.is_some_and(|dma| dma > bundle),
                    ending_bundle: None,
                    starting_bundle: bundle,
                });
            }
        }
        IdlenessReport { intervals, busy_cycles, total_cycles }
    }

    /// Idle intervals of one slot (empty if the slot never issued).
    #[must_use]
    pub fn intervals(&self, slot: Slot) -> &[IdleInterval] {
        self.intervals.get(&slot).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Slots observed in the program (busy at least once).
    pub fn slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.busy_cycles.keys().copied()
    }

    /// Cycles a slot was busy.
    #[must_use]
    pub fn busy_cycles(&self, slot: Slot) -> u64 {
        self.busy_cycles.get(&slot).copied().unwrap_or(0)
    }

    /// Total program length in issue cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Temporal utilization of a slot (busy cycles / total cycles).
    #[must_use]
    pub fn utilization(&self, slot: Slot) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles(slot) as f64 / self.total_cycles as f64
    }

    /// Total idle cycles of a slot that sit in intervals at least
    /// `min_len` cycles long (the cycles a gating policy could recover).
    #[must_use]
    pub fn gateable_cycles(&self, slot: Slot, min_len: u64) -> u64 {
        self.intervals(slot)
            .iter()
            .filter(|iv| iv.len() >= min_len || iv.unbounded)
            .map(IdleInterval::len)
            .sum()
    }
}

/// Cycles an operation keeps its slot's functional unit busy.
fn slot_busy_cycles(slot: Slot, op: &SlotOp) -> u64 {
    match (slot, op) {
        (_, SlotOp::SaPush { cycles })
        | (_, SlotOp::SaPop { cycles })
        | (_, SlotOp::SaLoadWeights { cycles }) => u64::from(*cycles),
        (Slot::Vu(_), SlotOp::VuOp { elements }) => u64::from(*elements).div_ceil(1024).max(1),
        (Slot::Dma, SlotOp::Dma { .. }) => 1,
        (Slot::Ici, SlotOp::Ici { .. }) => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_isa::{SlotOp, VliwBundle};

    /// Builds the Figure 15 pattern: VUs busy 2 cycles out of every 16.
    fn fig15_like_program() -> Program {
        let mut p = Program::new("fig15");
        for _ in 0..4 {
            // 2 cycles of VU work (1024 elements/cycle).
            p.push(
                VliwBundle::new().with_sa(0, SlotOp::sa_pop(8)).with_vu(0, SlotOp::vu_add(1024)),
            );
            p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
            // 14 idle cycles for the VU while the SA streams the next tile.
            p.push(
                VliwBundle::new()
                    .with_sa(0, SlotOp::sa_push(8))
                    .with_misc(SlotOp::Nop { cycles: 14 }),
            );
        }
        p
    }

    #[test]
    fn vu_idle_intervals_match_pattern() {
        let report = IdlenessReport::analyze(&fig15_like_program());
        let vu = Slot::Vu(0);
        let intervals = report.intervals(vu);
        // Three inner intervals plus one trailing interval.
        assert_eq!(intervals.len(), 4);
        for iv in &intervals[..3] {
            assert_eq!(iv.len(), 14, "inner VU idle gaps are 14 cycles: {iv:?}");
            assert!(!iv.unbounded);
        }
        assert_eq!(report.busy_cycles(vu), 8);
        assert!(report.utilization(vu) < 0.2);
    }

    #[test]
    fn dma_marks_interval_unbounded() {
        let mut p = Program::new("dma-gap");
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
        p.push(VliwBundle::new().with_dma(SlotOp::Dma { bytes: 1 << 20, remote: false }));
        p.push(VliwBundle::new().with_misc(SlotOp::Nop { cycles: 3 }));
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
        let report = IdlenessReport::analyze(&p);
        let intervals = report.intervals(Slot::Vu(0));
        assert_eq!(intervals.len(), 1);
        assert!(intervals[0].unbounded, "a DMA inside the gap makes it unbounded");
    }

    #[test]
    fn dma_before_first_instruction_marks_leading_interval_unbounded() {
        // Regression: a DMA that issues before a slot's *first* instruction
        // used to leave the leading interval bounded, because the DMA flag
        // was only flipped for slots that had already issued at least once.
        let mut p = Program::new("dma-before-first-vu");
        p.push(VliwBundle::new().with_dma(SlotOp::Dma { bytes: 1 << 20, remote: false }));
        p.push(VliwBundle::new().with_misc(SlotOp::Nop { cycles: 6 }));
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
        let report = IdlenessReport::analyze(&p);
        let intervals = report.intervals(Slot::Vu(0));
        assert_eq!(intervals[0].start_cycle, 0);
        assert!(
            intervals[0].unbounded,
            "a DMA in bundle 0 must make the VU's leading idle interval unbounded"
        );
        // The same DMA must not taint intervals that start after it.
        p.push(VliwBundle::new().with_misc(SlotOp::Nop { cycles: 6 }));
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
        let report = IdlenessReport::analyze(&p);
        let intervals = report.intervals(Slot::Vu(0));
        assert_eq!(intervals.len(), 2);
        assert!(!intervals[1].unbounded, "no DMA inside the second interval");
    }

    #[test]
    fn leading_idle_interval_is_reported() {
        let mut p = Program::new("late-vu");
        p.push(VliwBundle::new().with_sa(0, SlotOp::sa_push(8)));
        p.push(VliwBundle::new().with_misc(SlotOp::Nop { cycles: 10 }));
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(512)));
        let report = IdlenessReport::analyze(&p);
        let intervals = report.intervals(Slot::Vu(0));
        assert_eq!(intervals[0].start_cycle, 0);
        assert!(intervals[0].len() >= 10);
    }

    #[test]
    fn gateable_cycles_filters_short_intervals() {
        let report = IdlenessReport::analyze(&fig15_like_program());
        let vu = Slot::Vu(0);
        let all = report.gateable_cycles(vu, 1);
        let long_only = report.gateable_cycles(vu, 100);
        assert!(all > 0);
        assert_eq!(long_only, 0);
    }

    #[test]
    fn busy_slots_enumerated() {
        let report = IdlenessReport::analyze(&fig15_like_program());
        let slots: Vec<_> = report.slots().collect();
        assert!(slots.contains(&Slot::Sa(0)));
        assert!(slots.contains(&Slot::Vu(0)));
        assert!(report.total_cycles() > 16);
    }

    #[test]
    fn empty_program_yields_empty_report() {
        let report = IdlenessReport::analyze(&Program::new("empty"));
        assert_eq!(report.total_cycles(), 0);
        assert_eq!(report.utilization(Slot::Vu(0)), 0.0);
        assert!(report.intervals(Slot::Vu(0)).is_empty());
    }
}
