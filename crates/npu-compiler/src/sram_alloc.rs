//! SRAM (scratchpad) allocation with buffer lifetimes.
//!
//! The ReGate instrumentation pass "uses the output of the SRAM allocation
//! pass, which includes the lifetime (start/end instruction index), start
//! address, and size of each allocated buffer" to derive the idle intervals
//! of each 4 KiB segment (§4.3). This module provides that allocation: a
//! simple double-buffered bump allocator over the anchors of a compiled
//! graph, which is what the software-managed SRAM power gating consumes.

use serde::{Deserialize, Serialize};

use npu_arch::SramGeometry;

use crate::lowering::CompiledGraph;

/// Lifetime and placement of one SRAM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferLifetime {
    /// Anchor index (position among the graph's anchors) that owns the buffer.
    pub anchor_index: usize,
    /// Start byte address inside the scratchpad.
    pub start_addr: u64,
    /// Buffer size in bytes.
    pub size_bytes: u64,
    /// First anchor index (inclusive) during which the buffer is live.
    pub live_from: usize,
    /// Last anchor index (inclusive) during which the buffer is live.
    pub live_to: usize,
}

impl BufferLifetime {
    /// Whether the buffer is live while anchor `index` executes.
    #[must_use]
    pub fn is_live_at(&self, index: usize) -> bool {
        index >= self.live_from && index <= self.live_to
    }

    /// Exclusive end address of the buffer.
    #[must_use]
    pub fn end_addr(&self) -> u64 {
        self.start_addr + self.size_bytes
    }
}

/// Result of allocating a compiled graph's buffers in the scratchpad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramAllocation {
    geometry: SramGeometry,
    buffers: Vec<BufferLifetime>,
    num_anchors: usize,
}

impl SramAllocation {
    /// Allocates the anchors of a compiled graph.
    ///
    /// Each anchor gets a buffer of its tiled SRAM usage, live from the
    /// previous anchor (its inputs are prefetched / double buffered) until
    /// the next anchor (its outputs are consumed). Buffers of operators
    /// that are not adjacent in time reuse addresses: the allocator simply
    /// alternates between the bottom and the top half of the scratchpad,
    /// which is how double buffering is commonly laid out.
    #[must_use]
    pub fn allocate(graph: &CompiledGraph, geometry: SramGeometry) -> Self {
        let capacity = geometry.total_bytes();
        let half = capacity / 2;
        let mut buffers = Vec::new();
        let anchors: Vec<_> = graph.anchors().collect();
        for (index, anchor) in anchors.iter().enumerate() {
            let size = anchor.tile.sram_used_bytes.min(half).max(geometry.segment_bytes());
            // Round to whole segments.
            let size = geometry.segment_bytes() * geometry.segments_for_bytes(size) as u64;
            let start_addr = if index % 2 == 0 { 0 } else { half };
            buffers.push(BufferLifetime {
                anchor_index: index,
                start_addr,
                size_bytes: size.min(half),
                live_from: index.saturating_sub(1),
                live_to: (index + 1).min(anchors.len().saturating_sub(1)),
            });
        }
        SramAllocation { geometry, buffers, num_anchors: anchors.len() }
    }

    /// The scratchpad geometry used for the allocation.
    #[must_use]
    pub fn geometry(&self) -> SramGeometry {
        self.geometry
    }

    /// All allocated buffers.
    #[must_use]
    pub fn buffers(&self) -> &[BufferLifetime] {
        &self.buffers
    }

    /// Number of anchors covered.
    #[must_use]
    pub fn num_anchors(&self) -> usize {
        self.num_anchors
    }

    /// Bytes of SRAM live while anchor `index` executes.
    #[must_use]
    pub fn live_bytes_at(&self, index: usize) -> u64 {
        // Buffers at the two base addresses overlap only if live
        // simultaneously at the same base; take the max extent per base.
        let mut bottom = 0u64;
        let mut top = 0u64;
        for b in &self.buffers {
            if b.is_live_at(index) {
                if b.start_addr == 0 {
                    bottom = bottom.max(b.size_bytes);
                } else {
                    top = top.max(b.size_bytes);
                }
            }
        }
        (bottom + top).min(self.geometry.total_bytes())
    }

    /// Number of 4 KiB (segment-sized) segments live while anchor `index`
    /// executes.
    #[must_use]
    pub fn live_segments_at(&self, index: usize) -> usize {
        self.geometry.segments_for_bytes(self.live_bytes_at(index))
    }

    /// Peak live bytes across the whole graph.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        (0..self.num_anchors).map(|i| self.live_bytes_at(i)).max().unwrap_or(0)
    }

    /// Average fraction of the scratchpad that is live (capacity
    /// utilization), averaged across anchors.
    #[must_use]
    pub fn mean_capacity_utilization(&self) -> f64 {
        if self.num_anchors == 0 {
            return 0.0;
        }
        let total: u64 = (0..self.num_anchors).map(|i| self.live_bytes_at(i)).sum();
        total as f64 / (self.num_anchors as f64 * self.geometry.total_bytes() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::Compiler;
    use npu_arch::{NpuGeneration, NpuSpec, ParallelismConfig};
    use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};

    fn allocate(wl: Workload, p: ParallelismConfig) -> SramAllocation {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let graph = wl.build_graph(&p);
        let compiled = Compiler::new(spec.clone()).compile(&graph);
        SramAllocation::allocate(&compiled, spec.sram_geometry())
    }

    #[test]
    fn allocation_covers_every_anchor() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        assert_eq!(alloc.buffers().len(), alloc.num_anchors());
        for b in alloc.buffers() {
            assert!(b.size_bytes > 0);
            assert!(b.end_addr() <= alloc.geometry().total_bytes());
            assert!(b.live_from <= b.live_to);
        }
    }

    #[test]
    fn live_bytes_never_exceed_capacity() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill),
            ParallelismConfig::new(1, 8, 1),
        );
        let cap = alloc.geometry().total_bytes();
        for i in 0..alloc.num_anchors() {
            assert!(alloc.live_bytes_at(i) <= cap);
        }
        assert!(alloc.peak_bytes() <= cap);
    }

    #[test]
    fn dlrm_uses_small_fraction_of_sram() {
        let alloc = allocate(Workload::dlrm(DlrmSize::Medium), ParallelismConfig::new(8, 1, 1));
        // The paper: DLRM SRAM demand never exceeds 8 MB of the 128 MB SRAM,
        // so at least ~94% of the capacity could be power gated.
        assert!(
            alloc.mean_capacity_utilization() < 0.15,
            "utilization {}",
            alloc.mean_capacity_utilization()
        );
    }

    #[test]
    fn prefill_uses_more_sram_than_decode() {
        let prefill = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            ParallelismConfig::single(),
        );
        let decode = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        assert!(prefill.mean_capacity_utilization() > decode.mean_capacity_utilization());
    }

    #[test]
    fn segment_counts_round_up() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        for i in 0..alloc.num_anchors() {
            let segs = alloc.live_segments_at(i);
            let bytes = alloc.live_bytes_at(i);
            assert!(segs as u64 * 4096 >= bytes);
            assert!((segs as u64).saturating_sub(1) * 4096 <= bytes);
        }
    }
}
