//! SRAM (scratchpad) allocation with buffer lifetimes.
//!
//! The ReGate instrumentation pass "uses the output of the SRAM allocation
//! pass, which includes the lifetime (start/end instruction index), start
//! address, and size of each allocated buffer" to derive the idle intervals
//! of each 4 KiB segment (§4.3). This module provides that allocation: a
//! simple double-buffered bump allocator over the anchors of a compiled
//! graph, which is what the software-managed SRAM power gating consumes.

use serde::{Deserialize, Serialize};

use npu_arch::SramGeometry;

use crate::lowering::CompiledGraph;

/// Lifetime and placement of one SRAM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferLifetime {
    /// Anchor index (position among the graph's anchors) that owns the buffer.
    pub anchor_index: usize,
    /// Start byte address inside the scratchpad.
    pub start_addr: u64,
    /// Buffer size in bytes.
    pub size_bytes: u64,
    /// First anchor index (inclusive) during which the buffer is live.
    pub live_from: usize,
    /// Last anchor index (inclusive) during which the buffer is live.
    pub live_to: usize,
}

impl BufferLifetime {
    /// Whether the buffer is live while anchor `index` executes.
    #[must_use]
    pub fn is_live_at(&self, index: usize) -> bool {
        index >= self.live_from && index <= self.live_to
    }

    /// Exclusive end address of the buffer.
    #[must_use]
    pub fn end_addr(&self) -> u64 {
        self.start_addr + self.size_bytes
    }
}

/// Anchor-index lifetime of a run of scratchpad segments.
///
/// Every segment in `[first_segment, first_segment + num_segments)` is kept
/// live by exactly the same set of buffers, so they share one merged list
/// of anchor ranges. Grouping identical-lifetime runs keeps the query
/// output (and everything built on it, like the simulator's per-segment
/// timeline) proportional to the number of *distinct* lifetimes rather
/// than the tens of thousands of raw 4 KiB segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentLifetime {
    /// First segment index of the run.
    pub first_segment: usize,
    /// Number of consecutive segments sharing this lifetime.
    pub num_segments: usize,
    /// Sorted, non-overlapping inclusive anchor-index ranges during which
    /// the segments hold live data. Abutting ranges are *not* merged: two
    /// buffers handing a segment over between adjacent anchors may still
    /// leave a real idle gap on the clock, which only the schedule knows.
    pub anchor_ranges: Vec<(usize, usize)>,
}

/// Sorts inclusive anchor ranges and merges the *overlapping* ones;
/// abutting ranges stay separate (only the schedule knows whether a real
/// clock gap lies between adjacent anchors).
fn merge_anchor_ranges(mut ranges: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    ranges.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match merged.last_mut() {
            Some(last) if r.0 <= last.1 => last.1 = last.1.max(r.1),
            _ => merged.push(r),
        }
    }
    merged
}

/// The static live-byte peak of an allocation: how many bytes are live at
/// the busiest anchor, and which anchor that is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramPeak {
    /// Maximum of the live-byte profile, in bytes.
    pub peak_bytes: u64,
    /// First anchor index at which the peak occurs (0 for an empty
    /// allocation).
    pub anchor_index: usize,
}

/// Result of allocating a compiled graph's buffers in the scratchpad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramAllocation {
    geometry: SramGeometry,
    buffers: Vec<BufferLifetime>,
    num_anchors: usize,
}

impl SramAllocation {
    /// Allocates the anchors of a compiled graph.
    ///
    /// Each anchor gets a buffer of its tiled SRAM usage, live from the
    /// previous anchor (its inputs are prefetched / double buffered) until
    /// the next anchor (its outputs are consumed). Buffers of operators
    /// that are not adjacent in time reuse addresses: the allocator simply
    /// alternates between the bottom and the top half of the scratchpad,
    /// which is how double buffering is commonly laid out.
    #[must_use]
    pub fn allocate(graph: &CompiledGraph, geometry: SramGeometry) -> Self {
        let capacity = geometry.total_bytes();
        let half = capacity / 2;
        let mut buffers = Vec::new();
        let anchors: Vec<_> = graph.anchors().collect();
        for (index, anchor) in anchors.iter().enumerate() {
            let size = anchor.tile.sram_used_bytes.min(half).max(geometry.segment_bytes());
            // Round to whole segments.
            let size = geometry.segment_bytes() * geometry.segments_for_bytes(size) as u64;
            let start_addr = if index % 2 == 0 { 0 } else { half };
            buffers.push(BufferLifetime {
                anchor_index: index,
                start_addr,
                size_bytes: size.min(half),
                live_from: index.saturating_sub(1),
                live_to: (index + 1).min(anchors.len().saturating_sub(1)),
            });
        }
        SramAllocation { geometry, buffers, num_anchors: anchors.len() }
    }

    /// Builds an allocation from an explicit buffer set (synthetic
    /// allocations for tests and analyses that bypass the compiler).
    ///
    /// # Panics
    ///
    /// Panics if a buffer is empty, extends past the scratchpad capacity,
    /// or has an inverted or out-of-range lifetime.
    #[must_use]
    pub fn from_buffers(
        geometry: SramGeometry,
        buffers: Vec<BufferLifetime>,
        num_anchors: usize,
    ) -> Self {
        for b in &buffers {
            assert!(b.size_bytes > 0, "buffer of anchor {} is empty", b.anchor_index);
            assert!(
                b.end_addr() <= geometry.total_bytes(),
                "buffer of anchor {} ends at {:#x}, past the {:#x}-byte scratchpad",
                b.anchor_index,
                b.end_addr(),
                geometry.total_bytes()
            );
            assert!(
                b.live_from <= b.live_to && b.live_to < num_anchors,
                "buffer of anchor {} has lifetime [{}, {}] outside the {num_anchors} anchors",
                b.anchor_index,
                b.live_from,
                b.live_to
            );
        }
        SramAllocation { geometry, buffers, num_anchors }
    }

    /// The scratchpad geometry used for the allocation.
    #[must_use]
    pub fn geometry(&self) -> SramGeometry {
        self.geometry
    }

    /// All allocated buffers.
    #[must_use]
    pub fn buffers(&self) -> &[BufferLifetime] {
        &self.buffers
    }

    /// Number of anchors covered.
    #[must_use]
    pub fn num_anchors(&self) -> usize {
        self.num_anchors
    }

    /// Bytes of SRAM live while anchor `index` executes: the measure of
    /// the *union* of the live buffers' address ranges, so buffers that
    /// alias addresses (double-buffer halves handing over between
    /// adjacent anchors) are counted once, and buffers at arbitrary
    /// addresses (synthetic [`SramAllocation::from_buffers`] layouts)
    /// are never collapsed into one another.
    #[must_use]
    pub fn live_bytes_at(&self, index: usize) -> u64 {
        let mut ranges: Vec<(u64, u64)> = self
            .buffers
            .iter()
            .filter(|b| b.is_live_at(index))
            .map(|b| (b.start_addr, b.end_addr()))
            .collect();
        ranges.sort_unstable();
        let mut live = 0u64;
        let mut cursor = 0u64;
        for (start, end) in ranges {
            live += end.saturating_sub(start.max(cursor));
            cursor = cursor.max(end);
        }
        live
    }

    /// Live bytes at every anchor in one pass: `profile[index]` equals
    /// [`SramAllocation::live_bytes_at`]`(index)` bit for bit, but the
    /// sweep keeps a running active-buffer set instead of rescanning all
    /// buffers per anchor — `O(anchors × live-buffers)` instead of the
    /// point query's `O(anchors × all-buffers)`, which turned the
    /// simulator's per-anchor liveness lookup quadratic on serving-scale
    /// graphs.
    #[must_use]
    pub fn live_bytes_profile(&self) -> Vec<u64> {
        let mut order: Vec<usize> = (0..self.buffers.len()).collect();
        order.sort_unstable_by_key(|&i| self.buffers[i].live_from);
        let mut next = 0usize;
        let mut active: Vec<usize> = Vec::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut profile = Vec::with_capacity(self.num_anchors);
        for index in 0..self.num_anchors {
            while next < order.len() && self.buffers[order[next]].live_from <= index {
                active.push(order[next]);
                next += 1;
            }
            active.retain(|&i| self.buffers[i].live_to >= index);
            ranges.clear();
            ranges.extend(active.iter().map(|&i| {
                let b = &self.buffers[i];
                (b.start_addr, b.end_addr())
            }));
            ranges.sort_unstable();
            let mut live = 0u64;
            let mut cursor = 0u64;
            for &(start, end) in &ranges {
                live += end.saturating_sub(start.max(cursor));
                cursor = cursor.max(end);
            }
            profile.push(live);
        }
        profile
    }

    /// Number of 4 KiB (segment-sized) segments live while anchor `index`
    /// executes.
    #[must_use]
    pub fn live_segments_at(&self, index: usize) -> usize {
        self.geometry.segments_for_bytes(self.live_bytes_at(index))
    }

    /// Peak live bytes across the whole graph.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.live_bytes_profile().into_iter().max().unwrap_or(0)
    }

    /// The static live-byte peak *and where it occurs*: the first anchor
    /// index at which the allocation's live bytes reach their maximum.
    /// This is the single number a pre-simulation capacity check compares
    /// against the target chip's scratchpad — computed in one
    /// [`SramAllocation::live_bytes_profile`] sweep, with the anchor index
    /// carried along so a violation can be reported as an operator span
    /// instead of a bare byte count.
    #[must_use]
    pub fn static_peak(&self) -> SramPeak {
        let mut peak = SramPeak { peak_bytes: 0, anchor_index: 0 };
        for (index, live) in self.live_bytes_profile().into_iter().enumerate() {
            if live > peak.peak_bytes {
                peak = SramPeak { peak_bytes: live, anchor_index: index };
            }
        }
        peak
    }

    /// Inclusive range of segment indices a buffer occupies.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is zero-sized or extends past the scratchpad;
    /// the allocator never emits such a lifetime.
    #[must_use]
    pub fn buffer_segments(&self, buffer: &BufferLifetime) -> (usize, usize) {
        self.geometry
            .segments_for_range(buffer.start_addr, buffer.size_bytes)
            .expect("buffers are non-empty")
    }

    /// Per-segment lifetimes: which anchors keep each segment live.
    ///
    /// Segments never touched by any buffer are omitted — they are dead
    /// for the whole execution. The returned runs are sorted by segment
    /// index and disjoint; within a run the anchor ranges are sorted and
    /// non-overlapping (see [`SegmentLifetime`]). A segment reused across
    /// the double-buffer halves — e.g. the bottom half serving anchors
    /// 0–1 and again anchors 4–5 — reports one range per occupancy, which
    /// is exactly what per-segment idle-interval gating needs (§4.3).
    #[must_use]
    pub fn segment_lifetimes(&self) -> Vec<SegmentLifetime> {
        // Sweep the segment axis: the covering buffer set only changes at
        // a buffer's first segment or one past its last, so the segments
        // between two consecutive boundaries share a lifetime.
        let mut boundaries: Vec<usize> = Vec::with_capacity(self.buffers.len() * 2);
        let mut spans: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(self.buffers.len());
        for b in &self.buffers {
            let (s0, s1) = self.buffer_segments(b);
            boundaries.push(s0);
            boundaries.push(s1 + 1);
            spans.push((s0, s1, b.live_from, b.live_to));
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut runs = Vec::new();
        for pair in boundaries.windows(2) {
            let (first, end) = (pair[0], pair[1]);
            let ranges: Vec<(usize, usize)> = spans
                .iter()
                .filter(|&&(s0, s1, ..)| s0 <= first && first <= s1)
                .map(|&(.., from, to)| (from, to))
                .collect();
            if ranges.is_empty() {
                continue;
            }
            runs.push(SegmentLifetime {
                first_segment: first,
                num_segments: end - first,
                anchor_ranges: merge_anchor_ranges(ranges),
            });
        }
        runs
    }

    /// Anchor ranges keeping one specific segment live (empty if the
    /// segment is never touched). A direct `O(buffers)` query; callers
    /// iterating many segments should take [`SramAllocation::
    /// segment_lifetimes`] once instead.
    #[must_use]
    pub fn segment_anchor_ranges(&self, segment: usize) -> Vec<(usize, usize)> {
        let ranges = self
            .buffers
            .iter()
            .filter(|b| {
                let (s0, s1) = self.buffer_segments(b);
                s0 <= segment && segment <= s1
            })
            .map(|b| (b.live_from, b.live_to))
            .collect();
        merge_anchor_ranges(ranges)
    }

    /// Average fraction of the scratchpad that is live (capacity
    /// utilization), averaged across anchors.
    #[must_use]
    pub fn mean_capacity_utilization(&self) -> f64 {
        if self.num_anchors == 0 {
            return 0.0;
        }
        let total: u64 = self.live_bytes_profile().into_iter().sum();
        total as f64 / (self.num_anchors as f64 * self.geometry.total_bytes() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::Compiler;
    use npu_arch::{NpuGeneration, NpuSpec, ParallelismConfig};
    use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};

    fn allocate(wl: Workload, p: ParallelismConfig) -> SramAllocation {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let graph = wl.build_graph(&p);
        let compiled = Compiler::new(spec.clone()).compile(&graph);
        SramAllocation::allocate(&compiled, spec.sram_geometry())
    }

    #[test]
    fn allocation_covers_every_anchor() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        assert_eq!(alloc.buffers().len(), alloc.num_anchors());
        for b in alloc.buffers() {
            assert!(b.size_bytes > 0);
            assert!(b.end_addr() <= alloc.geometry().total_bytes());
            assert!(b.live_from <= b.live_to);
        }
    }

    #[test]
    fn live_bytes_never_exceed_capacity() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill),
            ParallelismConfig::new(1, 8, 1),
        );
        let cap = alloc.geometry().total_bytes();
        for i in 0..alloc.num_anchors() {
            assert!(alloc.live_bytes_at(i) <= cap);
        }
        assert!(alloc.peak_bytes() <= cap);
    }

    #[test]
    fn static_peak_matches_profile_argmax() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            ParallelismConfig::single(),
        );
        let peak = alloc.static_peak();
        assert_eq!(peak.peak_bytes, alloc.peak_bytes());
        let profile = alloc.live_bytes_profile();
        assert_eq!(profile[peak.anchor_index], peak.peak_bytes);
        // First argmax: nothing earlier reaches the peak.
        assert!(profile[..peak.anchor_index].iter().all(|&b| b < peak.peak_bytes));
        // Degenerate case: an empty allocation peaks at zero bytes, anchor 0.
        let geometry = NpuSpec::generation(NpuGeneration::D).sram_geometry();
        let empty = SramAllocation::from_buffers(geometry, Vec::new(), 0);
        assert_eq!(empty.static_peak(), SramPeak { peak_bytes: 0, anchor_index: 0 });
    }

    #[test]
    fn dlrm_uses_small_fraction_of_sram() {
        let alloc = allocate(Workload::dlrm(DlrmSize::Medium), ParallelismConfig::new(8, 1, 1));
        // The paper: DLRM SRAM demand never exceeds 8 MB of the 128 MB SRAM,
        // so at least ~94% of the capacity could be power gated.
        assert!(
            alloc.mean_capacity_utilization() < 0.15,
            "utilization {}",
            alloc.mean_capacity_utilization()
        );
    }

    #[test]
    fn prefill_uses_more_sram_than_decode() {
        let prefill = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            ParallelismConfig::single(),
        );
        let decode = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        assert!(prefill.mean_capacity_utilization() > decode.mean_capacity_utilization());
    }

    fn buffer(
        anchor: usize,
        start_addr: u64,
        size_bytes: u64,
        live_from: usize,
        live_to: usize,
    ) -> BufferLifetime {
        BufferLifetime { anchor_index: anchor, start_addr, size_bytes, live_from, live_to }
    }

    #[test]
    fn segment_lifetimes_honor_double_buffer_halves() {
        // 64 KiB scratchpad, 4 KiB segments, 32 KiB halves (segments 0-7
        // bottom, 8-15 top). Bottom half serves anchors 0-1 and is reused
        // for anchors 3-4; the top half bridges them.
        let g = SramGeometry::new(64 * 1024, 4096);
        let alloc = SramAllocation::from_buffers(
            g,
            vec![
                buffer(0, 0, 8192, 0, 1),
                buffer(1, 32 * 1024, 8192, 1, 2),
                buffer(2, 0, 4096, 3, 4),
            ],
            5,
        );
        let runs = alloc.segment_lifetimes();
        // Segment 0: two separate occupancies of the bottom half — the
        // ranges abut nothing and must not be merged into [0, 4].
        assert_eq!(alloc.segment_anchor_ranges(0), vec![(0, 1), (3, 4)]);
        // Segment 1: only the first bottom-half buffer reaches it.
        assert_eq!(alloc.segment_anchor_ranges(1), vec![(0, 1)]);
        // Segment 8 (top half) is live for the bridging buffer only.
        assert_eq!(alloc.segment_anchor_ranges(8), vec![(1, 2)]);
        // Segments 2-7 and 10-15 are never touched.
        assert!(alloc.segment_anchor_ranges(2).is_empty());
        assert!(alloc.segment_anchor_ranges(15).is_empty());
        // Runs are sorted, disjoint, and cover exactly the live segments.
        let mut cursor = 0;
        let mut covered = 0;
        for run in &runs {
            assert!(run.first_segment >= cursor, "runs overlap or are unsorted");
            assert!(run.num_segments > 0);
            cursor = run.first_segment + run.num_segments;
            covered += run.num_segments;
            for pair in run.anchor_ranges.windows(2) {
                assert!(pair[0].1 < pair[1].0, "anchor ranges overlap: {pair:?}");
            }
        }
        assert!(cursor <= g.num_segments());
        assert_eq!(covered, 2 + 2, "two bottom segments + two top segments are ever live");
    }

    #[test]
    fn overlapping_lifetimes_at_one_base_merge_their_anchor_ranges() {
        let g = SramGeometry::new(64 * 1024, 4096);
        let alloc = SramAllocation::from_buffers(
            g,
            vec![buffer(0, 0, 4096, 0, 2), buffer(1, 0, 4096, 2, 5), buffer(2, 0, 4096, 7, 7)],
            8,
        );
        // The first two ranges share anchor 2 and merge; the third stays.
        assert_eq!(alloc.segment_anchor_ranges(0), vec![(0, 5), (7, 7)]);
    }

    #[test]
    fn segment_lifetimes_round_at_the_capacity_edge() {
        // A buffer one byte past a segment boundary claims the next whole
        // segment, and a buffer filling its half exactly reaches the last
        // segment of that half without spilling into the other.
        let g = SramGeometry::new(64 * 1024, 4096);
        let half = 32 * 1024;
        let alloc = SramAllocation::from_buffers(
            g,
            vec![buffer(0, 0, 4097, 0, 0), buffer(1, half, half, 1, 1)],
            2,
        );
        assert_eq!(alloc.segment_anchor_ranges(0), vec![(0, 0)]);
        assert_eq!(alloc.segment_anchor_ranges(1), vec![(0, 0)], "4097 bytes claim segment 1");
        assert!(alloc.segment_anchor_ranges(2).is_empty());
        assert_eq!(alloc.segment_anchor_ranges(8), vec![(1, 1)], "top half starts at segment 8");
        assert_eq!(alloc.segment_anchor_ranges(15), vec![(1, 1)], "full half reaches its edge");
        let top = alloc.buffers().iter().find(|b| b.start_addr == half).unwrap();
        assert_eq!(alloc.buffer_segments(top), (8, 15));
    }

    #[test]
    fn compiled_graph_lifetimes_cover_every_buffer() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        let runs = alloc.segment_lifetimes();
        assert!(!runs.is_empty());
        let live_segments: usize = runs.iter().map(|r| r.num_segments).sum();
        assert!(live_segments <= alloc.geometry().num_segments());
        // Every buffer's segment span maps onto runs that contain its
        // lifetime.
        for b in alloc.buffers() {
            let (s0, s1) = alloc.buffer_segments(b);
            assert!(s1 < alloc.geometry().num_segments());
            for ranges in [alloc.segment_anchor_ranges(s0), alloc.segment_anchor_ranges(s1)] {
                assert!(
                    ranges.iter().any(|&(from, to)| from <= b.live_from && b.live_to <= to),
                    "buffer lifetime [{}, {}] missing from ranges {ranges:?}",
                    b.live_from,
                    b.live_to
                );
            }
        }
    }

    #[test]
    fn live_bytes_profile_matches_point_queries() {
        // The sweep must reproduce the per-anchor point query bit for bit,
        // both on a compiled graph and on a synthetic layout with aliased
        // addresses and out-of-order lifetimes.
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        let profile = alloc.live_bytes_profile();
        assert_eq!(profile.len(), alloc.num_anchors());
        for (i, &bytes) in profile.iter().enumerate() {
            assert_eq!(bytes, alloc.live_bytes_at(i), "anchor {i}");
        }
        let g = SramGeometry::new(64 * 1024, 4096);
        let synthetic = SramAllocation::from_buffers(
            g,
            vec![
                buffer(0, 0, 8192, 2, 5),
                buffer(1, 4096, 8192, 0, 3),
                buffer(2, 32 * 1024, 4096, 1, 1),
                buffer(3, 0, 4096, 5, 6),
            ],
            7,
        );
        let profile = synthetic.live_bytes_profile();
        for (i, &bytes) in profile.iter().enumerate() {
            assert_eq!(bytes, synthetic.live_bytes_at(i), "anchor {i}");
        }
        assert_eq!(synthetic.peak_bytes(), *profile.iter().max().unwrap());
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn from_buffers_rejects_over_capacity_buffers() {
        let g = SramGeometry::new(64 * 1024, 4096);
        let _ = SramAllocation::from_buffers(g, vec![buffer(0, 60 * 1024, 8192, 0, 0)], 1);
    }

    #[test]
    fn segment_counts_round_up() {
        let alloc = allocate(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            ParallelismConfig::single(),
        );
        for i in 0..alloc.num_anchors() {
            let segs = alloc.live_segments_at(i);
            let bytes = alloc.live_bytes_at(i);
            assert!(segs as u64 * 4096 >= bytes);
            assert!((segs as u64).saturating_sub(1) * 4096 <= bytes);
        }
    }
}
