//! # npu-compiler — ML-compiler backend for the ReGate NPU simulator
//!
//! The paper's simulator frontend applies "common ML compiler optimizations
//! used in production, such as tiling, operator fusion, and operator
//! reordering", and its backend consumes tile-level information per
//! operator (§4.4). ReGate additionally adds two compiler passes to the
//! backend: *component idleness analysis* and *`setpm` instrumentation*
//! (§4.3), inserted after instruction scheduling and SRAM allocation.
//!
//! This crate implements that backend:
//!
//! * [`tiling`] — per-operator tile selection, SRAM demand (the paper's
//!   Figure 7 metric), and post-tiling HBM traffic;
//! * [`fusion`] — producer→consumer fusion of vector post-processing into
//!   the matrix operator that feeds it;
//! * [`lowering`] — the compiled, tile-annotated operator stream consumed
//!   by the performance simulator ([`CompiledGraph`]);
//! * [`sram_alloc`] — double-buffered scratchpad allocation with buffer
//!   lifetimes (the input to software SRAM power gating);
//! * [`vliw`] — expansion of a compiled operator into a representative VLIW
//!   instruction schedule (used for instruction-level analyses such as
//!   Figure 15 and Figure 20);
//! * [`idleness`] — per-functional-unit idle-interval extraction from a
//!   VLIW program;
//! * [`instrument`] — the BET-based `setpm` instrumentation pass.
//!
//! ## Example
//!
//! ```
//! use npu_arch::{NpuGeneration, NpuSpec, ParallelismConfig};
//! use npu_models::{LlamaModel, LlmPhase, Workload};
//! use npu_compiler::Compiler;
//!
//! let spec = NpuSpec::generation(NpuGeneration::D);
//! let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
//! let graph = workload.build_graph(&ParallelismConfig::single());
//! let compiled = Compiler::new(spec).compile(&graph);
//! assert_eq!(compiled.len(), graph.len());
//! assert!(compiled.ops().iter().any(|op| op.fused_vu_elements > 0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collective;
pub mod fusion;
pub mod idleness;
pub mod instrument;
pub mod lowering;
pub mod sram_alloc;
pub mod tiling;
pub mod vliw;

pub use collective::CollectivePlan;
pub use fusion::FusionPlan;
pub use idleness::{IdleInterval, IdlenessReport};
pub use instrument::{InstrumentationResult, SetPmPolicy};
pub use lowering::{CompiledGraph, CompiledOp, Compiler};
pub use sram_alloc::{BufferLifetime, SegmentLifetime, SramAllocation, SramPeak};
pub use tiling::TileChoice;
