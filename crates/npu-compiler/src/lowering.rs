//! Lowering: combines unit assignment, fusion, and tiling into the compiled
//! operator stream that the performance simulator executes.

use serde::{Deserialize, Serialize};

use npu_arch::NpuSpec;
use npu_models::{ExecutionUnit, Operator, OperatorGraph};

use crate::fusion::FusionPlan;
use crate::tiling::TileChoice;

/// One operator after compilation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledOp {
    /// The original operator (shapes, name, dtype).
    pub op: Operator,
    /// Execution unit the operator was assigned to.
    pub unit: ExecutionUnit,
    /// Tiling decision and SRAM demand.
    pub tile: TileChoice,
    /// If the operator was fused into an earlier anchor, the anchor's id.
    pub folded_into: Option<usize>,
    /// For anchors: vector elements of post-processing fused into this
    /// operator (from the operators folded into it).
    pub fused_vu_elements: u64,
    /// For anchors: FLOPs of the fused post-processing.
    pub fused_vu_flops: f64,
}

impl CompiledOp {
    /// Whether this operator executes on its own (it is a fusion anchor).
    #[must_use]
    pub fn is_anchor(&self) -> bool {
        self.folded_into.is_none()
    }

    /// Total vector-unit elements this anchor processes: its own vector
    /// work (if it is a VU operator) plus the fused post-processing.
    #[must_use]
    pub fn total_vu_elements(&self) -> u64 {
        let own = if self.unit == ExecutionUnit::Vu { own_vu_elements(&self.op) } else { 0 };
        own + self.fused_vu_elements
    }

    /// SRAM demand of the operator in MiB (Figure 7 metric).
    #[must_use]
    pub fn sram_demand_mib(&self) -> f64 {
        self.tile.sram_demand_mib()
    }
}

/// Number of vector elements a VU operator touches.
fn own_vu_elements(op: &Operator) -> u64 {
    use npu_models::OpKind;
    match op.kind {
        OpKind::Elementwise { elements, .. } => elements,
        OpKind::Softmax { rows, cols } | OpKind::LayerNorm { rows, cols } => rows * cols,
        OpKind::MatMul { batch, m, n, .. } => batch * m * n,
        OpKind::Conv2d { batch, h_out, w_out, c_out, .. } => batch * h_out * w_out * c_out,
        _ => 0,
    }
}

/// A fully compiled operator graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledGraph {
    name: String,
    ops: Vec<CompiledOp>,
    /// `producers[id]`: anchor ids the fusion group anchored at `id`
    /// consumes from (deduplicated, ascending; empty for folded operators
    /// and for source anchors). Edges of folded operators are remapped to
    /// their anchors, so the set is the complete dependency frontier of
    /// the anchor's whole group.
    producers: Vec<Vec<usize>>,
}

impl CompiledGraph {
    /// An empty compiled graph — the seed for concatenating independently
    /// compiled subgraphs with [`CompiledGraph::extend_from`].
    #[must_use]
    pub fn empty(name: impl Into<String>) -> Self {
        CompiledGraph { name: name.into(), ops: Vec::new(), producers: Vec::new() }
    }

    /// Assembles a compiled graph from raw parts *without validating the
    /// dependency structure*.
    ///
    /// [`Compiler::compile`] and [`CompiledGraph::extend_from`] can only
    /// produce well-formed graphs (forward edges, fusion groups anchored
    /// on real anchors), so the defects the static analyzer exists to
    /// catch — cyclic producer edges, dangling ids, producer lists that
    /// reference fused-away operators — are unconstructible through them.
    /// This constructor is the deliberate back door: analyzer fixtures
    /// and external frontends (a deserialized graph from another
    /// compiler) assemble graphs here and run
    /// `npu-sim`'s analysis pass to find out whether they are schedulable,
    /// instead of discovering it as an engine panic mid-simulation.
    ///
    /// # Panics
    ///
    /// Panics if `producers` does not carry exactly one list per operator
    /// (a malformed *container*, as opposed to malformed *edges*, which
    /// are exactly what the analyzer is for).
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        ops: Vec<CompiledOp>,
        producers: Vec<Vec<usize>>,
    ) -> Self {
        assert_eq!(
            ops.len(),
            producers.len(),
            "from_parts: one producer list per compiled operator"
        );
        CompiledGraph { name: name.into(), ops, producers }
    }

    /// Appends another compiled graph's operators, remapping operator ids,
    /// fusion-anchor references, and producer edges by this graph's current
    /// length. Returns the id range the appended operators landed on.
    ///
    /// Because fusion follows producer edges only — disconnected subgraphs
    /// never fuse across their boundary — and unit assignment and tiling
    /// are per-operator, concatenating per-batch *compiled* graphs this way
    /// is bit-for-bit identical to compiling the concatenated operator
    /// graph. That equivalence is what lets a serving run reuse cached
    /// compilations of repeated batch shapes.
    pub fn extend_from(&mut self, other: &CompiledGraph) -> std::ops::Range<usize> {
        let base = self.ops.len();
        self.ops.reserve(other.ops.len());
        for op in &other.ops {
            let mut op = op.clone();
            op.op.id += base;
            op.folded_into = op.folded_into.map(|anchor| anchor + base);
            self.ops.push(op);
        }
        self.producers.reserve(other.producers.len());
        self.producers
            .extend(other.producers.iter().map(|set| set.iter().map(|&p| p + base).collect()));
        base..self.ops.len()
    }

    /// Name of the source graph.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Anchor ids feeding the fusion group anchored at operator `id`
    /// (empty for folded operators and source anchors).
    #[must_use]
    pub fn producers_of(&self, id: usize) -> &[usize] {
        self.producers.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Per-anchor producer sets remapped to *anchor positions* (indices
    /// into the [`CompiledGraph::anchors`] iteration order) — the layout
    /// the timeline engine consumes.
    #[must_use]
    pub fn anchor_producers(&self) -> Vec<Vec<usize>> {
        let mut position = vec![usize::MAX; self.ops.len()];
        for (index, op) in self.anchors().enumerate() {
            position[op.op.id] = index;
        }
        self.anchors()
            .map(|op| self.producers[op.op.id].iter().map(|&p| position[p]).collect())
            .collect()
    }

    /// For every compiled operator, the *anchor position* (index into the
    /// [`CompiledGraph::anchors`] iteration order — the layout of the
    /// simulator's timing vector) of the fusion group executing it. A
    /// folded operator maps to its anchor's position; an anchor maps to
    /// its own. The serving layer uses this to find which scheduled
    /// anchors a request's operator range landed on.
    #[must_use]
    pub fn anchor_positions(&self) -> Vec<usize> {
        let mut position = vec![usize::MAX; self.ops.len()];
        for (index, op) in self.anchors().enumerate() {
            position[op.op.id] = index;
        }
        self.ops.iter().enumerate().map(|(id, op)| position[op.folded_into.unwrap_or(id)]).collect()
    }

    /// All compiled operators (anchors and folded operators) in order.
    #[must_use]
    pub fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }

    /// Number of compiled operators (equals the source graph's length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterator over the fusion anchors (the operators the simulator runs).
    pub fn anchors(&self) -> impl Iterator<Item = &CompiledOp> {
        self.ops.iter().filter(|op| op.is_anchor())
    }

    /// Number of anchors.
    #[must_use]
    pub fn num_anchors(&self) -> usize {
        self.anchors().count()
    }

    /// Per-anchor SRAM demand in MiB, in execution order (input to the
    /// Figure 7 CDF, which weights each operator by its execution time).
    #[must_use]
    pub fn sram_demands_mib(&self) -> Vec<f64> {
        self.anchors().map(CompiledOp::sram_demand_mib).collect()
    }
}

/// The compiler backend: assigns units, fuses, and tiles a graph for one
/// NPU generation.
#[derive(Debug, Clone)]
pub struct Compiler {
    spec: NpuSpec,
}

impl Compiler {
    /// Creates a compiler targeting the given NPU generation.
    #[must_use]
    pub fn new(spec: NpuSpec) -> Self {
        Compiler { spec }
    }

    /// The target NPU specification.
    #[must_use]
    pub fn spec(&self) -> &NpuSpec {
        &self.spec
    }

    /// Compiles an operator graph: unit assignment (based on the target's
    /// systolic-array width), producer→consumer fusion, and tiling.
    #[must_use]
    pub fn compile(&self, graph: &OperatorGraph) -> CompiledGraph {
        let fusion = FusionPlan::for_graph(graph);
        let mut ops: Vec<CompiledOp> = Vec::with_capacity(graph.len());

        for op in graph.iter() {
            let unit = op.execution_unit_for(self.spec.sa_width as u64);
            let tile = TileChoice::for_operator(op, &self.spec);
            let folded_into = if fusion.is_fused(op.id) {
                Some(fusion.anchor_of(fusion.group_of(op.id)))
            } else {
                None
            };
            ops.push(CompiledOp {
                op: op.clone(),
                unit,
                tile,
                folded_into,
                fused_vu_elements: 0,
                fused_vu_flops: 0.0,
            });
        }

        // Accumulate fused VU work onto the anchors.
        for id in 0..ops.len() {
            if let Some(anchor) = ops[id].folded_into {
                let elems = own_vu_elements(&ops[id].op);
                let flops = ops[id].op.flops();
                let extra_hbm = ops[id].tile.hbm_bytes;
                ops[anchor].fused_vu_elements += elems;
                ops[anchor].fused_vu_flops += flops;
                // Fused operators avoid the HBM round-trip of their
                // intermediate tensor: only the extra inputs (e.g. the
                // residual operand) still need to be read. We approximate
                // this by charging half of the folded operator's traffic to
                // the anchor.
                ops[anchor].tile.hbm_bytes += extra_hbm / 2;
            }
        }

        // Remap the graph's producer edges through the fusion groups: an
        // anchor depends on every anchor that feeds any member of its
        // group (intra-group edges collapse).
        let mut producer_sets: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); ops.len()];
        for (id, op) in ops.iter().enumerate() {
            let anchor = op.folded_into.unwrap_or(id);
            for &p in graph.producers_of(id) {
                let producer_anchor = ops[p].folded_into.unwrap_or(p);
                if producer_anchor != anchor {
                    producer_sets[anchor].insert(producer_anchor);
                }
            }
        }
        let producers = producer_sets.into_iter().map(|s| s.into_iter().collect()).collect();

        CompiledGraph { name: graph.name().to_string(), ops, producers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{NpuGeneration, ParallelismConfig};
    use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};

    fn compiler() -> Compiler {
        Compiler::new(NpuSpec::generation(NpuGeneration::D))
    }

    #[test]
    fn compile_preserves_operator_count() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        let compiled = compiler().compile(&g);
        assert_eq!(compiled.len(), g.len());
        assert!(compiled.num_anchors() < compiled.len());
        assert_eq!(compiled.name(), g.name());
    }

    #[test]
    fn anchors_accumulate_fused_vu_work() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        let compiled = compiler().compile(&g);
        let with_fusion: Vec<_> =
            compiled.anchors().filter(|op| op.fused_vu_elements > 0).collect();
        assert!(!with_fusion.is_empty());
        // An anchor that absorbed a residual add or activation has at least
        // as many fused VU elements as its own output elements.
        let ffn_gate = compiled
            .ops()
            .iter()
            .find(|c| c.op.name.contains("ffn_up") && c.is_anchor())
            .expect("ffn_up anchor");
        assert!(ffn_gate.fused_vu_elements > 0);
    }

    #[test]
    fn folded_ops_reference_valid_anchor() {
        let wl = Workload::dlrm(DlrmSize::Small);
        let g = wl.build_graph(&ParallelismConfig::new(8, 1, 1));
        let compiled = compiler().compile(&g);
        for (id, op) in compiled.ops().iter().enumerate() {
            if let Some(anchor) = op.folded_into {
                assert!(anchor < id, "anchor must precede the folded op");
                assert!(compiled.ops()[anchor].is_anchor());
            }
        }
    }

    #[test]
    fn decode_ops_move_to_vu_on_wide_sa() {
        // On NPU-E (256-wide SA) even more matmuls fall below the warm-up
        // threshold than on NPU-D.
        let wl = Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode).with_batch(8);
        let g = wl.build_graph(&ParallelismConfig::new(1, 8, 1));
        let on_d = compiler().compile(&g);
        let on_e = Compiler::new(NpuSpec::generation(NpuGeneration::E)).compile(&g);
        let sa_d = on_d.ops().iter().filter(|c| c.unit == ExecutionUnit::Sa).count();
        let sa_e = on_e.ops().iter().filter(|c| c.unit == ExecutionUnit::Sa).count();
        assert!(sa_e <= sa_d);
    }

    #[test]
    fn sram_demand_vector_covers_anchors() {
        let wl = Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode);
        let g = wl.build_graph(&ParallelismConfig::single());
        let compiled = compiler().compile(&g);
        let demands = compiled.sram_demands_mib();
        assert_eq!(demands.len(), compiled.num_anchors());
        assert!(demands.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn anchor_producers_collapse_fusion_groups() {
        use npu_models::{DataType, OpKind, Operator, OperatorGraph};
        // mm -> relu (fused) -> add (fused) -> mm2: the anchor of mm2
        // depends on the anchor of the group it consumes from (mm), and
        // intra-group edges vanish.
        let mut g = OperatorGraph::new("t");
        let mm = |name: &str| {
            Operator::new(
                name,
                OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
                DataType::Bf16,
            )
        };
        let ew = |name: &str| {
            Operator::new(
                name,
                OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 1 },
                DataType::Bf16,
            )
        };
        g.push(mm("mm"));
        g.push(ew("relu"));
        g.push(ew("add"));
        g.push(mm("mm2"));
        let compiled = compiler().compile(&g);
        assert_eq!(compiled.num_anchors(), 2);
        assert_eq!(compiled.producers_of(0), &[] as &[usize]);
        assert_eq!(compiled.producers_of(3), &[0]);
        assert_eq!(compiled.anchor_producers(), vec![vec![], vec![0]]);
    }

    #[test]
    fn anchor_producers_preserve_fan_in() {
        use npu_models::{DataType, OpKind, Operator, OperatorGraph};
        let mut g = OperatorGraph::new("t");
        let mm = |name: &str| {
            Operator::new(
                name,
                OpKind::MatMul { batch: 1, m: 512, k: 512, n: 512, weights_resident: true },
                DataType::Bf16,
            )
        };
        let a = g.push_source(mm("a"));
        let b = g.push_source(mm("b"));
        g.push_with_producers(
            Operator::new(
                "join",
                OpKind::Elementwise { elements: 512 * 512, flops_per_element: 1, num_inputs: 2 },
                DataType::Bf16,
            ),
            vec![a, b],
        );
        let compiled = compiler().compile(&g);
        assert_eq!(compiled.num_anchors(), 3, "a fan-in join is never folded");
        assert_eq!(compiled.producers_of(2), &[0, 1]);
        assert_eq!(compiled.anchor_producers(), vec![vec![], vec![], vec![0, 1]]);
    }

    #[test]
    fn anchor_positions_cover_every_operator() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        let compiled = compiler().compile(&g);
        let positions = compiled.anchor_positions();
        assert_eq!(positions.len(), compiled.len());
        let num_anchors = compiled.num_anchors();
        for (id, op) in compiled.ops().iter().enumerate() {
            assert!(positions[id] < num_anchors, "op {id} maps outside the anchor vector");
            match op.folded_into {
                Some(anchor) => assert_eq!(positions[id], positions[anchor]),
                None => {
                    // Anchors map to their own position, in iteration order.
                    let by_iter = compiled
                        .anchors()
                        .position(|a| a.op.id == id)
                        .expect("anchor appears in the iteration");
                    assert_eq!(positions[id], by_iter);
                }
            }
        }
    }

    #[test]
    fn concatenating_compiled_subgraphs_matches_compiling_the_concatenation() {
        // The serving cache's founding identity: compiling two disconnected
        // copies of a subgraph equals compiling the subgraph once and
        // concatenating the compiled result — fusion follows producer edges
        // only, and unit assignment/tiling are per-operator.
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let sub = wl.build_graph(&ParallelismConfig::single());
        let mut combined_src = npu_models::OperatorGraph::new("combined");
        combined_src.extend_from(&sub);
        combined_src.extend_from(&sub);
        let reference = compiler().compile(&combined_src);

        let sub_compiled = compiler().compile(&sub);
        let mut concat = CompiledGraph::empty("combined");
        let first = concat.extend_from(&sub_compiled);
        let second = concat.extend_from(&sub_compiled);
        assert_eq!(first, 0..sub.len());
        assert_eq!(second, sub.len()..2 * sub.len());
        assert_eq!(concat.name(), reference.name());
        assert_eq!(concat.ops(), reference.ops());
        for id in 0..concat.len() {
            assert_eq!(concat.producers_of(id), reference.producers_of(id), "op {id}");
        }
        assert_eq!(concat.anchor_positions(), reference.anchor_positions());
        assert_eq!(concat.anchor_producers(), reference.anchor_producers());
    }

    #[test]
    fn empty_graph_compiles_to_empty() {
        let compiled = compiler().compile(&npu_models::OperatorGraph::new("empty"));
        assert!(compiled.is_empty());
        assert_eq!(compiled.num_anchors(), 0);
    }
}
