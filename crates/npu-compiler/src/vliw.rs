//! Expansion of compiled operators into representative VLIW instruction
//! schedules.
//!
//! The instruction-level view is what the ReGate compiler passes operate on
//! (component idleness analysis and `setpm` instrumentation, §4.3) and what
//! Figure 15 of the paper illustrates: a MatMul whose vector units
//! post-process systolic-array outputs for 2 cycles out of every 16-cycle
//! period. The schedules generated here reproduce that structure — SA
//! push/pop streams with sparse VU post-processing, VU operators separated
//! by DMA waits — without materializing one bundle per hardware cycle for
//! multi-million-cycle operators (tiles are capped and the cap is recorded).

use serde::{Deserialize, Serialize};

use npu_arch::NpuSpec;
use npu_isa::{Program, SlotOp, VliwBundle};
use npu_models::ExecutionUnit;

use crate::lowering::CompiledOp;

/// Limits applied when expanding an operator into bundles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpansionLimits {
    /// Maximum number of tiles expanded per operator (the remaining tiles
    /// repeat the same pattern and are accounted for analytically).
    pub max_tiles: u64,
}

impl Default for ExpansionLimits {
    fn default() -> Self {
        ExpansionLimits { max_tiles: 64 }
    }
}

/// Expands a compiled anchor operator into a VLIW program for one NPU.
///
/// Returns the program and the number of tiles it covers (which may be
/// less than the operator's total tile count when capped by `limits`).
#[must_use]
pub fn expand_operator(op: &CompiledOp, spec: &NpuSpec, limits: ExpansionLimits) -> (Program, u64) {
    let mut program = Program::new(op.op.name.clone());
    let tiles = op.tile.num_tiles.min(limits.max_tiles).max(1);
    let sa_rows = spec.sa_width as u32;
    let vu_capacity = spec.vu_elems_per_cycle() as u64;

    match op.unit {
        ExecutionUnit::Sa => {
            // Per tile: weight load (only first tile of a panel), a push of
            // `sa_rows` rows, a pop of `sa_rows` rows, and the fused VU
            // post-processing spread over the pop.
            let fused_per_tile = op.fused_vu_elements / op.tile.num_tiles.max(1);
            let vu_cycles_per_tile =
                fused_per_tile.div_ceil(vu_capacity.max(1)).min(u64::from(sa_rows));
            for tile in 0..tiles {
                if tile == 0 {
                    program.push(
                        VliwBundle::new().with_sa(0, SlotOp::SaLoadWeights { cycles: sa_rows }),
                    );
                }
                program.push(VliwBundle::new().with_sa(0, SlotOp::sa_push(sa_rows)));
                let mut pop = VliwBundle::new().with_sa(0, SlotOp::sa_pop(sa_rows));
                if vu_cycles_per_tile > 0 {
                    pop = pop.with_vu(0, SlotOp::vu_add((vu_cycles_per_tile * vu_capacity) as u32));
                }
                program.push(pop);
                // Idle gap while the next tile's operands are DMA'd in.
                program.push(
                    VliwBundle::new()
                        .with_dma(SlotOp::Dma {
                            bytes: op.tile.sram_used_bytes / tiles.max(1),
                            remote: false,
                        })
                        .with_misc(SlotOp::Nop { cycles: (sa_rows / 8).max(1) }),
                );
            }
        }
        ExecutionUnit::Vu => {
            // VU operators: bursts of vector work separated by DMA waits
            // (memory-bound VU operators wait on HBM between tiles).
            let total = op.total_vu_elements().max(1);
            let per_tile = total.div_ceil(tiles);
            let busy_cycles = per_tile.div_ceil(vu_capacity.max(1)).max(1);
            for _ in 0..tiles {
                program.push(VliwBundle::new().with_dma(SlotOp::Dma {
                    bytes: op.tile.hbm_bytes / tiles.max(1),
                    remote: false,
                }));
                program.push(
                    VliwBundle::new()
                        .with_misc(SlotOp::Nop { cycles: (busy_cycles as u32).max(4) }),
                );
                program.push(
                    VliwBundle::new()
                        .with_vu(0, SlotOp::vu_add((busy_cycles * vu_capacity) as u32)),
                );
            }
        }
        ExecutionUnit::Hbm => {
            for _ in 0..tiles {
                program.push(VliwBundle::new().with_dma(SlotOp::Dma {
                    bytes: op.tile.hbm_bytes / tiles.max(1),
                    remote: false,
                }));
                program.push(VliwBundle::new().with_misc(SlotOp::Nop { cycles: 16 }));
            }
        }
        ExecutionUnit::Ici => {
            for _ in 0..tiles {
                program.push(
                    VliwBundle::new()
                        .with_ici(SlotOp::Ici { bytes: op.op.ici_bytes() / tiles.max(1) }),
                );
                program.push(VliwBundle::new().with_misc(SlotOp::Nop { cycles: 32 }));
            }
        }
    }
    (program, tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::Compiler;
    use npu_arch::{NpuGeneration, ParallelismConfig};
    use npu_isa::bundle::Slot;
    use npu_models::{LlamaModel, LlmPhase, Workload};

    fn compiled_prefill() -> (NpuSpec, Vec<CompiledOp>) {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let graph = wl.build_graph(&ParallelismConfig::single());
        let compiled = Compiler::new(spec.clone()).compile(&graph);
        (spec, compiled.ops().to_vec())
    }

    #[test]
    fn sa_operator_expands_to_push_pop_pattern() {
        let (spec, ops) = compiled_prefill();
        let anchor = ops
            .iter()
            .find(|o| o.is_anchor() && o.unit == ExecutionUnit::Sa && o.fused_vu_elements > 0)
            .expect("an SA anchor with fused work");
        let (program, tiles) = expand_operator(anchor, &spec, ExpansionLimits::default());
        assert!(tiles >= 1);
        assert!(!program.is_empty());
        let has_push = program
            .bundles()
            .iter()
            .any(|b| matches!(b.slot(Slot::Sa(0)), Some(SlotOp::SaPush { .. })));
        let has_vu = program
            .bundles()
            .iter()
            .any(|b| matches!(b.slot(Slot::Vu(0)), Some(SlotOp::VuOp { .. })));
        assert!(has_push && has_vu);
        assert_eq!(program.setpm_count(), 0, "expansion emits no setpm; instrumentation does");
    }

    #[test]
    fn vu_operator_has_dma_gaps() {
        let (spec, ops) = compiled_prefill();
        let vu_anchor = ops
            .iter()
            .find(|o| o.is_anchor() && o.unit == ExecutionUnit::Vu)
            .expect("a VU anchor (layernorm)");
        let (program, _) = expand_operator(vu_anchor, &spec, ExpansionLimits::default());
        let dmas = program
            .bundles()
            .iter()
            .filter(|b| matches!(b.slot(Slot::Dma), Some(SlotOp::Dma { .. })))
            .count();
        assert!(dmas >= 1);
        assert!(program.issue_cycles() > program.len() as u64, "nop stalls add cycles");
    }

    #[test]
    fn tile_cap_limits_program_size() {
        let (spec, ops) = compiled_prefill();
        let big = ops
            .iter()
            .filter(|o| o.is_anchor() && o.unit == ExecutionUnit::Sa)
            .max_by_key(|o| o.tile.num_tiles)
            .unwrap();
        let (program, tiles) = expand_operator(big, &spec, ExpansionLimits { max_tiles: 8 });
        assert!(tiles <= 8);
        assert!(program.len() <= 8 * 4 + 1);
    }
}
