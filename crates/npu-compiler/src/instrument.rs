//! The `setpm` instrumentation pass (paper §4.3).
//!
//! Using the idle intervals extracted by [`crate::idleness`], the compiler
//! inserts `setpm ... off` at the start of an idle interval and
//! `setpm ... on` early enough before the next use that the wake-up delay is
//! hidden. The BET-based policy only gates an interval when it is longer
//! than the component's break-even time **and** longer than twice its
//! power-on/off delay; otherwise gating would cost energy or performance.

use serde::{Deserialize, Serialize};

use npu_isa::bundle::Slot;
use npu_isa::{FuBitmap, FunctionalUnitType, PowerMode, Program, SetPm, SlotOp, VliwBundle};

use crate::idleness::{IdleInterval, IdlenessReport};

/// BET-based gating policy parameters for one component type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetPmPolicy {
    /// Break-even time in cycles (energy of a power cycle equals the
    /// leakage saved by being off for this long).
    pub bet_cycles: u64,
    /// Power-on/off transition delay in cycles.
    pub on_off_delay_cycles: u64,
}

impl SetPmPolicy {
    /// Creates a policy.
    #[must_use]
    pub fn new(bet_cycles: u64, on_off_delay_cycles: u64) -> Self {
        SetPmPolicy { bet_cycles, on_off_delay_cycles }
    }

    /// The paper's rule: gate an idle interval iff it is longer than the BET
    /// and longer than 2× the power-on/off delay (unbounded intervals —
    /// those containing a DMA — always qualify).
    #[must_use]
    pub fn should_gate(&self, interval: &IdleInterval) -> bool {
        interval.unbounded
            || (interval.len() > self.bet_cycles && interval.len() > 2 * self.on_off_delay_cycles)
    }
}

/// Outcome of instrumenting one program for one functional-unit slot class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationResult {
    /// The instrumented program.
    pub program: Program,
    /// Number of `setpm` instructions inserted.
    pub setpm_inserted: usize,
    /// Idle cycles covered by software gating (per the static schedule).
    pub gated_cycles: u64,
    /// Idle cycles left ungated because the policy rejected the interval.
    pub skipped_cycles: u64,
}

impl InstrumentationResult {
    /// `setpm` instructions per 1,000 issue cycles (the Figure 20 metric).
    #[must_use]
    pub fn setpm_per_kilocycle(&self) -> f64 {
        let cycles = self.program.issue_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.setpm_inserted as f64 * 1000.0 / cycles as f64
    }
}

/// Instruments a program with `setpm` instructions for every vector-unit
/// slot, using the supplied policy.
///
/// The off-`setpm` is placed in the misc slot of the bundle that starts the
/// idle interval; the on-`setpm` is placed `delay` bundles before the
/// interval's ending bundle so that the wake-up completes in time. If the
/// misc slot is occupied, a new bundle is inserted (the paper notes only one
/// `setpm` can issue per cycle).
#[must_use]
pub fn instrument_vu(program: &Program, policy: SetPmPolicy) -> InstrumentationResult {
    instrument_slots(program, policy, FunctionalUnitType::Vu)
}

/// Instruments a program for a chosen functional-unit type (VU or SA slots).
#[must_use]
pub fn instrument_slots(
    program: &Program,
    policy: SetPmPolicy,
    fu_type: FunctionalUnitType,
) -> InstrumentationResult {
    let report = IdlenessReport::analyze(program);
    // Collect the per-slot gating decisions first (bundle indices), then
    // apply them in one pass so the indices stay valid.
    #[derive(Debug)]
    struct PlannedSetPm {
        bundle_index: usize,
        unit_index: usize,
        mode: PowerMode,
    }
    let mut planned: Vec<PlannedSetPm> = Vec::new();
    let mut gated_cycles = 0u64;
    let mut skipped_cycles = 0u64;

    for slot in report.slots().collect::<Vec<_>>() {
        let unit_index = match (fu_type, slot) {
            (FunctionalUnitType::Vu, Slot::Vu(i)) => i,
            (FunctionalUnitType::Sa, Slot::Sa(i)) => i,
            _ => continue,
        };
        for interval in report.intervals(slot) {
            if !policy.should_gate(interval) {
                skipped_cycles += interval.len();
                continue;
            }
            gated_cycles += interval.len().saturating_sub(2 * policy.on_off_delay_cycles);
            planned.push(PlannedSetPm {
                bundle_index: interval.starting_bundle + 1,
                unit_index,
                mode: PowerMode::Off,
            });
            if let Some(end) = interval.ending_bundle {
                planned.push(PlannedSetPm {
                    bundle_index: end.saturating_sub(1).max(interval.starting_bundle + 1),
                    unit_index,
                    mode: PowerMode::On,
                });
            }
        }
    }

    // Apply in descending bundle order so insertions do not shift pending indices.
    planned.sort_by_key(|p| std::cmp::Reverse(p.bundle_index));
    let mut instrumented = program.clone();
    let mut inserted = 0usize;
    for plan in planned {
        let pm = SetPm::functional_units(
            FuBitmap::from_indices(&[plan.unit_index.min(31)]),
            fu_type,
            plan.mode,
        );
        let index = plan.bundle_index.min(instrumented.len().saturating_sub(1));
        let bundle_has_free_misc = instrumented
            .bundles()
            .get(index)
            .map(|b| b.slot(Slot::Misc).is_none())
            .unwrap_or(false);
        if bundle_has_free_misc {
            let bundle = &mut instrumented.bundles_mut()[index];
            *bundle = bundle.clone().with_misc(SlotOp::SetPm(pm));
        } else {
            instrumented.insert(index, VliwBundle::new().with_misc(SlotOp::SetPm(pm)));
        }
        inserted += 1;
    }

    InstrumentationResult {
        program: instrumented,
        setpm_inserted: inserted,
        gated_cycles,
        skipped_cycles,
    }
}

/// Plans the SRAM `setpm` instructions for a graph given the live-bytes
/// profile from the SRAM allocator: one `setpm(sram, off)` whenever the live
/// region shrinks and one `setpm(sram, on)` whenever it grows.
///
/// Returns the planned `(anchor_index, SetPm)` pairs; the number of entries
/// is the Figure 20 "SRAM setpm" count.
#[must_use]
pub fn plan_sram_setpm(live_bytes_per_anchor: &[u64], total_bytes: u64) -> Vec<(usize, SetPm)> {
    let mut plans = Vec::new();
    let mut current = total_bytes; // SRAM starts fully on.
    for (index, &live) in live_bytes_per_anchor.iter().enumerate() {
        if live < current {
            plans.push((index, SetPm::sram_range(live, current, PowerMode::Off)));
        } else if live > current {
            plans.push((index, SetPm::sram_range(current, live, PowerMode::On)));
        }
        current = live;
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_isa::{SlotOp, VliwBundle};

    fn vu_program_with_gaps(gap: u32, repeats: usize) -> Program {
        let mut p = Program::new("gappy");
        for _ in 0..repeats {
            p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
            p.push(
                VliwBundle::new()
                    .with_sa(0, SlotOp::sa_push(8))
                    .with_misc(SlotOp::Nop { cycles: gap }),
            );
        }
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1024)));
        p
    }

    #[test]
    fn policy_gates_long_intervals_only() {
        let policy = SetPmPolicy::new(32, 2);
        let long = IdleInterval {
            start_cycle: 0,
            end_cycle: 100,
            unbounded: false,
            ending_bundle: Some(1),
            starting_bundle: 0,
        };
        let short = IdleInterval { end_cycle: 10, ..long };
        let boundary = IdleInterval { end_cycle: 32, ..long };
        assert!(policy.should_gate(&long));
        assert!(!policy.should_gate(&short));
        assert!(!policy.should_gate(&boundary), "interval must exceed the BET strictly");
        let unbounded = IdleInterval { unbounded: true, end_cycle: 5, ..long };
        assert!(policy.should_gate(&unbounded));
    }

    #[test]
    fn instrumentation_inserts_matching_off_on_pairs() {
        let program = vu_program_with_gaps(100, 3);
        let result = instrument_vu(&program, SetPmPolicy::new(32, 2));
        assert!(
            result.setpm_inserted >= 6,
            "3 gaps -> 3 off/on pairs, got {}",
            result.setpm_inserted
        );
        assert!(result.gated_cycles > 200);
        let offs = result
            .program
            .bundles()
            .iter()
            .filter_map(|b| b.setpm())
            .filter(|pm| pm.mode() == PowerMode::Off)
            .count();
        let ons = result
            .program
            .bundles()
            .iter()
            .filter_map(|b| b.setpm())
            .filter(|pm| pm.mode() == PowerMode::On)
            .count();
        assert!(offs >= 3);
        assert!(ons >= 3);
        assert!(result.setpm_per_kilocycle() > 0.0);
    }

    #[test]
    fn short_gaps_are_not_instrumented() {
        let program = vu_program_with_gaps(8, 3);
        let result = instrument_vu(&program, SetPmPolicy::new(32, 2));
        assert_eq!(result.setpm_inserted, 0);
        assert_eq!(result.gated_cycles, 0);
        assert!(result.skipped_cycles > 0);
        assert_eq!(result.program.issue_cycles(), program.issue_cycles());
    }

    #[test]
    fn figure20_bound_holds() {
        // The paper: with a 32-cycle BET, at most 1000/32 ≈ 31 setpms per
        // 1000 cycles can ever be inserted for the VU.
        let program = vu_program_with_gaps(33, 50);
        let result = instrument_vu(&program, SetPmPolicy::new(32, 2));
        assert!(
            result.setpm_per_kilocycle() <= 2.0 * 1000.0 / 32.0,
            "setpm rate {} exceeds the structural bound",
            result.setpm_per_kilocycle()
        );
    }

    #[test]
    fn sram_plan_follows_live_profile() {
        let total = 128 * 1024 * 1024;
        let live = [total, 64 << 20, 64 << 20, 8 << 20, 96 << 20];
        let plans = plan_sram_setpm(&live, total);
        // Changes at indices 1 (shrink), 3 (shrink), 4 (grow).
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].0, 1);
        assert_eq!(plans[0].1.mode(), PowerMode::Off);
        assert_eq!(plans[2].1.mode(), PowerMode::On);
        assert_eq!(plans[2].1.sram_byte_range(), Some((8 << 20, 96 << 20)));
    }

    #[test]
    fn constant_live_profile_needs_no_sram_setpm() {
        let live = [32u64 << 20; 8];
        let plans = plan_sram_setpm(&live, 128 << 20);
        assert_eq!(plans.len(), 1, "only the initial shrink from the fully-on state");
    }
}
