//! Tile-size selection and SRAM-demand analysis.
//!
//! The paper quantifies the SRAM demand of an operator as "the minimum tile
//! size that maximizes the on-chip data reuse"; for streaming operators
//! whose reuse is not affected by tile size it uses "the minimum tile size
//! that hides the HBM latency" (§3, Figure 7). The tiling pass also
//! determines the actual HBM traffic once the demand exceeds the physical
//! SRAM and operands must be re-streamed.

use serde::{Deserialize, Serialize};

use npu_arch::NpuSpec;
use npu_models::{OpKind, Operator};

/// Result of tiling one operator on a specific NPU generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileChoice {
    /// SRAM bytes the operator would need to maximize on-chip reuse
    /// (unbounded by the physical SRAM size — this is the Figure 7 metric).
    pub sram_demand_bytes: u64,
    /// SRAM bytes actually allocated (capped by the physical capacity and
    /// leaving headroom for double buffering).
    pub sram_used_bytes: u64,
    /// HBM traffic in bytes after tiling (≥ the operator's minimum traffic;
    /// grows when operands must be re-streamed because the demand exceeds
    /// the SRAM).
    pub hbm_bytes: u64,
    /// Number of tiles the operator is split into.
    pub num_tiles: u64,
    /// Whether the operator streams its operands (no reuse benefit from a
    /// larger tile).
    pub streaming: bool,
}

impl TileChoice {
    /// Tiles an operator for the given NPU.
    #[must_use]
    pub fn for_operator(op: &Operator, spec: &NpuSpec) -> Self {
        let dt = op.dtype.size_bytes();
        let sram = spec.sram_bytes();
        // Reserve half of the SRAM for the other operators in flight
        // (double buffering across DMA and compute).
        let budget = sram / 2;
        let sa_w = spec.sa_width as u64;

        match op.kind {
            OpKind::MatMul { batch, m, k, n, .. } => {
                let weights = k * n * dt;
                let in_stripe = 2 * sa_w.min(m.max(1)) * k * dt; // double-buffered input stripe
                let out_stripe = 2 * sa_w.min(m.max(1)) * n * dt;
                let memory_bound = op.arithmetic_intensity() < spec.ridge_point();
                if memory_bound {
                    // Streaming: a bigger tile does not increase reuse.
                    let demand = (in_stripe + out_stripe + 2 * sa_w * sa_w * dt).max(64 * 1024);
                    let used = demand.min(budget);
                    TileChoice {
                        sram_demand_bytes: demand,
                        sram_used_bytes: used,
                        hbm_bytes: op.hbm_bytes(),
                        num_tiles: batch.max(1) * m.div_ceil(sa_w).max(1) * n.div_ceil(sa_w).max(1),
                        streaming: true,
                    }
                } else {
                    // Compute-bound: keep the full weight panel resident to
                    // maximize reuse; demand may exceed the physical SRAM.
                    let demand = weights + in_stripe + out_stripe;
                    let used = demand.min(budget);
                    // If the weight panel does not fit, split the N dimension
                    // into panels and re-read the input activations once per
                    // extra panel.
                    let avail_for_weights =
                        budget.saturating_sub(in_stripe + out_stripe).max(sa_w * k * dt);
                    let n_panels = (weights.div_ceil(avail_for_weights)).max(1);
                    let extra_reads = (n_panels - 1) * batch.max(1) * m * k * dt;
                    TileChoice {
                        sram_demand_bytes: demand,
                        sram_used_bytes: used,
                        hbm_bytes: op.hbm_bytes() + extra_reads,
                        num_tiles: batch.max(1) * m.div_ceil(sa_w).max(1) * n.div_ceil(sa_w).max(1),
                        streaming: false,
                    }
                }
            }
            OpKind::Conv2d { batch, h_out, w_out, c_in, c_out, kh, kw } => {
                let m = batch * h_out * w_out;
                let k = c_in * kh * kw;
                let n = c_out;
                let weights = k * n * dt;
                let in_stripe = 2 * sa_w.min(m.max(1)) * k * dt;
                let out_stripe = 2 * sa_w.min(m.max(1)) * n * dt;
                let demand = weights + in_stripe + out_stripe;
                TileChoice {
                    sram_demand_bytes: demand,
                    sram_used_bytes: demand.min(budget),
                    hbm_bytes: op.hbm_bytes(),
                    num_tiles: m.div_ceil(sa_w).max(1) * n.div_ceil(sa_w).max(1),
                    streaming: false,
                }
            }
            OpKind::Elementwise { elements, .. } => Self::streaming_choice(op, spec, elements, dt),
            OpKind::Softmax { rows, cols } | OpKind::LayerNorm { rows, cols } => {
                // Row-wise operators need at least a full row resident.
                let row_bytes = cols * dt;
                let demand = (4 * row_bytes).max(Self::latency_hiding_bytes(spec)).max(64 * 1024);
                TileChoice {
                    sram_demand_bytes: demand,
                    sram_used_bytes: demand.min(budget),
                    hbm_bytes: op.hbm_bytes(),
                    num_tiles: rows.max(1),
                    streaming: true,
                }
            }
            OpKind::EmbeddingLookup { lookups, dim, .. } => {
                let demand = (2 * lookups.min(4096) * dim * dt).max(64 * 1024);
                TileChoice {
                    sram_demand_bytes: demand,
                    sram_used_bytes: demand.min(budget),
                    hbm_bytes: op.hbm_bytes(),
                    num_tiles: lookups.div_ceil(4096).max(1),
                    streaming: true,
                }
            }
            OpKind::Collective { bytes_per_chip, .. } => {
                // Collectives stage chunks of the payload in SRAM.
                let demand = bytes_per_chip.clamp(64 * 1024, 16 * 1024 * 1024);
                TileChoice {
                    sram_demand_bytes: demand,
                    sram_used_bytes: demand.min(budget),
                    hbm_bytes: 0,
                    num_tiles: bytes_per_chip.div_ceil(16 * 1024 * 1024).max(1),
                    streaming: true,
                }
            }
        }
    }

    /// Streaming tile choice for elementwise operators: the minimum
    /// double-buffered tile that hides the HBM access latency.
    fn streaming_choice(op: &Operator, spec: &NpuSpec, elements: u64, dt: u64) -> TileChoice {
        let budget = spec.sram_bytes() / 2;
        let demand = Self::latency_hiding_bytes(spec).max(64 * 1024);
        let tile_elems = (demand / 2 / dt).max(1);
        TileChoice {
            sram_demand_bytes: demand,
            sram_used_bytes: demand.min(budget),
            hbm_bytes: op.hbm_bytes(),
            num_tiles: elements.div_ceil(tile_elems).max(1),
            streaming: true,
        }
    }

    /// Bytes of buffering needed to hide one HBM access latency at full
    /// HBM bandwidth (double buffered).
    fn latency_hiding_bytes(spec: &NpuSpec) -> u64 {
        let latency_cycles =
            spec.seconds_to_cycles(spec.hbm_kind.access_latency_ns() * 1e-9) as f64;
        (2.0 * latency_cycles * spec.hbm_bytes_per_cycle()) as u64
    }

    /// SRAM demand in MiB (the unit used by Figure 7).
    #[must_use]
    pub fn sram_demand_mib(&self) -> f64 {
        self.sram_demand_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::NpuGeneration;
    use npu_models::{DataType, OpKind};

    fn spec() -> NpuSpec {
        NpuSpec::generation(NpuGeneration::D)
    }

    fn matmul(m: u64, k: u64, n: u64, resident: bool) -> Operator {
        Operator::new(
            "mm",
            OpKind::MatMul { batch: 1, m, k, n, weights_resident: resident },
            DataType::Bf16,
        )
    }

    #[test]
    fn large_training_matmul_demands_more_than_sram() {
        // Llama3.1-405B FFN down-projection: 53248 x 16384 weights ≈ 1.7 GB.
        let op = matmul(128 * 1024, 53248, 16384, true);
        let tc = TileChoice::for_operator(&op, &spec());
        assert!(tc.sram_demand_mib() > 1000.0, "demand {} MiB", tc.sram_demand_mib());
        assert!(tc.sram_used_bytes <= spec().sram_bytes() / 2);
        // Re-streaming inflates HBM traffic beyond the minimum.
        assert!(tc.hbm_bytes > op.hbm_bytes());
        assert!(!tc.streaming);
    }

    #[test]
    fn decode_matmul_is_streaming_with_small_demand() {
        // Decode GEMV: 1 x hidden x ffn with batch 1 -> memory bound.
        let op = matmul(1, 16384, 53248, true);
        let tc = TileChoice::for_operator(&op, &spec());
        assert!(tc.streaming);
        assert!(tc.sram_demand_mib() < 16.0, "demand {} MiB", tc.sram_demand_mib());
        assert_eq!(tc.hbm_bytes, op.hbm_bytes());
    }

    #[test]
    fn elementwise_demand_hides_hbm_latency_only() {
        let op = Operator::new(
            "add",
            OpKind::Elementwise { elements: 1 << 26, flops_per_element: 1, num_inputs: 2 },
            DataType::Bf16,
        );
        let tc = TileChoice::for_operator(&op, &spec());
        assert!(tc.streaming);
        assert!(tc.sram_demand_mib() < 8.0);
        assert!(tc.num_tiles > 1);
    }

    #[test]
    fn dlrm_operators_demand_under_8_mib() {
        // The paper observes DLRM SRAM demand never exceeds 8 MB (Fig. 7).
        let emb = Operator::new(
            "emb",
            OpKind::EmbeddingLookup { lookups: 4096 * 26 * 20, dim: 128, table_bytes: 20 << 30 },
            DataType::Bf16,
        );
        let tc = TileChoice::for_operator(&emb, &spec());
        assert!(tc.sram_demand_mib() <= 8.0, "demand {} MiB", tc.sram_demand_mib());
        let mlp = matmul(512, 480, 1024, true);
        let tc2 = TileChoice::for_operator(&mlp, &spec());
        assert!(tc2.sram_demand_mib() <= 8.0, "MLP demand {} MiB", tc2.sram_demand_mib());
    }

    #[test]
    fn softmax_demand_scales_with_row_width() {
        let narrow = Operator::new("sm", OpKind::Softmax { rows: 1024, cols: 512 }, DataType::Bf16);
        let wide = Operator::new("sm", OpKind::Softmax { rows: 1024, cols: 65536 }, DataType::Bf16);
        let a = TileChoice::for_operator(&narrow, &spec()).sram_demand_bytes;
        let b = TileChoice::for_operator(&wide, &spec()).sram_demand_bytes;
        assert!(b >= a);
    }

    #[test]
    fn collective_stages_bounded_buffer() {
        let op = Operator::new(
            "ar",
            OpKind::Collective {
                kind: npu_models::CollectiveKind::AllReduce,
                bytes_per_chip: 1 << 30,
            },
            DataType::Bf16,
        );
        let tc = TileChoice::for_operator(&op, &spec());
        assert_eq!(tc.hbm_bytes, 0);
        assert!(tc.sram_demand_bytes <= 16 * 1024 * 1024);
        assert!(tc.num_tiles >= 64);
    }

    #[test]
    fn num_tiles_positive_for_every_kind() {
        let spec = spec();
        let ops = [
            matmul(4096, 4096, 4096, true),
            matmul(1, 128, 128, false),
            Operator::new("ln", OpKind::LayerNorm { rows: 8, cols: 1024 }, DataType::Bf16),
            Operator::new(
                "ew",
                OpKind::Elementwise { elements: 1, flops_per_element: 1, num_inputs: 1 },
                DataType::Bf16,
            ),
        ];
        for op in ops {
            let tc = TileChoice::for_operator(&op, &spec);
            assert!(tc.num_tiles >= 1);
            assert!(tc.sram_used_bytes > 0);
        }
    }
}

/// Deterministic property check over seeded pseudo-random matmul shapes
/// (no `proptest` in the offline build; same invariants, fixed seed).
#[cfg(test)]
mod proptests {
    use super::*;
    use npu_arch::NpuGeneration;
    use npu_models::DataType;

    /// xorshift64* with a fixed seed: deterministic across runs/platforms.
    /// (Same idiom as the test PRNG in `regate::pe_gating`; the crates are
    /// upstream/downstream of each other, so test helpers are not shared.)
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[lo, hi)`.
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next() % (hi - lo)
        }
    }

    #[test]
    fn tiled_traffic_never_below_minimum() {
        let mut rng = XorShift(0x5EED_7111);
        let spec = NpuSpec::generation(NpuGeneration::D);
        for _ in 0..256 {
            let m = rng.range(1, 8192);
            let k = rng.range(1, 8192);
            let n = rng.range(1, 8192);
            let op = Operator::new(
                "mm",
                npu_models::OpKind::MatMul { batch: 1, m, k, n, weights_resident: true },
                DataType::Bf16,
            );
            let tc = TileChoice::for_operator(&op, &spec);
            assert!(tc.hbm_bytes >= op.hbm_bytes(), "m={m} k={k} n={n}");
            assert!(tc.sram_used_bytes <= spec.sram_bytes() / 2, "m={m} k={k} n={n}");
            assert!(tc.sram_used_bytes <= tc.sram_demand_bytes.max(64 * 1024), "m={m} k={k} n={n}");
            assert!(tc.num_tiles >= 1, "m={m} k={k} n={n}");
        }
    }
}
