//! Per-hop lowering of ring collectives onto an explicit link graph.
//!
//! The analytic model in [`npu_arch::PodTopology`] prices a collective as
//! one closed-form number — bandwidth-optimal ring cost plus hop latency.
//! That is the right model for chip selection, but it cannot express
//! *which links* carry the traffic, so link-level gating and contention
//! between concurrent collectives are invisible to it. This pass keeps the
//! analytic total as the oracle and splits it into the per-hop structure a
//! modeled fabric can execute: `2(n-1)` steps for a ring all-reduce,
//! `n-1` for reduce-scatter / all-gather, and one bulk step for
//! all-to-all and point-to-point, each step driving every ring link
//! concurrently. On an uncongested ring the lowered schedule costs
//! exactly the analytic total (the remainder of the integer split is
//! spread over the earliest steps); under contention the links serialize
//! and the cost honestly exceeds the oracle.

use serde::{Deserialize, Serialize};

use npu_arch::LinkGraph;
use npu_models::CollectiveKind;

/// A collective lowered onto the links of a [`LinkGraph`]: the link ids it
/// occupies and the integer cycle cost of each of its steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectivePlan {
    /// What collective this is.
    pub kind: CollectiveKind,
    /// Fabric link ids (ascending, deduplicated) the collective occupies
    /// for its whole duration — the union of the ring's routed hops.
    pub links: Vec<usize>,
    /// Per-step durations in cycles; the sum equals the analytic total
    /// the plan was lowered from.
    pub step_cycles: Vec<u64>,
}

impl CollectivePlan {
    /// Number of logical steps a ring collective of this kind takes on
    /// `num_chips` chips (at least 1, so a degenerate split never loses
    /// cycles).
    #[must_use]
    pub fn num_steps(kind: CollectiveKind, num_chips: usize) -> usize {
        let n = num_chips.max(1);
        match kind {
            CollectiveKind::AllReduce => 2 * (n - 1),
            CollectiveKind::ReduceScatter | CollectiveKind::AllGather => n - 1,
            CollectiveKind::AllToAll | CollectiveKind::PointToPoint => 1,
        }
        .max(1)
    }

    /// Lowers a collective of `total_cycles` (the analytic model's cost)
    /// onto the fabric's deterministic collective ring. The integer split
    /// spreads the division remainder over the earliest steps, so
    /// `plan.total_cycles() == total_cycles` exactly and every step is
    /// within one cycle of `total_cycles / steps`.
    #[must_use]
    pub fn lower(kind: CollectiveKind, total_cycles: u64, graph: &LinkGraph) -> CollectivePlan {
        let steps = Self::num_steps(kind, graph.num_chips());
        let mut links: Vec<usize> = graph.collective_ring().into_iter().flatten().collect();
        links.sort_unstable();
        links.dedup();
        let base = total_cycles / steps as u64;
        let remainder = total_cycles % steps as u64;
        let step_cycles = (0..steps as u64).map(|i| base + u64::from(i < remainder)).collect();
        CollectivePlan { kind, links, step_cycles }
    }

    /// Total transfer cycles (sum over steps) — equal to the analytic
    /// total the plan was lowered from.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.step_cycles.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{PodTopology, TorusKind};

    #[test]
    fn step_counts_follow_the_ring_algorithms() {
        assert_eq!(CollectivePlan::num_steps(CollectiveKind::AllReduce, 8), 14);
        assert_eq!(CollectivePlan::num_steps(CollectiveKind::ReduceScatter, 8), 7);
        assert_eq!(CollectivePlan::num_steps(CollectiveKind::AllGather, 8), 7);
        assert_eq!(CollectivePlan::num_steps(CollectiveKind::AllToAll, 8), 1);
        assert_eq!(CollectivePlan::num_steps(CollectiveKind::PointToPoint, 8), 1);
        // Degenerate pods still take one step.
        assert_eq!(CollectivePlan::num_steps(CollectiveKind::AllReduce, 1), 1);
    }

    #[test]
    fn lowering_conserves_the_analytic_total_exactly() {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 8));
        for total in [0u64, 1, 13, 14, 15, 1_000_003] {
            let plan = CollectivePlan::lower(CollectiveKind::AllReduce, total, &graph);
            assert_eq!(plan.total_cycles(), total);
            assert_eq!(plan.step_cycles.len(), 14);
            let base = total / 14;
            assert!(plan.step_cycles.iter().all(|&s| s == base || s == base + 1));
        }
    }

    #[test]
    fn ring_links_are_sorted_and_deduplicated() {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 16));
        let plan = CollectivePlan::lower(CollectiveKind::AllGather, 10_000, &graph);
        assert!(!plan.links.is_empty());
        assert!(plan.links.windows(2).all(|w| w[0] < w[1]), "{:?}", plan.links);
        assert!(plan.links.iter().all(|&l| l < graph.num_links()));
    }
}
