//! Shared bench measurement and `BENCH_*.json` envelope writing.
//!
//! Every perf harness in `benches/` used to carry its own copy of the
//! warm-up/measure loop and its own hand-assembled JSON envelope; this
//! module is the single implementation. Envelopes carry a
//! `schema_version` field so downstream tooling (the CI JSON check, perf
//! dashboards) can detect layout changes instead of mis-parsing them.

use std::time::{Duration, Instant};

/// Version stamped into every `BENCH_*.json` envelope this module writes.
/// Bump when the envelope layout (not a row's metric set) changes shape.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Wall-time summary of one measured routine.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Mean wall time per call, in seconds.
    pub mean_s: f64,
    /// Fastest observed call, in seconds.
    pub min_s: f64,
}

/// One warm-up call, then `samples` timed calls; reports mean and min.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn measure(samples: usize, mut routine: impl FnMut()) -> Measured {
    assert!(samples >= 1, "measuring zero samples reports nothing");
    routine();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        routine();
        times.push(start.elapsed());
    }
    let total: Duration = times.iter().sum();
    Measured {
        mean_s: total.as_secs_f64() / samples as f64,
        min_s: times.iter().min().expect("samples >= 1").as_secs_f64(),
    }
}

/// A `BENCH_*.json` envelope: versioned header fields plus one array of
/// pre-rendered row objects.
#[derive(Debug)]
pub struct BenchReport {
    bench: String,
    command: String,
    header: Vec<(String, String)>,
    rows_key: String,
    rows: Vec<String>,
}

impl BenchReport {
    /// Starts an envelope for one bench: its name, the command that
    /// regenerates it, and the key its row array is stored under
    /// (`"workloads"`, `"runs"`, …).
    #[must_use]
    pub fn new(bench: &str, command: &str, rows_key: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            command: command.to_string(),
            header: Vec::new(),
            rows_key: rows_key.to_string(),
            rows: Vec::new(),
        }
    }

    /// Adds a string-valued header field (JSON-escaped).
    pub fn header_str(&mut self, key: &str, value: &str) {
        self.header.push((key.to_string(), json_string(value)));
    }

    /// Adds a header field with a raw JSON value (a number, bool, …).
    pub fn header_raw(&mut self, key: &str, raw_json: impl std::fmt::Display) {
        self.header.push((key.to_string(), raw_json.to_string()));
    }

    /// Appends one pre-rendered row object (indented four spaces, as the
    /// historical envelopes were).
    pub fn push_row(&mut self, row: String) {
        self.rows.push(row);
    }

    /// Renders the envelope: `schema_version`, `bench`, `command`, the
    /// header fields in insertion order, then the row array.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.bench)));
        out.push_str(&format!("  \"command\": {},\n", json_string(&self.command)));
        for (key, value) in &self.header {
            out.push_str(&format!("  {}: {value},\n", json_string(key)));
        }
        out.push_str(&format!("  {}: [\n", json_string(&self.rows_key)));
        out.push_str(&self.rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the rendered envelope to `<repo root>/<file_name>` and
    /// returns the path written.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_to_repo_root(&self, file_name: &str) -> String {
        let path = format!("{}/../../{file_name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        path
    }
}

/// Quotes and escapes a string for JSON output.
#[must_use]
pub fn json_string(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_renders_versioned_header_and_rows() {
        let mut report = BenchReport::new("demo", "cargo bench demo", "rows");
        report.header_raw("samples_per_measurement", 10);
        report.header_str("note", "a \"quoted\" note");
        report.push_row("    { \"name\": \"row0\" }".to_string());
        let json = report.render();
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n  \"bench\": \"demo\","));
        assert!(json.contains("\"samples_per_measurement\": 10,"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"rows\": [\n    { \"name\": \"row0\" }\n  ]\n}\n"));
    }

    #[test]
    fn measure_reports_mean_at_least_min() {
        let m = measure(3, || std::hint::black_box(()));
        assert!(m.mean_s >= m.min_s);
        assert!(m.min_s >= 0.0);
    }
}
