//! Regenerates the characterization study of §3 (Figures 2–9): energy
//! efficiency, static/dynamic breakdown, and per-component utilization of
//! the benchmark workloads across NPU generations.
//!
//! Run with `cargo run --release -p regate-bench --bin characterization`.
//! Pass `--full` to sweep all four deployed generations and all workloads
//! (slower); the default sweeps NPU-C/D and a representative subset.

use npu_arch::NpuGeneration;
use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase, Workload};
use regate::experiments::characterize;
use regate_bench::{pct, section};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let generations: Vec<NpuGeneration> = if full {
        NpuGeneration::DEPLOYED.to_vec()
    } else {
        vec![NpuGeneration::C, NpuGeneration::D]
    };
    let workloads: Vec<(Workload, usize)> = if full {
        let mut v: Vec<(Workload, usize)> =
            Workload::benchmark_suite().into_iter().map(|w| (w, 8)).collect();
        for (w, _) in &mut v {
            if let Workload::Diffusion(cfg) = w {
                cfg.steps = 10;
            }
        }
        v
    } else {
        let mut dit = Workload::diffusion(DiffusionModel::DitXl);
        if let Workload::Diffusion(ref mut cfg) = dit {
            cfg.steps = 5;
        }
        vec![
            (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training), 4),
            (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8),
            (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode), 8),
            (Workload::dlrm(DlrmSize::Medium), 8),
            (Workload::dlrm(DlrmSize::Large), 8),
            (dit, 8),
        ]
    };

    section("Figure 2/3: energy efficiency and static energy share");
    println!("{:<28} {:<7} {:>14} {:>10} {:>9}", "workload", "NPU", "J per unit", "unit", "static");
    let mut rows = Vec::new();
    for (workload, chips) in &workloads {
        for &generation in &generations {
            let row = characterize(workload, generation, *chips);
            println!(
                "{:<28} {:<7} {:>14.4} {:>10} {:>9}",
                row.workload,
                generation.to_string(),
                row.energy_per_work_j,
                row.work_unit,
                pct(row.static_fraction)
            );
            rows.push(row);
        }
    }

    section("Figure 3: per-component energy breakdown (NPU-D, static/dynamic)");
    for row in rows.iter().filter(|r| r.generation == NpuGeneration::D) {
        println!("{}:", row.workload);
        for (component, static_share, dynamic_share) in &row.component_energy_shares {
            if static_share + dynamic_share > 0.001 {
                println!(
                    "  {:<6} static {:>6}  dynamic {:>6}",
                    component,
                    pct(*static_share),
                    pct(*dynamic_share)
                );
            }
        }
    }

    section("Figures 4-6, 8, 9: component temporal/spatial utilization (NPU-D)");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "SA temp", "SA spat", "VU temp", "ICI", "HBM"
    );
    for row in rows.iter().filter(|r| r.generation == NpuGeneration::D) {
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
            row.workload,
            pct(row.sa_temporal_util),
            pct(row.sa_spatial_util),
            pct(row.vu_temporal_util),
            pct(row.ici_temporal_util),
            pct(row.hbm_temporal_util)
        );
    }

    section("Figure 7: SRAM demand percentiles (NPU-D, MiB, time-weighted)");
    println!("{:<28} {:>8} {:>8} {:>8}", "workload", "p50", "p90", "p99");
    for row in rows.iter().filter(|r| r.generation == NpuGeneration::D) {
        let (p50, p90, p99) = row.sram_demand_p50_p90_p99_mib;
        println!("{:<28} {:>8.1} {:>8.1} {:>8.1}", row.workload, p50, p90, p99);
    }
}
