//! Load sweep over the arrival-driven serving simulator: offered load ×
//! batching policy × ReGate design, reporting per-request latency
//! (p50/p99, queueing vs. service), energy per request, savings, and the
//! *measured* duty cycle against the paper's fleet-average assumption.
//!
//! Run with `cargo run --release -p regate_bench --bin serving_sweep`.
//! Every serving outcome is verified by the static schedule analyzer —
//! DAG rules, trace sanity, and makespan-window containment — before its
//! numbers are reported; a Deny diagnostic aborts the sweep (opt out with
//! `--no-verify`). Pass `--quick` for the minimal CI smoke subset, and
//! `--floor <cycles-per-second>` to fail (exit 1) if the sweep's serving
//! throughput — simulated cycles scheduled per wall-second, summed over
//! every `ServingSimulator::run` call — drops below the floor. CI pins a
//! conservative floor so a hot-path regression fails the build instead of
//! silently slowing every future sweep. Pass `--json <path>` to also
//! emit the policy × workload × load matrix as a machine-readable JSON
//! document (schema-versioned, one entry per deployment).

use std::time::{Duration, Instant};

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_serving::{ArrivalProcess, BatchPolicy, ServingOutcome, ServingReport, ServingSimulator};
use regate::{Design, Evaluator, PolicyKind};
use regate_bench::report::{json_string, BENCH_SCHEMA_VERSION};
use regate_bench::{pct, section};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verify = !args.iter().any(|a| a == "--no-verify");
    let floor: Option<f64> = args
        .iter()
        .position(|a| a == "--floor")
        .map(|i| args[i + 1..].first().expect("--floor takes a value"))
        .map(|v| v.parse().expect("--floor takes cycles-per-wall-second"));
    let json_path: Option<String> = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args[i + 1..].first().expect("--json takes a path").clone());
    let requests = if quick { 8 } else { 24 };
    // Rendered per-deployment objects for the `--json` matrix export.
    let mut json_deployments: Vec<String> = Vec::new();
    // Serving throughput accounting: simulated cycles scheduled per
    // wall-second, over every timed serving run of the sweep.
    let mut simulated_cycles = 0u64;
    let mut serving_wall = Duration::ZERO;
    // Static analysis accounting (verification runs outside the serving
    // wall clock, so the throughput floor measures the event loop alone).
    let mut verified_outcomes = 0usize;
    let mut verified_policies = 0usize;
    let mut timed_run =
        |server: &ServingSimulator, arrivals: &[u64], policy: &BatchPolicy| -> ServingOutcome {
            let start = Instant::now();
            let outcome = server.run(arrivals, policy);
            serving_wall += start.elapsed();
            simulated_cycles += outcome.makespan_cycles();
            if verify {
                let report = server.verify(&outcome);
                assert!(
                    report.is_schedulable(),
                    "static analysis denied a serving outcome ({} arrivals, {}):\n{}",
                    arrivals.len(),
                    policy.label(),
                    report.render()
                );
                let window = report.makespan_window.expect("verified outcomes carry a window");
                assert!(
                    window.contains(outcome.makespan_cycles()),
                    "measured makespan {} escaped the static window [{}, {}]",
                    outcome.makespan_cycles(),
                    window.lower_cycles,
                    window.upper_cycles
                );
                verified_outcomes += 1;
            }
            outcome
        };
    let designs = [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull];

    let deployments: Vec<(Workload, usize, &str)> = if quick {
        vec![(Workload::dlrm(DlrmSize::Small).with_batch(32), 1, "DLRM-S x32/req")]
    } else {
        vec![
            (Workload::dlrm(DlrmSize::Small).with_batch(32), 1, "DLRM-S x32/req"),
            (
                Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2),
                1,
                "Llama3-8B decode x2/req",
            ),
        ]
    };

    for (workload, chips, label) in deployments {
        let server = ServingSimulator::new(NpuGeneration::D, chips, workload);
        let evaluator = Evaluator::new(NpuGeneration::D);

        // Offered loads from saturation down to sparse traffic, plus a
        // bursty shape; two batching policies.
        let processes: Vec<ArrivalProcess> = vec![
            ArrivalProcess::saturating(),
            ArrivalProcess::Poisson { mean_interval_cycles: 100_000.0, seed: 11 },
            ArrivalProcess::Poisson { mean_interval_cycles: 1_000_000.0, seed: 11 },
            ArrivalProcess::BurstyOnOff {
                burst_len: 4,
                intra_burst_cycles: 5_000,
                off_cycles: 2_000_000,
            },
        ];
        let policies = [
            BatchPolicy::Static { batch: 4 },
            BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 50_000 },
        ];

        section(&format!("Serving load sweep: {label} on {chips} NPU-D chip(s)"));
        println!(
            "{:<22} {:<14} {:>7} {:>12} {:>12} {:>7} {:>11}  savings Base / HW / Full",
            "arrivals", "policy", "batches", "p50 lat", "p99 lat", "duty", "J/request",
        );
        for process in &processes {
            let arrivals = process.arrivals(requests);
            for policy in &policies {
                let outcome = timed_run(&server, &arrivals, policy);
                let report = ServingReport::evaluate(&outcome, &evaluator);
                let savings: Vec<String> =
                    designs.iter().map(|&d| pct(report.design(d).savings)).collect();
                let per_request = report
                    .design(Design::ReGateFull)
                    .energy_per_request_j
                    .map_or_else(|| "n/a".to_string(), |j| format!("{j:.4}"));
                println!(
                    "{:<22} {:<14} {:>7} {:>12} {:>12} {:>7} {:>11}  {}",
                    process.label(),
                    policy.label(),
                    report.num_batches,
                    report.p50_latency_cycles,
                    report.p99_latency_cycles,
                    pct(report.measured_duty_cycle),
                    per_request,
                    savings.join(" / ")
                );
            }
        }

        // Reconciliation of the out-of-duty-cycle term: the serving trace
        // measures its duty cycle instead of assuming the fleet average.
        let low = timed_run(
            &server,
            &ArrivalProcess::Poisson { mean_interval_cycles: 1_000_000.0, seed: 11 }
                .arrivals(requests),
            &policies[0],
        );
        println!(
            "\nmeasured duty cycle at low load: {} (paper fleet average: {})",
            pct(low.measured_duty_cycle()),
            pct(npu_power::NPU_DUTY_CYCLE)
        );
        let report = ServingReport::evaluate(&low, &evaluator);
        println!(
            "queueing vs service split at low load: {:.0} / {:.0} cycles (mean)",
            report.mean_queueing_cycles, report.mean_service_cycles
        );

        // Policy × load matrix: every power-management policy priced on
        // the *identical* scheduled timeline of each load point (the
        // prepared-trace cache makes the re-runs replay-only). Presets
        // first, then the extended policies.
        let kinds: Vec<PolicyKind> =
            designs.iter().map(|&d| PolicyKind::Preset(d)).chain(PolicyKind::EXTENDED).collect();
        if verify {
            // Analyzer pass over every per-component policy of every
            // evaluated configuration: the sweep refuses to tabulate a
            // policy whose parameterization is inconsistent.
            for &kind in &kinds {
                let config = kind.config(evaluator.gating(), server.chip().spec());
                for policy in config.component_policies() {
                    let diagnostics = npu_sim::analysis::check_power_policy(policy);
                    assert!(
                        diagnostics.is_empty(),
                        "policy {} failed analyzer verification:\n{}",
                        kind.label(),
                        diagnostics
                            .iter()
                            .map(|d| format!("  [{}] {}", d.rule_id, d.message))
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                    verified_policies += 1;
                }
            }
        }
        section(&format!("Policy matrix: {label} on {chips} NPU-D chip(s)"));
        println!(
            "{:<16} {}",
            "policy",
            processes.iter().map(|p| format!("{:>22}", p.label())).collect::<Vec<_>>().join(" ")
        );
        let cells: Vec<regate::PolicySetEvaluation> = processes
            .iter()
            .map(|process| {
                let outcome = timed_run(&server, &process.arrivals(requests), &policies[0]);
                evaluator.evaluate_policies(
                    chips,
                    &outcome.compiled,
                    &outcome.simulation,
                    // The trace holds its own idleness (see ServingReport).
                    1.0,
                    &kinds,
                )
            })
            .collect();
        for &kind in &kinds {
            let row: Vec<String> = cells
                .iter()
                .map(|cell| {
                    let row = cell.row(kind);
                    format!(
                        "{:>12} {:>9}",
                        pct(row.savings),
                        format!("+{}", pct(row.performance_overhead))
                    )
                })
                .collect();
            println!("{:<16} {}", kind.label(), row.join(" "));
        }
        println!("(per load point: busy-energy savings vs NoPG, execution-time overhead)");

        if json_path.is_some() {
            let policy_rows: Vec<String> = kinds
                .iter()
                .map(|&kind| {
                    let cell_rows: Vec<String> = processes
                        .iter()
                        .zip(&cells)
                        .map(|(process, cell)| {
                            let row = cell.row(kind);
                            format!(
                                "{{ \"load\": {}, \"savings\": {:.6}, \
                                 \"performance_overhead\": {:.6} }}",
                                json_string(&process.label()),
                                row.savings,
                                row.performance_overhead
                            )
                        })
                        .collect();
                    format!(
                        "        {{ \"policy\": {}, \"cells\": [{}] }}",
                        json_string(&kind.label()),
                        cell_rows.join(", ")
                    )
                })
                .collect();
            json_deployments.push(format!(
                "    {{\n      \"label\": {},\n      \"chips\": {chips},\n      \"loads\": \
                 [{}],\n      \"policies\": [\n{}\n      ]\n    }}",
                json_string(label),
                processes.iter().map(|p| json_string(&p.label())).collect::<Vec<_>>().join(", "),
                policy_rows.join(",\n")
            ));
        }
    }

    if let Some(path) = &json_path {
        let json = format!(
            "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"tool\": \
             \"serving_sweep\",\n  \"requests_per_load_point\": {requests},\n  \"deployments\": \
             [\n{}\n  ]\n}}\n",
            json_deployments.join(",\n")
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote policy matrix JSON to {path}");
    }

    if verify {
        println!(
            "\nstatic analysis: {verified_outcomes} serving outcome(s) and {verified_policies} \
             component policy configuration(s) verified — zero Deny diagnostics, every makespan \
             inside its window (skip with --no-verify)"
        );
    }
    let throughput = simulated_cycles as f64 / serving_wall.as_secs_f64().max(1e-12);
    println!(
        "\nserving throughput: {simulated_cycles} simulated cycles in {:.3} s of serving wall \
         time = {throughput:.3e} simulated cycles per wall-second",
        serving_wall.as_secs_f64()
    );
    if let Some(floor) = floor {
        assert!(
            throughput >= floor,
            "serving throughput {throughput:.3e} simulated cycles/s fell below the floor \
             {floor:.3e} — the serving hot path regressed"
        );
        println!("throughput floor {floor:.3e} cycles/s: ok");
    }
}
