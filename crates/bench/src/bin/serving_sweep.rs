//! Load sweep over the arrival-driven serving simulator: offered load ×
//! batching policy × ReGate design, reporting per-request latency
//! (p50/p99, queueing vs. service), energy per request, savings, and the
//! *measured* duty cycle against the paper's fleet-average assumption.
//!
//! Run with `cargo run --release -p regate_bench --bin serving_sweep`.
//! Pass `--quick` for the minimal CI smoke subset.

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_serving::{ArrivalProcess, BatchPolicy, ServingReport, ServingSimulator};
use regate::{Design, Evaluator};
use regate_bench::{pct, section};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 8 } else { 24 };
    let designs = [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull];

    let deployments: Vec<(Workload, usize, &str)> = if quick {
        vec![(Workload::dlrm(DlrmSize::Small).with_batch(32), 1, "DLRM-S x32/req")]
    } else {
        vec![
            (Workload::dlrm(DlrmSize::Small).with_batch(32), 1, "DLRM-S x32/req"),
            (
                Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2),
                1,
                "Llama3-8B decode x2/req",
            ),
        ]
    };

    for (workload, chips, label) in deployments {
        let server = ServingSimulator::new(NpuGeneration::D, chips, workload);
        let evaluator = Evaluator::new(NpuGeneration::D);

        // Offered loads from saturation down to sparse traffic, plus a
        // bursty shape; two batching policies.
        let processes: Vec<ArrivalProcess> = vec![
            ArrivalProcess::saturating(),
            ArrivalProcess::Poisson { mean_interval_cycles: 100_000.0, seed: 11 },
            ArrivalProcess::Poisson { mean_interval_cycles: 1_000_000.0, seed: 11 },
            ArrivalProcess::BurstyOnOff {
                burst_len: 4,
                intra_burst_cycles: 5_000,
                off_cycles: 2_000_000,
            },
        ];
        let policies = [
            BatchPolicy::Static { batch: 4 },
            BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 50_000 },
        ];

        section(&format!("Serving load sweep: {label} on {chips} NPU-D chip(s)"));
        println!(
            "{:<22} {:<14} {:>7} {:>12} {:>12} {:>7} {:>11}  savings Base / HW / Full",
            "arrivals", "policy", "batches", "p50 lat", "p99 lat", "duty", "J/request",
        );
        for process in &processes {
            let arrivals = process.arrivals(requests);
            for policy in &policies {
                let outcome = server.run(&arrivals, policy);
                let report = ServingReport::evaluate(&outcome, &evaluator);
                let savings: Vec<String> =
                    designs.iter().map(|&d| pct(report.design(d).savings)).collect();
                println!(
                    "{:<22} {:<14} {:>7} {:>12} {:>12} {:>7} {:>11.4}  {}",
                    process.label(),
                    policy.label(),
                    report.num_batches,
                    report.p50_latency_cycles,
                    report.p99_latency_cycles,
                    pct(report.measured_duty_cycle),
                    report.design(Design::ReGateFull).energy_per_request_j,
                    savings.join(" / ")
                );
            }
        }

        // Reconciliation of the out-of-duty-cycle term: the serving trace
        // measures its duty cycle instead of assuming the fleet average.
        let low = server.run(
            &ArrivalProcess::Poisson { mean_interval_cycles: 1_000_000.0, seed: 11 }
                .arrivals(requests),
            &policies[0],
        );
        println!(
            "\nmeasured duty cycle at low load: {} (paper fleet average: {})",
            pct(low.measured_duty_cycle()),
            pct(npu_power::NPU_DUTY_CYCLE)
        );
        let report = ServingReport::evaluate(&low, &evaluator);
        println!(
            "queueing vs service split at low load: {:.0} / {:.0} cycles (mean)",
            report.mean_queueing_cycles, report.mean_service_cycles
        );
    }
}
