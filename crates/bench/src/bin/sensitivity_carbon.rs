//! Regenerates the sensitivity and carbon figures of §6.5–§6.6:
//! * Figure 21 — energy savings vs. gated-state leakage;
//! * Figure 22 — energy savings and overhead vs. wake-up delay scale;
//! * Figure 23 — savings across NPU generations A–E;
//! * Figure 24 — operational carbon reduction;
//! * Figure 25 — carbon vs. device lifespan.
//!
//! Run with `cargo run --release -p regate-bench --bin sensitivity_carbon`.

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use regate::experiments::{
    delay_sensitivity, generation_sweep, leakage_sensitivity, lifespan_sweep,
};
use regate::{Design, Evaluator};
use regate_bench::{pct, section};

fn main() {
    // Representative workloads (the paper uses Llama3.1-405B, DLRM, DiT; we
    // default to deployments with modest chip counts for runtime).
    let decode = Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode);
    let prefill = Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill);
    let dlrm = Workload::dlrm(DlrmSize::Large);

    section("Figure 21: sensitivity to gated-state leakage (ReGate-Full savings)");
    for (workload, chips) in [(&decode, 8usize), (&prefill, 1), (&dlrm, 8)] {
        println!("{}:", workload.label());
        for row in leakage_sensitivity(workload, NpuGeneration::D, chips) {
            println!(
                "  leakage {:<18} Base {:>7}  HW {:>7}  Full {:>7}",
                row.setting,
                pct(row.savings[0].1),
                pct(row.savings[1].1),
                pct(row.savings[2].1)
            );
        }
    }

    section("Figure 22: sensitivity to power-gate & wake-up delay");
    for (workload, chips) in [(&decode, 8usize), (&dlrm, 8)] {
        println!("{}:", workload.label());
        for row in delay_sensitivity(workload, NpuGeneration::D, chips) {
            println!(
                "  delay {:<6} savings Base {:>7} / Full {:>7}   overhead Base {:>7} / Full {:>7}",
                row.setting,
                pct(row.savings[0].1),
                pct(row.savings[2].1),
                pct(row.overhead[0].1),
                pct(row.overhead[2].1)
            );
        }
    }

    section("Figure 23: energy savings across NPU generations");
    for (workload, chips) in [(&decode, 8usize), (&dlrm, 8)] {
        println!("{}:", workload.label());
        for (generation, savings) in generation_sweep(workload, chips) {
            let parts: Vec<String> =
                savings.iter().map(|(d, s)| format!("{d} {}", pct(*s))).collect();
            println!("  {:<7} {}", generation.to_string(), parts.join("  "));
        }
    }

    section("Figure 24: operational carbon reduction (ReGate-Full)");
    for (workload, chips) in [(&decode, 8usize), (&prefill, 1), (&dlrm, 8)] {
        let eval = Evaluator::new(NpuGeneration::D).evaluate(workload, chips);
        println!(
            "{:<28} energy savings {:>7}   carbon reduction {:>7}",
            workload.label(),
            pct(eval.energy_savings(Design::ReGateFull)),
            pct(eval.operational_carbon_reduction(Design::ReGateFull))
        );
    }

    section("Figure 25: carbon vs device lifespan");
    for (workload, chips) in [(&decode, 8usize), (&dlrm, 8)] {
        let sweep = lifespan_sweep(workload, NpuGeneration::D, chips);
        println!(
            "{:<28} optimal lifespan: {} yr (NoPG) → {} yr (ReGate-Full)",
            workload.label(),
            sweep.nopg_optimal_years,
            sweep.regate_optimal_years
        );
        for (a, b) in sweep.nopg.iter().zip(sweep.regate.iter()) {
            println!(
                "  {:>2} yr  NoPG {:>12.6}  ReGate {:>12.6} kgCO2e/work",
                a.lifespan_years, a.carbon_kg_per_work, b.carbon_kg_per_work
            );
        }
    }
}
