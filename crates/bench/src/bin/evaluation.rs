//! Regenerates the evaluation figures of §6.2–§6.4:
//! * Figure 16 — simulator validation against the analytical roofline;
//! * Figure 17 — energy savings per design;
//! * Figure 18 — average/peak power per design;
//! * Figure 19 — performance overhead per design;
//! * Figure 20 — `setpm` instructions per 1,000 cycles.
//!
//! Run with `cargo run --release -p regate_bench --bin evaluation`.
//! Pass `--full` to use the exact Table 4 chip counts (slower), or
//! `--quick` for the minimal CI smoke subset. Every configuration is run
//! through the static schedule analyzer before simulation; a Deny
//! diagnostic aborts the run (opt out with `--no-verify`).

use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
use npu_compiler::Compiler;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_power::GatingParams;
use npu_sim::{analysis, Simulator, ValidationReport};
use regate::experiments::{parallel_evaluation_sweep, setpm_rate};
use regate_bench::{pct, section};

/// Runs the static deployment pass for one workload × chip-count
/// configuration and aborts on any Deny diagnostic: a graph the analyzer
/// rejects would produce numbers no figure should trust.
fn verify_deployment(workload: &Workload, num_chips: usize, label: &str) {
    let chip = ChipConfig::new(NpuGeneration::D, num_chips);
    let parallelism = workload
        .default_parallelism(chip.spec(), num_chips)
        .unwrap_or(ParallelismConfig::new(num_chips, 1, 1));
    let compiled = Compiler::new(chip.spec().clone()).compile(&workload.build_graph(&parallelism));
    let report =
        analysis::analyze_deployment(&compiled, chip.spec(), Some(&GatingParams::default()));
    assert!(
        report.is_schedulable(),
        "static analysis denied configuration '{label}':\n{}",
        report.render()
    );
}

/// How much of the figure set to regenerate.
#[derive(Clone, Copy, PartialEq)]
enum Scale {
    /// Minimal subset: the CI smoke run.
    Quick,
    /// Representative subset with modest chip counts (the default).
    Default,
    /// The exact Table 4 chip counts.
    Full,
}

fn eval_set(scale: Scale) -> Vec<npu_models::EvalConfig> {
    match scale {
        Scale::Full => npu_models::EvalConfig::all(),
        Scale::Default => vec![
            npu_models::EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Training),
            npu_models::EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            npu_models::EvalConfig::llm(LlamaModel::Llama2_13B, LlmPhase::Decode),
            npu_models::EvalConfig::llm(LlamaModel::Llama3_70B, LlmPhase::Training),
            npu_models::EvalConfig::dlrm(DlrmSize::Small),
            npu_models::EvalConfig::dlrm(DlrmSize::Large),
        ],
        Scale::Quick => vec![
            npu_models::EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            npu_models::EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            npu_models::EvalConfig::dlrm(DlrmSize::Small),
        ],
    }
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Default
    };
    let verify = !std::env::args().any(|a| a == "--no-verify");

    if verify {
        section("Static analysis: verifying every configuration before simulation");
        let configs = eval_set(scale);
        for config in &configs {
            verify_deployment(&config.workload, config.num_chips, &config.workload.label());
        }
        println!(
            "{} Table 4 configuration(s) verified: zero Deny diagnostics (skip with --no-verify)",
            configs.len()
        );
    }

    section("Figure 16: simulator validation vs. analytical roofline");
    let validation_set: Vec<(Workload, &str)> = if scale == Scale::Quick {
        vec![(Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), "Llama2-13B Decode")]
    } else {
        vec![
            (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), "Llama2-13B Prefill"),
            (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), "Llama2-13B Decode"),
            (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), "Llama3-70B Prefill"),
            (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode), "Llama3-70B Decode"),
        ]
    };
    for (workload, label) in validation_set {
        let chip = ChipConfig::new(NpuGeneration::D, 8);
        let parallelism =
            workload.default_parallelism(chip.spec(), 8).unwrap_or(ParallelismConfig::new(8, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        if verify {
            let report = analysis::analyze_deployment(
                &compiled,
                chip.spec(),
                Some(&GatingParams::default()),
            );
            assert!(
                report.is_schedulable(),
                "static analysis denied validation workload '{label}':\n{}",
                report.render()
            );
        }
        let result = Simulator::new(chip.clone()).run(&compiled);
        let report = ValidationReport::for_simulation(&result, chip.spec());
        let hidden = result.serial_cycles().saturating_sub(result.total_cycles());
        println!(
            "{:<22} R^2 = {:.4}  (n = {} operators, mean sim/ref ratio {:.3}, \
             DMA overlap hides {} of the serial time)",
            label,
            report.r_squared,
            report.points.len(),
            report.mean_ratio,
            pct(hidden as f64 / result.serial_cycles().max(1) as f64),
        );
        assert!(
            result.total_cycles() <= result.serial_cycles(),
            "{label}: overlapped makespan exceeds the serial sum"
        );
    }

    let configs = eval_set(scale);

    section("Figure 17: energy savings vs NoPG");
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "workload", "chips", "Base", "HW", "Full", "Ideal"
    );
    // One worker thread per workload; each evaluates every design point.
    let sweep = parallel_evaluation_sweep(&configs, &[NpuGeneration::D]);
    let rows: Vec<_> = sweep.into_iter().map(|mut per_gen| per_gen.remove(0)).collect();
    for row in &rows {
        println!(
            "{:<28} {:>6} {:>12} {:>12} {:>12} {:>12}",
            row.workload,
            row.num_chips,
            pct(row.energy_savings[0].1),
            pct(row.energy_savings[1].1),
            pct(row.energy_savings[2].1),
            pct(row.energy_savings[3].1),
        );
    }

    section("Figure 17 (stacking): ReGate-Full savings by component");
    for row in &rows {
        let parts: Vec<String> = row
            .full_savings_breakdown
            .iter()
            .filter(|(_, v)| v.abs() > 5e-4)
            .map(|(k, v)| format!("{k} {}", pct(*v)))
            .collect();
        println!("{:<28} {}", row.workload, parts.join("  "));
    }

    section("Figure 18: average / peak power per chip (W)");
    println!("{:<28} {:>16} {:>16}", "workload", "avg NoPG→Full", "peak NoPG→Full");
    for row in &rows {
        println!(
            "{:<28} {:>7.1} → {:<7.1} {:>7.1} → {:<7.1}",
            row.workload,
            row.average_power_w[0].1,
            row.average_power_w[3].1,
            row.peak_power_w[0].1,
            row.peak_power_w[3].1,
        );
    }

    section("Figure 19: performance overhead");
    println!("{:<28} {:>10} {:>10} {:>10}", "workload", "Base", "HW", "Full");
    for row in &rows {
        println!(
            "{:<28} {:>10} {:>10} {:>10}",
            row.workload,
            pct(row.performance_overhead[0].1),
            pct(row.performance_overhead[1].1),
            pct(row.performance_overhead[2].1),
        );
    }

    section("Figure 20: setpm instructions per 1,000 cycles (VU, ReGate-Full)");
    let setpm_set: Vec<(Workload, usize)> = if scale == Scale::Quick {
        vec![(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1)]
    } else {
        vec![
            (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training), 4),
            (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1),
            (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), 1),
            (Workload::dlrm(DlrmSize::Medium), 8),
        ]
    };
    for (workload, chips) in setpm_set {
        let rate = setpm_rate(&workload, NpuGeneration::D, chips, 32);
        println!("{:<28} {:>8.2} setpm / 1k cycles", workload.label(), rate);
    }
}
