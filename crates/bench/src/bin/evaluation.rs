//! Regenerates the evaluation figures of §6.2–§6.4:
//! * Figure 16 — simulator validation against the analytical roofline;
//! * Figure 17 — energy savings per design;
//! * Figure 18 — average/peak power per design;
//! * Figure 19 — performance overhead per design;
//! * Figure 20 — `setpm` instructions per 1,000 cycles.
//!
//! Run with `cargo run --release -p regate-bench --bin evaluation`.
//! Pass `--full` to use the exact Table 4 chip counts (slower).

use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
use npu_compiler::Compiler;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_sim::{Simulator, ValidationReport};
use regate::experiments::{evaluate_config, setpm_rate};
use regate_bench::{pct, section};

fn eval_set(full: bool) -> Vec<npu_models::EvalConfig> {
    if full {
        npu_models::EvalConfig::all()
    } else {
        // Representative subset with modest chip counts so the default run
        // finishes quickly.
        vec![
            npu_models::EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Training),
            npu_models::EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            npu_models::EvalConfig::llm(LlamaModel::Llama2_13B, LlmPhase::Decode),
            npu_models::EvalConfig::llm(LlamaModel::Llama3_70B, LlmPhase::Training),
            npu_models::EvalConfig::dlrm(DlrmSize::Small),
            npu_models::EvalConfig::dlrm(DlrmSize::Large),
        ]
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    section("Figure 16: simulator validation vs. analytical roofline");
    for (workload, label) in [
        (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), "Llama2-13B Prefill"),
        (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), "Llama2-13B Decode"),
        (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), "Llama3-70B Prefill"),
        (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode), "Llama3-70B Decode"),
    ] {
        let chip = ChipConfig::new(NpuGeneration::D, 8);
        let parallelism =
            workload.default_parallelism(chip.spec(), 8).unwrap_or(ParallelismConfig::new(8, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let result = Simulator::new(chip.clone()).run(&compiled);
        let report = ValidationReport::for_simulation(&result, chip.spec());
        println!(
            "{:<22} R^2 = {:.4}  (n = {} operators, mean sim/ref ratio {:.3})",
            label,
            report.r_squared,
            report.points.len(),
            report.mean_ratio
        );
    }

    let configs = eval_set(full);

    section("Figure 17: energy savings vs NoPG");
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "workload", "chips", "Base", "HW", "Full", "Ideal"
    );
    let mut rows = Vec::new();
    for config in &configs {
        let row = evaluate_config(config, NpuGeneration::D);
        println!(
            "{:<28} {:>6} {:>12} {:>12} {:>12} {:>12}",
            row.workload,
            row.num_chips,
            pct(row.energy_savings[0].1),
            pct(row.energy_savings[1].1),
            pct(row.energy_savings[2].1),
            pct(row.energy_savings[3].1),
        );
        rows.push(row);
    }

    section("Figure 17 (stacking): ReGate-Full savings by component");
    for row in &rows {
        let parts: Vec<String> = row
            .full_savings_breakdown
            .iter()
            .filter(|(_, v)| v.abs() > 5e-4)
            .map(|(k, v)| format!("{k} {}", pct(*v)))
            .collect();
        println!("{:<28} {}", row.workload, parts.join("  "));
    }

    section("Figure 18: average / peak power per chip (W)");
    println!("{:<28} {:>16} {:>16}", "workload", "avg NoPG→Full", "peak NoPG→Full");
    for row in &rows {
        println!(
            "{:<28} {:>7.1} → {:<7.1} {:>7.1} → {:<7.1}",
            row.workload,
            row.average_power_w[0].1,
            row.average_power_w[3].1,
            row.peak_power_w[0].1,
            row.peak_power_w[3].1,
        );
    }

    section("Figure 19: performance overhead");
    println!("{:<28} {:>10} {:>10} {:>10}", "workload", "Base", "HW", "Full");
    for row in &rows {
        println!(
            "{:<28} {:>10} {:>10} {:>10}",
            row.workload,
            pct(row.performance_overhead[0].1),
            pct(row.performance_overhead[1].1),
            pct(row.performance_overhead[2].1),
        );
    }

    section("Figure 20: setpm instructions per 1,000 cycles (VU, ReGate-Full)");
    for (workload, chips) in [
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training), 4usize),
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1),
        (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), 1),
        (Workload::dlrm(DlrmSize::Medium), 8),
    ] {
        let rate = setpm_rate(&workload, NpuGeneration::D, chips, 32);
        println!("{:<28} {:>8.2} setpm / 1k cycles", workload.label(), rate);
    }
}
