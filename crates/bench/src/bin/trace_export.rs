//! Observability export harness: runs a multi-chip pipeline trace and a
//! serving trace with a [`TraceRecorder`] attached, validates both
//! exports against the `obs.*` analyzer rules, folds the pod run's busy
//! timeline into a power-over-time waveform, cross-checks the waveform's
//! integral against [`EnergyBreakdown`] totals, and writes everything as
//! Chrome trace-event JSON (open in `chrome://tracing` or Perfetto).
//!
//! Run with `cargo run --release -p regate_bench --bin trace_export`.
//! Writes `TRACE_pod.json`, `POWER_pod.json`, and `TRACE_serving.json`
//! into the current directory (override with `--out-dir <dir>`). Exits
//! nonzero if any `obs.*` rule denies an export or the waveform integral
//! disagrees with the energy breakdown.

use std::collections::BTreeMap;

use npu_arch::{ComponentKind, LinkGraph, NpuGeneration, NpuSpec, PodTopology, TorusKind};
use npu_compiler::CollectivePlan;
use npu_models::{CollectiveKind, DlrmSize, Workload};
use npu_power::energy::ChipUsage;
use npu_power::{ComponentGating, EnergyBreakdown, GatingParams, PowerModel, PowerTimeline};
use npu_power::{SramGateMode, NPU_DUTY_CYCLE};
use npu_serving::{ArrivalProcess, BatchPolicy, ServingSimulator};
use npu_sim::pod::pipeline_trace;
use npu_sim::{EngineScratch, ResourceTimeline, TraceRecorder};
use regate_bench::{kv, section};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir: String = args
        .iter()
        .position(|a| a == "--out-dir")
        .map(|i| args[i + 1..].first().expect("--out-dir takes a path").clone())
        .unwrap_or_else(|| ".".to_string());

    pod_export(&out_dir);
    serving_export(&out_dir);
}

/// Requires zero `obs.*` diagnostics from one validated export.
fn assert_clean(what: &str, diagnostics: &[npu_sim::analysis::Diagnostic]) {
    assert!(
        diagnostics.is_empty(),
        "{what} failed obs.* validation:\n{}",
        diagnostics
            .iter()
            .map(|d| format!("  [{}] {}", d.rule_id, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!("obs.* validation: {what} clean");
}

/// Pipeline-parallel decode on a 4-chip torus with an imbalanced stage
/// split (chip 1 on the critical path, the rest in bubbles) plus a
/// trailing all-reduce, exported with per-unit tracks, link tracks, and
/// per-component power-state counter tracks.
fn pod_export(out_dir: &str) {
    section("Pod pipeline trace export");
    let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 4));
    let mut builder = pipeline_trace(&graph, &[9_000, 15_000, 11_000, 7_000], 6);
    let plan = CollectivePlan::lower(CollectiveKind::AllReduce, 14_000, &graph);
    let tail = builder.len() - 1;
    builder.push_collective(&plan, vec![tail]);

    let engine = builder.engine();
    let mut recorder = TraceRecorder::for_set(&engine.resources());
    let schedule =
        engine.run_with_scratch_observed(&[], &mut EngineScratch::default(), &mut recorder);
    kv("makespan (cycles)", schedule.makespan);
    kv("trace slices", recorder.num_slices());
    kv("engine events popped", schedule.counters.events_popped);
    kv("collective link hops", schedule.counters.collective_hops);

    assert_clean(
        "pod pipeline trace",
        &npu_sim::analysis::check_trace_export(
            &recorder,
            &schedule.resource_timeline,
            schedule.makespan,
        ),
    );

    // Fold the kind-level busy timeline into watts(t) under the default
    // gating parameters, then require the waveform's integral to agree
    // with the energy breakdown built from the identical interval walks.
    let spec = NpuSpec::generation(NpuGeneration::D);
    let model = PowerModel::new(&spec);
    let params = GatingParams::default();
    let spc = spec.cycle_seconds();
    let makespan = schedule.makespan;
    let busy_of = |kind: ComponentKind| -> Vec<(u64, u64)> {
        schedule.timeline.intervals(kind).iter().map(|iv| (iv.start, iv.end)).collect()
    };
    // Dynamic energy needs a usage profile; activate each term only when
    // the schedule actually exercised the component (the waveform layer
    // refuses dynamic joules it has no busy interval to spread over).
    let usage = ChipUsage {
        busy_seconds: makespan as f64 * spc,
        sa_flops: if busy_of(ComponentKind::Sa).is_empty() { 0.0 } else { 1e12 },
        vu_flops: if busy_of(ComponentKind::Vu).is_empty() { 0.0 } else { 2e11 },
        hbm_bytes: if busy_of(ComponentKind::Hbm).is_empty() { 0.0 } else { 3e9 },
        ici_bytes: if busy_of(ComponentKind::Ici).is_empty() { 0.0 } else { 1e9 },
        sram_bytes: if busy_of(ComponentKind::Sram).is_empty() { 0.0 } else { 9e9 },
        dma_bytes: if busy_of(ComponentKind::Dma).is_empty() { 0.0 } else { 3e9 },
    };
    let baseline = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, NPU_DUTY_CYCLE);

    let mut tl = PowerTimeline::new(spc, makespan);
    let mut equivalent_seconds = BTreeMap::new();
    for kind in ComponentKind::ALL {
        let intervals = busy_of(kind);
        let gating = ComponentGating::for_kind(&params, kind, SramGateMode::Drowsy);
        tl.add_component(
            kind,
            model.static_power_w(kind),
            baseline.component(kind).dynamic_j,
            &intervals,
            gating,
        );
        let busy_cycles: u64 = intervals.iter().map(|(s, e)| e - s).sum();
        let eq = match gating {
            None => makespan as f64,
            Some(g) => {
                let gaps =
                    schedule.timeline.idle_intervals(kind, makespan).into_iter().map(|iv| iv.len());
                let walk =
                    GatingParams::walk_idle_intervals(gaps, g.bet, g.delay, g.leak, g.policy);
                busy_cycles as f64 + walk.equivalent_cycles
            }
        };
        equivalent_seconds.insert(kind, eq * spc);
    }
    let gated = EnergyBreakdown::gated(&baseline, &model, &equivalent_seconds, 0.0, 0.0);
    assert!(
        tl.energy_matches(gated.total_j(), 1e-9),
        "waveform integral {} J disagrees with the energy breakdown {} J",
        tl.total_energy_j(),
        gated.total_j()
    );
    kv("waveform energy (J)", format!("{:.6}", tl.total_energy_j()));
    kv("breakdown energy (J)", format!("{:.6}", gated.total_j()));
    println!("waveform integral matches EnergyBreakdown totals (rel 1e-9)");

    // Attach each component's watts(t) as a counter track so the power
    // states render alongside the unit and link tracks in the same view.
    for kind in ComponentKind::ALL {
        if let Some(samples) = tl.counter_samples(kind) {
            recorder.add_counter_track(format!("power.{kind}"), "watts", samples);
        }
    }

    let trace_path = format!("{out_dir}/TRACE_pod.json");
    std::fs::write(&trace_path, recorder.chrome_json())
        .unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
    println!("wrote {trace_path}");
    let power_path = format!("{out_dir}/POWER_pod.json");
    std::fs::write(&power_path, tl.waveform_json())
        .unwrap_or_else(|e| panic!("write {power_path}: {e}"));
    println!("wrote {power_path}");
}

/// A short DLRM serving run through [`ServingSimulator::run_traced`]:
/// batch flow events connect each batch's dispatch to its completion on
/// top of the single-chip unit tracks.
fn serving_export(out_dir: &str) {
    section("Serving trace export");
    let server =
        ServingSimulator::new(NpuGeneration::D, 1, Workload::dlrm(DlrmSize::Small).with_batch(8));
    let arrivals =
        ArrivalProcess::Poisson { mean_interval_cycles: 100_000.0, seed: 11 }.arrivals(12);
    let policy = BatchPolicy::Static { batch: 4 };
    let (outcome, recorder) = server.run_traced(&arrivals, &policy);
    kv("makespan (cycles)", outcome.makespan_cycles());
    kv("batches", outcome.batches.len());
    kv("trace slices", recorder.num_slices());
    kv("batch cache", format!("{:?}", outcome.cache));

    let timeline = ResourceTimeline::single_chip_view(outcome.simulation.busy_timeline());
    assert_clean(
        "serving trace",
        &npu_sim::analysis::check_trace_export(&recorder, &timeline, outcome.makespan_cycles()),
    );

    let trace_path = format!("{out_dir}/TRACE_serving.json");
    std::fs::write(&trace_path, recorder.chrome_json())
        .unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
    println!("wrote {trace_path}");
}
