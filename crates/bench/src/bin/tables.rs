//! Regenerates the paper's tables:
//! * Table 2 — NPU specifications per generation;
//! * Table 3 — power-on/off delays and break-even times;
//! * Table 4 — the evaluated SLO-compliant deployment configurations
//!   (printed from `npu_models::EvalConfig`, plus a small SLO search demo).
//!
//! Run with `cargo run --release -p regate-bench --bin tables`.

use npu_arch::{NpuGeneration, NpuSpec};
use npu_models::{EvalConfig, LlamaModel, LlmPhase, Workload};
use npu_power::GatingParams;
use regate::experiments::best_config;
use regate_bench::section;

fn main() {
    section("Table 2: NPU specifications");
    println!(
        "{:<8} {:>6} {:>10} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "NPU", "tech", "freq(MHz)", "SAs", "VUs", "SRAM(MB)", "HBM(GB)", "BW(GB/s)", "ICI"
    );
    for generation in NpuGeneration::ALL {
        let s = NpuSpec::generation(generation);
        println!(
            "{:<8} {:>6} {:>10} {:>4}x{:<4} {:>9} {:>10} {:>10} {:>10} {:>4}x{:<6}",
            generation.to_string(),
            s.technology.to_string(),
            s.frequency_mhz,
            s.num_sa,
            s.sa_width,
            s.num_vu,
            s.sram_mib,
            s.hbm_gib,
            s.hbm_bandwidth_gbps,
            s.ici_links,
            format!("{:.0}GB/s", s.ici_link_gbps),
        );
    }

    section("Table 3: power on/off delays and break-even times (cycles)");
    let g = GatingParams::default();
    println!("{:<16} {:>8} {:>8}", "component", "delay", "BET");
    println!("{:<16} {:>8} {:>8}", "SA (PE)", g.sa_pe_delay, g.sa_pe_bet);
    println!("{:<16} {:>8} {:>8}", "SA (full)", g.sa_full_delay, g.sa_full_bet);
    println!("{:<16} {:>8} {:>8}", "VU", g.vu_delay, g.vu_bet);
    println!("{:<16} {:>8} {:>8}", "HBM", g.hbm_delay, g.hbm_bet);
    println!("{:<16} {:>8} {:>8}", "ICI", g.ici_delay, g.ici_bet);
    println!("{:<16} {:>8} {:>8}", "SRAM (sleep)", g.sram_sleep_delay, g.sram_sleep_bet);
    println!("{:<16} {:>8} {:>8}", "SRAM (off)", g.sram_off_delay, g.sram_off_bet);

    section("Table 4: evaluated NPU-D deployment configurations");
    println!("{:<32} {:>8} {:>10}", "workload", "chips", "batch");
    for config in EvalConfig::all() {
        println!("{:<32} {:>8} {:>10}", config.workload.label(), config.num_chips, config.batch);
    }

    section("SLO-compliant configuration search (demo)");
    let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
    if let Some((chips, energy)) = best_config(&wl, NpuGeneration::D, &[1, 2, 4, 8], 0.5) {
        println!(
            "{}: most energy-efficient config under a 500 ms step SLO: {chips} chips ({energy:.4} J/token)",
            wl.label()
        );
    }
}
