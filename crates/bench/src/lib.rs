//! # regate-bench — benchmark harness for the ReGate reproduction
//!
//! The `src/bin` binaries regenerate the data behind every table and figure
//! of the paper (see `DESIGN.md` for the experiment index), the Criterion
//! benches in `benches/` measure the cost of the simulator, the compiler
//! passes, and the PE-gating logic, and the workspace-level examples and
//! integration tests are wired through this package.

#![warn(missing_docs)]

pub mod report;

pub use report::{measure, BenchReport, Measured, BENCH_SCHEMA_VERSION};

/// Formats a fraction as a percentage with one decimal place.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a section header in the style used by all harness binaries.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value line with aligned columns.
pub fn kv(key: &str, value: impl std::fmt::Display) {
    println!("{key:<44} {value}");
}

/// The deterministic PRNG shared by the seeded invariant harnesses and
/// the serving layer's arrival sampling. The implementation was promoted
/// from this crate into [`npu_sim::rng`] so production code (Poisson
/// arrivals) and the test corpora draw from the *same* generator; this
/// re-export keeps the harness-facing path stable.
pub use npu_sim::rng::SplitMix64;

/// FNV-1a 64-bit digest over a stream of `u64` values — the hash behind
/// every digest-pinned golden value (`tests/dag_invariants.rs` chain
/// regressions, `tests/serving_invariants.rs` schedule digests). One
/// implementation, so a change to the stepping cannot silently diverge
/// the pinned digests between suites.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a digest at the standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value into the digest, little-endian byte by byte.
    pub fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The current digest value.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(pct(0.155), "15.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
