//! # regate-bench — benchmark harness for the ReGate reproduction
//!
//! The `src/bin` binaries regenerate the data behind every table and figure
//! of the paper (see `DESIGN.md` for the experiment index), the Criterion
//! benches in `benches/` measure the cost of the simulator, the compiler
//! passes, and the PE-gating logic, and the workspace-level examples and
//! integration tests are wired through this package.

#![warn(missing_docs)]

/// Formats a fraction as a percentage with one decimal place.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a section header in the style used by all harness binaries.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value line with aligned columns.
pub fn kv(key: &str, value: impl std::fmt::Display) {
    println!("{key:<44} {value}");
}

/// SplitMix64: the deterministic, dependency-free PRNG shared by the
/// seeded invariant harnesses (`tests/dag_invariants.rs`,
/// `tests/sram_segments.rs`). One implementation, so a fix to the
/// stepping or the range draw cannot silently diverge between suites.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi` (callers keep spans far below `u64::MAX`,
    /// so the modulo bias is negligible for test-corpus generation).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(pct(0.155), "15.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
