//! # regate-bench — benchmark harness for the ReGate reproduction
//!
//! The `src/bin` binaries regenerate the data behind every table and figure
//! of the paper (see `DESIGN.md` for the experiment index), the Criterion
//! benches in `benches/` measure the cost of the simulator, the compiler
//! passes, and the PE-gating logic, and the workspace-level examples and
//! integration tests are wired through this package.

#![warn(missing_docs)]

/// Formats a fraction as a percentage with one decimal place.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a section header in the style used by all harness binaries.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value line with aligned columns.
pub fn kv(key: &str, value: impl std::fmt::Display) {
    println!("{key:<44} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(pct(0.155), "15.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
