//! Criterion bench: compiler passes — fusion + tiling (compile), SRAM
//! allocation, VLIW expansion, idleness analysis, and `setpm`
//! instrumentation. The paper notes the added ReGate passes are linear in
//! the number of instructions; this bench verifies they stay cheap.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_arch::{NpuGeneration, NpuSpec, ParallelismConfig};
use npu_compiler::instrument::{instrument_vu, SetPmPolicy};
use npu_compiler::vliw::{expand_operator, ExpansionLimits};
use npu_compiler::{Compiler, IdlenessReport, SramAllocation};
use npu_models::{LlamaModel, LlmPhase, Workload};

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    group.sample_size(10);
    let spec = NpuSpec::generation(NpuGeneration::D);
    let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
    let graph = workload.build_graph(&ParallelismConfig::single());
    let compiler = Compiler::new(spec.clone());
    let compiled = compiler.compile(&graph);

    group.bench_function("compile/llama8b_prefill", |b| {
        b.iter(|| std::hint::black_box(compiler.compile(&graph)));
    });
    group.bench_function("sram_alloc/llama8b_prefill", |b| {
        b.iter(|| std::hint::black_box(SramAllocation::allocate(&compiled, spec.sram_geometry())));
    });

    let anchor = compiled.anchors().find(|op| op.fused_vu_elements > 0).expect("fused anchor");
    let (program, _) = expand_operator(anchor, &spec, ExpansionLimits::default());
    group.bench_function("vliw_expand/matmul", |b| {
        b.iter(|| std::hint::black_box(expand_operator(anchor, &spec, ExpansionLimits::default())));
    });
    group.bench_function("idleness_analysis/matmul", |b| {
        b.iter(|| std::hint::black_box(IdlenessReport::analyze(&program)));
    });
    group.bench_function("setpm_instrumentation/matmul", |b| {
        let policy = SetPmPolicy::new(32, 2);
        b.iter(|| std::hint::black_box(instrument_vu(&program, policy)));
    });
    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
