//! Criterion bench: cost of the serving pipeline — batch formation,
//! request-graph lowering + compilation, and the release-time schedule —
//! at a few offered loads.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, Workload};
use npu_serving::{ArrivalProcess, BatchPolicy, ServingSimulator};

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let server =
        ServingSimulator::new(NpuGeneration::D, 1, Workload::dlrm(DlrmSize::Small).with_batch(32));
    for (name, process) in [
        ("saturating", ArrivalProcess::saturating()),
        ("poisson_100k", ArrivalProcess::Poisson { mean_interval_cycles: 100_000.0, seed: 3 }),
        (
            "bursty",
            ArrivalProcess::BurstyOnOff {
                burst_len: 4,
                intra_burst_cycles: 5_000,
                off_cycles: 1_000_000,
            },
        ),
    ] {
        let arrivals = process.arrivals(16);
        for policy in [
            BatchPolicy::Static { batch: 4 },
            BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 50_000 },
        ] {
            group.bench_function(format!("serve/{name}/{}", policy.label()), |b| {
                b.iter(|| std::hint::black_box(server.run(&arrivals, &policy)));
            });
        }
        group.bench_function(format!("form_batches/{name}"), |b| {
            let policy = BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 50_000 };
            b.iter(|| std::hint::black_box(policy.form(&arrivals)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
