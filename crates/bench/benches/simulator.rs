//! Criterion bench: cost of the tile-level performance simulator itself
//! (graph build + compile + simulate) for representative workloads.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
use npu_compiler::Compiler;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_sim::Simulator;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for (name, workload, chips) in [
        ("llama8b_decode", Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1usize),
        ("llama8b_prefill", Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1),
        ("dlrm_medium", Workload::dlrm(DlrmSize::Medium), 8),
    ] {
        let chip = ChipConfig::new(NpuGeneration::D, chips);
        let parallelism = workload
            .default_parallelism(chip.spec(), chips)
            .unwrap_or(ParallelismConfig::new(chips, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        group.bench_function(format!("simulate/{name}"), |b| {
            let simulator = Simulator::new(chip.clone());
            b.iter(|| std::hint::black_box(simulator.run(&compiled)));
        });
        group.bench_function(format!("graph_build/{name}"), |b| {
            b.iter(|| std::hint::black_box(workload.build_graph(&parallelism)));
        });
        group.bench_function(format!("idle_histogram/{name}"), |b| {
            let result = Simulator::new(chip.clone()).run(&compiled);
            b.iter(|| std::hint::black_box(result.idle_histogram()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
