//! Criterion bench: the PE-level SA gating logic — building gating plans
//! from weight panels / matmul dims and simulating the diagonal wavefront.

use criterion::{criterion_group, criterion_main, Criterion};

use regate::pe_gating::{simulate_wavefront_on_pes, SaGatingPlan};

fn bench_pe_gating(c: &mut Criterion) {
    let mut group = c.benchmark_group("pe_gating");
    group.sample_size(20);

    group.bench_function("plan_from_dims/128x128", |b| {
        b.iter(|| std::hint::black_box(SaGatingPlan::from_matmul_dims(128, 72, 1024)));
    });

    let weights: Vec<Vec<f32>> = (0..128)
        .map(|r| (0..128).map(|col| if (r + col) % 3 == 0 { 0.0 } else { 1.0 }).collect())
        .collect();
    group.bench_function("plan_from_weights/128x128", |b| {
        b.iter(|| std::hint::black_box(SaGatingPlan::from_weights(128, &weights)));
    });

    let plan = SaGatingPlan::from_matmul_dims(128, 72, 96);
    group.bench_function("gated_fraction/128x128", |b| {
        b.iter(|| std::hint::black_box(plan.gated_pe_cycle_fraction(256, 0.1)));
    });

    group.bench_function("wavefront_sim/64x64_m256", |b| {
        b.iter(|| std::hint::black_box(simulate_wavefront_on_pes(64, 256)));
    });
    group.finish();
}

criterion_group!(benches, bench_pe_gating);
criterion_main!(benches);
