//! Engine hot-loop bench: replays prepared graphs through
//! [`npu_sim::PreparedSimulator::run_with_scratch`] and reports operators
//! scheduled per wall-second and simulated cycles per wall-second — the
//! perf trajectory of the event loop itself, with compilation, SRAM
//! allocation, and dependency flattening paid once outside the timed
//! region. Results are written to `BENCH_engine.json` at the repo root
//! (see the README's hot-path section for how to read and update it).
//!
//! Run with `cargo bench -p regate_bench --bench engine_hot_loop`.

use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
use npu_compiler::Compiler;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_sim::{EngineScratch, Simulator};
use regate_bench::{measure, BenchReport};

fn main() {
    let samples = 10usize;
    let mut report = BenchReport::new(
        "engine_hot_loop",
        "cargo bench -p regate_bench --bench engine_hot_loop",
        "workloads",
    );
    report.header_raw("samples_per_measurement", samples);
    report.header_str(
        "note",
        "replay = PreparedSimulator::run_with_scratch on a prepared graph (the event-loop hot \
         path); one_shot = Simulator::run_with_releases including profiling/allocation/flattening",
    );
    for (name, workload, requests) in [
        ("llama3_8b_prefill", Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1u64),
        (
            "llama3_8b_decode_x128_64req",
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(128),
            64,
        ),
        ("dlrm_s_x2048_64req", Workload::dlrm(DlrmSize::Small).with_batch(2048), 64),
    ] {
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let parallelism = ParallelismConfig::single();
        let graph = if requests > 1 {
            workload.build_request_graph(&parallelism, requests)
        } else {
            workload.build_graph(&parallelism)
        };
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulator = Simulator::new(chip);
        let prepared = simulator.prepare(&compiled);
        let mut scratch = EngineScratch::default();
        let makespan = prepared.run_with_scratch(&[], &mut scratch).total_cycles();
        let anchors = compiled.num_anchors();

        // The hot loop proper: event-driven replay against warm scratch.
        let replay = measure(samples, || {
            std::hint::black_box(prepared.run_with_scratch(&[], &mut scratch));
        });
        // The one-shot path (profile + allocate + flatten + replay), for
        // the prepare-once amortization ratio.
        let one_shot = measure(samples, || {
            std::hint::black_box(simulator.run_with_releases(&compiled, &[]));
        });

        let ops_per_second = anchors as f64 / replay.mean_s;
        let cycles_per_wall_second = makespan as f64 / replay.mean_s;
        println!(
            "{name}: {anchors} anchors, {makespan} simulated cycles | replay mean \
             {:.3} ms (min {:.3} ms) -> {:.3e} ops/s, {:.3e} simulated cycles/s | one-shot mean \
             {:.3} ms",
            replay.mean_s * 1e3,
            replay.min_s * 1e3,
            ops_per_second,
            cycles_per_wall_second,
            one_shot.mean_s * 1e3,
        );
        report.push_row(format!(
            r#"    {{
      "name": "{name}",
      "anchors": {anchors},
      "simulated_cycles": {makespan},
      "replay_mean_s": {:.6e},
      "replay_min_s": {:.6e},
      "one_shot_mean_s": {:.6e},
      "ops_per_second": {:.6e},
      "simulated_cycles_per_wall_second": {:.6e}
    }}"#,
            replay.mean_s, replay.min_s, one_shot.mean_s, ops_per_second, cycles_per_wall_second,
        ));
    }

    let path = report.write_to_repo_root("BENCH_engine.json");
    println!("wrote {path}");
}
