//! Criterion bench: end-to-end figure regeneration cost (one full
//! workload evaluation across all five design points) plus ablation points
//! called out in DESIGN.md — PE-level vs component-level SA gating and
//! software vs hardware VU/SRAM gating, measured as evaluation throughput
//! under different gating parameter sets.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_power::GatingParams;
use regate::Evaluator;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    for (name, workload, chips) in [
        ("fig17_decode_8b", Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1usize),
        ("fig17_dlrm_small", Workload::dlrm(DlrmSize::Small), 8),
    ] {
        group.bench_function(format!("evaluate_all_designs/{name}"), |b| {
            let evaluator = Evaluator::new(NpuGeneration::D);
            b.iter(|| std::hint::black_box(evaluator.evaluate(&workload, chips)));
        });
    }

    // Ablation: default Table 3 delays vs 4x slower gating transistors.
    let workload = Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode);
    for (name, params) in [
        ("delays_1x", GatingParams::default()),
        ("delays_4x", GatingParams::default().with_delay_scale(4.0)),
    ] {
        group.bench_function(format!("ablation_delay/{name}"), |b| {
            let evaluator = Evaluator::with_gating(NpuGeneration::D, params.clone());
            b.iter(|| std::hint::black_box(evaluator.evaluate(&workload, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
