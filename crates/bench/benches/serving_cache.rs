//! Serving compile-cache bench: the same arrival trace served through the
//! cached path ([`npu_serving::ServingSimulator::run`], compile-once per
//! batch shape) and the fresh-compile path
//! ([`npu_serving::ServingSimulator::run_uncached`], per-batch re-lowering
//! and recompilation). Results — including the frozen pre-PR baseline of
//! the per-batch-recompile serving path — are written to
//! `BENCH_serving.json` at the repo root.
//!
//! Run with `cargo bench -p regate_bench --bench serving_cache`.

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_serving::{ArrivalProcess, BatchPolicy, ServingSimulator};
use regate_bench::{measure, BenchReport};

/// Wall time per serving run of the pre-PR `ServingSimulator::run` (which
/// re-lowered and recompiled every batch and paid a per-anchor
/// `live_bytes_at` point query inside the simulator), measured at the seed
/// commit on the same trace configurations benched below. Frozen here so
/// the speedup column stays anchored to the state this PR started from.
const PRE_PR_BASELINE_S: [(&str, f64); 2] =
    [("dlrm_s_x32_64req_static4", 13.77e-3), ("llama3_8b_decode_x2_64req_static4", 146.4e-3)];

fn main() {
    let mut report = BenchReport::new(
        "serving_cache",
        "cargo bench -p regate_bench --bench serving_cache",
        "runs",
    );
    report.header_str(
        "trace",
        "64 Poisson arrivals (mean interval 100k cycles, seed 11), \
         BatchPolicy::Static { batch: 4 }",
    );
    report.header_str(
        "note",
        "cached = ServingSimulator::run (compile-once per batch shape, prepared replay); \
         uncached = run_uncached (per-batch re-lowering + recompilation on the current engine); \
         the pre-PR baseline is the seed commit's per-batch-recompile run() wall time on this \
         machine",
    );
    for (name, workload, uncached_samples, cached_samples) in [
        (
            "dlrm_s_x32_64req_static4",
            Workload::dlrm(DlrmSize::Small).with_batch(32),
            5usize,
            10usize,
        ),
        (
            "llama3_8b_decode_x2_64req_static4",
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2),
            3,
            5,
        ),
    ] {
        // The sweep shape every load point repeats: 64 Poisson arrivals
        // under Static{4} form sixteen batches of four requests — one
        // compiled batch template, one prepared trace, reused throughout.
        let server = ServingSimulator::new(NpuGeneration::D, 1, workload);
        let arrivals =
            ArrivalProcess::Poisson { mean_interval_cycles: 100_000.0, seed: 11 }.arrivals(64);
        let policy = BatchPolicy::Static { batch: 4 };
        let simulated_cycles = server.run(&arrivals, &policy).makespan_cycles();

        let uncached = measure(uncached_samples, || {
            std::hint::black_box(server.run_uncached(&arrivals, &policy));
        });
        let cached = measure(cached_samples, || {
            std::hint::black_box(server.run(&arrivals, &policy));
        });

        let baseline_s = PRE_PR_BASELINE_S
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
            .expect("every benched config has a frozen baseline");
        let vs_uncached = uncached.mean_s / cached.mean_s;
        let vs_baseline = baseline_s / cached.mean_s;
        let cycles_per_wall_second = simulated_cycles as f64 / cached.mean_s;
        println!(
            "{name}: uncached mean {:.3} ms | cached mean {:.3} ms (min {:.3} ms) | speedup \
             {vs_uncached:.2}x vs in-tree fresh compile, {vs_baseline:.2}x vs pre-PR baseline \
             {:.3} ms | {:.3e} simulated cycles/s cached",
            uncached.mean_s * 1e3,
            cached.mean_s * 1e3,
            cached.min_s * 1e3,
            baseline_s * 1e3,
            cycles_per_wall_second,
        );
        report.push_row(format!(
            r#"    {{
      "name": "{name}",
      "simulated_cycles": {simulated_cycles},
      "pre_pr_per_batch_recompile_baseline_s": {baseline_s:.6e},
      "uncached_mean_s": {:.6e},
      "cached_mean_s": {:.6e},
      "cached_min_s": {:.6e},
      "speedup_cached_vs_uncached": {vs_uncached:.3},
      "speedup_cached_vs_pre_pr_baseline": {vs_baseline:.3},
      "simulated_cycles_per_wall_second_cached": {:.6e}
    }}"#,
            uncached.mean_s, cached.mean_s, cached.min_s, cycles_per_wall_second,
        ));
    }

    let path = report.write_to_repo_root("BENCH_serving.json");
    println!("wrote {path}");
}
