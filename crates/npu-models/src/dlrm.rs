//! Deep-learning recommendation model (DLRM) workload generator.
//!
//! DLRM inference (paper Table 1: DLRM-S/M/L with 20/45/98 GB embedding
//! tables, batch size 1024) consists of a bottom MLP over dense features,
//! sparse embedding-table lookups, an all-to-all exchange of embedding
//! vectors across the chips that hold the (model-parallel) tables, a
//! feature-interaction step, and a top MLP. The workload is ICI- and
//! HBM-bound: the paper measures ~98–99% ICI temporal utilization and ~0%
//! SA temporal utilization for it (Figures 4 and 8).

use serde::{Deserialize, Serialize};

use npu_arch::ParallelismConfig;

use crate::dtype::DataType;
use crate::graph::OperatorGraph;
use crate::op::{CollectiveKind, OpKind, Operator};

/// DLRM model size (embedding-table footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DlrmSize {
    /// DLRM-S: 20 GB of embedding tables.
    Small,
    /// DLRM-M: 45 GB of embedding tables.
    Medium,
    /// DLRM-L: 98 GB of embedding tables.
    Large,
}

impl DlrmSize {
    /// All sizes.
    pub const ALL: [DlrmSize; 3] = [DlrmSize::Small, DlrmSize::Medium, DlrmSize::Large];

    /// Label used in figures ("DLRM-S", …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DlrmSize::Small => "DLRM-S",
            DlrmSize::Medium => "DLRM-M",
            DlrmSize::Large => "DLRM-L",
        }
    }

    /// Total embedding-table footprint in bytes (Table 1).
    #[must_use]
    pub fn embedding_table_bytes(self) -> u64 {
        match self {
            DlrmSize::Small => 20 * (1 << 30),
            DlrmSize::Medium => 45 * (1 << 30),
            DlrmSize::Large => 98 * (1 << 30),
        }
    }
}

impl std::fmt::Display for DlrmSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full DLRM architecture and workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DlrmConfig {
    /// Model size.
    pub size: DlrmSize,
    /// Inference batch size (Table 1 default: 1024).
    pub batch: u64,
    /// Number of sparse features (embedding tables).
    pub num_tables: u64,
    /// Embedding dimension of each table row.
    pub embedding_dim: u64,
    /// Multi-hot lookups per table per sample.
    pub lookups_per_table: u64,
    /// Number of dense (continuous) input features.
    pub dense_features: u64,
    /// Bottom-MLP layer widths.
    pub bottom_mlp: [u64; 3],
    /// Top-MLP layer widths.
    pub top_mlp: [u64; 4],
    /// Compute data type.
    pub dtype: DataType,
}

impl DlrmConfig {
    /// Default configuration from Table 1 for a given size.
    #[must_use]
    pub fn default_config(size: DlrmSize) -> Self {
        DlrmConfig {
            size,
            batch: 1024,
            num_tables: match size {
                DlrmSize::Small => 26,
                DlrmSize::Medium => 64,
                DlrmSize::Large => 128,
            },
            embedding_dim: 128,
            lookups_per_table: match size {
                DlrmSize::Small => 1,
                DlrmSize::Medium => 2,
                DlrmSize::Large => 4,
            },
            dense_features: 13,
            bottom_mlp: [512, 256, 128],
            top_mlp: [1024, 1024, 512, 256],
            dtype: DataType::Bf16,
        }
    }

    /// Returns a copy with a different batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Builds the per-chip operator graph for one inference batch.
    ///
    /// Embedding tables are sharded across all chips (model parallelism for
    /// the tables, data parallelism for the MLPs — the standard DLRM
    /// deployment): each chip looks up its local tables for the *entire*
    /// batch and then exchanges embedding vectors with an all-to-all so each
    /// chip ends up with all features for its share of the batch.
    ///
    /// The graph is a true DAG, not a chain: the bottom MLP and each local
    /// table's gather→pool pair are *independent subgraphs* (the gathers
    /// are sources — they depend only on their HBM-resident table), the
    /// all-to-all fans in over every pooled table, and the feature
    /// interaction joins the exchanged embeddings with the bottom-MLP
    /// output. This is what lets the timeline engine stream gathers while
    /// the MLP computes instead of serializing them.
    ///
    /// # Panics
    ///
    /// Panics if the configuration carries an empty bottom MLP; every
    /// constructor in this crate builds at least one layer.
    #[must_use]
    pub fn build_graph(&self, parallelism: &ParallelismConfig) -> OperatorGraph {
        let chips = parallelism.num_chips() as u64;
        let dt = self.dtype;
        let mut graph =
            OperatorGraph::new(format!("{}-b{}-{}", self.size.label(), self.batch, parallelism));

        let local_batch = (self.batch / chips).max(1);
        let local_tables = (self.num_tables / chips).max(1);

        // Bottom MLP over dense features for the local share of the batch.
        let mut prev = self.dense_features;
        let mut bottom_tail = None;
        for (i, &width) in self.bottom_mlp.iter().enumerate() {
            let mm = Operator::new(
                format!("bottom_mlp.{i}"),
                OpKind::MatMul {
                    batch: 1,
                    m: local_batch,
                    k: prev,
                    n: width,
                    weights_resident: true,
                },
                dt,
            );
            let mm_id = match bottom_tail {
                None => graph.push_source(mm),
                Some(tail) => graph.push_with_producers(mm, vec![tail]),
            };
            bottom_tail = Some(graph.push_with_producers(
                Operator::new(
                    format!("bottom_mlp.{i}.relu"),
                    OpKind::Elementwise {
                        elements: local_batch * width,
                        flops_per_element: 1,
                        num_inputs: 1,
                    },
                    dt,
                ),
                vec![mm_id],
            ));
            prev = width;
        }
        let bottom_tail = bottom_tail.expect("the bottom MLP has at least one layer");

        // Per-table embedding lookups over the full batch (multi-hot:
        // `lookups_per_table` rows gathered and sum-pooled per table).
        // Each gather is a DAG source and each pool depends only on its
        // own gather, so the lookups overlap the bottom MLP and each
        // other's pooling.
        let table_bytes_per_chip = self.size.embedding_table_bytes() / chips.max(1);
        let table_bytes = table_bytes_per_chip / local_tables;
        let mut pools = Vec::with_capacity(local_tables as usize);
        for t in 0..local_tables {
            let gather = graph.push_source(Operator::new(
                format!("table.{t}.lookup"),
                OpKind::EmbeddingLookup {
                    lookups: self.batch * self.lookups_per_table,
                    dim: self.embedding_dim,
                    table_bytes,
                },
                dt,
            ));
            pools.push(graph.push_with_producers(
                Operator::new(
                    format!("table.{t}.pool"),
                    OpKind::Elementwise {
                        elements: self.batch * self.embedding_dim,
                        flops_per_element: self.lookups_per_table,
                        num_inputs: 1,
                    },
                    dt,
                ),
                vec![gather],
            ));
        }

        // All-to-all exchange of pooled embeddings (only if distributed):
        // a fan-in over every local table's pool.
        let embeddings_ready = if chips > 1 {
            let bytes = self.batch * local_tables * self.embedding_dim * dt.size_bytes();
            vec![graph.push_with_producers(
                Operator::new(
                    "embedding_alltoall",
                    OpKind::Collective { kind: CollectiveKind::AllToAll, bytes_per_chip: bytes },
                    dt,
                ),
                pools.clone(),
            )]
        } else {
            pools.clone()
        };

        // Feature interaction: pairwise dot products between the bottom-MLP
        // output and every table's embedding vector. Per sample this is a
        // `features × dim × features` activation-activation matmul — far
        // too small to amortize the systolic-array warm-up latency (the
        // paper's §4.3 note on tiny MatMuls being mapped to the VU) — so
        // it is lowered directly as batched vector dot products. The shape
        // keeps the FLOPs exact (`2·features²·dim` per sample) and the
        // input traffic exact (both `features × dim` operand tensors are
        // read, as `num_inputs: 2` over `features·dim` elements); the
        // write-back is approximated as one `features × dim` tile rather
        // than the `features²` pair matrix (equal at dim ≈ features,
        // i.e. DLRM-L; a few-percent traffic overstatement for the
        // smaller sizes, dwarfed by the gather traffic either way).
        let features = self.num_tables + 1;
        let mut interaction_inputs = embeddings_ready;
        interaction_inputs.push(bottom_tail);
        graph.push_with_producers(
            Operator::new(
                "interaction",
                OpKind::Elementwise {
                    elements: local_batch * features * self.embedding_dim,
                    flops_per_element: 2 * features,
                    num_inputs: 2,
                },
                dt,
            ),
            interaction_inputs,
        );
        graph.push(Operator::new(
            "interaction_concat",
            OpKind::Elementwise {
                elements: local_batch * (features * (features - 1) / 2 + self.bottom_mlp[2]),
                flops_per_element: 1,
                num_inputs: 2,
            },
            dt,
        ));

        // Top MLP.
        let mut prev = features * (features - 1) / 2 + self.bottom_mlp[2];
        for (i, &width) in self.top_mlp.iter().enumerate() {
            graph.push(Operator::new(
                format!("top_mlp.{i}"),
                OpKind::MatMul {
                    batch: 1,
                    m: local_batch,
                    k: prev,
                    n: width,
                    weights_resident: true,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("top_mlp.{i}.relu"),
                OpKind::Elementwise {
                    elements: local_batch * width,
                    flops_per_element: 1,
                    num_inputs: 1,
                },
                dt,
            ));
            prev = width;
        }
        // Final sigmoid click-through-rate prediction.
        graph.push(Operator::new(
            "ctr_sigmoid",
            OpKind::Elementwise { elements: local_batch, flops_per_element: 4, num_inputs: 1 },
            dt,
        ));
        graph
    }

    /// Minimum number of chips of `hbm_bytes_per_chip` HBM needed to hold
    /// the embedding tables (plus a 20% margin for activations and code).
    #[must_use]
    pub fn min_chips_for_capacity(&self, hbm_bytes_per_chip: u64) -> usize {
        let need = (self.size.embedding_table_bytes() as f64 * 1.2).ceil() as u64;
        (need.div_ceil(hbm_bytes_per_chip) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ExecutionUnit;
    use npu_arch::{NpuGeneration, NpuSpec};

    #[test]
    fn table1_embedding_sizes() {
        assert_eq!(DlrmSize::Small.embedding_table_bytes(), 20 << 30);
        assert_eq!(DlrmSize::Medium.embedding_table_bytes(), 45 << 30);
        assert_eq!(DlrmSize::Large.embedding_table_bytes(), 98 << 30);
        assert_eq!(DlrmSize::Large.label(), "DLRM-L");
    }

    #[test]
    fn dlrm_is_not_compute_bound() {
        let cfg = DlrmConfig::default_config(DlrmSize::Medium);
        let g = cfg.build_graph(&ParallelismConfig::new(8, 1, 1));
        let ai = g.total_flops() / g.total_hbm_bytes();
        assert!(ai < 50.0, "DLRM arithmetic intensity {ai} should be low");
    }

    #[test]
    fn distributed_dlrm_has_alltoall() {
        let cfg = DlrmConfig::default_config(DlrmSize::Small);
        let dist = cfg.build_graph(&ParallelismConfig::new(8, 1, 1));
        assert!(dist.iter().any(|op| op.name == "embedding_alltoall"));
        assert!(dist.total_ici_bytes() > 0.0);
        let single = cfg.build_graph(&ParallelismConfig::single());
        assert!(!single.iter().any(|op| op.name == "embedding_alltoall"));
    }

    #[test]
    fn interaction_maps_to_vu() {
        let cfg = DlrmConfig::default_config(DlrmSize::Small);
        let g = cfg.build_graph(&ParallelismConfig::new(8, 1, 1));
        let interaction = g.iter().find(|op| op.name == "interaction").unwrap();
        assert_eq!(interaction.execution_unit(), ExecutionUnit::Vu);
    }

    #[test]
    fn embedding_lookups_dominate_hbm_traffic() {
        let cfg = DlrmConfig::default_config(DlrmSize::Large);
        let g = cfg.build_graph(&ParallelismConfig::new(8, 1, 1));
        let emb: f64 = g
            .iter()
            .filter(|op| op.name.ends_with(".lookup"))
            .map(|op| op.hbm_bytes() as f64)
            .sum();
        assert!(emb > 0.3 * g.total_hbm_bytes());
    }

    #[test]
    fn graph_is_a_dag_with_parallel_gathers() {
        let cfg = DlrmConfig::default_config(DlrmSize::Medium);
        let g = cfg.build_graph(&ParallelismConfig::new(8, 1, 1));
        // One source per local table plus the bottom MLP head.
        let local_tables = (cfg.num_tables / 8) as usize;
        assert_eq!(g.sources().len(), local_tables + 1);
        // The all-to-all fans in over every pool.
        let a2a = g.iter().find(|op| op.name == "embedding_alltoall").unwrap();
        assert_eq!(g.producers_of(a2a.id).len(), local_tables);
        // The interaction joins the exchanged embeddings with the dense
        // branch (fan-in of 2).
        let interaction = g.iter().find(|op| op.name == "interaction").unwrap();
        assert_eq!(g.producers_of(interaction.id).len(), 2);
        // Still a valid topological order end to end.
        assert_eq!(g.topological_order().len(), g.len());
    }

    #[test]
    fn single_chip_interaction_joins_every_pool() {
        let cfg = DlrmConfig::default_config(DlrmSize::Small);
        let g = cfg.build_graph(&ParallelismConfig::single());
        let interaction = g.iter().find(|op| op.name == "interaction").unwrap();
        // No all-to-all on one chip: the interaction reads each pooled
        // table directly, plus the bottom-MLP output.
        assert_eq!(g.producers_of(interaction.id).len(), cfg.num_tables as usize + 1);
    }

    #[test]
    fn min_chips_for_capacity_matches_table4_scale() {
        let d = NpuSpec::generation(NpuGeneration::D);
        for size in DlrmSize::ALL {
            let cfg = DlrmConfig::default_config(size);
            let chips = cfg.min_chips_for_capacity(d.hbm_bytes());
            assert!((1..=8).contains(&chips), "{size}: {chips} chips");
        }
        // DLRM-L needs at least 2 NPU-D chips (98 GB * 1.2 > 95 GB).
        assert!(
            DlrmConfig::default_config(DlrmSize::Large).min_chips_for_capacity(d.hbm_bytes()) >= 2
        );
    }

    #[test]
    fn batch_override() {
        let cfg = DlrmConfig::default_config(DlrmSize::Small).with_batch(4096);
        assert_eq!(cfg.batch, 4096);
        let g = cfg.build_graph(&ParallelismConfig::new(8, 1, 1));
        assert!(g.len() > 10);
    }
}
