//! Evaluation deployment configurations (paper Table 4): the most
//! energy-efficient SLO-compliant chip count and batch size for each
//! workload on NPU-D, used throughout the evaluation section (§6).

use serde::{Deserialize, Serialize};

use crate::diffusion::DiffusionModel;
use crate::dlrm::DlrmSize;
use crate::llm::{LlamaModel, LlmPhase};
use crate::workload::Workload;

/// One row of Table 4: a workload with its evaluated NPU-D deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// The workload (with the Table 4 batch size applied).
    pub workload: Workload,
    /// Number of NPU-D chips.
    pub num_chips: usize,
    /// Batch size.
    pub batch: u64,
}

impl EvalConfig {
    /// Builds the Table 4 configuration for an LLM workload.
    #[must_use]
    pub fn llm(model: LlamaModel, phase: LlmPhase) -> Self {
        let (num_chips, batch) = match (model, phase) {
            (LlamaModel::Llama3_8B, LlmPhase::Training) => (4, 32),
            (LlamaModel::Llama3_8B, LlmPhase::Prefill) => (1, 4),
            (LlamaModel::Llama3_8B, LlmPhase::Decode) => (1, 8),
            (LlamaModel::Llama2_13B, LlmPhase::Training) => (4, 32),
            (LlamaModel::Llama2_13B, LlmPhase::Prefill) => (1, 4),
            (LlamaModel::Llama2_13B, LlmPhase::Decode) => (1, 4),
            (LlamaModel::Llama3_70B, LlmPhase::Training) => (8, 32),
            (LlamaModel::Llama3_70B, LlmPhase::Prefill) => (4096, 8192),
            (LlamaModel::Llama3_70B, LlmPhase::Decode) => (128, 4096),
            (LlamaModel::Llama3_405B, LlmPhase::Training) => (16, 32),
            (LlamaModel::Llama3_405B, LlmPhase::Prefill) => (256, 64),
            (LlamaModel::Llama3_405B, LlmPhase::Decode) => (64, 2048),
        };
        EvalConfig { workload: Workload::llm(model, phase).with_batch(batch), num_chips, batch }
    }

    /// Builds the Table 4 configuration for a DLRM workload
    /// (8 chips, batch 4096 for every size).
    #[must_use]
    pub fn dlrm(size: DlrmSize) -> Self {
        EvalConfig { workload: Workload::dlrm(size).with_batch(4096), num_chips: 8, batch: 4096 }
    }

    /// Builds the Table 4 configuration for a diffusion workload
    /// (64 chips; batch 8192 for DiT-XL, 256 for GLIGEN).
    #[must_use]
    pub fn diffusion(model: DiffusionModel) -> Self {
        let batch = match model {
            DiffusionModel::DitXl => 8192,
            DiffusionModel::Gligen => 256,
        };
        EvalConfig { workload: Workload::diffusion(model).with_batch(batch), num_chips: 64, batch }
    }

    /// Every row of Table 4 in the paper's order.
    #[must_use]
    pub fn all() -> Vec<EvalConfig> {
        let mut out = Vec::new();
        for phase in LlmPhase::ALL {
            for model in LlamaModel::ALL {
                out.push(EvalConfig::llm(model, phase));
            }
        }
        for size in DlrmSize::ALL {
            out.push(EvalConfig::dlrm(size));
        }
        for model in DiffusionModel::ALL {
            out.push(EvalConfig::diffusion(model));
        }
        out
    }

    /// The evaluation subset used by most per-workload evaluation figures
    /// (one representative per group, as in Figures 21–25).
    #[must_use]
    pub fn sensitivity_subset() -> Vec<EvalConfig> {
        vec![
            EvalConfig::llm(LlamaModel::Llama3_405B, LlmPhase::Training),
            EvalConfig::llm(LlamaModel::Llama3_405B, LlmPhase::Prefill),
            EvalConfig::llm(LlamaModel::Llama3_405B, LlmPhase::Decode),
            EvalConfig::dlrm(DlrmSize::Large),
            EvalConfig::diffusion(DiffusionModel::DitXl),
        ]
    }
}

impl std::fmt::Display for EvalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} chips, batch {}", self.workload.label(), self.num_chips, self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_llm_rows() {
        let c = EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Training);
        assert_eq!((c.num_chips, c.batch), (4, 32));
        let c = EvalConfig::llm(LlamaModel::Llama3_70B, LlmPhase::Decode);
        assert_eq!((c.num_chips, c.batch), (128, 4096));
        let c = EvalConfig::llm(LlamaModel::Llama3_405B, LlmPhase::Prefill);
        assert_eq!((c.num_chips, c.batch), (256, 64));
        assert_eq!(c.workload.batch(), 64);
    }

    #[test]
    fn table4_dlrm_and_diffusion_rows() {
        for size in DlrmSize::ALL {
            let c = EvalConfig::dlrm(size);
            assert_eq!((c.num_chips, c.batch), (8, 4096));
        }
        assert_eq!(EvalConfig::diffusion(DiffusionModel::DitXl).batch, 8192);
        assert_eq!(EvalConfig::diffusion(DiffusionModel::Gligen).batch, 256);
        assert_eq!(EvalConfig::diffusion(DiffusionModel::Gligen).num_chips, 64);
    }

    #[test]
    fn all_covers_every_workload() {
        let all = EvalConfig::all();
        assert_eq!(all.len(), 17);
        let subset = EvalConfig::sensitivity_subset();
        assert_eq!(subset.len(), 5);
    }

    #[test]
    fn display_is_informative() {
        let c = EvalConfig::dlrm(DlrmSize::Medium);
        assert_eq!(c.to_string(), "DLRM-M: 8 chips, batch 4096");
    }
}
