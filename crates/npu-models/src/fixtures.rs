//! Graph-anomaly fixtures for the static schedule analyzer.
//!
//! Every workload builder in this crate produces well-formed operator
//! DAGs, so the *legal-but-suspicious* shapes the analyzer warns about —
//! a producer edge that is transitively implied by the rest of the graph,
//! an operator connected to nothing — never occur naturally in the test
//! corpus. This module constructs them deliberately, through the public
//! [`OperatorGraph`] API (the shapes are legal; they are just smells), so
//! the analyzer's rule catalog can be exercised against known inputs.
//! Defects that the graph API *rejects* by construction (cycles, dangling
//! producer ids) are assembled one layer down, via
//! `npu_compiler::CompiledGraph::from_parts`.
//!
//! These are fixtures, not benchmarks: the operators are small matrix
//! multiplications whose costs are irrelevant — only the edge structure
//! matters. Matmuls are used (rather than elementwise ops) because they
//! always anchor their own fusion group, so the edge structure built here
//! survives compilation unchanged instead of collapsing into one fused
//! anchor.

use crate::dtype::DataType;
use crate::graph::OperatorGraph;
use crate::op::{OpKind, Operator};

/// A small never-fused operator for edge-structure fixtures.
fn vu_op(name: &str) -> Operator {
    Operator::new(
        name,
        OpKind::MatMul { batch: 1, m: 16, k: 16, n: 16, weights_resident: false },
        DataType::Bf16,
    )
}

/// A clean diamond `a → {b, c} → d`: the smallest graph with real fan-out
/// and fan-in and *no* anomalies — the analyzer's negative control.
#[must_use]
pub fn clean_diamond() -> OperatorGraph {
    let mut g = OperatorGraph::new("fixture-clean-diamond");
    let a = g.push_source(vu_op("a"));
    let b = g.push_with_producers(vu_op("b"), vec![a]);
    let c = g.push_with_producers(vu_op("c"), vec![a]);
    g.push_with_producers(vu_op("d"), vec![b, c]);
    g
}

/// A chain `a → b → c` carrying the additional edge `a → c`, which is
/// transitively implied by the path through `b` — the redundant-edge
/// anomaly. Redundant edges are harmless to correctness but inflate
/// dependency fan-in, hide the real critical path from readers, and cost
/// event-queue work on every simulation of the graph.
#[must_use]
pub fn redundant_transitive_edge() -> OperatorGraph {
    let mut g = OperatorGraph::new("fixture-redundant-edge");
    let a = g.push_source(vu_op("a"));
    let b = g.push_with_producers(vu_op("b"), vec![a]);
    let c = g.push_with_producers(vu_op("c"), vec![b]);
    g.add_edge(a, c);
    g
}

/// A connected chain plus one operator attached to nothing: no producers,
/// no consumers. An isolated operator in a multi-operator graph is almost
/// always a lowering bug (a request subgraph that lost its merge edge, a
/// fused group whose anchor was dropped), so the analyzer flags it as an
/// orphan sink.
#[must_use]
pub fn disconnected_op() -> OperatorGraph {
    let mut g = OperatorGraph::new("fixture-disconnected-op");
    let a = g.push_source(vu_op("a"));
    g.push_with_producers(vu_op("b"), vec![a]);
    g.push_source(vu_op("orphan"));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_diamond_is_clean() {
        let g = clean_diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
        assert_eq!(g.topological_order().len(), 4);
    }

    #[test]
    fn redundant_fixture_carries_the_transitive_edge() {
        let g = redundant_transitive_edge();
        // c consumes from both a (redundant) and b (the real path).
        assert_eq!(g.producers_of(2), &[0, 1]);
        assert_eq!(g.topological_order().len(), 3, "still a valid DAG");
    }

    #[test]
    fn disconnected_fixture_has_an_isolated_operator() {
        let g = disconnected_op();
        assert_eq!(g.producers_of(2), &[] as &[usize]);
        assert_eq!(g.consumers_of(2), Vec::<usize>::new());
        assert_eq!(g.sinks(), vec![1, 2]);
    }
}
