//! # npu-models — ML workload generators for the ReGate NPU simulator
//!
//! The paper evaluates ReGate on the ML workloads of Table 1: LLM training
//! and inference (Llama3-8B, Llama2-13B, Llama3-70B, Llama3.1-405B), deep
//! learning recommendation models (DLRM-S/M/L), and stable-diffusion image
//! generation (DiT-XL, GLIGEN). This crate turns those model architectures
//! into *operator graphs*: ordered sequences of tensor operators (matrix
//! multiplications, convolutions, vector operations, embedding lookups, and
//! collectives) with exact shapes, from which the compiler and simulator
//! derive per-component activity.
//!
//! The crate also models multi-chip parallelism (data/tensor/pipeline
//! sharding and the collectives each one induces) and carries the default
//! workload configurations from Table 1 and the SLO-compliant deployment
//! configurations from Table 4.
//!
//! ## Example
//!
//! ```
//! use npu_models::{LlamaModel, LlmPhase, Workload};
//! use npu_arch::ParallelismConfig;
//!
//! let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
//! let graph = workload.build_graph(&ParallelismConfig::single());
//! assert!(graph.len() > 100);
//! // Decode is memory-bound: far more bytes than FLOPs per byte of HBM traffic.
//! assert!(graph.total_flops() / graph.total_hbm_bytes() < 10.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diffusion;
pub mod dlrm;
pub mod dtype;
pub mod fixtures;
pub mod graph;
pub mod llm;
pub mod op;
pub mod table4;
pub mod workload;

pub use diffusion::{DiffusionConfig, DiffusionModel};
pub use dlrm::{DlrmConfig, DlrmSize};
pub use dtype::DataType;
pub use graph::OperatorGraph;
pub use llm::{LlamaConfig, LlamaModel, LlmPhase};
pub use op::{CollectiveKind, ExecutionUnit, OpKind, Operator};
pub use table4::EvalConfig;
pub use workload::{RequestGraph, RequestGraphError, RequestSpan, WorkUnit, Workload};
