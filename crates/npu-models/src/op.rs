//! Tensor operators: the unit of work the compiler tiles and the simulator
//! executes.
//!
//! Each operator carries its exact shape so that FLOPs, HBM traffic, ICI
//! traffic, and the matmul dimensions relevant to systolic-array spatial
//! utilization (paper Figure 10) can be derived without approximation.

use serde::{Deserialize, Serialize};

use crate::dtype::DataType;

/// Kind of inter-chip collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// All-reduce (sum) across the participating chips.
    AllReduce,
    /// Reduce-scatter across the participating chips.
    ReduceScatter,
    /// All-gather across the participating chips.
    AllGather,
    /// All-to-all personalized exchange (DLRM embedding exchange).
    AllToAll,
    /// Point-to-point send/receive between pipeline stages.
    PointToPoint,
}

impl CollectiveKind {
    /// Short label used in traces and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "AllReduce",
            CollectiveKind::ReduceScatter => "ReduceScatter",
            CollectiveKind::AllGather => "AllGather",
            CollectiveKind::AllToAll => "AllToAll",
            CollectiveKind::PointToPoint => "P2P",
        }
    }
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which hardware component primarily executes an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionUnit {
    /// Systolic array (matrix multiplications, convolutions).
    Sa,
    /// Vector unit (elementwise, softmax, layernorm, small matmuls).
    Vu,
    /// HBM/DMA dominated (embedding gathers).
    Hbm,
    /// Inter-chip interconnect (collectives).
    Ici,
}

/// Shape-carrying operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Batched dense matrix multiplication `[batch, m, k] × [k, n]`.
    ///
    /// `weights_resident` marks the `[k, n]` operand as model weights (read
    /// from HBM once per operator) rather than activations.
    MatMul {
        /// Batch dimension (number of independent matmuls).
        batch: u64,
        /// Rows of the left operand.
        m: u64,
        /// Contraction dimension.
        k: u64,
        /// Columns of the right operand.
        n: u64,
        /// Whether the right operand is model weights.
        weights_resident: bool,
    },
    /// 2-D convolution expressed by its output extent and filter shape.
    Conv2d {
        /// Batch size.
        batch: u64,
        /// Output height.
        h_out: u64,
        /// Output width.
        w_out: u64,
        /// Input channels.
        c_in: u64,
        /// Output channels.
        c_out: u64,
        /// Filter height.
        kh: u64,
        /// Filter width.
        kw: u64,
    },
    /// Elementwise vector operation over `elements` elements with
    /// `flops_per_element` arithmetic operations each and `num_inputs`
    /// input tensors (e.g. add = 2 inputs, GeLU = 1 input).
    Elementwise {
        /// Number of output elements.
        elements: u64,
        /// FLOPs performed per output element.
        flops_per_element: u64,
        /// Number of input tensors of the same shape.
        num_inputs: u64,
    },
    /// Row-wise softmax over a `[rows, cols]` matrix.
    Softmax {
        /// Number of rows (softmax instances).
        rows: u64,
        /// Number of columns (softmax width).
        cols: u64,
    },
    /// Row-wise layer normalization over a `[rows, cols]` matrix.
    LayerNorm {
        /// Number of rows.
        rows: u64,
        /// Number of columns (hidden dimension).
        cols: u64,
    },
    /// Sparse embedding-table lookup: `lookups` rows of `dim` elements are
    /// gathered from a table of `table_bytes` bytes resident in HBM.
    EmbeddingLookup {
        /// Number of rows gathered.
        lookups: u64,
        /// Embedding dimension (elements per row).
        dim: u64,
        /// Total size of the embedding table in bytes.
        table_bytes: u64,
    },
    /// Inter-chip collective transferring `bytes_per_chip` bytes per chip.
    Collective {
        /// Collective algorithm.
        kind: CollectiveKind,
        /// Payload bytes contributed by each chip.
        bytes_per_chip: u64,
    },
}

/// A tensor operator with a name, shape-carrying kind, and data type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Position in the operator graph (assigned by [`crate::OperatorGraph`]).
    pub id: usize,
    /// Human-readable name, e.g. `"layer3.attn.qk_matmul"`.
    pub name: String,
    /// Shape-carrying kind.
    pub kind: OpKind,
    /// Element data type.
    pub dtype: DataType,
}

impl Operator {
    /// Creates an operator with id 0 (the graph assigns the real id).
    #[must_use]
    pub fn new(name: impl Into<String>, kind: OpKind, dtype: DataType) -> Self {
        Operator { id: 0, name: name.into(), kind, dtype }
    }

    /// Floating-point operations performed by the operator.
    #[must_use]
    pub fn flops(&self) -> f64 {
        match self.kind {
            OpKind::MatMul { batch, m, k, n, .. } => 2.0 * (batch * m * k * n) as f64,
            OpKind::Conv2d { batch, h_out, w_out, c_in, c_out, kh, kw } => {
                2.0 * (batch * h_out * w_out * c_out) as f64 * (c_in * kh * kw) as f64
            }
            OpKind::Elementwise { elements, flops_per_element, .. } => {
                (elements * flops_per_element) as f64
            }
            // exp + sub + sum + div ≈ 5 flops per element.
            OpKind::Softmax { rows, cols } => 5.0 * (rows * cols) as f64,
            // mean, variance, normalize, scale+shift ≈ 8 flops per element.
            OpKind::LayerNorm { rows, cols } => 8.0 * (rows * cols) as f64,
            // Gather itself performs no arithmetic; pooling (sum) counts one
            // add per gathered element.
            OpKind::EmbeddingLookup { lookups, dim, .. } => (lookups * dim) as f64,
            OpKind::Collective { .. } => 0.0,
        }
    }

    /// Minimum bytes read from HBM by the operator (inputs + weights once).
    #[must_use]
    pub fn hbm_read_bytes(&self) -> u64 {
        let dt = self.dtype.size_bytes();
        match self.kind {
            OpKind::MatMul { batch, m, k, n, weights_resident } => {
                let lhs = batch * m * k * dt;
                let rhs = if weights_resident { k * n * dt } else { batch * k * n * dt };
                lhs + rhs
            }
            OpKind::Conv2d { batch, h_out, w_out, c_in, c_out, kh, kw } => {
                // Input activations (approximated by the output extent) plus filters.
                batch * h_out * w_out * c_in * dt + c_out * c_in * kh * kw * dt
            }
            OpKind::Elementwise { elements, num_inputs, .. } => elements * num_inputs * dt,
            OpKind::Softmax { rows, cols } | OpKind::LayerNorm { rows, cols } => rows * cols * dt,
            OpKind::EmbeddingLookup { lookups, dim, .. } => lookups * dim * dt,
            OpKind::Collective { .. } => 0,
        }
    }

    /// Minimum bytes written back to HBM by the operator.
    #[must_use]
    pub fn hbm_write_bytes(&self) -> u64 {
        let dt = self.dtype.size_bytes();
        match self.kind {
            OpKind::MatMul { batch, m, n, .. } => batch * m * n * dt,
            OpKind::Conv2d { batch, h_out, w_out, c_out, .. } => batch * h_out * w_out * c_out * dt,
            OpKind::Elementwise { elements, .. } => elements * dt,
            OpKind::Softmax { rows, cols } | OpKind::LayerNorm { rows, cols } => rows * cols * dt,
            OpKind::EmbeddingLookup { lookups, dim, .. } => lookups * dim * dt,
            OpKind::Collective { .. } => 0,
        }
    }

    /// Total HBM traffic (reads + writes) in bytes.
    #[must_use]
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_read_bytes() + self.hbm_write_bytes()
    }

    /// Bytes sent over the ICI by each chip (zero for non-collectives).
    #[must_use]
    pub fn ici_bytes(&self) -> u64 {
        match self.kind {
            OpKind::Collective { bytes_per_chip, .. } => bytes_per_chip,
            _ => 0,
        }
    }

    /// Arithmetic intensity in FLOPs per HBM byte (infinite for pure
    /// collectives, which touch no HBM in this model).
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.hbm_bytes();
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.flops() / bytes as f64
    }

    /// The matrix-multiplication dimensions `(m, k, n)` seen by a systolic
    /// array, if the operator maps to one. Convolutions are lowered with
    /// im2col (`m = batch·h·w`, `k = c_in·kh·kw`, `n = c_out`).
    #[must_use]
    pub fn matmul_dims(&self) -> Option<(u64, u64, u64)> {
        match self.kind {
            OpKind::MatMul { m, k, n, .. } => Some((m, k, n)),
            OpKind::Conv2d { batch, h_out, w_out, c_in, c_out, kh, kw } => {
                Some((batch * h_out * w_out, c_in * kh * kw, c_out))
            }
            _ => None,
        }
    }

    /// Batch count of independent matmuls mapped to the SA (1 for conv).
    #[must_use]
    pub fn matmul_batch(&self) -> u64 {
        match self.kind {
            OpKind::MatMul { batch, .. } => batch,
            OpKind::Conv2d { .. } => 1,
            _ => 0,
        }
    }

    /// Which component executes the operator.
    ///
    /// Small matrix multiplications whose `M` dimension cannot amortize the
    /// systolic-array warm-up latency (the paper notes that decode-time
    /// embedding tensors are "typically too small to amortize the systolic
    /// array warm-up latency, so MatMuls may be mapped to the VU") are
    /// assigned to the VU when `M` is below `sa_width / 4`.
    #[must_use]
    pub fn execution_unit_for(&self, sa_width: u64) -> ExecutionUnit {
        match self.kind {
            OpKind::MatMul { .. } | OpKind::Conv2d { .. } => {
                if let Some((m, _k, _n)) = self.matmul_dims() {
                    let threshold = (sa_width / 4).max(1);
                    if m < threshold {
                        return ExecutionUnit::Vu;
                    }
                }
                ExecutionUnit::Sa
            }
            OpKind::Elementwise { .. } | OpKind::Softmax { .. } | OpKind::LayerNorm { .. } => {
                ExecutionUnit::Vu
            }
            OpKind::EmbeddingLookup { .. } => ExecutionUnit::Hbm,
            OpKind::Collective { .. } => ExecutionUnit::Ici,
        }
    }

    /// Default execution unit assuming a 128-wide systolic array.
    #[must_use]
    pub fn execution_unit(&self) -> ExecutionUnit {
        self.execution_unit_for(128)
    }

    /// Whether the operator is an inter-chip collective.
    #[must_use]
    pub fn is_collective(&self) -> bool {
        matches!(self.kind, OpKind::Collective { .. })
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} {} ({:?})", self.id, self.name, self.execution_unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(m: u64, k: u64, n: u64) -> Operator {
        Operator::new(
            "mm",
            OpKind::MatMul { batch: 1, m, k, n, weights_resident: true },
            DataType::Bf16,
        )
    }

    #[test]
    fn matmul_flops_and_bytes() {
        let op = matmul(128, 256, 512);
        assert_eq!(op.flops(), 2.0 * 128.0 * 256.0 * 512.0);
        // reads: 128*256*2 + 256*512*2 ; writes: 128*512*2
        assert_eq!(op.hbm_read_bytes(), 128 * 256 * 2 + 256 * 512 * 2);
        assert_eq!(op.hbm_write_bytes(), 128 * 512 * 2);
        assert_eq!(op.matmul_dims(), Some((128, 256, 512)));
        assert_eq!(op.execution_unit(), ExecutionUnit::Sa);
    }

    #[test]
    fn activation_matmul_reads_both_operands_per_batch() {
        let op = Operator::new(
            "attn_scores",
            OpKind::MatMul { batch: 32, m: 128, k: 64, n: 128, weights_resident: false },
            DataType::Bf16,
        );
        assert_eq!(op.hbm_read_bytes(), 32 * (128 * 64 + 64 * 128) * 2);
    }

    #[test]
    fn conv_lowered_to_matmul_dims() {
        let op = Operator::new(
            "conv",
            OpKind::Conv2d { batch: 2, h_out: 32, w_out: 32, c_in: 64, c_out: 128, kh: 3, kw: 3 },
            DataType::Bf16,
        );
        assert_eq!(op.matmul_dims(), Some((2 * 32 * 32, 64 * 9, 128)));
        assert_eq!(op.execution_unit(), ExecutionUnit::Sa);
        assert!(op.flops() > 0.0);
    }

    #[test]
    fn tiny_matmul_maps_to_vu() {
        let op = matmul(8, 16, 8);
        assert_eq!(op.execution_unit(), ExecutionUnit::Vu);
        // With a smaller SA it would still be an SA op.
        assert_eq!(op.execution_unit_for(16), ExecutionUnit::Sa);
    }

    #[test]
    fn vector_ops_map_to_vu() {
        let sm = Operator::new("softmax", OpKind::Softmax { rows: 64, cols: 4096 }, DataType::Bf16);
        assert_eq!(sm.execution_unit(), ExecutionUnit::Vu);
        assert_eq!(sm.flops(), 5.0 * 64.0 * 4096.0);
        let ln = Operator::new("ln", OpKind::LayerNorm { rows: 64, cols: 8192 }, DataType::Bf16);
        assert_eq!(ln.execution_unit(), ExecutionUnit::Vu);
        assert_eq!(ln.hbm_read_bytes(), ln.hbm_write_bytes());
    }

    #[test]
    fn embedding_lookup_is_hbm_bound() {
        let op = Operator::new(
            "emb",
            OpKind::EmbeddingLookup { lookups: 1024, dim: 128, table_bytes: 20 << 30 },
            DataType::F32,
        );
        assert_eq!(op.execution_unit(), ExecutionUnit::Hbm);
        assert!(op.arithmetic_intensity() < 1.0);
        assert_eq!(op.hbm_read_bytes(), 1024 * 128 * 4);
    }

    #[test]
    fn collectives_only_touch_ici() {
        let op = Operator::new(
            "ar",
            OpKind::Collective { kind: CollectiveKind::AllReduce, bytes_per_chip: 1 << 20 },
            DataType::Bf16,
        );
        assert_eq!(op.execution_unit(), ExecutionUnit::Ici);
        assert_eq!(op.hbm_bytes(), 0);
        assert_eq!(op.ici_bytes(), 1 << 20);
        assert_eq!(op.flops(), 0.0);
        assert!(op.arithmetic_intensity().is_infinite());
        assert!(op.is_collective());
    }

    #[test]
    fn arithmetic_intensity_ordering() {
        // A large square matmul is compute-bound; an elementwise op is not.
        let mm = matmul(4096, 4096, 4096);
        let ew = Operator::new(
            "add",
            OpKind::Elementwise { elements: 1 << 20, flops_per_element: 1, num_inputs: 2 },
            DataType::Bf16,
        );
        assert!(mm.arithmetic_intensity() > 100.0);
        assert!(ew.arithmetic_intensity() < 1.0);
    }

    #[test]
    fn collective_labels() {
        assert_eq!(CollectiveKind::AllReduce.to_string(), "AllReduce");
        assert_eq!(CollectiveKind::PointToPoint.label(), "P2P");
    }
}
