//! Operator graph: the ordered sequence of tensor operators that make up
//! one unit of work (a training iteration, a prefill pass, one decode step,
//! one DLRM batch, or one diffusion step).
//!
//! NPU compilers assume a static computation graph with known shapes
//! (paper §4.3); the graph here is a topologically ordered sequence, which
//! is what the statically scheduled, in-order NPU pipeline executes.

use serde::{Deserialize, Serialize};

use crate::op::{ExecutionUnit, Operator};

/// An ordered, statically shaped operator graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorGraph {
    name: String,
    operators: Vec<Operator>,
}

impl OperatorGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        OperatorGraph { name: name.into(), operators: Vec::new() }
    }

    /// Name of the graph (workload + phase).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operator, assigning its id, and returns the id.
    pub fn push(&mut self, mut op: Operator) -> usize {
        let id = self.operators.len();
        op.id = id;
        self.operators.push(op);
        id
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Whether the graph contains no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Operators in execution order.
    #[must_use]
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Operator with a given id.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&Operator> {
        self.operators.get(id)
    }

    /// Iterator over the operators in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &Operator> {
        self.operators.iter()
    }

    /// Total FLOPs of the graph.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.operators.iter().map(Operator::flops).sum()
    }

    /// Total HBM traffic of the graph in bytes.
    #[must_use]
    pub fn total_hbm_bytes(&self) -> f64 {
        self.operators.iter().map(|op| op.hbm_bytes() as f64).sum()
    }

    /// Total ICI traffic of the graph in bytes per chip.
    #[must_use]
    pub fn total_ici_bytes(&self) -> f64 {
        self.operators.iter().map(|op| op.ici_bytes() as f64).sum()
    }

    /// Number of operators assigned to a given execution unit (using the
    /// default 128-wide systolic array mapping rule).
    #[must_use]
    pub fn count_by_unit(&self, unit: ExecutionUnit) -> usize {
        self.operators.iter().filter(|op| op.execution_unit() == unit).count()
    }

    /// Fraction of operators that are collectives.
    #[must_use]
    pub fn collective_fraction(&self) -> f64 {
        if self.operators.is_empty() {
            return 0.0;
        }
        self.operators.iter().filter(|op| op.is_collective()).count() as f64
            / self.operators.len() as f64
    }

    /// Merges another graph after this one (used to build per-microbatch or
    /// multi-layer programs); ids are reassigned.
    pub fn extend_from(&mut self, other: &OperatorGraph) {
        for op in other.iter() {
            self.push(op.clone());
        }
    }
}

impl Extend<Operator> for OperatorGraph {
    fn extend<T: IntoIterator<Item = Operator>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;
    use crate::op::{CollectiveKind, OpKind};

    fn sample() -> OperatorGraph {
        let mut g = OperatorGraph::new("sample");
        g.push(Operator::new(
            "mm",
            OpKind::MatMul { batch: 1, m: 256, k: 256, n: 256, weights_resident: true },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "relu",
            OpKind::Elementwise { elements: 256 * 256, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "ar",
            OpKind::Collective { kind: CollectiveKind::AllReduce, bytes_per_chip: 1 << 20 },
            DataType::Bf16,
        ));
        g
    }

    #[test]
    fn ids_are_assigned_in_order() {
        let g = sample();
        assert_eq!(g.len(), 3);
        for (i, op) in g.iter().enumerate() {
            assert_eq!(op.id, i);
        }
        assert_eq!(g.get(1).unwrap().name, "relu");
        assert!(g.get(99).is_none());
    }

    #[test]
    fn totals_accumulate() {
        let g = sample();
        assert!(g.total_flops() > 2.0 * 256.0 * 256.0 * 256.0);
        assert!(g.total_hbm_bytes() > 0.0);
        assert_eq!(g.total_ici_bytes(), (1 << 20) as f64);
    }

    #[test]
    fn unit_counting() {
        let g = sample();
        assert_eq!(g.count_by_unit(ExecutionUnit::Sa), 1);
        assert_eq!(g.count_by_unit(ExecutionUnit::Vu), 1);
        assert_eq!(g.count_by_unit(ExecutionUnit::Ici), 1);
        assert!((g.collective_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extend_reassigns_ids() {
        let mut g = sample();
        let other = sample();
        g.extend_from(&other);
        assert_eq!(g.len(), 6);
        assert_eq!(g.operators()[5].id, 5);
    }

    #[test]
    fn empty_graph() {
        let g = OperatorGraph::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.collective_fraction(), 0.0);
        assert_eq!(g.total_flops(), 0.0);
    }
}
