//! Operator graph: the tensor operators that make up one unit of work (a
//! training iteration, a prefill pass, one decode step, one DLRM batch, or
//! one diffusion step), together with explicit producer→consumer edges.
//!
//! NPU compilers assume a static computation graph with known shapes
//! (paper §4.3). Operator ids are assigned in insertion order and every
//! edge points from a smaller id to a larger one, so the id order *is* a
//! topological order — which is what the statically scheduled, in-order
//! NPU pipeline issues from. [`OperatorGraph::push`] preserves the
//! historical chain semantics (each operator depends on the previous one);
//! [`OperatorGraph::push_source`], [`OperatorGraph::push_with_producers`],
//! and [`OperatorGraph::add_edge`] express true DAG structure — fan-out
//! (one producer feeding several independent consumers) and fan-in (a
//! join such as DLRM's all-to-all over every per-table gather).

use serde::{Deserialize, Serialize};

use crate::op::{ExecutionUnit, Operator};

/// A statically shaped operator DAG whose id order is a topological order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorGraph {
    name: String,
    operators: Vec<Operator>,
    /// `producers[i]`: sorted, deduplicated ids the operator `i` consumes
    /// from (empty = source).
    producers: Vec<Vec<usize>>,
}

impl OperatorGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        OperatorGraph { name: name.into(), operators: Vec::new(), producers: Vec::new() }
    }

    /// Name of the graph (workload + phase).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an operator *in chain position*: it depends on the
    /// previously pushed operator (if any), assigning and returning its id.
    pub fn push(&mut self, op: Operator) -> usize {
        let producers =
            if self.operators.is_empty() { Vec::new() } else { vec![self.operators.len() - 1] };
        self.push_with_producers(op, producers)
    }

    /// Appends an operator with no producers (a DAG source), e.g. an
    /// embedding gather that depends on nothing but its table.
    pub fn push_source(&mut self, op: Operator) -> usize {
        self.push_with_producers(op, Vec::new())
    }

    /// Appends an operator with an explicit producer set and returns its
    /// id. Producer ids are sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if a producer id does not refer to an already-pushed
    /// operator — edges must point backwards so the id order stays a
    /// topological order.
    pub fn push_with_producers(&mut self, mut op: Operator, mut producers: Vec<usize>) -> usize {
        let id = self.operators.len();
        producers.sort_unstable();
        producers.dedup();
        if let Some(&max) = producers.last() {
            assert!(max < id, "operator {id} ({}): producer {max} is not an earlier id", op.name);
        }
        op.id = id;
        self.operators.push(op);
        self.producers.push(producers);
        id
    }

    /// Adds a producer edge `from → to` between existing operators.
    ///
    /// # Panics
    ///
    /// Panics unless `from < to < len`: edges must point forwards in id
    /// order (the validated topological order) and reference real ids.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(to < self.operators.len(), "edge {from}->{to}: {to} is not an operator id");
        assert!(from < to, "edge {from}->{to}: edges must follow the topological id order");
        let list =
            self.producers.get_mut(to).expect("graph invariant: one producer list per operator");
        // `contains` + re-sort rather than binary-search insertion: a
        // graph deserialized from external data may carry an unsorted
        // list, and this normalizes it instead of corrupting it.
        if !list.contains(&from) {
            list.push(from);
            list.sort_unstable();
        }
    }

    /// Producer ids of one operator (sorted, deduplicated; empty for a
    /// source).
    #[must_use]
    pub fn producers_of(&self, id: usize) -> &[usize] {
        self.producers.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Consumer ids of one operator (ascending). Scans every producer
    /// list with `contains` rather than assuming sortedness, so the query
    /// stays correct even on graphs deserialized from external data.
    #[must_use]
    pub fn consumers_of(&self, id: usize) -> Vec<usize> {
        (0..self.operators.len()).filter(|&c| self.producers[c].contains(&id)).collect()
    }

    /// Ids of the source operators (no producers), in id order.
    #[must_use]
    pub fn sources(&self) -> Vec<usize> {
        (0..self.operators.len()).filter(|&id| self.producers[id].is_empty()).collect()
    }

    /// Ids of the sink operators (no consumers), in id order. A graph of
    /// independent request subgraphs has one (or more) per request; the
    /// batch-merge operator fans in over exactly this set.
    #[must_use]
    pub fn sinks(&self) -> Vec<usize> {
        let mut has_consumer = vec![false; self.operators.len()];
        for producers in &self.producers {
            for &p in producers {
                if let Some(slot) = has_consumer.get_mut(p) {
                    *slot = true;
                }
            }
        }
        (0..self.operators.len()).filter(|&id| !has_consumer[id]).collect()
    }

    /// A validated topological order of the graph.
    ///
    /// By construction the id order is topological; this method re-derives
    /// the order with Kahn's algorithm (smallest ready id first, so the
    /// result is exactly `0..len`) and asserts that every edge was
    /// honoured — the guard that protects deserialized or hand-assembled
    /// graphs.
    ///
    /// # Panics
    ///
    /// Panics if the edge set contains a cycle or an out-of-range id.
    #[must_use]
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.operators.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, producers) in self.producers.iter().enumerate() {
            for &p in producers {
                assert!(p < n, "operator {id}: producer {p} out of range");
                indegree[id] += 1;
                consumers[p].push(id);
            }
        }
        let mut ready: std::collections::BTreeSet<usize> =
            (0..n).filter(|&id| indegree[id] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&id) = ready.iter().next() {
            ready.remove(&id);
            order.push(id);
            for &c in &consumers[id] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.insert(c);
                }
            }
        }
        assert_eq!(order.len(), n, "operator graph contains a dependency cycle");
        order
    }

    /// Length of the critical path through the DAG when each operator
    /// costs `cost(op)` — the lower bound no schedule can beat.
    ///
    /// Walks the validated [`OperatorGraph::topological_order`], so even a
    /// hand-assembled or deserialized graph with edges that violate the id
    /// order is evaluated correctly (or panics on a cycle) instead of
    /// silently undercounting.
    #[must_use]
    pub fn critical_path_cost(&self, cost: impl Fn(&Operator) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.operators.len()];
        for id in self.topological_order() {
            let ready = self.producers[id].iter().map(|&p| finish[p]).fold(0.0f64, f64::max);
            finish[id] = ready + cost(&self.operators[id]);
        }
        finish.iter().copied().fold(0.0f64, f64::max)
    }

    /// Number of operators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Whether the graph contains no operators.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Operators in id (topological) order.
    #[must_use]
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Operator with a given id.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&Operator> {
        self.operators.get(id)
    }

    /// Iterator over the operators in id (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = &Operator> {
        self.operators.iter()
    }

    /// Total FLOPs of the graph.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.operators.iter().map(Operator::flops).sum()
    }

    /// Total HBM traffic of the graph in bytes.
    #[must_use]
    pub fn total_hbm_bytes(&self) -> f64 {
        self.operators.iter().map(|op| op.hbm_bytes() as f64).sum()
    }

    /// Total ICI traffic of the graph in bytes per chip.
    #[must_use]
    pub fn total_ici_bytes(&self) -> f64 {
        self.operators.iter().map(|op| op.ici_bytes() as f64).sum()
    }

    /// Number of operators assigned to a given execution unit (using the
    /// default 128-wide systolic array mapping rule).
    #[must_use]
    pub fn count_by_unit(&self, unit: ExecutionUnit) -> usize {
        self.operators.iter().filter(|op| op.execution_unit() == unit).count()
    }

    /// Fraction of operators that are collectives.
    #[must_use]
    pub fn collective_fraction(&self) -> f64 {
        if self.operators.is_empty() {
            return 0.0;
        }
        self.operators.iter().filter(|op| op.is_collective()).count() as f64
            / self.operators.len() as f64
    }

    /// Appends another graph as an *independent subgraph*: ids are
    /// reassigned and the appended producer edges are remapped by the id
    /// offset, so `other`'s sources stay sources (no serial edge is added
    /// between the two graphs). Returns the id range of the appended
    /// operators.
    ///
    /// This is what lowers a multi-request batch into independent
    /// per-request chains: repeated `extend_from` calls followed by a
    /// fan-in operator over each subgraph's sink.
    pub fn extend_from(&mut self, other: &OperatorGraph) -> std::ops::Range<usize> {
        let base = self.operators.len();
        for (op, producers) in other.operators.iter().zip(&other.producers) {
            self.push_with_producers(op.clone(), producers.iter().map(|&p| p + base).collect());
        }
        base..self.operators.len()
    }
}

impl Extend<Operator> for OperatorGraph {
    fn extend<T: IntoIterator<Item = Operator>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;
    use crate::op::{CollectiveKind, OpKind};

    fn sample() -> OperatorGraph {
        let mut g = OperatorGraph::new("sample");
        g.push(Operator::new(
            "mm",
            OpKind::MatMul { batch: 1, m: 256, k: 256, n: 256, weights_resident: true },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "relu",
            OpKind::Elementwise { elements: 256 * 256, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        ));
        g.push(Operator::new(
            "ar",
            OpKind::Collective { kind: CollectiveKind::AllReduce, bytes_per_chip: 1 << 20 },
            DataType::Bf16,
        ));
        g
    }

    fn vu_op(name: &str) -> Operator {
        Operator::new(
            name,
            OpKind::Elementwise { elements: 1024, flops_per_element: 1, num_inputs: 1 },
            DataType::Bf16,
        )
    }

    #[test]
    fn ids_are_assigned_in_order() {
        let g = sample();
        assert_eq!(g.len(), 3);
        for (i, op) in g.iter().enumerate() {
            assert_eq!(op.id, i);
        }
        assert_eq!(g.get(1).unwrap().name, "relu");
        assert!(g.get(99).is_none());
    }

    #[test]
    fn push_preserves_chain_edges() {
        let g = sample();
        assert_eq!(g.producers_of(0), &[] as &[usize]);
        assert_eq!(g.producers_of(1), &[0]);
        assert_eq!(g.producers_of(2), &[1]);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.consumers_of(0), vec![1]);
        assert_eq!(g.topological_order(), vec![0, 1, 2]);
    }

    #[test]
    fn explicit_edges_build_a_diamond() {
        let mut g = OperatorGraph::new("diamond");
        let a = g.push_source(vu_op("a"));
        let b = g.push_with_producers(vu_op("b"), vec![a]);
        let c = g.push_with_producers(vu_op("c"), vec![a]);
        let d = g.push_with_producers(vu_op("d"), vec![b, c]);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.consumers_of(a), vec![b, c]);
        assert_eq!(g.producers_of(d), &[b, c]);
        assert_eq!(g.topological_order(), vec![a, b, c, d]);
    }

    #[test]
    fn add_edge_deduplicates_and_sorts() {
        let mut g = OperatorGraph::new("edges");
        let a = g.push_source(vu_op("a"));
        let b = g.push_source(vu_op("b"));
        let c = g.push_source(vu_op("c"));
        g.add_edge(b, c);
        g.add_edge(a, c);
        g.add_edge(b, c); // duplicate: ignored
        assert_eq!(g.producers_of(c), &[a, b]);
        assert_eq!(g.sources(), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "edges must follow the topological id order")]
    fn backward_edges_are_rejected() {
        let mut g = OperatorGraph::new("bad");
        g.push_source(vu_op("a"));
        g.push_source(vu_op("b"));
        g.add_edge(1, 0);
    }

    #[test]
    fn critical_path_ignores_parallel_branches() {
        let mut g = OperatorGraph::new("cp");
        let a = g.push_source(vu_op("a"));
        let b = g.push_with_producers(vu_op("b"), vec![a]);
        let c = g.push_with_producers(vu_op("c"), vec![a]);
        g.push_with_producers(vu_op("d"), vec![b, c]);
        // Unit costs: the path a -> {b|c} -> d has length 3, not 4.
        assert!((g.critical_path_cost(|_| 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn totals_accumulate() {
        let g = sample();
        assert!(g.total_flops() > 2.0 * 256.0 * 256.0 * 256.0);
        assert!(g.total_hbm_bytes() > 0.0);
        assert_eq!(g.total_ici_bytes(), (1 << 20) as f64);
    }

    #[test]
    fn unit_counting() {
        let g = sample();
        assert_eq!(g.count_by_unit(ExecutionUnit::Sa), 1);
        assert_eq!(g.count_by_unit(ExecutionUnit::Vu), 1);
        assert_eq!(g.count_by_unit(ExecutionUnit::Ici), 1);
        assert!((g.collective_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extend_reassigns_ids_and_remaps_edges() {
        let mut g = sample();
        let mut other = OperatorGraph::new("dag");
        let x = other.push_source(vu_op("x"));
        let y = other.push_source(vu_op("y"));
        other.push_with_producers(vu_op("join"), vec![x, y]);
        let range = g.extend_from(&other);
        assert_eq!(range, 3..6);
        assert_eq!(g.len(), 6);
        assert_eq!(g.operators()[5].id, 5);
        // The appended subgraph is independent: its sources stay sources
        // and its internal fan-in edge is remapped by the offset.
        assert_eq!(g.producers_of(3), &[] as &[usize]);
        assert_eq!(g.producers_of(4), &[] as &[usize]);
        assert_eq!(g.producers_of(5), &[3, 4]);
        assert_eq!(g.sources(), vec![0, 3, 4]);
        assert_eq!(g.topological_order().len(), 6);
    }

    #[test]
    fn empty_graph() {
        let g = OperatorGraph::new("empty");
        assert!(g.is_empty());
        assert_eq!(g.collective_fraction(), 0.0);
        assert_eq!(g.total_flops(), 0.0);
        assert!(g.topological_order().is_empty());
        assert!(g.sources().is_empty());
    }
}
