//! Large-language-model workload generator (Llama family, paper Table 1).
//!
//! Produces the per-chip operator graph of one unit of work:
//!
//! * **Training**: forward + backward pass over one batch (default batch 32,
//!   sequence length 4096) plus gradient all-reduce across data-parallel
//!   replicas.
//! * **Prefill**: forward pass over the full input sequence (default 4096
//!   tokens) for one request.
//! * **Decode**: forward pass for a single output token with the KV cache
//!   resident in HBM (default 512 output tokens per request, each token one
//!   graph execution).
//!
//! Tensor parallelism shards attention heads and FFN columns and inserts
//! all-reduces; pipeline parallelism shards layers and inserts point-to-point
//! activations transfers; data parallelism shards the batch and (for
//! training) all-reduces gradients.

use serde::{Deserialize, Serialize};

use npu_arch::ParallelismConfig;

use crate::dtype::DataType;
use crate::graph::OperatorGraph;
use crate::op::{CollectiveKind, OpKind, Operator};

/// The Llama model variants evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum LlamaModel {
    /// Llama3-8B.
    Llama3_8B,
    /// Llama2-13B.
    Llama2_13B,
    /// Llama3-70B.
    Llama3_70B,
    /// Llama3.1-405B.
    Llama3_405B,
}

impl LlamaModel {
    /// All evaluated model sizes in ascending parameter count.
    pub const ALL: [LlamaModel; 4] = [
        LlamaModel::Llama3_8B,
        LlamaModel::Llama2_13B,
        LlamaModel::Llama3_70B,
        LlamaModel::Llama3_405B,
    ];

    /// Short label used in figures ("8B", "13B", "70B", "405B").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LlamaModel::Llama3_8B => "8B",
            LlamaModel::Llama2_13B => "13B",
            LlamaModel::Llama3_70B => "70B",
            LlamaModel::Llama3_405B => "405B",
        }
    }

    /// Full model name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LlamaModel::Llama3_8B => "Llama3-8B",
            LlamaModel::Llama2_13B => "Llama2-13B",
            LlamaModel::Llama3_70B => "Llama3-70B",
            LlamaModel::Llama3_405B => "Llama3.1-405B",
        }
    }

    /// The architectural configuration of the model.
    #[must_use]
    pub fn config(self) -> LlamaConfig {
        match self {
            LlamaModel::Llama3_8B => LlamaConfig {
                model: self,
                num_layers: 32,
                hidden: 4096,
                num_heads: 32,
                num_kv_heads: 8,
                head_dim: 128,
                ffn_dim: 14336,
                vocab_size: 128_256,
            },
            LlamaModel::Llama2_13B => LlamaConfig {
                model: self,
                num_layers: 40,
                hidden: 5120,
                num_heads: 40,
                num_kv_heads: 40,
                head_dim: 128,
                ffn_dim: 13824,
                vocab_size: 32_000,
            },
            LlamaModel::Llama3_70B => LlamaConfig {
                model: self,
                num_layers: 80,
                hidden: 8192,
                num_heads: 64,
                num_kv_heads: 8,
                head_dim: 128,
                ffn_dim: 28672,
                vocab_size: 128_256,
            },
            LlamaModel::Llama3_405B => LlamaConfig {
                model: self,
                num_layers: 126,
                hidden: 16384,
                num_heads: 128,
                num_kv_heads: 8,
                head_dim: 128,
                ffn_dim: 53248,
                vocab_size: 128_256,
            },
        }
    }
}

impl std::fmt::Display for LlamaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution phase of an LLM workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlmPhase {
    /// One training iteration (forward + backward + optimizer).
    Training,
    /// Prefill: process the full input prompt of one request.
    Prefill,
    /// Decode: generate one output token with the KV cache in HBM.
    Decode,
}

impl LlmPhase {
    /// All phases.
    pub const ALL: [LlmPhase; 3] = [LlmPhase::Training, LlmPhase::Prefill, LlmPhase::Decode];

    /// Label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LlmPhase::Training => "Training",
            LlmPhase::Prefill => "Prefill",
            LlmPhase::Decode => "Decode",
        }
    }
}

impl std::fmt::Display for LlmPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Transformer architecture parameters of a Llama model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlamaConfig {
    /// Which model this configuration belongs to.
    pub model: LlamaModel,
    /// Number of transformer layers.
    pub num_layers: u64,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// Number of attention (query) heads.
    pub num_heads: u64,
    /// Number of key/value heads (grouped-query attention).
    pub num_kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Feed-forward intermediate dimension.
    pub ffn_dim: u64,
    /// Vocabulary size.
    pub vocab_size: u64,
}

impl LlamaConfig {
    /// Total parameter count of the model (weights only).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let attn = self.hidden * self.num_heads * self.head_dim // Q
            + 2 * self.hidden * self.num_kv_heads * self.head_dim // K, V
            + self.num_heads * self.head_dim * self.hidden; // O
        let ffn = 3 * self.hidden * self.ffn_dim; // gate, up, down
        let per_layer = attn + ffn + 2 * self.hidden; // + 2 norms
        per_layer * self.num_layers + 2 * self.vocab_size * self.hidden // embed + lm head
    }

    /// Model weight footprint in bytes for a given data type.
    #[must_use]
    pub fn weight_bytes(&self, dtype: DataType) -> u64 {
        self.param_count() * dtype.size_bytes()
    }

    /// KV-cache bytes per token (both K and V across all layers).
    #[must_use]
    pub fn kv_cache_bytes_per_token(&self, dtype: DataType) -> u64 {
        2 * self.num_layers * self.num_kv_heads * self.head_dim * dtype.size_bytes()
    }

    /// Approximate FLOPs of one forward pass over `tokens` tokens with a
    /// context of `context` tokens (the standard 2·params·tokens estimate
    /// plus attention score/context terms).
    #[must_use]
    pub fn forward_flops(&self, tokens: u64, context: u64) -> f64 {
        let dense = 2.0 * self.param_count() as f64 * tokens as f64;
        let attn = 4.0
            * self.num_layers as f64
            * self.num_heads as f64
            * self.head_dim as f64
            * tokens as f64
            * context as f64;
        dense + attn
    }
}

/// Parameters of one LLM workload instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmWorkload {
    /// Model variant.
    pub model: LlamaModel,
    /// Phase (training / prefill / decode).
    pub phase: LlmPhase,
    /// Batch size (sequences for training/prefill, concurrent requests for decode).
    pub batch: u64,
    /// Input sequence length (training/prefill) or current context length (decode).
    pub seq_len: u64,
    /// Output sequence length (decode only; tokens generated per request).
    pub output_len: u64,
    /// Compute data type.
    pub dtype: DataType,
}

impl LlmWorkload {
    /// Default configuration from Table 1 for a model and phase.
    ///
    /// Training: batch 32, sequence 4096. Inference: batch 1, input 4096,
    /// output 512.
    #[must_use]
    pub fn default_config(model: LlamaModel, phase: LlmPhase) -> Self {
        match phase {
            LlmPhase::Training => LlmWorkload {
                model,
                phase,
                batch: 32,
                seq_len: 4096,
                output_len: 0,
                dtype: DataType::Bf16,
            },
            LlmPhase::Prefill => LlmWorkload {
                model,
                phase,
                batch: 1,
                seq_len: 4096,
                output_len: 512,
                dtype: DataType::Bf16,
            },
            LlmPhase::Decode => LlmWorkload {
                model,
                phase,
                batch: 1,
                seq_len: 4096,
                output_len: 512,
                dtype: DataType::Bf16,
            },
        }
    }

    /// Returns a copy with a different batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Builds the per-chip operator graph of one unit of work under the
    /// given parallelism configuration.
    ///
    /// The graph represents the work executed by a single chip:
    /// `layers / pipeline` transformer layers over `batch / data` sequences
    /// with attention heads and FFN columns sharded `tensor` ways.
    #[must_use]
    pub fn build_graph(&self, parallelism: &ParallelismConfig) -> OperatorGraph {
        let cfg = self.model.config();
        let tp = parallelism.tensor as u64;
        let pp = parallelism.pipeline as u64;
        let dp = parallelism.data as u64;

        let local_batch = (self.batch / dp).max(1);
        let layers_per_stage = (cfg.num_layers / pp).max(1);

        let mut graph = OperatorGraph::new(format!(
            "{}-{}-b{}-{}",
            cfg.model.name(),
            self.phase.label(),
            self.batch,
            parallelism
        ));

        match self.phase {
            LlmPhase::Training => {
                self.build_dense_pass(
                    &mut graph,
                    &cfg,
                    local_batch,
                    self.seq_len,
                    tp,
                    pp,
                    layers_per_stage,
                    true,
                );
                // Gradient all-reduce across data-parallel replicas (per
                // iteration, over this stage's shard of the parameters).
                if dp > 1 {
                    let grad_bytes = cfg.param_count() / (tp * pp) * self.dtype.size_bytes();
                    graph.push(Operator::new(
                        "grad_allreduce",
                        OpKind::Collective {
                            kind: CollectiveKind::AllReduce,
                            bytes_per_chip: grad_bytes,
                        },
                        self.dtype,
                    ));
                }
                // Optimizer update (elementwise over the local parameter shard).
                let local_params = cfg.param_count() / (tp * pp);
                graph.push(Operator::new(
                    "optimizer_update",
                    OpKind::Elementwise {
                        elements: local_params,
                        flops_per_element: 4,
                        num_inputs: 3,
                    },
                    DataType::F32,
                ));
            }
            LlmPhase::Prefill => {
                self.build_dense_pass(
                    &mut graph,
                    &cfg,
                    local_batch,
                    self.seq_len,
                    tp,
                    pp,
                    layers_per_stage,
                    false,
                );
            }
            LlmPhase::Decode => {
                self.build_decode_step(&mut graph, &cfg, local_batch, tp, pp, layers_per_stage);
            }
        }
        graph
    }

    /// Forward (and optionally backward) pass over `tokens_per_seq` tokens.
    #[allow(clippy::too_many_arguments)]
    fn build_dense_pass(
        &self,
        graph: &mut OperatorGraph,
        cfg: &LlamaConfig,
        local_batch: u64,
        tokens_per_seq: u64,
        tp: u64,
        pp: u64,
        layers_per_stage: u64,
        with_backward: bool,
    ) {
        let dt = self.dtype;
        let tokens = local_batch * tokens_per_seq;
        let heads_local = (cfg.num_heads / tp).max(1);
        let kv_heads_local = (cfg.num_kv_heads / tp).max(1);
        let ffn_local = (cfg.ffn_dim / tp).max(1);
        // Forward + backward passes: the backward pass performs roughly two
        // matmuls (input gradient and weight gradient) per forward matmul.
        let passes: &[(&str, u64)] =
            if with_backward { &[("fwd", 1), ("bwd", 2)] } else { &[("fwd", 1)] };

        // Input embedding lookup on the first stage.
        graph.push(Operator::new(
            "embed_lookup",
            OpKind::EmbeddingLookup {
                lookups: tokens,
                dim: cfg.hidden,
                table_bytes: cfg.vocab_size * cfg.hidden * dt.size_bytes(),
            },
            dt,
        ));

        for layer in 0..layers_per_stage {
            for &(pass, mults) in passes {
                for rep in 0..mults {
                    let tag = if mults > 1 { format!("{pass}{rep}") } else { pass.to_string() };
                    self.push_layer(
                        graph,
                        cfg,
                        &tag,
                        layer,
                        tokens,
                        tokens_per_seq,
                        heads_local,
                        kv_heads_local,
                        ffn_local,
                        tp,
                    );
                }
            }
        }

        // Final LM head on the last stage (forward only; its backward is
        // folded into the pass multiplier above for simplicity).
        graph.push(Operator::new(
            "lm_head",
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: cfg.hidden,
                n: (cfg.vocab_size / tp).max(1),
                weights_resident: true,
            },
            dt,
        ));

        // Pipeline activation transfer to the next stage.
        if pp > 1 {
            graph.push(Operator::new(
                "pp_send_activations",
                OpKind::Collective {
                    kind: CollectiveKind::PointToPoint,
                    bytes_per_chip: tokens * cfg.hidden * dt.size_bytes(),
                },
                dt,
            ));
        }
    }

    /// One transformer layer over `tokens` tokens (self-attention + FFN).
    #[allow(clippy::too_many_arguments)]
    fn push_layer(
        &self,
        graph: &mut OperatorGraph,
        cfg: &LlamaConfig,
        tag: &str,
        layer: u64,
        tokens: u64,
        seq: u64,
        heads_local: u64,
        kv_heads_local: u64,
        ffn_local: u64,
        tp: u64,
    ) {
        let dt = self.dtype;
        let batch_seqs = (tokens / seq).max(1);
        let prefix = format!("layer{layer}.{tag}");

        graph.push(Operator::new(
            format!("{prefix}.input_norm"),
            OpKind::LayerNorm { rows: tokens, cols: cfg.hidden },
            dt,
        ));
        // Fused QKV projection.
        let qkv_cols = (heads_local + 2 * kv_heads_local) * cfg.head_dim;
        graph.push(Operator::new(
            format!("{prefix}.qkv_proj"),
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: cfg.hidden,
                n: qkv_cols,
                weights_resident: true,
            },
            dt,
        ));
        // Attention scores: one matmul per (sequence, head).
        graph.push(Operator::new(
            format!("{prefix}.attn_scores"),
            OpKind::MatMul {
                batch: batch_seqs * heads_local,
                m: seq,
                k: cfg.head_dim,
                n: seq,
                weights_resident: false,
            },
            dt,
        ));
        graph.push(Operator::new(
            format!("{prefix}.attn_softmax"),
            OpKind::Softmax { rows: batch_seqs * heads_local * seq, cols: seq },
            dt,
        ));
        graph.push(Operator::new(
            format!("{prefix}.attn_context"),
            OpKind::MatMul {
                batch: batch_seqs * heads_local,
                m: seq,
                k: seq,
                n: cfg.head_dim,
                weights_resident: false,
            },
            dt,
        ));
        graph.push(Operator::new(
            format!("{prefix}.out_proj"),
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: heads_local * cfg.head_dim,
                n: cfg.hidden,
                weights_resident: true,
            },
            dt,
        ));
        if tp > 1 {
            graph.push(Operator::new(
                format!("{prefix}.attn_allreduce"),
                OpKind::Collective {
                    kind: CollectiveKind::AllReduce,
                    bytes_per_chip: tokens * cfg.hidden * dt.size_bytes(),
                },
                dt,
            ));
        }
        graph.push(Operator::new(
            format!("{prefix}.post_norm"),
            OpKind::LayerNorm { rows: tokens, cols: cfg.hidden },
            dt,
        ));
        // SwiGLU FFN: gate and up projections, elementwise activation, down projection.
        graph.push(Operator::new(
            format!("{prefix}.ffn_gate"),
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: cfg.hidden,
                n: ffn_local,
                weights_resident: true,
            },
            dt,
        ));
        graph.push(Operator::new(
            format!("{prefix}.ffn_up"),
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: cfg.hidden,
                n: ffn_local,
                weights_resident: true,
            },
            dt,
        ));
        graph.push(Operator::new(
            format!("{prefix}.ffn_silu_mul"),
            OpKind::Elementwise {
                elements: tokens * ffn_local,
                flops_per_element: 5,
                num_inputs: 2,
            },
            dt,
        ));
        graph.push(Operator::new(
            format!("{prefix}.ffn_down"),
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: ffn_local,
                n: cfg.hidden,
                weights_resident: true,
            },
            dt,
        ));
        if tp > 1 {
            graph.push(Operator::new(
                format!("{prefix}.ffn_allreduce"),
                OpKind::Collective {
                    kind: CollectiveKind::AllReduce,
                    bytes_per_chip: tokens * cfg.hidden * dt.size_bytes(),
                },
                dt,
            ));
        }
        graph.push(Operator::new(
            format!("{prefix}.residual_add"),
            OpKind::Elementwise {
                elements: tokens * cfg.hidden,
                flops_per_element: 1,
                num_inputs: 2,
            },
            dt,
        ));
    }

    /// One auto-regressive decode step (one output token per request).
    fn build_decode_step(
        &self,
        graph: &mut OperatorGraph,
        cfg: &LlamaConfig,
        local_batch: u64,
        tp: u64,
        pp: u64,
        layers_per_stage: u64,
    ) {
        let dt = self.dtype;
        let context = self.seq_len + self.output_len / 2; // average context during decoding
        let heads_local = (cfg.num_heads / tp).max(1);
        let kv_heads_local = (cfg.num_kv_heads / tp).max(1);
        let ffn_local = (cfg.ffn_dim / tp).max(1);
        let tokens = local_batch; // one new token per request

        for layer in 0..layers_per_stage {
            let prefix = format!("layer{layer}.decode");
            graph.push(Operator::new(
                format!("{prefix}.input_norm"),
                OpKind::LayerNorm { rows: tokens, cols: cfg.hidden },
                dt,
            ));
            let qkv_cols = (heads_local + 2 * kv_heads_local) * cfg.head_dim;
            graph.push(Operator::new(
                format!("{prefix}.qkv_proj"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: cfg.hidden,
                    n: qkv_cols,
                    weights_resident: true,
                },
                dt,
            ));
            // Attention over the KV cache: the cache acts as the (large)
            // second operand and is streamed from HBM.
            graph.push(Operator::new(
                format!("{prefix}.attn_scores"),
                OpKind::MatMul {
                    batch: local_batch * heads_local,
                    m: 1,
                    k: cfg.head_dim,
                    n: context,
                    weights_resident: false,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{prefix}.attn_softmax"),
                OpKind::Softmax { rows: local_batch * heads_local, cols: context },
                dt,
            ));
            graph.push(Operator::new(
                format!("{prefix}.attn_context"),
                OpKind::MatMul {
                    batch: local_batch * heads_local,
                    m: 1,
                    k: context,
                    n: cfg.head_dim,
                    weights_resident: false,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{prefix}.out_proj"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: heads_local * cfg.head_dim,
                    n: cfg.hidden,
                    weights_resident: true,
                },
                dt,
            ));
            if tp > 1 {
                graph.push(Operator::new(
                    format!("{prefix}.attn_allreduce"),
                    OpKind::Collective {
                        kind: CollectiveKind::AllReduce,
                        bytes_per_chip: tokens * cfg.hidden * dt.size_bytes(),
                    },
                    dt,
                ));
            }
            graph.push(Operator::new(
                format!("{prefix}.ffn_gate"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: cfg.hidden,
                    n: ffn_local,
                    weights_resident: true,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{prefix}.ffn_up"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: cfg.hidden,
                    n: ffn_local,
                    weights_resident: true,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{prefix}.ffn_silu_mul"),
                OpKind::Elementwise {
                    elements: tokens * ffn_local,
                    flops_per_element: 5,
                    num_inputs: 2,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{prefix}.ffn_down"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: ffn_local,
                    n: cfg.hidden,
                    weights_resident: true,
                },
                dt,
            ));
            if tp > 1 {
                graph.push(Operator::new(
                    format!("{prefix}.ffn_allreduce"),
                    OpKind::Collective {
                        kind: CollectiveKind::AllReduce,
                        bytes_per_chip: tokens * cfg.hidden * dt.size_bytes(),
                    },
                    dt,
                ));
            }
        }
        // LM head for the new token.
        graph.push(Operator::new(
            "lm_head",
            OpKind::MatMul {
                batch: 1,
                m: tokens,
                k: cfg.hidden,
                n: (cfg.vocab_size / tp).max(1),
                weights_resident: true,
            },
            dt,
        ));
        if pp > 1 {
            graph.push(Operator::new(
                "pp_send_activations",
                OpKind::Collective {
                    kind: CollectiveKind::PointToPoint,
                    bytes_per_chip: tokens * cfg.hidden * dt.size_bytes(),
                },
                dt,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ExecutionUnit;

    #[test]
    fn param_counts_are_close_to_nominal() {
        let p8 = LlamaModel::Llama3_8B.config().param_count() as f64 / 1e9;
        let p13 = LlamaModel::Llama2_13B.config().param_count() as f64 / 1e9;
        let p70 = LlamaModel::Llama3_70B.config().param_count() as f64 / 1e9;
        let p405 = LlamaModel::Llama3_405B.config().param_count() as f64 / 1e9;
        assert!((7.0..9.5).contains(&p8), "8B model has {p8}B params");
        assert!((11.5..14.5).contains(&p13), "13B model has {p13}B params");
        assert!((63.0..76.0).contains(&p70), "70B model has {p70}B params");
        assert!((380.0..430.0).contains(&p405), "405B model has {p405}B params");
    }

    #[test]
    fn prefill_is_compute_bound_decode_is_memory_bound() {
        let prefill = LlmWorkload::default_config(LlamaModel::Llama3_8B, LlmPhase::Prefill)
            .build_graph(&ParallelismConfig::single());
        let decode = LlmWorkload::default_config(LlamaModel::Llama3_8B, LlmPhase::Decode)
            .build_graph(&ParallelismConfig::single());
        let prefill_ai = prefill.total_flops() / prefill.total_hbm_bytes();
        let decode_ai = decode.total_flops() / decode.total_hbm_bytes();
        assert!(prefill_ai > 200.0, "prefill arithmetic intensity {prefill_ai}");
        assert!(decode_ai < 5.0, "decode arithmetic intensity {decode_ai}");
    }

    #[test]
    fn training_has_roughly_3x_prefill_flops_per_token() {
        let cfgp = LlmWorkload::default_config(LlamaModel::Llama2_13B, LlmPhase::Prefill);
        let prefill = cfgp.build_graph(&ParallelismConfig::single());
        let mut train_cfg = LlmWorkload::default_config(LlamaModel::Llama2_13B, LlmPhase::Training);
        train_cfg.batch = 1; // same token count as the prefill request
        let train = train_cfg.build_graph(&ParallelismConfig::single());
        let ratio = train.total_flops() / prefill.total_flops();
        assert!((2.5..3.6).contains(&ratio), "train/prefill FLOP ratio {ratio}");
    }

    #[test]
    fn tensor_parallelism_adds_allreduces_and_shrinks_local_flops() {
        let wl = LlmWorkload::default_config(LlamaModel::Llama3_70B, LlmPhase::Prefill);
        let single = wl.build_graph(&ParallelismConfig::single());
        let tp8 = wl.build_graph(&ParallelismConfig::new(1, 8, 1));
        assert_eq!(single.total_ici_bytes(), 0.0);
        assert!(tp8.total_ici_bytes() > 0.0);
        let ratio = single.total_flops() / tp8.total_flops();
        assert!((4.0..9.0).contains(&ratio), "TP8 should cut local FLOPs ~8x, got {ratio}");
    }

    #[test]
    fn pipeline_parallelism_shards_layers() {
        let wl = LlmWorkload::default_config(LlamaModel::Llama3_70B, LlmPhase::Prefill);
        let single = wl.build_graph(&ParallelismConfig::single());
        let pp4 = wl.build_graph(&ParallelismConfig::new(1, 1, 4));
        assert!(pp4.len() < single.len());
        let ratio = single.total_flops() / pp4.total_flops();
        assert!((3.0..5.0).contains(&ratio), "PP4 should cut local FLOPs ~4x, got {ratio}");
        // P2P send appears.
        assert!(pp4.iter().any(|op| op.name.contains("pp_send")));
    }

    #[test]
    fn decode_attention_uses_small_m() {
        let wl = LlmWorkload::default_config(LlamaModel::Llama3_70B, LlmPhase::Decode);
        let graph = wl.build_graph(&ParallelismConfig::new(1, 8, 1));
        let scores = graph.iter().find(|op| op.name.contains("attn_scores")).unwrap();
        let (m, _k, n) = scores.matmul_dims().unwrap();
        assert_eq!(m, 1);
        assert!(n > 4000);
    }

    #[test]
    fn training_includes_gradient_allreduce_with_dp() {
        let wl = LlmWorkload::default_config(LlamaModel::Llama3_8B, LlmPhase::Training);
        let dp4 = wl.build_graph(&ParallelismConfig::new(4, 1, 1));
        assert!(dp4.iter().any(|op| op.name == "grad_allreduce"));
        let single = wl.build_graph(&ParallelismConfig::single());
        assert!(!single.iter().any(|op| op.name == "grad_allreduce"));
    }

    #[test]
    fn kv_cache_and_weight_footprints() {
        let cfg = LlamaModel::Llama3_70B.config();
        let weights_gib = cfg.weight_bytes(DataType::Bf16) as f64 / (1u64 << 30) as f64;
        assert!((120.0..150.0).contains(&weights_gib), "70B bf16 weights {weights_gib} GiB");
        assert!(cfg.kv_cache_bytes_per_token(DataType::Bf16) > 0);
    }

    #[test]
    fn graphs_contain_expected_operator_mix() {
        let wl = LlmWorkload::default_config(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        assert!(g.count_by_unit(ExecutionUnit::Sa) > 100);
        assert!(g.count_by_unit(ExecutionUnit::Vu) > 100);
        assert_eq!(g.count_by_unit(ExecutionUnit::Ici), 0);
        assert!(g.iter().any(|op| op.name.contains("attn_softmax")));
        assert!(g.iter().any(|op| op.name.contains("ffn_down")));
    }

    #[test]
    fn forward_flops_estimate_matches_graph() {
        let wl = LlmWorkload::default_config(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let g = wl.build_graph(&ParallelismConfig::single());
        let est = LlamaModel::Llama3_8B.config().forward_flops(4096, 4096);
        let ratio = g.total_flops() / est;
        assert!((0.7..1.3).contains(&ratio), "graph/estimate FLOP ratio {ratio}");
    }

    #[test]
    fn labels() {
        assert_eq!(LlamaModel::Llama3_405B.label(), "405B");
        assert_eq!(LlamaModel::Llama3_405B.to_string(), "Llama3.1-405B");
        assert_eq!(LlmPhase::Decode.to_string(), "Decode");
    }
}
