//! Numeric data types used by NPU tensor operators.

use serde::{Deserialize, Serialize};

/// Element data type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit IEEE float (accumulators, optimizer state).
    F32,
    /// bfloat16 (the default activation/weight type on TPUs).
    Bf16,
    /// 16-bit IEEE float.
    F16,
    /// 8-bit float (projected low-precision inference).
    F8,
    /// 8-bit integer.
    I8,
    /// 32-bit integer (indices for embedding lookups).
    I32,
}

impl DataType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> u64 {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::Bf16 | DataType::F16 => 2,
            DataType::F8 | DataType::I8 => 1,
        }
    }

    /// Default compute type of the workloads studied in the paper.
    #[must_use]
    pub fn default_compute() -> Self {
        DataType::Bf16
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataType::F32 => write!(f, "f32"),
            DataType::Bf16 => write!(f, "bf16"),
            DataType::F16 => write!(f, "f16"),
            DataType::F8 => write!(f, "f8"),
            DataType::I8 => write!(f, "i8"),
            DataType::I32 => write!(f, "i32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::Bf16.size_bytes(), 2);
        assert_eq!(DataType::F8.size_bytes(), 1);
        assert_eq!(DataType::I32.size_bytes(), 4);
    }

    #[test]
    fn default_is_bf16() {
        assert_eq!(DataType::default_compute(), DataType::Bf16);
        assert_eq!(DataType::default_compute().to_string(), "bf16");
    }
}
