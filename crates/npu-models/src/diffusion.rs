//! Stable-diffusion workload generator: DiT-XL and GLIGEN (paper Table 1).
//!
//! Both models generate 512×512 images. DiT-XL is a diffusion *transformer*
//! operating on a latent grid of 2×2 patches; its attention head size of 72
//! is smaller than the 128-wide systolic array, which is the paper's main
//! example of SA *spatial* underutilization (Figure 5). GLIGEN uses a
//! Stable-Diffusion-style U-Net whose deeper stages shrink both the spatial
//! extent and the attention head count, again underutilizing the SA.
//!
//! One unit of work is one full image generation (all denoising steps).

use serde::{Deserialize, Serialize};

use npu_arch::ParallelismConfig;

use crate::dtype::DataType;
use crate::graph::OperatorGraph;
use crate::op::{CollectiveKind, OpKind, Operator};

/// Diffusion model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiffusionModel {
    /// DiT-XL/2 diffusion transformer.
    DitXl,
    /// GLIGEN (Stable-Diffusion U-Net with grounded conditioning).
    Gligen,
}

impl DiffusionModel {
    /// Both evaluated models.
    pub const ALL: [DiffusionModel; 2] = [DiffusionModel::DitXl, DiffusionModel::Gligen];

    /// Label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DiffusionModel::DitXl => "DiT-XL",
            DiffusionModel::Gligen => "GLIGEN",
        }
    }
}

impl std::fmt::Display for DiffusionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a stable-diffusion workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffusionConfig {
    /// Model variant.
    pub model: DiffusionModel,
    /// Number of images generated per batch.
    pub batch: u64,
    /// Output image resolution (512 in the paper).
    pub image_size: u64,
    /// Number of denoising steps per image.
    pub steps: u64,
    /// Compute data type.
    pub dtype: DataType,
}

impl DiffusionConfig {
    /// Default configuration from Table 1 (512×512 images, 50 denoising
    /// steps, batch 1).
    #[must_use]
    pub fn default_config(model: DiffusionModel) -> Self {
        DiffusionConfig { model, batch: 1, image_size: 512, steps: 50, dtype: DataType::Bf16 }
    }

    /// Returns a copy with a different batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Builds the per-chip operator graph for generating one batch of
    /// images (all denoising steps). Data parallelism shards the batch;
    /// tensor parallelism shards attention heads / channels and inserts
    /// all-reduces.
    #[must_use]
    pub fn build_graph(&self, parallelism: &ParallelismConfig) -> OperatorGraph {
        let mut graph =
            OperatorGraph::new(format!("{}-b{}-{}", self.model.label(), self.batch, parallelism));
        let dp = parallelism.data as u64;
        let tp = parallelism.tensor as u64;
        let local_batch = (self.batch / dp).max(1);

        for step in 0..self.steps {
            match self.model {
                DiffusionModel::DitXl => self.push_dit_step(&mut graph, step, local_batch, tp),
                DiffusionModel::Gligen => self.push_unet_step(&mut graph, step, local_batch, tp),
            }
        }
        graph
    }

    /// One DiT-XL denoising step: 28 transformer blocks over the latent
    /// patch sequence (hidden 1152, 16 heads of size 72).
    fn push_dit_step(&self, graph: &mut OperatorGraph, step: u64, local_batch: u64, tp: u64) {
        let dt = self.dtype;
        let hidden: u64 = 1152;
        let heads: u64 = 16;
        let head_dim: u64 = 72; // < SA width: spatial underutilization
        let layers: u64 = 28;
        let ffn: u64 = 4 * hidden;
        // 512x512 image -> 64x64 latent (VAE /8) -> 2x2 patches -> 32x32 = 1024 tokens.
        let seq = (self.image_size / 8 / 2).pow(2);
        let tokens = local_batch * seq;
        let heads_local = (heads / tp).max(1);
        let ffn_local = (ffn / tp).max(1);

        // Patch embedding (conv as matmul).
        graph.push(Operator::new(
            format!("step{step}.patchify"),
            OpKind::MatMul { batch: 1, m: tokens, k: 4 * 2 * 2, n: hidden, weights_resident: true },
            dt,
        ));
        for layer in 0..layers {
            let p = format!("step{step}.block{layer}");
            graph.push(Operator::new(
                format!("{p}.adaln"),
                OpKind::LayerNorm { rows: tokens, cols: hidden },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.qkv"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: hidden,
                    n: 3 * heads_local * head_dim,
                    weights_resident: true,
                },
                dt,
            ));
            // Attention with head_dim = 72 (spatially underutilizes the SA).
            graph.push(Operator::new(
                format!("{p}.attn_scores"),
                OpKind::MatMul {
                    batch: local_batch * heads_local,
                    m: seq,
                    k: head_dim,
                    n: seq,
                    weights_resident: false,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.attn_softmax"),
                OpKind::Softmax { rows: local_batch * heads_local * seq, cols: seq },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.attn_context"),
                OpKind::MatMul {
                    batch: local_batch * heads_local,
                    m: seq,
                    k: seq,
                    n: head_dim,
                    weights_resident: false,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.proj"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: heads_local * head_dim,
                    n: hidden,
                    weights_resident: true,
                },
                dt,
            ));
            if tp > 1 {
                graph.push(Operator::new(
                    format!("{p}.attn_allreduce"),
                    OpKind::Collective {
                        kind: CollectiveKind::AllReduce,
                        bytes_per_chip: tokens * hidden * dt.size_bytes(),
                    },
                    dt,
                ));
            }
            graph.push(Operator::new(
                format!("{p}.mlp_norm"),
                OpKind::LayerNorm { rows: tokens, cols: hidden },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.mlp_fc1"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: hidden,
                    n: ffn_local,
                    weights_resident: true,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.gelu"),
                OpKind::Elementwise {
                    elements: tokens * ffn_local,
                    flops_per_element: 8,
                    num_inputs: 1,
                },
                dt,
            ));
            graph.push(Operator::new(
                format!("{p}.mlp_fc2"),
                OpKind::MatMul {
                    batch: 1,
                    m: tokens,
                    k: ffn_local,
                    n: hidden,
                    weights_resident: true,
                },
                dt,
            ));
            if tp > 1 {
                graph.push(Operator::new(
                    format!("{p}.mlp_allreduce"),
                    OpKind::Collective {
                        kind: CollectiveKind::AllReduce,
                        bytes_per_chip: tokens * hidden * dt.size_bytes(),
                    },
                    dt,
                ));
            }
            graph.push(Operator::new(
                format!("{p}.residual"),
                OpKind::Elementwise {
                    elements: tokens * hidden,
                    flops_per_element: 2,
                    num_inputs: 2,
                },
                dt,
            ));
        }
        // Final layer: unpatchify projection.
        graph.push(Operator::new(
            format!("step{step}.unpatchify"),
            OpKind::MatMul { batch: 1, m: tokens, k: hidden, n: 2 * 2 * 8, weights_resident: true },
            dt,
        ));
    }

    /// One GLIGEN (Stable-Diffusion U-Net) denoising step.
    ///
    /// The U-Net processes a 64×64 latent through four resolution stages
    /// (64/32/16/8) with channel widths 320/640/1280/1280 on the way down
    /// and mirrored on the way up; each stage has ResNet conv blocks and
    /// (in the lower-resolution stages) cross/self-attention blocks with
    /// progressively smaller spatial extents.
    fn push_unet_step(&self, graph: &mut OperatorGraph, step: u64, local_batch: u64, tp: u64) {
        let dt = self.dtype;
        let latent = self.image_size / 8;
        // (resolution divisor, channels, has attention)
        let stages: [(u64, u64, bool); 4] =
            [(1, 320, false), (2, 640, true), (4, 1280, true), (8, 1280, true)];

        let push_stage =
            |graph: &mut OperatorGraph, dir: &str, (div, ch, attn): (u64, u64, bool)| {
                let res = (latent / div).max(1);
                let ch_local = (ch / tp).max(1);
                let p = format!("step{step}.{dir}.res{res}");
                // Two ResNet blocks: conv3x3 -> groupnorm -> silu -> conv3x3.
                for block in 0..2u64 {
                    graph.push(Operator::new(
                        format!("{p}.resnet{block}.conv1"),
                        OpKind::Conv2d {
                            batch: local_batch,
                            h_out: res,
                            w_out: res,
                            c_in: ch,
                            c_out: ch_local,
                            kh: 3,
                            kw: 3,
                        },
                        dt,
                    ));
                    graph.push(Operator::new(
                        format!("{p}.resnet{block}.norm_silu"),
                        OpKind::Elementwise {
                            elements: local_batch * res * res * ch_local,
                            flops_per_element: 6,
                            num_inputs: 1,
                        },
                        dt,
                    ));
                    graph.push(Operator::new(
                        format!("{p}.resnet{block}.conv2"),
                        OpKind::Conv2d {
                            batch: local_batch,
                            h_out: res,
                            w_out: res,
                            c_in: ch_local,
                            c_out: ch,
                            kh: 3,
                            kw: 3,
                        },
                        dt,
                    ));
                }
                if attn {
                    let seq = res * res;
                    let heads = 8u64;
                    let head_dim = ch / heads; // 80 or 160: partially underutilizes a 128-wide SA
                    let heads_local = (heads / tp).max(1);
                    graph.push(Operator::new(
                        format!("{p}.attn_qkv"),
                        OpKind::MatMul {
                            batch: 1,
                            m: local_batch * seq,
                            k: ch,
                            n: 3 * heads_local * head_dim,
                            weights_resident: true,
                        },
                        dt,
                    ));
                    graph.push(Operator::new(
                        format!("{p}.attn_scores"),
                        OpKind::MatMul {
                            batch: local_batch * heads_local,
                            m: seq,
                            k: head_dim,
                            n: seq,
                            weights_resident: false,
                        },
                        dt,
                    ));
                    graph.push(Operator::new(
                        format!("{p}.attn_softmax"),
                        OpKind::Softmax { rows: local_batch * heads_local * seq, cols: seq },
                        dt,
                    ));
                    graph.push(Operator::new(
                        format!("{p}.attn_context"),
                        OpKind::MatMul {
                            batch: local_batch * heads_local,
                            m: seq,
                            k: seq,
                            n: head_dim,
                            weights_resident: false,
                        },
                        dt,
                    ));
                    // GLIGEN's gated self-attention over grounding tokens (30 boxes).
                    graph.push(Operator::new(
                        format!("{p}.gated_attn"),
                        OpKind::MatMul {
                            batch: local_batch * heads_local,
                            m: seq,
                            k: head_dim,
                            n: 30,
                            weights_resident: false,
                        },
                        dt,
                    ));
                    graph.push(Operator::new(
                        format!("{p}.attn_proj"),
                        OpKind::MatMul {
                            batch: 1,
                            m: local_batch * seq,
                            k: heads_local * head_dim,
                            n: ch,
                            weights_resident: true,
                        },
                        dt,
                    ));
                    if tp > 1 {
                        graph.push(Operator::new(
                            format!("{p}.attn_allreduce"),
                            OpKind::Collective {
                                kind: CollectiveKind::AllReduce,
                                bytes_per_chip: local_batch * seq * ch * dt.size_bytes(),
                            },
                            dt,
                        ));
                    }
                }
            };

        for stage in stages {
            push_stage(graph, "down", stage);
        }
        // Mirror for the decoder path (skip the bottleneck duplicate).
        for stage in stages.iter().rev() {
            push_stage(graph, "up", *stage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ExecutionUnit;

    #[test]
    fn dit_attention_head_dim_is_72() {
        let cfg = DiffusionConfig::default_config(DiffusionModel::DitXl);
        let g = cfg.build_graph(&ParallelismConfig::single());
        let scores = g.iter().find(|op| op.name.contains("attn_scores")).unwrap();
        let (_m, k, _n) = scores.matmul_dims().unwrap();
        assert_eq!(k, 72);
    }

    #[test]
    fn dit_is_compute_bound() {
        let mut cfg = DiffusionConfig::default_config(DiffusionModel::DitXl);
        cfg.steps = 2; // keep the test fast
        let g = cfg.build_graph(&ParallelismConfig::single());
        let ai = g.total_flops() / g.total_hbm_bytes();
        assert!(ai > 50.0, "DiT arithmetic intensity {ai}");
    }

    #[test]
    fn gligen_contains_convolutions() {
        let mut cfg = DiffusionConfig::default_config(DiffusionModel::Gligen);
        cfg.steps = 1;
        let g = cfg.build_graph(&ParallelismConfig::single());
        let convs = g.iter().filter(|op| matches!(op.kind, OpKind::Conv2d { .. })).count();
        assert!(convs >= 16, "expected U-Net convs, found {convs}");
        assert!(g.count_by_unit(ExecutionUnit::Sa) > convs);
    }

    #[test]
    fn steps_scale_graph_size() {
        let mut cfg = DiffusionConfig::default_config(DiffusionModel::DitXl);
        cfg.steps = 1;
        let one = cfg.build_graph(&ParallelismConfig::single());
        cfg.steps = 4;
        let four = cfg.build_graph(&ParallelismConfig::single());
        assert_eq!(four.len(), 4 * one.len());
    }

    #[test]
    fn tensor_parallel_diffusion_adds_collectives() {
        let mut cfg = DiffusionConfig::default_config(DiffusionModel::DitXl);
        cfg.steps = 1;
        let g = cfg.build_graph(&ParallelismConfig::new(1, 4, 1));
        assert!(g.total_ici_bytes() > 0.0);
    }

    #[test]
    fn unet_stage_resolutions_shrink() {
        let mut cfg = DiffusionConfig::default_config(DiffusionModel::Gligen);
        cfg.steps = 1;
        let g = cfg.build_graph(&ParallelismConfig::single());
        assert!(g.iter().any(|op| op.name.contains("res64")));
        assert!(g.iter().any(|op| op.name.contains("res8")));
    }

    #[test]
    fn labels() {
        assert_eq!(DiffusionModel::DitXl.to_string(), "DiT-XL");
        assert_eq!(DiffusionModel::Gligen.label(), "GLIGEN");
    }
}
