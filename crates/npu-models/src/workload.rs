//! Unified workload abstraction over the LLM, DLRM, and diffusion
//! generators, including the paper's energy-efficiency work units
//! (Joule/iteration, Joule/token, Joule/request, Joule/image).

use serde::{Deserialize, Serialize};

use npu_arch::{NpuSpec, ParallelismConfig};

use crate::diffusion::{DiffusionConfig, DiffusionModel};
use crate::dlrm::{DlrmConfig, DlrmSize};
use crate::dtype::DataType;
use crate::graph::OperatorGraph;
use crate::llm::{LlamaModel, LlmPhase, LlmWorkload};
use crate::op::{CollectiveKind, OpKind, Operator};

/// Unit of work used to normalize energy efficiency (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkUnit {
    /// Training iteration.
    Iteration,
    /// Generated or processed token.
    Token,
    /// Recommendation request.
    Request,
    /// Generated image.
    Image,
}

impl WorkUnit {
    /// Label used in figure axes ("Joule/Iter", "Joule/Token", …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkUnit::Iteration => "Iter",
            WorkUnit::Token => "Token",
            WorkUnit::Request => "Request",
            WorkUnit::Image => "Image",
        }
    }
}

impl std::fmt::Display for WorkUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a request graph could not be lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestGraphError {
    /// The workload carries zero samples: there is nothing to lower, and
    /// fabricating a one-sample graph would silently model work that does
    /// not exist (the pre-serving lowering did exactly that).
    EmptyBatch,
    /// The request list is empty — a batch with no members cannot produce
    /// a merge collective.
    NoRequests,
}

impl std::fmt::Display for RequestGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestGraphError::EmptyBatch => {
                f.write_str("workload batch is empty (0 samples): nothing to lower into requests")
            }
            RequestGraphError::NoRequests => {
                f.write_str("request list is empty: a batch needs at least one request")
            }
        }
    }
}

impl std::error::Error for RequestGraphError {}

/// Span of one lowered request inside a [`RequestGraph`]: which operator
/// ids belong to it, how many samples it carries, and when it becomes
/// runnable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpan {
    /// Operator-id range of the request's subgraph (half-open).
    pub ops: std::ops::Range<usize>,
    /// Samples the request carries.
    pub samples: u64,
    /// Earliest cycle any of the request's operators may issue — the
    /// dispatch time of the serving batch the request rode in on (0 for
    /// the classic everything-ready-at-cycle-0 lowering).
    pub release_cycle: u64,
}

/// A batch lowered into independent per-request subgraphs plus a final
/// merge, with per-request release metadata — the unit of work the
/// serving simulator schedules on the event timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestGraph {
    /// The merged operator graph (requests' subgraphs + merge operator).
    pub graph: OperatorGraph,
    /// Per lowered request: operator span, samples, release cycle. When
    /// the requested split is finer than one sample per data-parallel
    /// shard, several logical requests collapse into one span (see
    /// [`Workload::try_build_request_graph`]) and the span's release is
    /// the latest of its members'.
    pub requests: Vec<RequestSpan>,
    /// Operator id of the final batch-merge operator.
    pub merge_id: usize,
}

impl RequestGraph {
    /// Release cycle of every operator (indexed by operator id): each
    /// request's operators inherit its span release; the merge inherits
    /// the latest release (it fans in over every request, so it can never
    /// run earlier anyway).
    #[must_use]
    pub fn op_releases(&self) -> Vec<u64> {
        let mut releases = vec![0u64; self.graph.len()];
        for span in &self.requests {
            for id in span.ops.clone() {
                releases[id] = span.release_cycle;
            }
        }
        releases[self.merge_id] = self.requests.iter().map(|s| s.release_cycle).max().unwrap_or(0);
        releases
    }
}

/// One of the benchmark workloads of Table 1, with its batch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Large-language-model workload (training, prefill, or decode).
    Llm(LlmWorkload),
    /// DLRM inference.
    Dlrm(DlrmConfig),
    /// Stable-diffusion image generation.
    Diffusion(DiffusionConfig),
}

impl Workload {
    /// LLM workload with the Table 1 default configuration.
    #[must_use]
    pub fn llm(model: LlamaModel, phase: LlmPhase) -> Self {
        Workload::Llm(LlmWorkload::default_config(model, phase))
    }

    /// DLRM workload with the Table 1 default configuration.
    #[must_use]
    pub fn dlrm(size: DlrmSize) -> Self {
        Workload::Dlrm(DlrmConfig::default_config(size))
    }

    /// Diffusion workload with the Table 1 default configuration.
    #[must_use]
    pub fn diffusion(model: DiffusionModel) -> Self {
        Workload::Diffusion(DiffusionConfig::default_config(model))
    }

    /// Every workload in the paper's benchmark suite (Table 1): four Llama
    /// models × three phases, three DLRM sizes, and two diffusion models.
    #[must_use]
    pub fn benchmark_suite() -> Vec<Workload> {
        let mut out = Vec::new();
        for phase in LlmPhase::ALL {
            for model in LlamaModel::ALL {
                out.push(Workload::llm(model, phase));
            }
        }
        for size in DlrmSize::ALL {
            out.push(Workload::dlrm(size));
        }
        for model in DiffusionModel::ALL {
            out.push(Workload::diffusion(model));
        }
        out
    }

    /// Short label, e.g. `"Llama3-70B Prefill"`, `"DLRM-M"`, `"DiT-XL"`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Workload::Llm(wl) => format!("{} {}", wl.model.name(), wl.phase.label()),
            Workload::Dlrm(cfg) => cfg.size.label().to_string(),
            Workload::Diffusion(cfg) => cfg.model.label().to_string(),
        }
    }

    /// Group label used as the figure column heading ("LLM Training",
    /// "LLM Inference (Prefill)", "DLRM Inference", "Stable Diffusion").
    #[must_use]
    pub fn group(&self) -> &'static str {
        match self {
            Workload::Llm(wl) => match wl.phase {
                LlmPhase::Training => "LLM Training",
                LlmPhase::Prefill => "LLM Inference (Prefill)",
                LlmPhase::Decode => "LLM Inference (Decode)",
            },
            Workload::Dlrm(_) => "DLRM Inference",
            Workload::Diffusion(_) => "Stable Diffusion Inference",
        }
    }

    /// Work unit used for energy-efficiency reporting.
    #[must_use]
    pub fn work_unit(&self) -> WorkUnit {
        match self {
            Workload::Llm(wl) => match wl.phase {
                LlmPhase::Training => WorkUnit::Iteration,
                LlmPhase::Prefill | LlmPhase::Decode => WorkUnit::Token,
            },
            Workload::Dlrm(_) => WorkUnit::Request,
            Workload::Diffusion(_) => WorkUnit::Image,
        }
    }

    /// Number of work units produced by one execution of the graph built by
    /// [`Workload::build_graph`] (across the whole deployment, i.e. counting
    /// every data-parallel replica).
    #[must_use]
    pub fn work_items(&self) -> f64 {
        match self {
            Workload::Llm(wl) => match wl.phase {
                LlmPhase::Training => 1.0,
                LlmPhase::Prefill => (wl.batch * wl.seq_len) as f64,
                LlmPhase::Decode => wl.batch as f64,
            },
            Workload::Dlrm(cfg) => cfg.batch as f64,
            Workload::Diffusion(cfg) => cfg.batch as f64,
        }
    }

    /// Current batch size.
    #[must_use]
    pub fn batch(&self) -> u64 {
        match self {
            Workload::Llm(wl) => wl.batch,
            Workload::Dlrm(cfg) => cfg.batch,
            Workload::Diffusion(cfg) => cfg.batch,
        }
    }

    /// Returns a copy with a different batch size.
    #[must_use]
    pub fn with_batch(&self, batch: u64) -> Self {
        match *self {
            Workload::Llm(wl) => Workload::Llm(wl.with_batch(batch)),
            Workload::Dlrm(cfg) => Workload::Dlrm(cfg.with_batch(batch)),
            Workload::Diffusion(cfg) => Workload::Diffusion(cfg.with_batch(batch)),
        }
    }

    /// Builds the per-chip operator graph under a parallelism configuration.
    #[must_use]
    pub fn build_graph(&self, parallelism: &ParallelismConfig) -> OperatorGraph {
        match self {
            Workload::Llm(wl) => wl.build_graph(parallelism),
            Workload::Dlrm(cfg) => cfg.build_graph(parallelism),
            Workload::Diffusion(cfg) => cfg.build_graph(parallelism),
        }
    }

    /// Bytes of one request's response record in the batch-merge step of
    /// [`Workload::build_request_graph`] (logits / CTR / image handle —
    /// an order-of-magnitude serving-stack constant, not a model shape).
    const RESPONSE_RECORD_BYTES: u64 = 512;

    /// Lowers the workload's batch into `requests` *independent* per-chip
    /// subgraphs merged by a final batch-merge operator that fans in over
    /// every request's sink — the shape of request-level batched serving.
    /// Every request carries `batch / requests` samples and the first
    /// `batch % requests` requests carry one extra, so the whole batch is
    /// lowered. `requests` is additionally clamped so each request's
    /// batch covers the deployment's data-parallel shards — the per-chip
    /// graph builders floor their local batch at one sample, and
    /// splitting finer than one sample per shard would *inflate* the
    /// modeled work instead of conserving it (per-request batches that do
    /// not divide evenly across shards still inherit `build_graph`'s own
    /// integer sharding). The per-request subgraphs share no edges, so
    /// the timeline engine overlaps them freely (one request's HBM
    /// streaming hides under another's compute); the merge is an
    /// all-gather of the response records when the deployment spans
    /// several chips and a vector concatenation on one.
    ///
    /// With `requests == 1` this degenerates to [`Workload::build_graph`]
    /// plus the merge operator.
    ///
    /// # Panics
    ///
    /// Panics with [`RequestGraphError::EmptyBatch`] when the workload
    /// carries zero samples (use [`Workload::try_build_request_graph`] to
    /// handle an empty batch without panicking).
    #[must_use]
    pub fn build_request_graph(
        &self,
        parallelism: &ParallelismConfig,
        requests: u64,
    ) -> OperatorGraph {
        // Pre-clamp to the batch before materializing the release vector:
        // the lowering can never produce more requests than samples, and a
        // caller passing a huge `requests` must get the clamped graph (as
        // the pre-release API did), not a `requests`-sized allocation.
        let requests = requests.clamp(1, self.batch().max(1));
        let releases = vec![0u64; usize::try_from(requests).unwrap_or(1)];
        match self.try_build_request_graph(parallelism, &releases) {
            Ok(request_graph) => request_graph.graph,
            Err(err) => panic!("build_request_graph: {err}"),
        }
    }

    /// Fallible, release-carrying variant of
    /// [`Workload::build_request_graph`]: lowers the batch into
    /// `releases.len()` logical requests where logical request `r` becomes
    /// runnable at `releases[r]` cycles, and returns the per-request spans
    /// alongside the graph. This is the entry point the serving simulator
    /// uses to schedule a formed batch whose members arrived over time.
    ///
    /// The logical request count is clamped exactly like
    /// [`Workload::build_request_graph`] clamps `requests` (no finer than
    /// one sample per data-parallel shard); when clamping merges logical
    /// requests, they are grouped contiguously in FIFO order and the
    /// merged span's release is the *latest* of its members' (a span can
    /// only run once all of its requests exist).
    ///
    /// # Errors
    ///
    /// [`RequestGraphError::EmptyBatch`] when the workload carries zero
    /// samples, [`RequestGraphError::NoRequests`] when `releases` is
    /// empty — both the degenerate inputs the infallible path used to
    /// lower into a fabricated one-sample graph.
    ///
    /// # Panics
    ///
    /// Never for the inputs accepted above; a panic means the internal
    /// batch-split invariant broke (the large-shard subgraph is always
    /// materialized when a request receives the extra sample).
    pub fn try_build_request_graph(
        &self,
        parallelism: &ParallelismConfig,
        releases: &[u64],
    ) -> Result<RequestGraph, RequestGraphError> {
        if releases.is_empty() {
            return Err(RequestGraphError::NoRequests);
        }
        if self.batch() == 0 {
            return Err(RequestGraphError::EmptyBatch);
        }
        // The degree by which the workload's own graph builder divides the
        // batch: DLRM model-shards its tables across every chip and
        // data-shards the MLP batch over all of them, while the LLM and
        // diffusion builders divide the batch by the data-parallel degree
        // only (tensor/pipeline parallelism shards weights, not samples).
        let batch_shards = match self {
            Workload::Dlrm(_) => parallelism.num_chips() as u64,
            Workload::Llm(_) | Workload::Diffusion(_) => parallelism.data as u64,
        }
        .max(1);
        let logical = releases.len() as u64;
        let requests = logical.clamp(1, (self.batch() / batch_shards).max(1));
        let base = (self.batch() / requests).max(1);
        let extra = self.batch() % requests;
        let small = self.with_batch(base).build_graph(parallelism);
        let large =
            if extra > 0 { Some(self.with_batch(base + 1).build_graph(parallelism)) } else { None };
        // A request's results are ready when *every* sink of its subgraph
        // has finished — derived structurally from the edges, not assumed
        // to be the last-pushed operator.
        let small_sinks = small.sinks();
        let large_sinks = large.as_ref().map(OperatorGraph::sinks).unwrap_or_default();
        let mut graph =
            OperatorGraph::new(format!("{}-x{requests}req-{parallelism}", self.label()));
        let mut sinks = Vec::new();
        let mut spans = Vec::with_capacity(requests as usize);
        for r in 0..requests {
            let (sub, sub_sinks) = if r < extra {
                (large.as_ref().expect("extra > 0"), &large_sinks)
            } else {
                (&small, &small_sinks)
            };
            let range = graph.extend_from(sub);
            debug_assert!(!range.is_empty(), "a request subgraph cannot be empty");
            sinks.extend(sub_sinks.iter().map(|s| range.start + s));
            // Contiguous fair grouping of the logical requests onto the
            // lowered spans (identical to the sample distribution when the
            // counts match): span r owns logical indices [lo, hi).
            let lo = (r * logical / requests) as usize;
            let hi = ((r + 1) * logical / requests) as usize;
            let release = releases[lo..hi].iter().copied().max().unwrap_or(0);
            spans.push(RequestSpan {
                ops: range,
                samples: base + u64::from(r < extra),
                release_cycle: release,
            });
        }
        let dt = self.dtype();
        let merge = if parallelism.num_chips() > 1 {
            Operator::new(
                "batch_merge",
                OpKind::Collective {
                    kind: CollectiveKind::AllGather,
                    bytes_per_chip: requests * Self::RESPONSE_RECORD_BYTES,
                },
                dt,
            )
        } else {
            Operator::new(
                "batch_merge",
                OpKind::Elementwise {
                    elements: requests * Self::RESPONSE_RECORD_BYTES / dt.size_bytes().max(1),
                    flops_per_element: 1,
                    num_inputs: 1,
                },
                dt,
            )
        };
        let merge_id = graph.push_with_producers(merge, sinks);
        Ok(RequestGraph { graph, requests: spans, merge_id })
    }

    /// Minimum per-chip HBM bytes needed to run the workload under a
    /// parallelism configuration (model weights / embedding shards plus KV
    /// cache and a 20% activation margin).
    #[must_use]
    pub fn hbm_demand_bytes(&self, parallelism: &ParallelismConfig) -> u64 {
        let margin = 1.2;
        match self {
            Workload::Llm(wl) => {
                let cfg = wl.model.config();
                let shard = parallelism.tensor as u64 * parallelism.pipeline as u64;
                let weights = cfg.weight_bytes(wl.dtype) / shard.max(1);
                // Optimizer state is assumed ZeRO-sharded across the whole
                // deployment / offloaded to host memory (the paper's Table 4
                // runs 405B training on 16 chips, which only fits the bf16
                // weights), so it does not contribute to per-chip demand.
                let state = 0;
                let kv = if wl.phase == LlmPhase::Decode {
                    let per_token = cfg.kv_cache_bytes_per_token(wl.dtype) / shard.max(1);
                    per_token * (wl.seq_len + wl.output_len) * wl.batch / parallelism.data as u64
                } else {
                    0
                };
                ((weights + state + kv) as f64 * margin) as u64
            }
            Workload::Dlrm(cfg) => {
                let chips = parallelism.num_chips() as u64;
                ((cfg.size.embedding_table_bytes() / chips.max(1)) as f64 * margin) as u64
            }
            Workload::Diffusion(_) => {
                // U-Net / DiT weights are ~1-3 GB; always fit.
                4 << 30
            }
        }
    }

    /// Chooses a sensible default parallelism for `num_chips` chips of the
    /// given NPU generation: the smallest power-of-two tensor-parallel
    /// degree under which the per-chip HBM demand fits, with the remaining
    /// chips used for data parallelism.
    ///
    /// Returns `None` if the workload cannot fit even with every chip used
    /// for model sharding.
    #[must_use]
    pub fn default_parallelism(
        &self,
        spec: &NpuSpec,
        num_chips: usize,
    ) -> Option<ParallelismConfig> {
        let hbm = spec.hbm_bytes();
        match self {
            Workload::Dlrm(_) | Workload::Diffusion(_) => {
                let p = ParallelismConfig::new(num_chips, 1, 1);
                if self.hbm_demand_bytes(&p) <= hbm {
                    Some(p)
                } else {
                    None
                }
            }
            Workload::Llm(_) => {
                let mut tp = 1usize;
                while tp <= num_chips {
                    if num_chips.is_multiple_of(tp) {
                        // Prefer pure tensor parallelism up to 8 ways, then add
                        // pipeline stages for very large models.
                        let candidates = if tp <= 8 {
                            vec![ParallelismConfig::new(num_chips / tp, tp, 1)]
                        } else {
                            let pp = (tp / 8).max(1);
                            vec![
                                ParallelismConfig::new(num_chips / tp, 8, pp),
                                ParallelismConfig::new(num_chips / tp, tp, 1),
                            ]
                        };
                        for p in candidates {
                            if self.hbm_demand_bytes(&p) <= hbm {
                                return Some(p);
                            }
                        }
                    }
                    tp *= 2;
                }
                None
            }
        }
    }

    /// Compute data type of the workload.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        match self {
            Workload::Llm(wl) => wl.dtype,
            Workload::Dlrm(cfg) => cfg.dtype,
            Workload::Diffusion(cfg) => cfg.dtype,
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::NpuGeneration;

    #[test]
    fn benchmark_suite_matches_table1() {
        let suite = Workload::benchmark_suite();
        // 4 models x 3 phases + 3 DLRM + 2 diffusion = 17 workloads.
        assert_eq!(suite.len(), 17);
        assert!(suite.iter().any(|w| w.label() == "Llama3.1-405B Training"));
        assert!(suite.iter().any(|w| w.label() == "DLRM-L"));
        assert!(suite.iter().any(|w| w.label() == "GLIGEN"));
    }

    #[test]
    fn work_units_match_paper_metrics() {
        assert_eq!(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training).work_unit(),
            WorkUnit::Iteration
        );
        assert_eq!(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).work_unit(),
            WorkUnit::Token
        );
        assert_eq!(Workload::dlrm(DlrmSize::Small).work_unit(), WorkUnit::Request);
        assert_eq!(Workload::diffusion(DiffusionModel::DitXl).work_unit(), WorkUnit::Image);
        assert_eq!(WorkUnit::Token.to_string(), "Token");
    }

    #[test]
    fn prefill_work_items_count_tokens() {
        let wl = Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill).with_batch(4);
        assert_eq!(wl.work_items(), 4.0 * 4096.0);
        let decode = Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode).with_batch(16);
        assert_eq!(decode.work_items(), 16.0);
    }

    #[test]
    fn hbm_demand_shrinks_with_model_sharding() {
        let wl = Workload::llm(LlamaModel::Llama3_405B, LlmPhase::Prefill);
        let single = wl.hbm_demand_bytes(&ParallelismConfig::single());
        let tp8 = wl.hbm_demand_bytes(&ParallelismConfig::new(1, 8, 1));
        assert!(single > 7 * tp8, "sharding 8 ways should cut demand ~8x");
    }

    #[test]
    fn default_parallelism_fits_in_hbm() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        // 70B bf16 weights (~131 GiB) do not fit on one 95 GB chip.
        let wl = Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill);
        assert!(wl.default_parallelism(&spec, 1).is_none());
        let p = wl.default_parallelism(&spec, 4).expect("fits on 4 chips");
        assert!(p.tensor >= 2);
        assert!(wl.hbm_demand_bytes(&p) <= spec.hbm_bytes());
    }

    #[test]
    fn default_parallelism_405b_needs_many_chips() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_405B, LlmPhase::Training);
        assert!(wl.default_parallelism(&spec, 4).is_none());
        let p = wl.default_parallelism(&spec, 64).expect("405B training fits on 64 chips");
        assert_eq!(p.num_chips(), 64);
    }

    #[test]
    fn dlrm_parallelism_is_data_parallel_table_sharding() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let wl = Workload::dlrm(DlrmSize::Large);
        assert!(wl.default_parallelism(&spec, 1).is_none(), "98 GB of tables cannot fit one chip");
        let p = wl.default_parallelism(&spec, 8).unwrap();
        assert_eq!(p, ParallelismConfig::new(8, 1, 1));
    }

    #[test]
    fn graphs_build_for_every_suite_entry() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        for wl in Workload::benchmark_suite() {
            // Shrink diffusion steps indirectly by using small batch; graphs
            // are still fully built (this also guards against panics).
            let chips = 16;
            if let Some(p) = wl.default_parallelism(&spec, chips) {
                let g = wl.build_graph(&p);
                assert!(!g.is_empty(), "{} produced an empty graph", wl.label());
            }
        }
    }

    #[test]
    fn request_graph_builds_independent_chains_with_a_final_merge() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(8);
        let single = wl.with_batch(2).build_graph(&ParallelismConfig::single());
        let g = wl.build_request_graph(&ParallelismConfig::single(), 4);
        assert_eq!(g.len(), 4 * single.len() + 1);
        // Four independent request heads, one per chain.
        assert_eq!(g.sources().len(), 4);
        // The merge fans in over every request's sink.
        let merge = g.operators().last().unwrap();
        assert_eq!(merge.name, "batch_merge");
        assert_eq!(g.producers_of(merge.id).len(), 4);
        assert_eq!(g.topological_order().len(), g.len());
        // The requests are parallel branches: the hop-count critical path
        // of the merged graph is one request's path plus the merge op,
        // not the sum over requests.
        let single_cp = single.critical_path_cost(|_| 1.0);
        assert!((g.critical_path_cost(|_| 1.0) - (single_cp + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn request_graph_uses_a_collective_merge_across_chips() {
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(1024);
        let g = wl.build_request_graph(&ParallelismConfig::new(8, 1, 1), 2);
        let merge = g.operators().last().unwrap();
        assert!(merge.is_collective(), "multi-chip merge must be a collective");
        assert!(merge.ici_bytes() > 0);
        // Each DLRM request subgraph contributes its own gather sources.
        assert!(g.sources().len() >= 2 * 4);
    }

    #[test]
    fn request_graph_clamps_requests_to_the_batch() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2);
        let g = wl.build_request_graph(&ParallelismConfig::single(), 64);
        assert_eq!(g.sources().len(), 2, "at most one request per sample");
        // The clamp must happen *before* the release vector is allocated:
        // an absurd request count returns the clamped graph (the
        // pre-release behaviour), not an OOM-sized allocation.
        let huge = wl.build_request_graph(&ParallelismConfig::single(), u64::MAX);
        assert_eq!(huge.sources().len(), 2);
        assert_eq!(huge.len(), g.len());
    }

    #[test]
    fn request_graph_conserves_the_batch_across_data_parallel_shards() {
        // DLRM shards its batch over all 8 chips; per-chip work is linear
        // in the batch, so 16 requests of 64 samples must model exactly
        // the FLOPs of one 1024-sample batch (minus the merge op).
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(1024);
        let p = ParallelismConfig::new(8, 1, 1);
        let g = wl.build_request_graph(&p, 16);
        let merge_flops = g.operators().last().unwrap().flops();
        let full = wl.build_graph(&p);
        let relative =
            ((g.total_flops() - merge_flops) - full.total_flops()).abs() / full.total_flops();
        assert!(relative < 1e-12, "sharded request lowering drifted by {relative}");
        // Splitting finer than one sample per shard would inflate the
        // modeled work (local batches floor at 1): the clamp prevents it.
        let clamped = wl.build_request_graph(&p, 100_000);
        let clamped_merge = clamped.operators().last().unwrap().flops();
        assert!(
            (clamped.total_flops() - clamped_merge - full.total_flops()).abs() / full.total_flops()
                < 1e-12,
            "over-splitting inflated the modeled work"
        );
        // DLRM shards its batch by *every* chip regardless of how the
        // parallelism is labelled — the clamp must track num_chips, not
        // the data-parallel degree alone.
        let tp = ParallelismConfig::new(1, 8, 1);
        let full_tp = wl.build_graph(&tp);
        let g_tp = wl.build_request_graph(&tp, 100_000);
        let merge_tp = g_tp.operators().last().unwrap().flops();
        assert!(
            (g_tp.total_flops() - merge_tp - full_tp.total_flops()).abs() / full_tp.total_flops()
                < 1e-12,
            "tensor-parallel DLRM over-splitting inflated the modeled work"
        );
    }

    #[test]
    fn request_graph_conserves_an_indivisible_batch() {
        // batch 7 over 3 requests must lower all 7 samples (3 + 2 + 2),
        // not 3 × 2. DLRM work is linear in the batch on one chip, so the
        // request graph's FLOPs (minus the merge op) must equal the
        // monolithic graph's exactly.
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(7);
        let p = ParallelismConfig::single();
        let g = wl.build_request_graph(&p, 3);
        let merge_flops = g.operators().last().unwrap().flops();
        let full = wl.build_graph(&p);
        assert!(
            (g.total_flops() - merge_flops - full.total_flops()).abs() < 1e-6,
            "request lowering dropped samples: {} vs {}",
            g.total_flops() - merge_flops,
            full.total_flops()
        );
    }

    #[test]
    fn empty_batch_is_a_clear_error_not_a_degenerate_graph() {
        // A 0-sample workload used to be silently floored to one sample,
        // fabricating work; the fallible path must reject it instead.
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(0);
        let err = wl
            .try_build_request_graph(&ParallelismConfig::single(), &[0, 0])
            .expect_err("an empty batch cannot lower");
        assert_eq!(err, RequestGraphError::EmptyBatch);
        assert!(err.to_string().contains("empty"), "error message must name the cause: {err}");
        // An empty request list is the other degenerate input.
        let err = Workload::dlrm(DlrmSize::Small)
            .try_build_request_graph(&ParallelismConfig::single(), &[])
            .expect_err("no requests cannot lower");
        assert_eq!(err, RequestGraphError::NoRequests);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn infallible_path_panics_with_the_clear_message_on_an_empty_batch() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(0);
        let _ = wl.build_request_graph(&ParallelismConfig::single(), 4);
    }

    #[test]
    fn request_spans_carry_releases_and_partition_the_graph() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(8);
        let releases = [0u64, 100, 100, 2500];
        let rg = wl
            .try_build_request_graph(&ParallelismConfig::single(), &releases)
            .expect("4 requests of 2 samples lower cleanly");
        assert_eq!(rg.requests.len(), 4);
        // Spans tile the graph exactly, leaving only the merge.
        let mut cursor = 0usize;
        for (span, &release) in rg.requests.iter().zip(releases.iter()) {
            assert_eq!(span.ops.start, cursor);
            cursor = span.ops.end;
            assert_eq!(span.samples, 2);
            assert_eq!(span.release_cycle, release);
        }
        assert_eq!(cursor, rg.merge_id);
        assert_eq!(rg.merge_id + 1, rg.graph.len());
        // Per-op releases: each span's ops inherit its release, the merge
        // inherits the latest.
        let op_releases = rg.op_releases();
        assert_eq!(op_releases.len(), rg.graph.len());
        for span in &rg.requests {
            assert!(op_releases[span.ops.clone()].iter().all(|&r| r == span.release_cycle));
        }
        assert_eq!(op_releases[rg.merge_id], 2500);
        // The graph itself is identical to the infallible lowering.
        let classic = wl.build_request_graph(&ParallelismConfig::single(), 4);
        assert_eq!(rg.graph, classic);
    }

    #[test]
    fn clamped_spans_take_the_latest_member_release() {
        // batch 2 on one chip clamps 4 logical requests onto 2 spans; each
        // span must adopt the latest release of its contiguous group.
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2);
        let rg = wl
            .try_build_request_graph(&ParallelismConfig::single(), &[10, 20, 30, 40])
            .expect("clamped lowering succeeds");
        assert_eq!(rg.requests.len(), 2);
        assert_eq!(rg.requests[0].release_cycle, 20);
        assert_eq!(rg.requests[1].release_cycle, 40);
    }

    #[test]
    fn display_uses_label() {
        let wl = Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode);
        assert_eq!(wl.to_string(), "Llama3-70B Decode");
        assert_eq!(wl.group(), "LLM Inference (Decode)");
    }
}
