//! Pod-level static-energy accounting over the engine's per-resource
//! timeline: per-component interval gating on every chip unit and every
//! ICI link, optionally stacked with *whole-chip* gating of the intervals
//! in which a chip's entire resource set is idle.
//!
//! Pipeline-parallel serving is the motivating shape: with imbalanced
//! stages the off-critical chips sit in long chip-wide bubbles.
//! Per-component gating already empties the systolic arrays, vector
//! units, and memory interfaces inside those bubbles, but the peripheral
//! (uncore) logic has no per-component policy — only a chip-level walk
//! over the union-idle intervals can recover its static power. This
//! module prices exactly that delta on a multi-chip [`Schedule`].

use npu_arch::{ComponentKind, NpuSpec};
use npu_power::{GatePolicy, GatingParams, IntervalGating, PowerModel, PowerPolicy};
use npu_sim::{CycleInterval, Resource, Schedule};

/// Static-energy accounting of one pod schedule, in watt-cycles (static
/// watts × cycles; the cycle time cancels out of every ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodGatingReport {
    /// Ungated cost: every resource fully on for the whole makespan.
    pub baseline_watt_cycles: f64,
    /// Cost under per-component interval gating alone (chip units and
    /// links walk their own idle gaps; SRAM and uncore stay on).
    pub per_component_watt_cycles: f64,
    /// Cost under per-component gating *plus* chip-level gating of each
    /// chip's whole-chip idle intervals (the uncore gates inside them).
    pub whole_chip_watt_cycles: f64,
}

impl PodGatingReport {
    /// Static-energy savings of per-component gating over the ungated
    /// baseline.
    #[must_use]
    pub fn per_component_savings(&self) -> f64 {
        if self.baseline_watt_cycles == 0.0 {
            return 0.0;
        }
        1.0 - self.per_component_watt_cycles / self.baseline_watt_cycles
    }

    /// Static-energy savings of per-component *plus* whole-chip gating
    /// over the ungated baseline.
    #[must_use]
    pub fn whole_chip_savings(&self) -> f64 {
        if self.baseline_watt_cycles == 0.0 {
            return 0.0;
        }
        1.0 - self.whole_chip_watt_cycles / self.baseline_watt_cycles
    }

    /// The delta only chip-level gating can deliver (fraction of the
    /// baseline static energy).
    #[must_use]
    pub fn whole_chip_gain(&self) -> f64 {
        self.whole_chip_savings() - self.per_component_savings()
    }
}

/// Walks one resource's idle gaps and returns its equivalent full-power
/// cycles (busy cycles plus the walked remainder).
fn walked_equivalent(
    policy: &dyn PowerPolicy,
    gaps: &[CycleInterval],
    busy: u64,
    total: u64,
) -> f64 {
    let all: Vec<u64> = gaps.iter().map(CycleInterval::len).collect();
    let waking: Vec<u64> = gaps.iter().filter(|iv| iv.end < total).map(|iv| iv.len()).collect();
    busy as f64 + policy.walk_intervals(&all, &waking).equivalent_cycles
}

/// Prices the static energy of a pod schedule three ways — ungated,
/// per-component gating, per-component plus whole-chip gating — over its
/// per-resource timeline ([`npu_sim::ResourceTimeline`]).
///
/// Weighting: each chip unit carries its component's static power from
/// `spec`'s power model (the HBM/DMA resource carries both shares); when
/// the set has ICI links, the pod's aggregate ICI static power is split
/// evenly across them (the per-chip ICI unit is then unweighted — pod
/// traffic lives on the links); SRAM stays fully powered under both gated
/// variants (segment-level gating is priced elsewhere); the uncore is the
/// only component the whole-chip variant treats differently.
#[must_use]
pub fn pod_static_gating(
    schedule: &Schedule,
    gating: &GatingParams,
    spec: &NpuSpec,
) -> PodGatingReport {
    let model = PowerModel::new(spec);
    let set = schedule.resources;
    let tl = &schedule.resource_timeline;
    let total = schedule.makespan;
    let leak = gating.leakage.logic_off;
    let walk = |bet: u64, delay: u64| IntervalGating {
        bet,
        delay,
        leak,
        policy: GatePolicy::IdleDetect,
        stall_bet: bet,
        stall_delay: delay,
        wake_exposure: 1.0,
    };
    // The uncore has no Table 3 row of its own: the chip-level walk is
    // priced conservatively at twice the slowest component's figures
    // (mirrors `PolicyKind::WholeChipFull`).
    let chip_bet =
        2 * gating.sa_full_bet.max(gating.vu_bet).max(gating.hbm_bet).max(gating.ici_bet);
    let chip_delay =
        2 * gating.sa_full_delay.max(gating.vu_delay).max(gating.hbm_delay).max(gating.ici_delay);
    let chip_walk = walk(chip_bet, chip_delay);

    let mut baseline = 0.0f64;
    let mut per_component = 0.0f64;
    let mut whole_chip = 0.0f64;
    let mut add = |weight_w: f64, ungated: f64, gated: f64, chip_gated: f64| {
        baseline += weight_w * ungated;
        per_component += weight_w * gated;
        whole_chip += weight_w * chip_gated;
    };

    for chip in 0..set.num_chips() {
        for kind in [Resource::Sa, Resource::Vu, Resource::HbmDma, Resource::Ici] {
            let (weight_w, policy) = match kind {
                Resource::Sa => (
                    model.static_power_w(ComponentKind::Sa),
                    walk(gating.sa_full_bet, gating.sa_full_delay),
                ),
                Resource::Vu => {
                    (model.static_power_w(ComponentKind::Vu), walk(gating.vu_bet, gating.vu_delay))
                }
                Resource::HbmDma => (
                    model.static_power_w(ComponentKind::Hbm)
                        + model.static_power_w(ComponentKind::Dma),
                    walk(gating.hbm_bet, gating.hbm_delay),
                ),
                Resource::Ici => {
                    if set.num_links() > 0 {
                        // Pod traffic lives on the link resources below.
                        continue;
                    }
                    (
                        model.static_power_w(ComponentKind::Ici),
                        walk(gating.ici_bet, gating.ici_delay),
                    )
                }
            };
            let id = set.unit(chip, kind);
            let gaps = tl.idle_intervals(id, total);
            let eq = walked_equivalent(&policy, &gaps, tl.busy_cycles(id), total);
            add(weight_w, total as f64, eq, eq);
        }
        // SRAM: segment-level gating is a different mechanism; keep it
        // fully on so the comparison isolates the uncore delta.
        add(model.static_power_w(ComponentKind::Sram), total as f64, total as f64, total as f64);
        // Uncore: always on under per-component gating, walked over the
        // whole-chip idle intervals under chip-level gating.
        let bubbles = tl.chip_idle_intervals(&set, chip, total);
        let bubble_cycles: u64 = bubbles.iter().map(CycleInterval::len).sum();
        let chip_eq = walked_equivalent(&chip_walk, &bubbles, total - bubble_cycles, total);
        add(model.static_power_w(ComponentKind::Other), total as f64, total as f64, chip_eq);
    }

    // ICI links: the pod's aggregate ICI static power, split evenly.
    if set.num_links() > 0 {
        let link_w = model.static_power_w(ComponentKind::Ici) * set.num_chips() as f64
            / set.num_links() as f64;
        let policy = walk(gating.ici_bet, gating.ici_delay);
        for l in 0..set.num_links() {
            let id = set.link(l);
            let gaps = tl.idle_intervals(id, total);
            let eq = walked_equivalent(&policy, &gaps, tl.busy_cycles(id), total);
            add(link_w, total as f64, eq, eq);
        }
    }

    PodGatingReport {
        baseline_watt_cycles: baseline,
        per_component_watt_cycles: per_component,
        whole_chip_watt_cycles: whole_chip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{LinkGraph, NpuGeneration, PodTopology, TorusKind};
    use npu_sim::pod::pipeline_trace;

    fn report(stage_cycles: &[u64]) -> PodGatingReport {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 4));
        let schedule = pipeline_trace(&graph, stage_cycles, 8).engine().run();
        pod_static_gating(
            &schedule,
            &GatingParams::default(),
            &NpuSpec::generation(NpuGeneration::D),
        )
    }

    #[test]
    fn whole_chip_gating_never_loses_to_per_component_alone() {
        let r = report(&[20_000; 4]);
        assert!(r.baseline_watt_cycles > 0.0);
        assert!(r.per_component_savings() > 0.0);
        assert!(r.whole_chip_savings() >= r.per_component_savings());
        // Even balanced stages leave fill/drain bubbles longer than the
        // chip-level break-even time: the gain is strictly positive.
        assert!(r.whole_chip_gain() > 0.0, "gain {}", r.whole_chip_gain());
    }

    #[test]
    fn imbalanced_stages_widen_the_whole_chip_gap() {
        let balanced = report(&[20_000; 4]);
        let imbalanced = report(&[20_000, 80_000, 20_000, 20_000]);
        assert!(
            imbalanced.whole_chip_gain() > balanced.whole_chip_gain(),
            "imbalanced gain {} <= balanced gain {}",
            imbalanced.whole_chip_gain(),
            balanced.whole_chip_gain()
        );
    }
}
