//! Spatially power-gated systolic array (paper §4.1, Figures 10–13).
//!
//! Three mechanisms cooperate:
//!
//! 1. **Row/column-wise gating from zero-weight detection** (Figure 12):
//!    as weights are pushed in, the hardware records which rows/columns of
//!    the weight panel contain at least one non-zero value. A backwards
//!    OR-prefix-sum turns the non-zero bitmaps into `row_on`/`col_on`
//!    masks: a row/column may be switched off only if it *and every
//!    row/column after it* contain only zeros (earlier rows must still pass
//!    data through).
//! 2. **Diagonal `PE_on` propagation** (Figure 13): when the `M` dimension
//!    is underutilized, PEs wake up just-in-time as the input wavefront
//!    reaches them and fall back to the weight-retaining `W_on` mode once
//!    the per-row input queue drains, so the exposed wake-up latency is a
//!    single PE's delay.
//! 3. **PE power modes** (Figure 11): `Off` (everything gated), `W_on`
//!    (only the weight register powered), `On` (fully active).

use serde::{Deserialize, Serialize};

use npu_power::{GatePolicy, GatingParams};

use crate::designs::Design;

/// Cost of the systolic array's *real* idle intervals under one design:
/// equivalent full-power cycles plus the wake-up stall cycles the design
/// exposes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SaIdleCost {
    /// Equivalent full-power cycles of the walked idle intervals.
    pub equivalent_cycles: f64,
    /// Wake-up stall cycles exposed at the intervals' ends.
    pub wakeup_stall_cycles: f64,
}

/// Walks the SA's idle intervals (from the simulator's busy timeline)
/// against the design's gating mechanism.
///
/// `interval_lens` holds every idle interval; `waking_lens` only those
/// followed by more SA work — a trailing interval (or a workload that
/// never touches the SA at all) ends the execution and never exposes a
/// wake-up, so only `waking_lens` contributes stall cycles.
///
/// `ReGate-Base` gates the whole array with hardware idle detection, so an
/// interval breaks even only past the full-array BET and every gated
/// interval exposes the full-array wake-up delay. PE-level designs
/// (`ReGate-HW`/`ReGate-Full`) gate against the per-PE BET — two orders of
/// magnitude shorter — and hide the wake-up in the diagonal `PE_on`
/// wavefront (Figure 13): only intervals long enough for the whole array
/// to have gone `Off` expose even a single PE's delay. This is exactly the
/// interval-distribution sensitivity of Figures 9/15 that an aggregate
/// idle-cycle count cannot express.
#[must_use]
pub fn sa_idle_intervals_cost(
    design: Design,
    params: &GatingParams,
    interval_lens: &[u64],
    waking_lens: &[u64],
) -> SaIdleCost {
    let leak = params.leakage.logic_off;
    let total: u64 = interval_lens.iter().sum();
    match design {
        Design::NoPg => SaIdleCost { equivalent_cycles: total as f64, wakeup_stall_cycles: 0.0 },
        Design::Ideal => SaIdleCost::default(),
        Design::ReGateBase => {
            let walk = GatingParams::walk_idle_intervals(
                interval_lens.iter().copied(),
                params.sa_full_bet,
                params.sa_full_delay,
                leak,
                GatePolicy::IdleDetect,
            );
            let wakeups = waking_lens
                .iter()
                .filter(|&&len| GatingParams::gates_interval(params.sa_full_bet, len))
                .count() as u64;
            SaIdleCost {
                equivalent_cycles: walk.equivalent_cycles,
                wakeup_stall_cycles: (wakeups * params.sa_full_delay) as f64,
            }
        }
        Design::ReGateHw | Design::ReGateFull => {
            let policy = if design == Design::ReGateFull {
                GatePolicy::CompilerDirected
            } else {
                GatePolicy::IdleDetect
            };
            let walk = GatingParams::walk_idle_intervals(
                interval_lens.iter().copied(),
                params.sa_pe_bet,
                params.sa_pe_delay,
                leak,
                policy,
            );
            // Short intervals park PEs in `W_on`; the wavefront re-wakes
            // them just-in-time at zero exposed latency. Only intervals
            // past the full-array BET (the array fully drained to `Off`)
            // expose the first PE's wake-up.
            let full_off_wakeups = waking_lens
                .iter()
                .filter(|&&len| GatingParams::gates_interval(params.sa_full_bet, len))
                .count() as u64;
            SaIdleCost {
                equivalent_cycles: walk.equivalent_cycles,
                wakeup_stall_cycles: (full_off_wakeups * params.sa_pe_delay) as f64,
            }
        }
    }
}

/// Power mode of one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeMode {
    /// Completely power gated.
    Off,
    /// Only the weight register is powered (retains the loaded weight).
    WOn,
    /// Fully active (registers + ALU).
    On,
}

/// Computes the backwards OR-prefix-sum used by the row/column gating logic:
/// output bit `i` is 1 iff any input bit `j >= i` is 1.
#[must_use]
pub fn suffix_or(bits: &[bool]) -> Vec<bool> {
    let mut out = vec![false; bits.len()];
    let mut any = false;
    for i in (0..bits.len()).rev() {
        any |= bits[i];
        out[i] = any;
    }
    out
}

/// Gating plan for one weight panel loaded into a systolic array.
///
/// The plan captures which rows/columns may be switched off for the entire
/// operator (`N`/`K` underutilization) and how many PE-cycles the diagonal
/// dataflow keeps gated when `M` is underutilized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaGatingPlan {
    sa_width: usize,
    row_on: Vec<bool>,
    col_on: Vec<bool>,
}

impl SaGatingPlan {
    /// Builds the plan from the loaded weight panel.
    ///
    /// `weights[r][c]` is the weight loaded into PE `(r, c)`; panels smaller
    /// than the array are implicitly zero-padded (which is exactly what the
    /// compiler does when `K` or `N` is smaller than the SA width).
    ///
    /// # Panics
    ///
    /// Panics if any row of `weights` is longer than `sa_width` or if more
    /// than `sa_width` rows are given.
    #[must_use]
    pub fn from_weights(sa_width: usize, weights: &[Vec<f32>]) -> Self {
        assert!(weights.len() <= sa_width, "too many weight rows");
        let mut row_nz = vec![false; sa_width];
        let mut col_nz = vec![false; sa_width];
        for (r, row) in weights.iter().enumerate() {
            assert!(row.len() <= sa_width, "weight row {r} too long");
            for (c, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    row_nz[r] = true;
                    col_nz[c] = true;
                }
            }
        }
        SaGatingPlan { sa_width, row_on: suffix_or(&row_nz), col_on: suffix_or(&col_nz) }
    }

    /// Builds the plan directly from a matmul shape `[M,K]×[K,N]` mapped to
    /// a `sa_width`-wide array: rows `>= min(K, width)` and columns
    /// `>= min(N, width)` hold only padded zero weights.
    #[must_use]
    pub fn from_matmul_dims(sa_width: usize, k: usize, n: usize) -> Self {
        let k_used = k.min(sa_width);
        let n_used = n.min(sa_width);
        let row_nz: Vec<bool> = (0..sa_width).map(|r| r < k_used).collect();
        let col_nz: Vec<bool> = (0..sa_width).map(|c| c < n_used).collect();
        SaGatingPlan { sa_width, row_on: suffix_or(&row_nz), col_on: suffix_or(&col_nz) }
    }

    /// Width of the systolic array.
    #[must_use]
    pub fn sa_width(&self) -> usize {
        self.sa_width
    }

    /// Whether row `r` must stay powered (it holds non-zero weights or must
    /// pass data to a later row that does).
    #[must_use]
    pub fn row_on(&self, r: usize) -> bool {
        self.row_on.get(r).copied().unwrap_or(false)
    }

    /// Whether column `c` must stay powered.
    #[must_use]
    pub fn col_on(&self, c: usize) -> bool {
        self.col_on.get(c).copied().unwrap_or(false)
    }

    /// Number of rows kept on.
    #[must_use]
    pub fn rows_on(&self) -> usize {
        self.row_on.iter().filter(|&&b| b).count()
    }

    /// Number of columns kept on.
    #[must_use]
    pub fn cols_on(&self) -> usize {
        self.col_on.iter().filter(|&&b| b).count()
    }

    /// Fraction of PEs that can be switched completely off for the whole
    /// operator thanks to row/column gating (the `N`/`K` underutilization
    /// cases of Figure 10).
    #[must_use]
    pub fn fraction_fully_off(&self) -> f64 {
        let total = (self.sa_width * self.sa_width) as f64;
        let on = (self.rows_on() * self.cols_on()) as f64;
        1.0 - on / total
    }

    /// Power mode of PE `(row, col)` while the wavefront covers it.
    #[must_use]
    pub fn steady_state_mode(&self, row: usize, col: usize) -> PeMode {
        if self.row_on(row) && self.col_on(col) {
            PeMode::On
        } else {
            PeMode::Off
        }
    }

    /// Fraction of PE-cycles gated over the execution of one input tile of
    /// `m` rows, combining row/column gating with the diagonal `PE_on`
    /// wavefront of Figure 13.
    ///
    /// An active PE `(r, c)` inside the powered row/column region is `On`
    /// only while the input wavefront passes through it — `m` cycles out of
    /// the `m + 2·width` cycles the tile occupies the array — and sits in
    /// the weight-retaining `W_on` mode otherwise, which gates everything
    /// but the weight register (modelled as `w_on_residual` of a PE's
    /// power, 10% by default in the evaluation).
    #[must_use]
    pub fn gated_pe_cycle_fraction(&self, m: u64, w_on_residual: f64) -> f64 {
        let width = self.sa_width as u64;
        let tile_cycles = (m + 2 * width) as f64;
        let total_pe_cycles = (self.sa_width * self.sa_width) as f64 * tile_cycles;
        // PEs outside the powered region: off for the whole tile.
        let off_pes = (self.sa_width * self.sa_width - self.rows_on() * self.cols_on()) as f64;
        let off_cycles = off_pes * tile_cycles;
        // PEs inside the powered region: On for m cycles, W_on otherwise.
        let on_pes = (self.rows_on() * self.cols_on()) as f64;
        let won_cycles = on_pes * (tile_cycles - m as f64);
        let gated = off_cycles + won_cycles * (1.0 - w_on_residual);
        gated / total_pe_cycles
    }
}

/// Cycle-level simulation of the diagonal `PE_on` wavefront for one tile of
/// `m` input rows on a `width`-wide array (Figure 13). Returns, per cycle,
/// the number of PEs in `On` mode; used to validate that the analytical
/// [`SaGatingPlan::gated_pe_cycle_fraction`] matches the dataflow.
#[must_use]
pub fn simulate_wavefront_on_pes(width: usize, m: usize) -> Vec<usize> {
    // The input of row r reaches column c at cycle r + c (diagonal skew);
    // the PE at (r, c) is On while any of the m inputs is passing through,
    // i.e. during cycles [r + c, r + c + m).
    let total_cycles = m + 2 * width;
    let mut on_per_cycle = vec![0usize; total_cycles];
    for r in 0..width {
        for c in 0..width {
            let start = r + c;
            let end = (r + c + m).min(total_cycles);
            for slot in &mut on_per_cycle[start..end] {
                *slot += 1;
            }
        }
    }
    on_per_cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa_interval_walk_orders_designs() {
        // A mix of short (below PE BET), medium (between PE and full-array
        // BET) and long intervals; all are followed by more SA work.
        let intervals = [10u64, 100, 300, 5000, 20_000];
        let params = GatingParams::default();
        let total: u64 = intervals.iter().sum();
        let nopg = sa_idle_intervals_cost(Design::NoPg, &params, &intervals, &intervals);
        let base = sa_idle_intervals_cost(Design::ReGateBase, &params, &intervals, &intervals);
        let hw = sa_idle_intervals_cost(Design::ReGateHw, &params, &intervals, &intervals);
        let full = sa_idle_intervals_cost(Design::ReGateFull, &params, &intervals, &intervals);
        let ideal = sa_idle_intervals_cost(Design::Ideal, &params, &intervals, &intervals);
        assert!((nopg.equivalent_cycles - total as f64).abs() < 1e-9);
        assert_eq!(nopg.wakeup_stall_cycles, 0.0);
        assert!(base.equivalent_cycles < nopg.equivalent_cycles);
        assert!(hw.equivalent_cycles < base.equivalent_cycles, "PE BET gates medium intervals");
        assert!(full.equivalent_cycles < hw.equivalent_cycles, "setpm avoids the window");
        assert_eq!(ideal.equivalent_cycles, 0.0);
        // Base exposes the full-array delay per gated interval; PE-level
        // designs expose a single PE delay on the two long intervals only.
        assert!((base.wakeup_stall_cycles - 2.0 * params.sa_full_delay as f64).abs() < 1e-9);
        assert!((hw.wakeup_stall_cycles - 2.0 * params.sa_pe_delay as f64).abs() < 1e-9);
        assert!(hw.wakeup_stall_cycles < base.wakeup_stall_cycles);
        assert_eq!(hw.wakeup_stall_cycles, full.wakeup_stall_cycles);
    }

    #[test]
    fn trailing_interval_exposes_no_wakeup() {
        // The last interval (20k cycles, ending at the makespan) gates for
        // energy but wakes nothing; an SA-less workload (single interval,
        // nothing waking) pays zero stalls entirely.
        let intervals = [5000u64, 20_000];
        let waking = [5000u64];
        let params = GatingParams::default();
        let base = sa_idle_intervals_cost(Design::ReGateBase, &params, &intervals, &waking);
        assert!((base.wakeup_stall_cycles - params.sa_full_delay as f64).abs() < 1e-9);
        let unused = sa_idle_intervals_cost(Design::ReGateBase, &params, &[100_000], &[]);
        assert_eq!(unused.wakeup_stall_cycles, 0.0);
        assert!(unused.equivalent_cycles < 100_000.0, "the idle energy is still recovered");
    }

    #[test]
    fn sa_interval_walk_ignores_fragmented_idleness_under_base() {
        // 100 × 100-cycle fragments: below the full-array BET (469), above
        // the PE BET (47). Base recovers nothing; HW recovers almost all.
        let intervals = vec![100u64; 100];
        let params = GatingParams::default();
        let base = sa_idle_intervals_cost(Design::ReGateBase, &params, &intervals, &intervals);
        let hw = sa_idle_intervals_cost(Design::ReGateHw, &params, &intervals, &intervals);
        assert!((base.equivalent_cycles - 10_000.0).abs() < 1e-9, "Base stays at full power");
        assert!(hw.equivalent_cycles < 3_000.0, "PE-level gating recovers the fragments");
        assert_eq!(base.wakeup_stall_cycles, 0.0);
        assert_eq!(hw.wakeup_stall_cycles, 0.0, "W_on wavefront wake-ups are hidden");
    }

    #[test]
    fn suffix_or_basic() {
        assert_eq!(suffix_or(&[false, true, false, false]), vec![true, true, false, false]);
        assert_eq!(suffix_or(&[false, false]), vec![false, false]);
        assert_eq!(suffix_or(&[true, false]), vec![true, false]);
        assert_eq!(suffix_or(&[]), Vec::<bool>::new());
    }

    #[test]
    fn figure12_example() {
        // col_nz = 0100 -> col_on = 1100: column 0 stays on despite zero
        // weights because it passes data to column 1.
        let plan = SaGatingPlan::from_weights(
            4,
            &[
                vec![0.0, 4.0, 0.0, 0.0],
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0, 0.0],
                vec![0.0, 0.0, 0.0, 0.0],
            ],
        );
        assert!(plan.col_on(0) && plan.col_on(1));
        assert!(!plan.col_on(2) && !plan.col_on(3));
        // row_nz = 1010 -> row_on = 1110.
        assert!(plan.row_on(0) && plan.row_on(1) && plan.row_on(2));
        assert!(!plan.row_on(3));
        assert_eq!(plan.rows_on(), 3);
        assert_eq!(plan.cols_on(), 2);
        assert!((plan.fraction_fully_off() - (1.0 - 6.0 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn matmul_dims_padding() {
        // DiT attention: K = 72 on a 128-wide SA leaves 56 rows gated.
        let plan = SaGatingPlan::from_matmul_dims(128, 72, 1024);
        assert_eq!(plan.rows_on(), 72);
        assert_eq!(plan.cols_on(), 128);
        assert!((plan.fraction_fully_off() - (1.0 - 72.0 / 128.0)).abs() < 1e-12);
        // Full-size matmul gates nothing spatially.
        let full = SaGatingPlan::from_matmul_dims(128, 4096, 4096);
        assert_eq!(full.fraction_fully_off(), 0.0);
    }

    #[test]
    fn steady_state_modes() {
        let plan = SaGatingPlan::from_matmul_dims(8, 4, 2);
        assert_eq!(plan.steady_state_mode(0, 0), PeMode::On);
        assert_eq!(plan.steady_state_mode(5, 0), PeMode::Off);
        assert_eq!(plan.steady_state_mode(0, 5), PeMode::Off);
    }

    #[test]
    fn small_m_increases_gated_fraction() {
        let plan = SaGatingPlan::from_matmul_dims(128, 128, 128);
        let small_m = plan.gated_pe_cycle_fraction(2, 0.1);
        let large_m = plan.gated_pe_cycle_fraction(4096, 0.1);
        assert!(small_m > 0.8, "tiny M leaves most PE-cycles gated: {small_m}");
        assert!(large_m < 0.1, "large M keeps the array busy: {large_m}");
        assert!(small_m > large_m);
    }

    #[test]
    fn wavefront_matches_analytical_on_cycles() {
        let width = 16;
        let m = 8;
        let per_cycle = simulate_wavefront_on_pes(width, m);
        let total_on: usize = per_cycle.iter().sum();
        // Every PE is On for exactly m cycles.
        assert_eq!(total_on, width * width * m);
        // The wavefront never switches on more PEs than exist.
        assert!(per_cycle.iter().all(|&n| n <= width * width));
        // Analytical W_on/On split from gated_pe_cycle_fraction with zero
        // residual: gated fraction = 1 - m / (m + 2*width).
        let plan = SaGatingPlan::from_matmul_dims(width, width, width);
        let expected = 1.0 - m as f64 / (m as f64 + 2.0 * width as f64);
        assert!((plan.gated_pe_cycle_fraction(m as u64, 0.0) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too many weight rows")]
    fn oversized_weight_panel_rejected() {
        let _ = SaGatingPlan::from_weights(2, &[vec![1.0], vec![1.0], vec![1.0]]);
    }
}

/// Deterministic property checks over seeded pseudo-random inputs.
///
/// The offline build has no `proptest`, so these run the same invariants
/// over a fixed-seed xorshift64* stream — fully reproducible, no shrink
/// step, but the same coverage intent.
#[cfg(test)]
mod proptests {
    use super::*;

    /// xorshift64* with a fixed seed: deterministic across runs/platforms.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[lo, hi)`.
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next() % (hi - lo)
        }

        fn unit_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn suffix_or_matches_any_of_suffix() {
        let mut rng = XorShift(0x5EED_0001);
        for _ in 0..256 {
            let len = rng.range(0, 64) as usize;
            let bits: Vec<bool> = (0..len).map(|_| rng.next() & 1 == 1).collect();
            let out = suffix_or(&bits);
            for i in 0..bits.len() {
                assert_eq!(out[i], bits[i..].iter().any(|&b| b));
            }
        }
    }

    #[test]
    fn gated_fraction_is_a_valid_fraction() {
        let mut rng = XorShift(0x5EED_0002);
        for _ in 0..256 {
            let k = rng.range(1, 512) as usize;
            let n = rng.range(1, 512) as usize;
            let m = rng.range(1, 4096);
            let residual = rng.unit_f64();
            let plan = SaGatingPlan::from_matmul_dims(128, k, n);
            let f = plan.gated_pe_cycle_fraction(m, residual);
            assert!((0.0..=1.0).contains(&f), "k={k} n={n} m={m} residual={residual} f={f}");
            // More residual power in W_on mode means less gating benefit.
            let f_low = plan.gated_pe_cycle_fraction(m, 0.0);
            assert!(f <= f_low + 1e-12);
        }
    }

    #[test]
    fn rows_cols_on_match_dims() {
        let mut rng = XorShift(0x5EED_0003);
        for _ in 0..256 {
            let k = rng.range(1, 129) as usize;
            let n = rng.range(1, 129) as usize;
            let plan = SaGatingPlan::from_matmul_dims(128, k, n);
            assert_eq!(plan.rows_on(), k.min(128));
            assert_eq!(plan.cols_on(), n.min(128));
        }
    }

    #[test]
    fn wavefront_total_equals_pe_times_m() {
        let mut rng = XorShift(0x5EED_0004);
        for _ in 0..64 {
            let width = rng.range(1, 32) as usize;
            let m = rng.range(1, 64) as usize;
            let per_cycle = simulate_wavefront_on_pes(width, m);
            let total: usize = per_cycle.iter().sum();
            assert_eq!(total, width * width * m);
        }
    }
}
