//! End-to-end evaluation engine: workload → compile → simulate → per-design
//! energy, power, performance, and carbon (paper §6).
//!
//! For every design point the engine converts the simulator's activity
//! into *equivalent full-power cycles* per component: busy cycles at the
//! design's rate (with PE-level spatial gating applied to active systolic
//! arrays), plus the component's **real idle intervals** — the gaps of the
//! simulator's merged busy timeline — walked one by one against the
//! design's break-even times, detection windows, and wake-up latencies
//! ([`npu_power::GatingParams::walk_idle_intervals`],
//! [`crate::pe_gating::sa_idle_intervals_cost`]). An interval shorter than
//! the break-even time stays at full power no matter how much aggregate
//! idleness exists, which is exactly the distribution sensitivity of the
//! paper's Figures 9/15. Static energy is the component's leakage power
//! times the equivalent cycles; dynamic energy is identical across designs
//! (the same work is performed).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration, ParallelismConfig};
use npu_compiler::{CompiledGraph, Compiler};
use npu_models::{ExecutionUnit, Workload};
use npu_power::energy::ChipUsage;
use npu_power::{CarbonModel, EnergyBreakdown, GatePolicy, GatingParams, PowerModel, SramGateMode};
use npu_sim::{OpTiming, SimulationResult, Simulator};

use crate::designs::Design;
use crate::pe_gating::{sa_idle_intervals_cost, SaGatingPlan};

/// Residual power of a PE in the weight-retaining `W_on` mode, as a
/// fraction of its fully-on static power.
const W_ON_RESIDUAL: f64 = 0.10;

/// Number of idle intervals long enough to gate under a break-even time.
fn gated_count(interval_lens: &[u64], bet: u64) -> u64 {
    interval_lens.iter().filter(|&&len| GatingParams::gates_interval(bet, len)).count() as u64
}

/// Evaluation of one design point for one workload deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEvaluation {
    /// The design point.
    pub design: Design,
    /// Per-chip energy breakdown for one unit-of-work batch.
    pub energy: EnergyBreakdown,
    /// Execution-time overhead relative to `NoPG` (fraction, e.g. 0.004).
    pub performance_overhead: f64,
    /// Peak per-chip power: the average power of the most power-hungry
    /// operator, in watts.
    pub peak_power_w: f64,
}

/// Full evaluation of one workload deployment across all design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEvaluation {
    /// The evaluated workload (with its batch size).
    pub workload: Workload,
    /// NPU generation.
    pub generation: NpuGeneration,
    /// Number of chips in the deployment.
    pub num_chips: usize,
    /// The parallelism configuration used.
    pub parallelism: ParallelismConfig,
    /// Per-design evaluations.
    pub designs: BTreeMap<Design, DesignEvaluation>,
    /// Work items produced by one execution of the graph (whole deployment).
    pub work_items: f64,
    /// The underlying simulation (per-operator activity).
    pub simulation: SimulationResult,
}

impl WorkloadEvaluation {
    /// Evaluation of one design point.
    ///
    /// # Panics
    ///
    /// Panics if the design was not evaluated (all designs always are).
    #[must_use]
    pub fn design(&self, design: Design) -> &DesignEvaluation {
        self.designs.get(&design).expect("all designs are evaluated")
    }

    /// Busy-time energy savings of a design relative to `NoPG`.
    #[must_use]
    pub fn energy_savings(&self, design: Design) -> f64 {
        let base = self.design(Design::NoPg).energy.total_j();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.design(design).energy.total_j() / base
    }

    /// Energy per unit of work (Joule per iteration / token / request /
    /// image) for the whole deployment.
    #[must_use]
    pub fn energy_per_work(&self, design: Design) -> f64 {
        if self.work_items == 0.0 {
            return 0.0;
        }
        self.design(design).energy.total_j() * self.num_chips as f64 / self.work_items
    }

    /// Average per-chip power while busy, in watts.
    #[must_use]
    pub fn average_power_w(&self, design: Design) -> f64 {
        self.design(design).energy.average_power_w()
    }

    /// Peak per-chip power, in watts.
    #[must_use]
    pub fn peak_power_w(&self, design: Design) -> f64 {
        self.design(design).peak_power_w
    }

    /// Execution-time overhead of a design relative to `NoPG`.
    #[must_use]
    pub fn performance_overhead(&self, design: Design) -> f64 {
        self.design(design).performance_overhead
    }

    /// Operational-carbon reduction of a design relative to `NoPG`,
    /// including the idle-time leakage (the Figure 24 metric).
    #[must_use]
    pub fn operational_carbon_reduction(&self, design: Design) -> f64 {
        let carbon = CarbonModel::default();
        let base = self.design(Design::NoPg).energy.facility_j();
        let gated = self.design(design).energy.facility_j();
        carbon.operational_reduction(base, gated)
    }

    /// Per-component energy-savings breakdown of one design (fraction of the
    /// `NoPG` total energy saved in each component) — the stacking of
    /// Figure 17.
    #[must_use]
    pub fn savings_breakdown(&self, design: Design) -> BTreeMap<ComponentKind, f64> {
        let base_total = self.design(Design::NoPg).energy.total_j();
        let mut out = BTreeMap::new();
        if base_total == 0.0 {
            return out;
        }
        for kind in ComponentKind::ALL {
            let before = self.design(Design::NoPg).energy.component(kind).total_j();
            let after = self.design(design).energy.component(kind).total_j();
            out.insert(kind, (before - after) / base_total);
        }
        out
    }
}

/// The evaluation engine for one NPU generation.
#[derive(Debug, Clone)]
pub struct Evaluator {
    generation: NpuGeneration,
    gating: GatingParams,
}

impl Evaluator {
    /// Creates an evaluator with the default (Table 3) gating parameters.
    #[must_use]
    pub fn new(generation: NpuGeneration) -> Self {
        Evaluator { generation, gating: GatingParams::default() }
    }

    /// Creates an evaluator with custom gating parameters (sensitivity
    /// analysis, §6.5).
    #[must_use]
    pub fn with_gating(generation: NpuGeneration, gating: GatingParams) -> Self {
        Evaluator { generation, gating }
    }

    /// The gating parameters in use.
    #[must_use]
    pub fn gating(&self) -> &GatingParams {
        &self.gating
    }

    /// The targeted NPU generation.
    #[must_use]
    pub fn generation(&self) -> NpuGeneration {
        self.generation
    }

    /// Evaluates a workload on `num_chips` chips across every design point.
    #[must_use]
    pub fn evaluate(&self, workload: &Workload, num_chips: usize) -> WorkloadEvaluation {
        let chip = ChipConfig::new(self.generation, num_chips);
        let parallelism = workload
            .default_parallelism(chip.spec(), num_chips)
            .unwrap_or_else(|| ParallelismConfig::new(num_chips, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        self.evaluate_compiled(
            workload,
            num_chips,
            parallelism,
            &compiled,
            simulation,
            npu_power::NPU_DUTY_CYCLE,
        )
    }

    /// Evaluates every design point over a *pre-built* compiled graph and
    /// simulation — the entry point for callers that schedule their own
    /// traces (the serving simulator's arrival-driven runs, where the
    /// timeline already contains queueing and inter-request gaps).
    ///
    /// `duty_cycle` attributes the out-of-duty-cycle idle leakage the
    /// simulated window cannot see: the standard single-batch path passes
    /// the paper's fleet average ([`npu_power::NPU_DUTY_CYCLE`]), while a
    /// serving trace passes `1.0` because its inter-request idleness is
    /// *inside* the window and priced by the interval walk — charging the
    /// scalar term on top would double-count it. `workload.work_items()`
    /// must describe the whole simulated trace (pass
    /// `workload.with_batch(total_samples)` when the trace spans several
    /// batches).
    ///
    /// # Panics
    ///
    /// Panics if the simulation was produced on a different chip
    /// deployment than this evaluator's `(generation, num_chips)` —
    /// pricing a trace with another chip's power model would silently mix
    /// two hardware configurations in one report.
    #[must_use]
    pub fn evaluate_compiled(
        &self,
        workload: &Workload,
        num_chips: usize,
        parallelism: ParallelismConfig,
        compiled: &CompiledGraph,
        simulation: SimulationResult,
        duty_cycle: f64,
    ) -> WorkloadEvaluation {
        let chip = ChipConfig::new(self.generation, num_chips);
        assert_eq!(
            *simulation.chip(),
            chip,
            "simulation ran on a different chip deployment than the evaluator targets"
        );
        let model = PowerModel::new(chip.spec());

        let usage = Self::chip_usage(compiled, &simulation);
        let baseline = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, duty_cycle);

        let mut designs = BTreeMap::new();
        for design in Design::ALL {
            designs.insert(
                design,
                self.evaluate_design(design, compiled, &simulation, &model, &baseline),
            );
        }
        WorkloadEvaluation {
            workload: *workload,
            generation: self.generation,
            num_chips,
            parallelism,
            designs,
            work_items: workload.work_items(),
            simulation,
        }
    }

    /// Builds the chip-activity counters for the dynamic-energy model.
    fn chip_usage(compiled: &CompiledGraph, sim: &SimulationResult) -> ChipUsage {
        let mut sa_flops = 0.0;
        let mut vu_flops = 0.0;
        for op in compiled.anchors() {
            match op.unit {
                ExecutionUnit::Sa => {
                    sa_flops += op.op.flops();
                    vu_flops += op.fused_vu_flops;
                }
                _ => vu_flops += op.op.flops() + op.fused_vu_flops,
            }
        }
        let hbm_bytes: f64 = sim.timings().iter().map(|t| t.hbm_bytes as f64).sum();
        let ici_bytes: f64 = sim.timings().iter().map(|t| t.ici_bytes as f64).sum();
        ChipUsage {
            busy_seconds: sim.total_seconds(),
            sa_flops,
            vu_flops,
            hbm_bytes,
            ici_bytes,
            sram_bytes: 3.0 * hbm_bytes,
            dma_bytes: hbm_bytes + ici_bytes,
        }
    }

    /// Evaluates one design point by walking the simulation's real
    /// per-component idle intervals against the design's gating
    /// mechanisms.
    fn evaluate_design(
        &self,
        design: Design,
        compiled: &CompiledGraph,
        sim: &SimulationResult,
        model: &PowerModel,
        baseline: &EnergyBreakdown,
    ) -> DesignEvaluation {
        if design == Design::NoPg {
            let peak_power_w = self.peak_power(model, sim.timings(), baseline, sim.total_cycles());
            return DesignEvaluation {
                design,
                energy: baseline.clone(),
                performance_overhead: 0.0,
                peak_power_w,
            };
        }

        let spec = model.spec();
        let cycle_s = spec.cycle_seconds();
        let timeline = sim.busy_timeline();
        let total_cycles = sim.total_cycles();
        let anchors: Vec<_> = compiled.anchors().collect();
        let timings = sim.timings();
        let leak = self.gating.leakage;

        // Equivalent full-power cycles per component: busy time at its
        // design-specific rate, plus the component's *real* idle intervals
        // walked against the design's break-even times and wake-up
        // latencies.
        let mut equivalent: BTreeMap<ComponentKind, f64> = BTreeMap::new();
        let mut overhead_cycles: f64 = 0.0;

        // Interval lengths per component: all of them (for the energy
        // walk), and the subset followed by more work — a trailing
        // interval, including the single `[0, makespan)` interval of a
        // component the workload never touches, ends the execution and
        // never pays a wake-up.
        let idle_lens = |kind: ComponentKind| -> (Vec<u64>, Vec<u64>) {
            let gaps = timeline.idle_intervals(kind, total_cycles);
            let all = gaps.iter().map(npu_sim::CycleInterval::len).collect();
            let waking =
                gaps.iter().filter(|iv| iv.end < total_cycles).map(|iv| iv.len()).collect();
            (all, waking)
        };

        // --- Systolic arrays: spatially gated while active (per-operator
        //     shapes), interval-gated while idle. ---
        let mut sa_busy_eq = 0.0f64;
        for (op, timing) in anchors.iter().zip(timings.iter()) {
            sa_busy_eq += self.sa_active_equivalent_cycles(design, op, timing);
        }
        let (sa_lens, sa_waking) = idle_lens(ComponentKind::Sa);
        let sa_idle = sa_idle_intervals_cost(design, &self.gating, &sa_lens, &sa_waking);
        equivalent.insert(ComponentKind::Sa, sa_busy_eq + sa_idle.equivalent_cycles);
        overhead_cycles += sa_idle.wakeup_stall_cycles;

        // --- Vector units: full power while computing, interval-gated
        //     while idle (hardware detection, or compiler `setpm` for
        //     ReGate-Full). ---
        let vu_busy = timeline.busy_cycles(ComponentKind::Vu) as f64;
        let (vu_idle_eq, vu_stall) = if design == Design::Ideal {
            (0.0, 0.0)
        } else {
            let policy = if design == Design::ReGateFull {
                GatePolicy::CompilerDirected
            } else {
                GatePolicy::IdleDetect
            };
            let (lens, waking) = idle_lens(ComponentKind::Vu);
            let walk = GatingParams::walk_idle_intervals(
                lens.into_iter(),
                self.gating.vu_bet,
                self.gating.vu_delay,
                leak.logic_off,
                policy,
            );
            // Under ReGate-Full, `setpm on` is issued ahead of the next
            // use, hiding the wake-up behind the preceding instructions.
            let stall = if design == Design::ReGateFull {
                0.0
            } else {
                (gated_count(&waking, self.gating.vu_bet) * self.gating.vu_delay) as f64
            };
            (walk.equivalent_cycles, stall)
        };
        equivalent.insert(ComponentKind::Vu, vu_busy + vu_idle_eq);
        overhead_cycles += vu_stall;

        // --- HBM / ICI controllers and the DMA engine: hardware idle
        //     detection in every ReGate design; the compiler's prefetch
        //     knowledge hides part of the wake-up in ReGate-Full. ---
        let wake_exposure = match design {
            Design::ReGateBase => 1.0,
            Design::ReGateHw => 0.5,
            Design::ReGateFull => 0.25,
            Design::NoPg | Design::Ideal => 0.0,
        };
        for kind in [ComponentKind::Hbm, ComponentKind::Ici, ComponentKind::Dma] {
            // The DMA engine keeps the memory interface's gating timing (it
            // wakes with the HBM path it feeds), as in the pre-timeline
            // model.
            let (bet, delay) = match kind {
                ComponentKind::Dma => (self.gating.hbm_bet, self.gating.hbm_delay),
                _ => (self.gating.component_bet(kind), self.gating.component_delay(kind)),
            };
            let busy = timeline.busy_cycles(kind) as f64;
            let (idle_eq, stall) = if design == Design::Ideal {
                (0.0, 0.0)
            } else {
                let (lens, waking) = idle_lens(kind);
                let walk = GatingParams::walk_idle_intervals(
                    lens.into_iter(),
                    bet,
                    delay,
                    leak.logic_off,
                    GatePolicy::IdleDetect,
                );
                (
                    walk.equivalent_cycles,
                    gated_count(&waking, bet) as f64 * delay as f64 * wake_exposure,
                )
            };
            equivalent.insert(kind, busy + idle_eq);
            overhead_cycles += stall;
        }

        // --- SRAM: per-segment gating on the event timeline (§4.3). A
        //     4 KiB segment burns full static power while its data is
        //     live; its *dead* intervals are walked against the retention
        //     mode's break-even time exactly like any other component's
        //     idle gaps. ReGate-Base/-HW put dead segments into the
        //     data-retaining sleep mode via hardware idle detection;
        //     ReGate-Full powers them off with compiler-issued `setpm`
        //     (the allocator knows every lifetime statically); Ideal leaks
        //     nothing while dead. Retention wake-ups are not charged to
        //     the critical path: the drowsy wake is a few cycles hidden
        //     under the access pipeline, and `setpm on` is issued ahead of
        //     the next use.
        equivalent.insert(ComponentKind::Sram, self.sram_equivalent_cycles(design, sim));

        // --- Peripheral logic is never gated. ---
        equivalent.insert(ComponentKind::Other, total_cycles as f64);

        let performance_overhead =
            if total_cycles == 0 { 0.0 } else { overhead_cycles / total_cycles as f64 };

        let equivalent_seconds: BTreeMap<ComponentKind, f64> =
            equivalent.into_iter().map(|(k, cycles)| (k, cycles * cycle_s)).collect();
        // Idle (out-of-duty-cycle) leakage: gating designs keep the whole
        // chip gated while idle; the Ideal roofline leaks nothing.
        let idle_static_j = match design {
            Design::NoPg => baseline.idle_static_j,
            Design::Ideal => 0.0,
            _ => baseline.idle_static_j * self.idle_off_ratio(design, model),
        };
        let energy = EnergyBreakdown::gated(
            baseline,
            model,
            &equivalent_seconds,
            overhead_cycles * cycle_s,
            idle_static_j,
        );

        let peak_power_w = self.peak_power(model, timings, &energy, total_cycles);
        DesignEvaluation { design, energy, performance_overhead, peak_power_w }
    }

    /// Equivalent full-power SRAM cycles of one design, averaged over the
    /// scratchpad's segments: each segment is fully powered during its
    /// live intervals and its dead intervals are walked against the
    /// design's retention mode. Segments never touched by any buffer
    /// share one dead interval spanning the whole execution, so their
    /// cost is computed once and weighted by their count.
    fn sram_equivalent_cycles(&self, design: Design, sim: &SimulationResult) -> f64 {
        let segments = sim.segment_timeline();
        let total_segments = segments.num_segments();
        let total_cycles = sim.total_cycles();
        if total_segments == 0 || total_cycles == 0 {
            return total_cycles as f64;
        }
        let mode = match design {
            Design::NoPg => return total_cycles as f64,
            Design::ReGateBase | Design::ReGateHw => Some(SramGateMode::Drowsy),
            Design::ReGateFull => Some(SramGateMode::Off),
            Design::Ideal => None,
        };
        let dead_equivalent = |lens: &mut dyn Iterator<Item = u64>| -> f64 {
            match mode {
                None => 0.0,
                Some(mode) => {
                    let g = self.gating.sram_gating(mode);
                    GatingParams::walk_idle_intervals(lens, g.bet, g.delay, g.leak, g.policy)
                        .equivalent_cycles
                }
            }
        };
        let mut eq_sum = 0.0f64;
        for band in segments.bands() {
            let dead = segments.dead_intervals_of(band);
            let mut lens = dead.iter().map(npu_sim::CycleInterval::len);
            let per_segment = band.live_cycles() as f64 + dead_equivalent(&mut lens);
            eq_sum += per_segment * band.num_segments as f64;
        }
        let never_live = (total_segments - segments.ever_live_segments()) as f64;
        if never_live > 0.0 {
            let mut whole_run = std::iter::once(total_cycles);
            eq_sum += dead_equivalent(&mut whole_run) * never_live;
        }
        eq_sum / total_segments as f64
    }

    /// Chip-wide residual-leakage ratio while the chip sits outside its
    /// duty cycle: each component's share of the static power weighted by
    /// its *own* off-state leakage — SRAM by the design's retention mode,
    /// everything else by the gated-logic ratio. (The previous model took
    /// `logic_off.max(sram_off)` for the whole chip, which let the
    /// leakiest component's ratio bleed into every other component's
    /// share.)
    fn idle_off_ratio(&self, design: Design, model: &PowerModel) -> f64 {
        let total = model.total_static_power_w();
        let leak = self.gating.leakage;
        if total == 0.0 {
            return leak.logic_off;
        }
        let sram_ratio = match design {
            // Only compiler-directed `setpm` may destroy segment contents;
            // the hardware-managed designs retain state in sleep mode.
            Design::ReGateFull => leak.sram_off,
            _ => leak.sram_sleep,
        };
        ComponentKind::ALL
            .iter()
            .map(|&kind| {
                let ratio = if kind == ComponentKind::Sram { sram_ratio } else { leak.logic_off };
                model.static_power_w(kind) / total * ratio
            })
            .sum()
    }

    /// Equivalent full-power SA cycles of one operator's *active* period
    /// under a design (spatial PE gating; the idle periods between active
    /// bursts are walked separately on the timeline).
    fn sa_active_equivalent_cycles(
        &self,
        design: Design,
        op: &npu_compiler::CompiledOp,
        timing: &OpTiming,
    ) -> f64 {
        let active = timing.sa_active_cycles as f64;
        if active == 0.0 {
            return 0.0;
        }
        let leak = self.gating.leakage.logic_off;
        match design {
            Design::NoPg | Design::ReGateBase => {
                // Component-level gating cannot exploit spatial
                // underutilization: the whole array burns full static power
                // while any PE computes.
                active
            }
            Design::ReGateHw | Design::ReGateFull => {
                // PE-level gating: rows/columns holding padded zero
                // weights are off, and the diagonal wavefront keeps PEs
                // in W_on outside the input wave.
                let (m, k, n) = op.op.matmul_dims().unwrap_or((1, 1, 1));
                let spec = npu_arch::NpuSpec::generation(self.generation);
                let plan = SaGatingPlan::from_matmul_dims(spec.sa_width, k as usize, n as usize);
                let tile_m = m.min(spec.sa_width as u64 * 32);
                let gated_frac = plan.gated_pe_cycle_fraction(tile_m, W_ON_RESIDUAL);
                active * ((1.0 - gated_frac) + gated_frac * leak)
            }
            Design::Ideal => active * timing.sa_spatial_utilization,
        }
    }

    /// Peak per-chip power: the average power of the most power-hungry
    /// operator under the design's static-power scaling.
    fn peak_power(
        &self,
        model: &PowerModel,
        timings: &[OpTiming],
        energy: &EnergyBreakdown,
        total_cycles: u64,
    ) -> f64 {
        let spec = model.spec();
        // Static power scales with the design's overall static reduction.
        let nopg_static_w = model.total_static_power_w();
        let design_static_w = if total_cycles == 0 {
            nopg_static_w
        } else {
            energy.static_j() / (total_cycles as f64 * spec.cycle_seconds())
        };
        let mut peak = 0.0f64;
        for t in timings {
            let secs = t.duration_seconds(spec.frequency_hz());
            if secs <= 0.0 {
                continue;
            }
            let dynamic_j = model.sa_energy_per_flop() * t.flops
                + model.hbm_energy_per_byte() * t.hbm_bytes as f64
                + model.ici_energy_per_byte() * t.ici_bytes as f64
                + model.sram_energy_per_byte() * 3.0 * t.hbm_bytes as f64
                + model.other_dynamic_power_w() * secs;
            let power = dynamic_j / secs + design_static_w;
            peak = peak.max(power.min(spec.tdp_watts * 1.2));
        }
        // Operator spans on the global clock include scheduling stalls,
        // which can dilute every per-operator average below the whole-run
        // average; the peak can never physically undercut it.
        peak.max(energy.average_power_w().min(spec.tdp_watts * 1.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase};

    fn quick_diffusion() -> Workload {
        let mut wl = Workload::diffusion(DiffusionModel::DitXl);
        if let Workload::Diffusion(ref mut cfg) = wl {
            cfg.steps = 2;
        }
        wl
    }

    #[test]
    fn savings_are_ordered_across_designs() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        for workload in [
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Small),
            quick_diffusion(),
        ] {
            let eval = evaluator.evaluate(&workload, 8);
            let base = eval.energy_savings(Design::ReGateBase);
            let hw = eval.energy_savings(Design::ReGateHw);
            let full = eval.energy_savings(Design::ReGateFull);
            let ideal = eval.energy_savings(Design::Ideal);
            assert!(base >= -1e-9, "{workload}: Base savings {base}");
            assert!(hw >= base - 1e-9, "{workload}: HW {hw} < Base {base}");
            assert!(full >= hw - 1e-9, "{workload}: Full {full} < HW {hw}");
            assert!(ideal >= full - 1e-9, "{workload}: Ideal {ideal} < Full {full}");
            assert!(ideal < 0.8, "{workload}: Ideal saves at most the static share, got {ideal}");
        }
    }

    #[test]
    fn full_savings_magnitudes_match_paper_ranges() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        // LLM decode: paper reports 16%-20% savings.
        let decode = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let s = decode.energy_savings(Design::ReGateFull);
        assert!((0.08..0.45).contains(&s), "decode savings {s}");
        // DLRM: paper reports ~33% savings.
        let dlrm = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
        let s = dlrm.energy_savings(Design::ReGateFull);
        assert!((0.15..0.60).contains(&s), "DLRM savings {s}");
        // Prefill (compute-bound): smaller savings.
        let prefill =
            evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
        let sp = prefill.energy_savings(Design::ReGateFull);
        assert!((0.03..0.30).contains(&sp), "prefill savings {sp}");
        assert!(s > sp, "DLRM should save more than prefill");
    }

    #[test]
    fn performance_overhead_bounds() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        for workload in [
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Medium),
        ] {
            let eval = evaluator.evaluate(&workload, 8);
            assert_eq!(eval.performance_overhead(Design::NoPg), 0.0);
            assert_eq!(eval.performance_overhead(Design::Ideal), 0.0);
            let base = eval.performance_overhead(Design::ReGateBase);
            let hw = eval.performance_overhead(Design::ReGateHw);
            let full = eval.performance_overhead(Design::ReGateFull);
            assert!(base < 0.06, "{workload}: Base overhead {base}");
            assert!(hw <= base + 1e-12, "{workload}: HW {hw} > Base {base}");
            assert!(full <= hw + 1e-12, "{workload}: Full {full} > HW {hw}");
            assert!(full < 0.005, "{workload}: Full overhead {full} above 0.5%");
        }
    }

    #[test]
    fn average_power_drops_with_gating() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Large), 8);
        assert!(eval.average_power_w(Design::ReGateFull) < eval.average_power_w(Design::NoPg));
        assert!(eval.peak_power_w(Design::ReGateFull) <= eval.peak_power_w(Design::NoPg) + 1e-9);
        assert!(eval.peak_power_w(Design::NoPg) >= eval.average_power_w(Design::NoPg));
    }

    #[test]
    fn carbon_reduction_exceeds_energy_savings() {
        // Figure 24: operational carbon reduction (which includes the idle
        // portion) is much larger than the busy-time energy savings.
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let carbon = eval.operational_carbon_reduction(Design::ReGateFull);
        let energy = eval.energy_savings(Design::ReGateFull);
        assert!(carbon > energy, "carbon {carbon} <= energy {energy}");
        assert!(carbon > 0.25, "carbon reduction {carbon}");
    }

    #[test]
    fn savings_breakdown_sums_to_total_savings() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
        for design in Design::GATED {
            let parts: f64 = eval.savings_breakdown(design).values().sum();
            let total = eval.energy_savings(design);
            // The breakdown ignores the overhead-time static energy, so it
            // can differ slightly; they must agree within a percent or two.
            assert!((parts - total).abs() < 0.02, "{design}: parts {parts} vs total {total}");
        }
    }

    #[test]
    fn sensitivity_to_leakage_and_delay() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let default_eval = Evaluator::new(NpuGeneration::D).evaluate(&wl, 1);
        // Leakier gated state -> smaller savings.
        let leaky = GatingParams::default().with_leakage(npu_power::LeakageRatios {
            logic_off: 0.6,
            sram_sleep: 0.8,
            sram_off: 0.4,
        });
        let leaky_eval = Evaluator::with_gating(NpuGeneration::D, leaky).evaluate(&wl, 1);
        assert!(
            leaky_eval.energy_savings(Design::ReGateFull)
                < default_eval.energy_savings(Design::ReGateFull)
        );
        // Longer delays -> more overhead, fewer savings (never more).
        let slow = GatingParams::default().with_delay_scale(4.0);
        let slow_eval = Evaluator::with_gating(NpuGeneration::D, slow).evaluate(&wl, 1);
        assert!(
            slow_eval.energy_savings(Design::ReGateFull)
                <= default_eval.energy_savings(Design::ReGateFull) + 1e-9
        );
        assert!(
            slow_eval.performance_overhead(Design::ReGateBase)
                >= default_eval.performance_overhead(Design::ReGateBase)
        );
    }

    #[test]
    fn idle_leakage_weights_each_component_by_its_own_off_ratio() {
        // Asymmetric corner: the SRAM's off-state is *leakier* than the
        // gated logic. The old `logic_off.max(sram_off)` model let that
        // single ratio bleed into every component's out-of-duty-cycle
        // leakage; the weighted model charges only the SRAM's actual
        // static-power share at the SRAM's ratio.
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let ratios = npu_power::LeakageRatios { logic_off: 0.05, sram_sleep: 0.3, sram_off: 0.5 };
        let gating = GatingParams::default().with_leakage(ratios);
        let eval = Evaluator::with_gating(NpuGeneration::D, gating).evaluate(&wl, 1);
        let base_idle = eval.design(Design::NoPg).energy.idle_static_j;
        let full_idle = eval.design(Design::ReGateFull).energy.idle_static_j;
        assert!(base_idle > 0.0);
        let ratio = full_idle / base_idle;
        assert!(ratio < 0.5 - 1e-6, "ratio {ratio} inherited the leakiest component's 0.5");
        assert!(ratio > 0.05 + 1e-6, "ratio {ratio} must include the SRAM's leakier share");
        // It matches the static-power-weighted expectation exactly.
        let spec = npu_arch::NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let total = model.total_static_power_w();
        let expected: f64 = ComponentKind::ALL
            .iter()
            .map(|&k| {
                let r = if k == ComponentKind::Sram { 0.5 } else { 0.05 };
                model.static_power_w(k) / total * r
            })
            .sum();
        assert!((ratio - expected).abs() < 1e-9, "ratio {ratio} vs expected {expected}");
        // The retaining designs keep dead segments in sleep mode instead.
        let hw_idle = eval.design(Design::ReGateHw).energy.idle_static_j;
        assert!(hw_idle < full_idle, "sleep (0.3) leaks less than off (0.5) in this corner");
    }

    #[test]
    fn sram_equivalent_cycles_come_from_the_segment_walk() {
        // The per-segment walk bounds: never below the Ideal floor (live
        // cycles only), never above full power, ordered across designs.
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let sim = &eval.simulation;
        let total = sim.total_cycles() as f64;
        let segments = sim.segment_timeline();
        assert!(segments.ever_live_segments() > 0);
        let spec = npu_arch::NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let sram_w = model.static_power_w(ComponentKind::Sram);
        let cycle_s = spec.cycle_seconds();
        let sram_eq = |design: Design| {
            eval.design(design).energy.component(ComponentKind::Sram).static_j / (sram_w * cycle_s)
        };
        let nopg = sram_eq(Design::NoPg);
        assert!((nopg - total).abs() / total < 1e-9, "NoPG keeps the whole SRAM on");
        let base = sram_eq(Design::ReGateBase);
        let full = sram_eq(Design::ReGateFull);
        let ideal = sram_eq(Design::Ideal);
        assert!(ideal <= full && full <= base && base <= nopg * (1.0 + 1e-9));
        // Decode leaves most of the scratchpad dead: Full must recover
        // the overwhelming majority of the SRAM's static energy.
        assert!(full < 0.2 * total, "Full SRAM equivalent cycles {full} vs total {total}");
    }

    #[test]
    fn evaluate_compiled_reproduces_the_standard_path() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let standard = evaluator.evaluate(&wl, 1);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let parallelism = wl
            .default_parallelism(chip.spec(), 1)
            .unwrap_or_else(|| ParallelismConfig::new(1, 1, 1));
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let via_compiled = evaluator.evaluate_compiled(
            &wl,
            1,
            parallelism,
            &compiled,
            simulation.clone(),
            npu_power::NPU_DUTY_CYCLE,
        );
        assert_eq!(standard, via_compiled, "the refactored path must be the identity");
        // With duty cycle 1.0 the scalar out-of-window idle term vanishes
        // while the busy-time energy is untouched — the serving-layer
        // reconciliation: measured gaps replace the assumed scalar.
        let served = evaluator.evaluate_compiled(&wl, 1, parallelism, &compiled, simulation, 1.0);
        for design in Design::ALL {
            assert_eq!(served.design(design).energy.idle_static_j, 0.0, "{design}");
            assert!(
                (served.design(design).energy.total_j() - standard.design(design).energy.total_j())
                    .abs()
                    < 1e-9,
                "{design}: busy-time energy must not depend on the duty cycle"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different chip deployment")]
    fn evaluate_compiled_rejects_a_mismatched_chip() {
        // A trace scheduled on NPU-C priced with NPU-D's power model
        // would silently mix two chips in one report.
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::C, 1);
        let parallelism = ParallelismConfig::new(1, 1, 1);
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let _ = Evaluator::new(NpuGeneration::D).evaluate_compiled(
            &wl,
            1,
            parallelism,
            &compiled,
            simulation,
            1.0,
        );
    }

    #[test]
    fn energy_per_work_uses_deployment_size() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(4096);
        let eval = evaluator.evaluate(&wl, 8);
        let per_request = eval.energy_per_work(Design::NoPg);
        assert!(per_request > 0.0);
        assert!(
            (per_request - eval.design(Design::NoPg).energy.total_j() * 8.0 / 4096.0).abs() < 1e-9
        );
    }
}
