//! End-to-end evaluation engine: workload → compile → simulate → per-design
//! energy, power, performance, and carbon (paper §6).
//!
//! For every design point the engine converts the simulator's activity
//! into *equivalent full-power cycles* per component: busy cycles at the
//! design's rate (with PE-level spatial gating applied to active systolic
//! arrays), plus the component's **real idle intervals** — the gaps of the
//! simulator's merged busy timeline — walked one by one against the
//! design's break-even times, detection windows, and wake-up latencies
//! ([`npu_power::GatingParams::walk_idle_intervals`],
//! [`crate::pe_gating::sa_idle_intervals_cost`]). An interval shorter than
//! the break-even time stays at full power no matter how much aggregate
//! idleness exists, which is exactly the distribution sensitivity of the
//! paper's Figures 9/15. Static energy is the component's leakage power
//! times the equivalent cycles; dynamic energy is identical across designs
//! (the same work is performed).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration, ParallelismConfig};
use npu_compiler::{CompiledGraph, Compiler};
use npu_models::{ExecutionUnit, Workload};
use npu_power::energy::ChipUsage;
use npu_power::{CarbonModel, EnergyBreakdown, GatingParams, PowerModel};
use npu_sim::{AnalysisReport, Diagnostic, OpTiming, SimulationResult, Simulator};

use crate::designs::Design;
use crate::pe_gating::SaGatingPlan;
use crate::policy::{IdleLeakModel, PolicyConfig, PolicyKind, SaActiveMode, SramPolicy};

/// Residual power of a PE in the weight-retaining `W_on` mode, as a
/// fraction of its fully-on static power.
const W_ON_RESIDUAL: f64 = 0.10;

/// Evaluation of one design point for one workload deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEvaluation {
    /// The design point.
    pub design: Design,
    /// Per-chip energy breakdown for one unit-of-work batch.
    pub energy: EnergyBreakdown,
    /// Execution-time overhead relative to `NoPG` (fraction, e.g. 0.004).
    pub performance_overhead: f64,
    /// Peak per-chip power: the average power of the most power-hungry
    /// operator, in watts.
    pub peak_power_w: f64,
}

/// Full evaluation of one workload deployment across all design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEvaluation {
    /// The evaluated workload (with its batch size).
    pub workload: Workload,
    /// NPU generation.
    pub generation: NpuGeneration,
    /// Number of chips in the deployment.
    pub num_chips: usize,
    /// The parallelism configuration used.
    pub parallelism: ParallelismConfig,
    /// Per-design evaluations.
    pub designs: BTreeMap<Design, DesignEvaluation>,
    /// Work items produced by one execution of the graph (whole deployment).
    pub work_items: f64,
    /// The underlying simulation (per-operator activity).
    pub simulation: SimulationResult,
}

impl WorkloadEvaluation {
    /// Evaluation of one design point.
    ///
    /// # Panics
    ///
    /// Panics if the design was not evaluated (all designs always are).
    #[must_use]
    pub fn design(&self, design: Design) -> &DesignEvaluation {
        self.designs.get(&design).expect("all designs are evaluated")
    }

    /// Busy-time energy savings of a design relative to `NoPG`.
    #[must_use]
    pub fn energy_savings(&self, design: Design) -> f64 {
        let base = self.design(Design::NoPg).energy.total_j();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.design(design).energy.total_j() / base
    }

    /// Energy per unit of work (Joule per iteration / token / request /
    /// image) for the whole deployment.
    #[must_use]
    pub fn energy_per_work(&self, design: Design) -> f64 {
        if self.work_items == 0.0 {
            return 0.0;
        }
        self.design(design).energy.total_j() * self.num_chips as f64 / self.work_items
    }

    /// Average per-chip power while busy, in watts.
    #[must_use]
    pub fn average_power_w(&self, design: Design) -> f64 {
        self.design(design).energy.average_power_w()
    }

    /// Peak per-chip power, in watts.
    #[must_use]
    pub fn peak_power_w(&self, design: Design) -> f64 {
        self.design(design).peak_power_w
    }

    /// Execution-time overhead of a design relative to `NoPG`.
    #[must_use]
    pub fn performance_overhead(&self, design: Design) -> f64 {
        self.design(design).performance_overhead
    }

    /// Operational-carbon reduction of a design relative to `NoPG`,
    /// including the idle-time leakage (the Figure 24 metric).
    #[must_use]
    pub fn operational_carbon_reduction(&self, design: Design) -> f64 {
        let carbon = CarbonModel::default();
        let base = self.design(Design::NoPg).energy.facility_j();
        let gated = self.design(design).energy.facility_j();
        carbon.operational_reduction(base, gated)
    }

    /// Per-component energy-savings breakdown of one design (fraction of the
    /// `NoPG` total energy saved in each component) — the stacking of
    /// Figure 17.
    #[must_use]
    pub fn savings_breakdown(&self, design: Design) -> BTreeMap<ComponentKind, f64> {
        let base_total = self.design(Design::NoPg).energy.total_j();
        let mut out = BTreeMap::new();
        if base_total == 0.0 {
            return out;
        }
        for kind in ComponentKind::ALL {
            let before = self.design(Design::NoPg).energy.component(kind).total_j();
            let after = self.design(design).energy.component(kind).total_j();
            out.insert(kind, (before - after) / base_total);
        }
        out
    }
}

/// Evaluation of one power-management policy for one workload deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvaluation {
    /// The evaluated policy.
    pub kind: PolicyKind,
    /// The policy's table label ([`PolicyKind::label`]).
    pub label: String,
    /// Per-chip energy breakdown for the simulated trace.
    pub energy: EnergyBreakdown,
    /// Execution-time overhead relative to `NoPG` (fraction).
    pub performance_overhead: f64,
    /// Peak per-chip power, in watts.
    pub peak_power_w: f64,
    /// Busy-time energy savings relative to `NoPG` on the same trace.
    pub savings: f64,
}

/// A set of power-management policies evaluated on one identical
/// timeline (the policy × workload × load matrix rows for one cell of
/// the workload × load plane).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySetEvaluation {
    /// Total `NoPG` energy of the trace, in joules (the savings
    /// denominator shared by every row).
    pub baseline_total_j: f64,
    /// One evaluation per requested policy, in request order.
    pub rows: Vec<PolicyEvaluation>,
}

impl PolicySetEvaluation {
    /// The evaluation of one policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy was not part of the evaluated set.
    #[must_use]
    pub fn row(&self, kind: PolicyKind) -> &PolicyEvaluation {
        self.rows.iter().find(|row| row.kind == kind).expect("policy was part of the evaluated set")
    }
}

/// The evaluation engine for one NPU generation.
#[derive(Debug, Clone)]
pub struct Evaluator {
    generation: NpuGeneration,
    gating: GatingParams,
}

impl Evaluator {
    /// Creates an evaluator with the default (Table 3) gating parameters.
    #[must_use]
    pub fn new(generation: NpuGeneration) -> Self {
        Evaluator { generation, gating: GatingParams::default() }
    }

    /// Creates an evaluator with custom gating parameters (sensitivity
    /// analysis, §6.5).
    #[must_use]
    pub fn with_gating(generation: NpuGeneration, gating: GatingParams) -> Self {
        Evaluator { generation, gating }
    }

    /// The gating parameters in use.
    #[must_use]
    pub fn gating(&self) -> &GatingParams {
        &self.gating
    }

    /// The targeted NPU generation.
    #[must_use]
    pub fn generation(&self) -> NpuGeneration {
        self.generation
    }

    /// Evaluates a workload on `num_chips` chips across every design point.
    ///
    /// # Panics
    ///
    /// Panics if no valid parallelism configuration exists for the
    /// requested deployment (use [`Self::try_evaluate`] to handle the
    /// denial programmatically). The engine used to silently fabricate a
    /// `ParallelismConfig::new(num_chips, 1, 1)` fallback here, which
    /// priced a deployment whose weights provably do not fit in HBM.
    #[must_use]
    pub fn evaluate(&self, workload: &Workload, num_chips: usize) -> WorkloadEvaluation {
        match self.try_evaluate(workload, num_chips) {
            Ok(eval) => eval,
            Err(report) => {
                panic!(
                    "infeasible deployment of {workload} on {num_chips} chip(s):\n{}",
                    report.render()
                )
            }
        }
    }

    /// Evaluates a workload on `num_chips` chips across every design
    /// point, or reports why the deployment is infeasible.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisReport`] carrying a
    /// `topo.parallelism-infeasible` denial when no valid parallelism
    /// configuration exists for the requested (workload, chip count) —
    /// e.g. model weights that cannot fit the deployment's aggregate HBM.
    pub fn try_evaluate(
        &self,
        workload: &Workload,
        num_chips: usize,
    ) -> Result<WorkloadEvaluation, AnalysisReport> {
        let chip = ChipConfig::new(self.generation, num_chips);
        let Some(parallelism) = workload.default_parallelism(chip.spec(), num_chips) else {
            let mut report = AnalysisReport::new();
            report.extend([Diagnostic::deny(
                npu_sim::analysis::rules::TOPO_PARALLELISM_INFEASIBLE,
                None,
                format!(
                    "no valid parallelism configuration for {workload} on {num_chips} chip(s): \
                     the workload's memory demand exceeds the deployment's aggregate HBM under \
                     every legal (data, tensor, pipeline) split"
                ),
            )]);
            return Err(report);
        };
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        Ok(self.evaluate_compiled(
            workload,
            num_chips,
            parallelism,
            &compiled,
            simulation,
            npu_power::NPU_DUTY_CYCLE,
        ))
    }

    /// Evaluates every design point over a *pre-built* compiled graph and
    /// simulation — the entry point for callers that schedule their own
    /// traces (the serving simulator's arrival-driven runs, where the
    /// timeline already contains queueing and inter-request gaps).
    ///
    /// `duty_cycle` attributes the out-of-duty-cycle idle leakage the
    /// simulated window cannot see: the standard single-batch path passes
    /// the paper's fleet average ([`npu_power::NPU_DUTY_CYCLE`]), while a
    /// serving trace passes `1.0` because its inter-request idleness is
    /// *inside* the window and priced by the interval walk — charging the
    /// scalar term on top would double-count it. `workload.work_items()`
    /// must describe the whole simulated trace (pass
    /// `workload.with_batch(total_samples)` when the trace spans several
    /// batches).
    ///
    /// # Panics
    ///
    /// Panics if the simulation was produced on a different chip
    /// deployment than this evaluator's `(generation, num_chips)` —
    /// pricing a trace with another chip's power model would silently mix
    /// two hardware configurations in one report.
    #[must_use]
    pub fn evaluate_compiled(
        &self,
        workload: &Workload,
        num_chips: usize,
        parallelism: ParallelismConfig,
        compiled: &CompiledGraph,
        simulation: SimulationResult,
        duty_cycle: f64,
    ) -> WorkloadEvaluation {
        let chip = ChipConfig::new(self.generation, num_chips);
        assert_eq!(
            *simulation.chip(),
            chip,
            "simulation ran on a different chip deployment than the evaluator targets"
        );
        let model = PowerModel::new(chip.spec());

        let usage = Self::chip_usage(compiled, &simulation);
        let baseline = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, duty_cycle);

        let mut designs = BTreeMap::new();
        for design in Design::ALL {
            designs.insert(
                design,
                self.evaluate_design(design, compiled, &simulation, &model, &baseline),
            );
        }
        WorkloadEvaluation {
            workload: *workload,
            generation: self.generation,
            num_chips,
            parallelism,
            designs,
            work_items: workload.work_items(),
            simulation,
        }
    }

    /// Evaluates a *set* of power-management policies over one pre-built
    /// compiled graph and simulation — every policy prices the identical
    /// timeline, so the rows are directly comparable (the policy ×
    /// workload × load matrix). Presets reuse the original design
    /// arithmetic (bit-identical to [`Self::evaluate_compiled`] rows);
    /// extended kinds expand into their [`PolicyConfig`] and run the same
    /// generalized walk.
    ///
    /// `duty_cycle` has the same semantics as in
    /// [`Self::evaluate_compiled`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation was produced on a different chip
    /// deployment than this evaluator's `(generation, num_chips)`.
    #[must_use]
    pub fn evaluate_policies(
        &self,
        num_chips: usize,
        compiled: &CompiledGraph,
        simulation: &SimulationResult,
        duty_cycle: f64,
        kinds: &[PolicyKind],
    ) -> PolicySetEvaluation {
        let chip = ChipConfig::new(self.generation, num_chips);
        assert_eq!(
            *simulation.chip(),
            chip,
            "simulation ran on a different chip deployment than the evaluator targets"
        );
        let model = PowerModel::new(chip.spec());
        let usage = Self::chip_usage(compiled, simulation);
        let baseline = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, duty_cycle);
        let baseline_total_j = baseline.total_j();
        let rows = kinds
            .iter()
            .map(|&kind| {
                let (energy, performance_overhead, peak_power_w) = match kind {
                    PolicyKind::Preset(design) => {
                        let row =
                            self.evaluate_design(design, compiled, simulation, &model, &baseline);
                        (row.energy, row.performance_overhead, row.peak_power_w)
                    }
                    _ => {
                        let config = kind.config(&self.gating, chip.spec());
                        self.evaluate_policy_config(
                            &config, compiled, simulation, &model, &baseline,
                        )
                    }
                };
                let savings = if baseline_total_j == 0.0 {
                    0.0
                } else {
                    1.0 - energy.total_j() / baseline_total_j
                };
                PolicyEvaluation {
                    kind,
                    label: kind.label(),
                    energy,
                    performance_overhead,
                    peak_power_w,
                    savings,
                }
            })
            .collect();
        PolicySetEvaluation { baseline_total_j, rows }
    }

    /// Builds the chip-activity counters for the dynamic-energy model.
    fn chip_usage(compiled: &CompiledGraph, sim: &SimulationResult) -> ChipUsage {
        let mut sa_flops = 0.0;
        let mut vu_flops = 0.0;
        for op in compiled.anchors() {
            match op.unit {
                ExecutionUnit::Sa => {
                    sa_flops += op.op.flops();
                    vu_flops += op.fused_vu_flops;
                }
                _ => vu_flops += op.op.flops() + op.fused_vu_flops,
            }
        }
        let hbm_bytes: f64 = sim.timings().iter().map(|t| t.hbm_bytes as f64).sum();
        let ici_bytes: f64 = sim.timings().iter().map(|t| t.ici_bytes as f64).sum();
        ChipUsage {
            busy_seconds: sim.total_seconds(),
            sa_flops,
            vu_flops,
            hbm_bytes,
            ici_bytes,
            sram_bytes: 3.0 * hbm_bytes,
            dma_bytes: hbm_bytes + ici_bytes,
        }
    }

    /// Evaluates one design point by expanding it into its preset
    /// [`PolicyConfig`] and walking the simulation's real per-component
    /// idle intervals against the configured policies.
    fn evaluate_design(
        &self,
        design: Design,
        compiled: &CompiledGraph,
        sim: &SimulationResult,
        model: &PowerModel,
        baseline: &EnergyBreakdown,
    ) -> DesignEvaluation {
        if design == Design::NoPg {
            let peak_power_w = self.peak_power(model, sim.timings(), baseline, sim.total_cycles());
            return DesignEvaluation {
                design,
                energy: baseline.clone(),
                performance_overhead: 0.0,
                peak_power_w,
            };
        }
        let config = PolicyKind::Preset(design).config(&self.gating, model.spec());
        let (energy, performance_overhead, peak_power_w) =
            self.evaluate_policy_config(&config, compiled, sim, model, baseline);
        DesignEvaluation { design, energy, performance_overhead, peak_power_w }
    }

    /// The generalized evaluation walk: prices one [`PolicyConfig`] over
    /// the simulated timeline and returns `(energy, performance_overhead,
    /// peak_power_w)`.
    ///
    /// The five design presets route through this same function; their
    /// configurations reproduce the original hard-coded arithmetic
    /// bit-for-bit (the per-component [`PowerPolicy`] walks delegate to
    /// the identical [`GatingParams::walk_idle_intervals`] and the stall
    /// products are exact in f64 at these magnitudes).
    fn evaluate_policy_config(
        &self,
        config: &PolicyConfig,
        compiled: &CompiledGraph,
        sim: &SimulationResult,
        model: &PowerModel,
        baseline: &EnergyBreakdown,
    ) -> (EnergyBreakdown, f64, f64) {
        let spec = model.spec();
        let cycle_s = spec.cycle_seconds();
        let timeline = sim.busy_timeline();
        let total_cycles = sim.total_cycles();
        let anchors: Vec<_> = compiled.anchors().collect();
        let timings = sim.timings();

        // Equivalent full-power cycles per component: busy time at its
        // policy-specific rate, plus the component's *real* idle intervals
        // walked against the policy's break-even times and wake-up
        // latencies.
        let mut equivalent: BTreeMap<ComponentKind, f64> = BTreeMap::new();
        let mut overhead_cycles: f64 = 0.0;

        // Interval lengths per component: all of them (for the energy
        // walk), and the subset followed by more work — a trailing
        // interval, including the single `[0, makespan)` interval of a
        // component the workload never touches, ends the execution and
        // never pays a wake-up.
        let idle_lens = |kind: ComponentKind| -> (Vec<u64>, Vec<u64>) {
            let gaps = timeline.idle_intervals(kind, total_cycles);
            let all = gaps.iter().map(npu_sim::CycleInterval::len).collect();
            let waking =
                gaps.iter().filter(|iv| iv.end < total_cycles).map(|iv| iv.len()).collect();
            (all, waking)
        };

        // --- Systolic arrays: spatially gated while active (per-operator
        //     shapes), policy-walked while idle. ---
        let mut sa_busy_eq = 0.0f64;
        for (op, timing) in anchors.iter().zip(timings.iter()) {
            sa_busy_eq += self.sa_active_equivalent_cycles(config.sa_active, op, timing);
        }
        let (sa_lens, sa_waking) = idle_lens(ComponentKind::Sa);
        let sa_idle = config.sa_idle.walk_intervals(&sa_lens, &sa_waking);
        equivalent.insert(ComponentKind::Sa, sa_busy_eq + sa_idle.equivalent_cycles);
        overhead_cycles += sa_idle.wake_stall_cycles;

        // --- Vector units: full power while computing, policy-walked
        //     while idle. ---
        let vu_busy = timeline.busy_cycles(ComponentKind::Vu) as f64;
        let (vu_lens, vu_waking) = idle_lens(ComponentKind::Vu);
        let vu_walk = config.vu.walk_intervals(&vu_lens, &vu_waking);
        equivalent.insert(ComponentKind::Vu, vu_busy + vu_walk.equivalent_cycles);
        overhead_cycles += vu_walk.wake_stall_cycles;

        // --- HBM / ICI controllers and the DMA engine. The DMA engine
        //     keeps the memory interface's gating timing (it wakes with
        //     the HBM path it feeds), as in the pre-timeline model. ---
        for (kind, policy) in [
            (ComponentKind::Hbm, &config.hbm),
            (ComponentKind::Ici, &config.ici),
            (ComponentKind::Dma, &config.dma),
        ] {
            let busy = timeline.busy_cycles(kind) as f64;
            let (lens, waking) = idle_lens(kind);
            let walk = policy.walk_intervals(&lens, &waking);
            equivalent.insert(kind, busy + walk.equivalent_cycles);
            overhead_cycles += walk.wake_stall_cycles;
        }

        // --- SRAM: per-segment gating on the event timeline (§4.3). A
        //     4 KiB segment burns full static power while its data is
        //     live; its *dead* intervals are walked by the SRAM policy
        //     exactly like any other component's idle gaps. The presets:
        //     ReGate-Base/-HW put dead segments into the data-retaining
        //     sleep mode via hardware idle detection; ReGate-Full powers
        //     them off with compiler-issued `setpm` (the allocator knows
        //     every lifetime statically); Ideal leaks nothing while dead.
        //     Retention wake-ups are not charged to the critical path:
        //     the drowsy wake is a few cycles hidden under the access
        //     pipeline, and `setpm on` is issued ahead of the next use.
        equivalent.insert(ComponentKind::Sram, self.sram_equivalent_cycles(&config.sram, sim));

        // --- Peripheral logic: per-component gating can never touch it,
        //     but a chip-level policy walks the *whole-chip* idle
        //     intervals (every tracked component simultaneously quiet —
        //     the pipeline-stage bubbles of multi-chip serving) and
        //     recovers the uncore static power inside them. ---
        let other_eq = match &config.whole_chip {
            None => total_cycles as f64,
            Some(policy) => {
                let gaps = timeline.union_idle_intervals(
                    &[
                        ComponentKind::Sa,
                        ComponentKind::Vu,
                        ComponentKind::Hbm,
                        ComponentKind::Ici,
                        ComponentKind::Dma,
                    ],
                    total_cycles,
                );
                let all: Vec<u64> = gaps.iter().map(npu_sim::CycleInterval::len).collect();
                let waking: Vec<u64> =
                    gaps.iter().filter(|iv| iv.end < total_cycles).map(|iv| iv.len()).collect();
                let union_idle: u64 = all.iter().sum();
                let walk = policy.walk_intervals(&all, &waking);
                overhead_cycles += walk.wake_stall_cycles;
                (total_cycles - union_idle) as f64 + walk.equivalent_cycles
            }
        };
        equivalent.insert(ComponentKind::Other, other_eq);

        let performance_overhead =
            if total_cycles == 0 { 0.0 } else { overhead_cycles / total_cycles as f64 };

        let equivalent_seconds: BTreeMap<ComponentKind, f64> =
            equivalent.into_iter().map(|(k, cycles)| (k, cycles * cycle_s)).collect();
        // Idle (out-of-duty-cycle) leakage under the policy's attribution
        // model.
        let idle_static_j = match config.idle_leak {
            IdleLeakModel::Baseline => baseline.idle_static_j,
            IdleLeakModel::Zero => 0.0,
            IdleLeakModel::PerComponent { logic, sram } => {
                baseline.idle_static_j * self.idle_off_ratio(logic, sram, model)
            }
        };
        let energy = EnergyBreakdown::gated(
            baseline,
            model,
            &equivalent_seconds,
            overhead_cycles * cycle_s,
            idle_static_j,
        );

        let peak_power_w = self.peak_power(model, timings, &energy, total_cycles);
        (energy, performance_overhead, peak_power_w)
    }

    /// Equivalent full-power SRAM cycles of one policy, averaged over the
    /// scratchpad's segments: each segment is fully powered during its
    /// live intervals and its dead intervals are walked by the SRAM
    /// policy. Segments never touched by any buffer share one dead
    /// interval spanning the whole execution, so their cost is computed
    /// once and weighted by their count.
    fn sram_equivalent_cycles(&self, policy: &SramPolicy, sim: &SimulationResult) -> f64 {
        let segments = sim.segment_timeline();
        let total_segments = segments.num_segments();
        let total_cycles = sim.total_cycles();
        if total_segments == 0 || total_cycles == 0 {
            return total_cycles as f64;
        }
        let walk = match policy {
            SramPolicy::FullPower => return total_cycles as f64,
            SramPolicy::Walk(walk) => walk,
        };
        // Dead intervals never stall the pipeline (restores are hidden or
        // scheduled ahead), so only the equivalent cycles matter here.
        let dead_equivalent =
            |lens: &[u64]| -> f64 { walk.walk_intervals(lens, &[]).equivalent_cycles };
        let mut eq_sum = 0.0f64;
        for band in segments.bands() {
            let dead = segments.dead_intervals_of(band);
            let lens: Vec<u64> = dead.iter().map(npu_sim::CycleInterval::len).collect();
            let per_segment = band.live_cycles() as f64 + dead_equivalent(&lens);
            eq_sum += per_segment * band.num_segments as f64;
        }
        let never_live = (total_segments - segments.ever_live_segments()) as f64;
        if never_live > 0.0 {
            eq_sum += dead_equivalent(&[total_cycles]) * never_live;
        }
        eq_sum / total_segments as f64
    }

    /// Chip-wide residual-leakage ratio while the chip sits outside its
    /// duty cycle: each component's share of the static power weighted by
    /// its *own* off-state residual — the SRAM by `sram`, everything else
    /// by `logic`. (The previous model took `logic_off.max(sram_off)` for
    /// the whole chip, which let the leakiest component's ratio bleed
    /// into every other component's share.)
    fn idle_off_ratio(&self, logic: f64, sram: f64, model: &PowerModel) -> f64 {
        let total = model.total_static_power_w();
        if total == 0.0 {
            return logic;
        }
        ComponentKind::ALL
            .iter()
            .map(|&kind| {
                let ratio = if kind == ComponentKind::Sram { sram } else { logic };
                model.static_power_w(kind) / total * ratio
            })
            .sum()
    }

    /// Equivalent full-power SA cycles of one operator's *active* period
    /// under an active-period mode (spatial PE gating; the idle periods
    /// between active bursts are walked separately on the timeline).
    fn sa_active_equivalent_cycles(
        &self,
        mode: SaActiveMode,
        op: &npu_compiler::CompiledOp,
        timing: &OpTiming,
    ) -> f64 {
        let active = timing.sa_active_cycles as f64;
        if active == 0.0 {
            return 0.0;
        }
        let leak = self.gating.leakage.logic_off;
        match mode {
            SaActiveMode::FullPower => {
                // Component-level gating cannot exploit spatial
                // underutilization: the whole array burns full static power
                // while any PE computes.
                active
            }
            SaActiveMode::Spatial => {
                // PE-level gating: rows/columns holding padded zero
                // weights are off, and the diagonal wavefront keeps PEs
                // in W_on outside the input wave.
                let (m, k, n) = op.op.matmul_dims().unwrap_or((1, 1, 1));
                let spec = npu_arch::NpuSpec::generation(self.generation);
                let plan = SaGatingPlan::from_matmul_dims(spec.sa_width, k as usize, n as usize);
                let tile_m = m.min(spec.sa_width as u64 * 32);
                let gated_frac = plan.gated_pe_cycle_fraction(tile_m, W_ON_RESIDUAL);
                active * ((1.0 - gated_frac) + gated_frac * leak)
            }
            SaActiveMode::Utilization => active * timing.sa_spatial_utilization,
        }
    }

    /// Peak per-chip power: the average power of the most power-hungry
    /// operator under the design's static-power scaling.
    fn peak_power(
        &self,
        model: &PowerModel,
        timings: &[OpTiming],
        energy: &EnergyBreakdown,
        total_cycles: u64,
    ) -> f64 {
        let spec = model.spec();
        // Static power scales with the design's overall static reduction.
        let nopg_static_w = model.total_static_power_w();
        let design_static_w = if total_cycles == 0 {
            nopg_static_w
        } else {
            energy.static_j() / (total_cycles as f64 * spec.cycle_seconds())
        };
        let mut peak = 0.0f64;
        for t in timings {
            let secs = t.duration_seconds(spec.frequency_hz());
            if secs <= 0.0 {
                continue;
            }
            let dynamic_j = model.sa_energy_per_flop() * t.flops
                + model.hbm_energy_per_byte() * t.hbm_bytes as f64
                + model.ici_energy_per_byte() * t.ici_bytes as f64
                + model.sram_energy_per_byte() * 3.0 * t.hbm_bytes as f64
                + model.other_dynamic_power_w() * secs;
            let power = dynamic_j / secs + design_static_w;
            peak = peak.max(power.min(spec.tdp_watts * 1.2));
        }
        // Operator spans on the global clock include scheduling stalls,
        // which can dilute every per-operator average below the whole-run
        // average; the peak can never physically undercut it.
        peak.max(energy.average_power_w().min(spec.tdp_watts * 1.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase};

    fn quick_diffusion() -> Workload {
        let mut wl = Workload::diffusion(DiffusionModel::DitXl);
        if let Workload::Diffusion(ref mut cfg) = wl {
            cfg.steps = 2;
        }
        wl
    }

    #[test]
    fn savings_are_ordered_across_designs() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        for workload in [
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Small),
            quick_diffusion(),
        ] {
            let eval = evaluator.evaluate(&workload, 8);
            let base = eval.energy_savings(Design::ReGateBase);
            let hw = eval.energy_savings(Design::ReGateHw);
            let full = eval.energy_savings(Design::ReGateFull);
            let ideal = eval.energy_savings(Design::Ideal);
            assert!(base >= -1e-9, "{workload}: Base savings {base}");
            assert!(hw >= base - 1e-9, "{workload}: HW {hw} < Base {base}");
            assert!(full >= hw - 1e-9, "{workload}: Full {full} < HW {hw}");
            assert!(ideal >= full - 1e-9, "{workload}: Ideal {ideal} < Full {full}");
            assert!(ideal < 0.8, "{workload}: Ideal saves at most the static share, got {ideal}");
        }
    }

    #[test]
    fn full_savings_magnitudes_match_paper_ranges() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        // LLM decode: paper reports 16%-20% savings.
        let decode = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let s = decode.energy_savings(Design::ReGateFull);
        assert!((0.08..0.45).contains(&s), "decode savings {s}");
        // DLRM: paper reports ~33% savings.
        let dlrm = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
        let s = dlrm.energy_savings(Design::ReGateFull);
        assert!((0.15..0.60).contains(&s), "DLRM savings {s}");
        // Prefill (compute-bound): smaller savings.
        let prefill =
            evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
        let sp = prefill.energy_savings(Design::ReGateFull);
        assert!((0.03..0.30).contains(&sp), "prefill savings {sp}");
        assert!(s > sp, "DLRM should save more than prefill");
    }

    #[test]
    fn performance_overhead_bounds() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        for workload in [
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Medium),
        ] {
            let eval = evaluator.evaluate(&workload, 8);
            assert_eq!(eval.performance_overhead(Design::NoPg), 0.0);
            assert_eq!(eval.performance_overhead(Design::Ideal), 0.0);
            let base = eval.performance_overhead(Design::ReGateBase);
            let hw = eval.performance_overhead(Design::ReGateHw);
            let full = eval.performance_overhead(Design::ReGateFull);
            assert!(base < 0.06, "{workload}: Base overhead {base}");
            assert!(hw <= base + 1e-12, "{workload}: HW {hw} > Base {base}");
            assert!(full <= hw + 1e-12, "{workload}: Full {full} > HW {hw}");
            assert!(full < 0.005, "{workload}: Full overhead {full} above 0.5%");
        }
    }

    #[test]
    fn average_power_drops_with_gating() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Large), 8);
        assert!(eval.average_power_w(Design::ReGateFull) < eval.average_power_w(Design::NoPg));
        assert!(eval.peak_power_w(Design::ReGateFull) <= eval.peak_power_w(Design::NoPg) + 1e-9);
        assert!(eval.peak_power_w(Design::NoPg) >= eval.average_power_w(Design::NoPg));
    }

    #[test]
    fn carbon_reduction_exceeds_energy_savings() {
        // Figure 24: operational carbon reduction (which includes the idle
        // portion) is much larger than the busy-time energy savings.
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let carbon = eval.operational_carbon_reduction(Design::ReGateFull);
        let energy = eval.energy_savings(Design::ReGateFull);
        assert!(carbon > energy, "carbon {carbon} <= energy {energy}");
        assert!(carbon > 0.25, "carbon reduction {carbon}");
    }

    #[test]
    fn savings_breakdown_sums_to_total_savings() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
        for design in Design::GATED {
            let parts: f64 = eval.savings_breakdown(design).values().sum();
            let total = eval.energy_savings(design);
            // The breakdown ignores the overhead-time static energy, so it
            // can differ slightly; they must agree within a percent or two.
            assert!((parts - total).abs() < 0.02, "{design}: parts {parts} vs total {total}");
        }
    }

    #[test]
    fn sensitivity_to_leakage_and_delay() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let default_eval = Evaluator::new(NpuGeneration::D).evaluate(&wl, 1);
        // Leakier gated state -> smaller savings.
        let leaky = GatingParams::default().with_leakage(npu_power::LeakageRatios {
            logic_off: 0.6,
            sram_sleep: 0.8,
            sram_off: 0.4,
        });
        let leaky_eval = Evaluator::with_gating(NpuGeneration::D, leaky).evaluate(&wl, 1);
        assert!(
            leaky_eval.energy_savings(Design::ReGateFull)
                < default_eval.energy_savings(Design::ReGateFull)
        );
        // Longer delays -> more overhead, fewer savings (never more).
        let slow = GatingParams::default().with_delay_scale(4.0);
        let slow_eval = Evaluator::with_gating(NpuGeneration::D, slow).evaluate(&wl, 1);
        assert!(
            slow_eval.energy_savings(Design::ReGateFull)
                <= default_eval.energy_savings(Design::ReGateFull) + 1e-9
        );
        assert!(
            slow_eval.performance_overhead(Design::ReGateBase)
                >= default_eval.performance_overhead(Design::ReGateBase)
        );
    }

    #[test]
    fn idle_leakage_weights_each_component_by_its_own_off_ratio() {
        // Asymmetric corner: the SRAM's off-state is *leakier* than the
        // gated logic. The old `logic_off.max(sram_off)` model let that
        // single ratio bleed into every component's out-of-duty-cycle
        // leakage; the weighted model charges only the SRAM's actual
        // static-power share at the SRAM's ratio.
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let ratios = npu_power::LeakageRatios { logic_off: 0.05, sram_sleep: 0.3, sram_off: 0.5 };
        let gating = GatingParams::default().with_leakage(ratios);
        let eval = Evaluator::with_gating(NpuGeneration::D, gating).evaluate(&wl, 1);
        let base_idle = eval.design(Design::NoPg).energy.idle_static_j;
        let full_idle = eval.design(Design::ReGateFull).energy.idle_static_j;
        assert!(base_idle > 0.0);
        let ratio = full_idle / base_idle;
        assert!(ratio < 0.5 - 1e-6, "ratio {ratio} inherited the leakiest component's 0.5");
        assert!(ratio > 0.05 + 1e-6, "ratio {ratio} must include the SRAM's leakier share");
        // It matches the static-power-weighted expectation exactly.
        let spec = npu_arch::NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let total = model.total_static_power_w();
        let expected: f64 = ComponentKind::ALL
            .iter()
            .map(|&k| {
                let r = if k == ComponentKind::Sram { 0.5 } else { 0.05 };
                model.static_power_w(k) / total * r
            })
            .sum();
        assert!((ratio - expected).abs() < 1e-9, "ratio {ratio} vs expected {expected}");
        // The retaining designs keep dead segments in sleep mode instead.
        let hw_idle = eval.design(Design::ReGateHw).energy.idle_static_j;
        assert!(hw_idle < full_idle, "sleep (0.3) leaks less than off (0.5) in this corner");
    }

    #[test]
    fn sram_equivalent_cycles_come_from_the_segment_walk() {
        // The per-segment walk bounds: never below the Ideal floor (live
        // cycles only), never above full power, ordered across designs.
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let sim = &eval.simulation;
        let total = sim.total_cycles() as f64;
        let segments = sim.segment_timeline();
        assert!(segments.ever_live_segments() > 0);
        let spec = npu_arch::NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let sram_w = model.static_power_w(ComponentKind::Sram);
        let cycle_s = spec.cycle_seconds();
        let sram_eq = |design: Design| {
            eval.design(design).energy.component(ComponentKind::Sram).static_j / (sram_w * cycle_s)
        };
        let nopg = sram_eq(Design::NoPg);
        assert!((nopg - total).abs() / total < 1e-9, "NoPG keeps the whole SRAM on");
        let base = sram_eq(Design::ReGateBase);
        let full = sram_eq(Design::ReGateFull);
        let ideal = sram_eq(Design::Ideal);
        assert!(ideal <= full && full <= base && base <= nopg * (1.0 + 1e-9));
        // Decode leaves most of the scratchpad dead: Full must recover
        // the overwhelming majority of the SRAM's static energy.
        assert!(full < 0.2 * total, "Full SRAM equivalent cycles {full} vs total {total}");
    }

    #[test]
    fn evaluate_compiled_reproduces_the_standard_path() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let standard = evaluator.evaluate(&wl, 1);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let parallelism = wl
            .default_parallelism(chip.spec(), 1)
            .unwrap_or_else(|| ParallelismConfig::new(1, 1, 1));
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let via_compiled = evaluator.evaluate_compiled(
            &wl,
            1,
            parallelism,
            &compiled,
            simulation.clone(),
            npu_power::NPU_DUTY_CYCLE,
        );
        assert_eq!(standard, via_compiled, "the refactored path must be the identity");
        // With duty cycle 1.0 the scalar out-of-window idle term vanishes
        // while the busy-time energy is untouched — the serving-layer
        // reconciliation: measured gaps replace the assumed scalar.
        let served = evaluator.evaluate_compiled(&wl, 1, parallelism, &compiled, simulation, 1.0);
        for design in Design::ALL {
            assert_eq!(served.design(design).energy.idle_static_j, 0.0, "{design}");
            assert!(
                (served.design(design).energy.total_j() - standard.design(design).energy.total_j())
                    .abs()
                    < 1e-9,
                "{design}: busy-time energy must not depend on the duty cycle"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different chip deployment")]
    fn evaluate_compiled_rejects_a_mismatched_chip() {
        // A trace scheduled on NPU-C priced with NPU-D's power model
        // would silently mix two chips in one report.
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::C, 1);
        let parallelism = ParallelismConfig::new(1, 1, 1);
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let _ = Evaluator::new(NpuGeneration::D).evaluate_compiled(
            &wl,
            1,
            parallelism,
            &compiled,
            simulation,
            1.0,
        );
    }

    #[test]
    fn preset_policies_reproduce_the_design_rows_bit_for_bit() {
        // The five design points are now presets of the generalized
        // policy walk; selecting them through `evaluate_policies` must
        // reproduce the `evaluate_compiled` rows exactly (not just within
        // a tolerance — the golden_table4 net relies on the presets being
        // bit-identical).
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let parallelism = wl
            .default_parallelism(chip.spec(), 1)
            .unwrap_or_else(|| ParallelismConfig::new(1, 1, 1));
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let designs = evaluator.evaluate_compiled(
            &wl,
            1,
            parallelism,
            &compiled,
            simulation.clone(),
            npu_power::NPU_DUTY_CYCLE,
        );
        let kinds: Vec<PolicyKind> = Design::ALL.iter().map(|&d| PolicyKind::Preset(d)).collect();
        let policies = evaluator.evaluate_policies(
            1,
            &compiled,
            &simulation,
            npu_power::NPU_DUTY_CYCLE,
            &kinds,
        );
        for design in Design::ALL {
            let via_design = designs.design(design);
            let via_policy = policies.row(PolicyKind::Preset(design));
            assert_eq!(via_design.energy, via_policy.energy, "{design}");
            assert_eq!(
                via_design.performance_overhead, via_policy.performance_overhead,
                "{design}"
            );
            assert_eq!(via_design.peak_power_w, via_policy.peak_power_w, "{design}");
            assert_eq!(designs.energy_savings(design), via_policy.savings, "{design}");
        }
    }

    #[test]
    fn extended_policies_price_the_same_timeline_sanely() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let parallelism = wl
            .default_parallelism(chip.spec(), 1)
            .unwrap_or_else(|| ParallelismConfig::new(1, 1, 1));
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let mut kinds = vec![PolicyKind::Preset(Design::NoPg), PolicyKind::Preset(Design::Ideal)];
        kinds.extend(PolicyKind::EXTENDED);
        let set = evaluator.evaluate_policies(1, &compiled, &simulation, 1.0, &kinds);
        let ideal = set.row(PolicyKind::Preset(Design::Ideal)).savings;
        assert_eq!(set.row(PolicyKind::Preset(Design::NoPg)).savings, 0.0);
        for kind in PolicyKind::EXTENDED {
            let row = set.row(kind);
            // Every extended policy only ever *reduces* idle cost, so the
            // savings sit between the NoPG floor and the Ideal oracle.
            assert!(row.savings > 0.0, "{}: savings {}", row.label, row.savings);
            assert!(row.savings <= ideal + 1e-12, "{}: beats the oracle", row.label);
            assert!(row.performance_overhead >= 0.0, "{}", row.label);
            // Zero-transition policies expose no latency at all.
            if matches!(
                kind,
                PolicyKind::ClockGating { .. }
                    | PolicyKind::Dvfs { .. }
                    | PolicyKind::DrowsyEverywhere
            ) {
                assert_eq!(row.performance_overhead, 0.0, "{}", row.label);
            }
        }
        // Clock gating keeps the SRAM fully powered, so it must save less
        // than drowsy-everywhere's retention sleep on a decode trace whose
        // scratchpad is mostly dead.
        let clock = set.row(PolicyKind::EXTENDED[0]).savings;
        let drowsy = set.row(PolicyKind::DrowsyEverywhere).savings;
        assert!(drowsy > clock, "drowsy {drowsy} <= clock gating {clock}");
    }

    #[test]
    fn infeasible_deployments_are_denied_not_fabricated() {
        // The engine used to fall back to `ParallelismConfig::new(n, 1, 1)`
        // when no legal split existed, silently pricing a deployment whose
        // weights cannot fit in HBM. Now the denial is a diagnostic.
        let evaluator = Evaluator::new(NpuGeneration::D);
        for (wl, chips) in [
            (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode), 1usize),
            (Workload::llm(LlamaModel::Llama3_405B, LlmPhase::Training), 4),
            (Workload::dlrm(DlrmSize::Large), 1),
        ] {
            let report = evaluator.try_evaluate(&wl, chips).expect_err("deployment cannot fit");
            assert!(!report.is_schedulable(), "{wl} on {chips} chip(s)");
            assert!(
                report
                    .denials()
                    .any(|d| d.rule_id == npu_sim::analysis::rules::TOPO_PARALLELISM_INFEASIBLE),
                "{wl} on {chips} chip(s): missing topo.parallelism-infeasible"
            );
        }
        // Feasible deployments are untouched by the new path.
        let ok = evaluator
            .try_evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1)
            .expect("8B decode fits one chip");
        assert_eq!(
            ok,
            evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1)
        );
    }

    #[test]
    fn whole_chip_gating_recovers_uncore_static_on_top_of_full() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let parallelism = wl
            .default_parallelism(chip.spec(), 1)
            .unwrap_or_else(|| ParallelismConfig::new(1, 1, 1));
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip).run(&compiled);
        let kinds = [PolicyKind::Preset(Design::ReGateFull), PolicyKind::WholeChipFull];
        let set = evaluator.evaluate_policies(1, &compiled, &simulation, 1.0, &kinds);
        let full = set.row(kinds[0]);
        let whole = set.row(PolicyKind::WholeChipFull);
        // Chip-level gating only ever *adds* recovery on top of Full: the
        // uncore energy never rises and the savings never fall.
        let full_other = full.energy.component(ComponentKind::Other).total_j();
        let whole_other = whole.energy.component(ComponentKind::Other).total_j();
        assert!(whole_other <= full_other + 1e-12, "{whole_other} > {full_other}");
        assert!(whole.savings >= full.savings - 1e-12);
    }

    #[test]
    fn energy_per_work_uses_deployment_size() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(4096);
        let eval = evaluator.evaluate(&wl, 8);
        let per_request = eval.energy_per_work(Design::NoPg);
        assert!(per_request > 0.0);
        assert!(
            (per_request - eval.design(Design::NoPg).energy.total_j() * 8.0 / 4096.0).abs() < 1e-9
        );
    }
}
