//! End-to-end evaluation engine: workload → compile → simulate → per-design
//! energy, power, performance, and carbon (paper §6).
//!
//! For every design point the engine converts the simulator's per-operator
//! component activity into *equivalent full-power cycles* per component:
//! cycles the component spends fully on, plus gated cycles weighted by the
//! residual leakage of the gated state, plus idle-detection windows spent
//! observing idleness before gating. Static energy is the component's
//! leakage power times those equivalent cycles; dynamic energy is identical
//! across designs (the same work is performed).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration, ParallelismConfig};
use npu_compiler::{CompiledGraph, Compiler};
use npu_models::{ExecutionUnit, Workload};
use npu_power::energy::ChipUsage;
use npu_power::{CarbonModel, ComponentEnergy, EnergyBreakdown, GatingParams, PowerModel};
use npu_sim::{OpTiming, SimulationResult, Simulator};

use crate::designs::Design;
use crate::pe_gating::SaGatingPlan;

/// Residual power of a PE in the weight-retaining `W_on` mode, as a
/// fraction of its fully-on static power.
const W_ON_RESIDUAL: f64 = 0.10;

/// Evaluation of one design point for one workload deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEvaluation {
    /// The design point.
    pub design: Design,
    /// Per-chip energy breakdown for one unit-of-work batch.
    pub energy: EnergyBreakdown,
    /// Execution-time overhead relative to `NoPG` (fraction, e.g. 0.004).
    pub performance_overhead: f64,
    /// Peak per-chip power: the average power of the most power-hungry
    /// operator, in watts.
    pub peak_power_w: f64,
}

/// Full evaluation of one workload deployment across all design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEvaluation {
    /// The evaluated workload (with its batch size).
    pub workload: Workload,
    /// NPU generation.
    pub generation: NpuGeneration,
    /// Number of chips in the deployment.
    pub num_chips: usize,
    /// The parallelism configuration used.
    pub parallelism: ParallelismConfig,
    /// Per-design evaluations.
    pub designs: BTreeMap<Design, DesignEvaluation>,
    /// Work items produced by one execution of the graph (whole deployment).
    pub work_items: f64,
    /// The underlying simulation (per-operator activity).
    pub simulation: SimulationResult,
}

impl WorkloadEvaluation {
    /// Evaluation of one design point.
    ///
    /// # Panics
    ///
    /// Panics if the design was not evaluated (all designs always are).
    #[must_use]
    pub fn design(&self, design: Design) -> &DesignEvaluation {
        self.designs.get(&design).expect("all designs are evaluated")
    }

    /// Busy-time energy savings of a design relative to `NoPG`.
    #[must_use]
    pub fn energy_savings(&self, design: Design) -> f64 {
        let base = self.design(Design::NoPg).energy.total_j();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.design(design).energy.total_j() / base
    }

    /// Energy per unit of work (Joule per iteration / token / request /
    /// image) for the whole deployment.
    #[must_use]
    pub fn energy_per_work(&self, design: Design) -> f64 {
        if self.work_items == 0.0 {
            return 0.0;
        }
        self.design(design).energy.total_j() * self.num_chips as f64 / self.work_items
    }

    /// Average per-chip power while busy, in watts.
    #[must_use]
    pub fn average_power_w(&self, design: Design) -> f64 {
        self.design(design).energy.average_power_w()
    }

    /// Peak per-chip power, in watts.
    #[must_use]
    pub fn peak_power_w(&self, design: Design) -> f64 {
        self.design(design).peak_power_w
    }

    /// Execution-time overhead of a design relative to `NoPG`.
    #[must_use]
    pub fn performance_overhead(&self, design: Design) -> f64 {
        self.design(design).performance_overhead
    }

    /// Operational-carbon reduction of a design relative to `NoPG`,
    /// including the idle-time leakage (the Figure 24 metric).
    #[must_use]
    pub fn operational_carbon_reduction(&self, design: Design) -> f64 {
        let carbon = CarbonModel::default();
        let base = self.design(Design::NoPg).energy.facility_j();
        let gated = self.design(design).energy.facility_j();
        carbon.operational_reduction(base, gated)
    }

    /// Per-component energy-savings breakdown of one design (fraction of the
    /// `NoPG` total energy saved in each component) — the stacking of
    /// Figure 17.
    #[must_use]
    pub fn savings_breakdown(&self, design: Design) -> BTreeMap<ComponentKind, f64> {
        let base_total = self.design(Design::NoPg).energy.total_j();
        let mut out = BTreeMap::new();
        if base_total == 0.0 {
            return out;
        }
        for kind in ComponentKind::ALL {
            let before = self.design(Design::NoPg).energy.component(kind).total_j();
            let after = self.design(design).energy.component(kind).total_j();
            out.insert(kind, (before - after) / base_total);
        }
        out
    }
}

/// The evaluation engine for one NPU generation.
#[derive(Debug, Clone)]
pub struct Evaluator {
    generation: NpuGeneration,
    gating: GatingParams,
}

impl Evaluator {
    /// Creates an evaluator with the default (Table 3) gating parameters.
    #[must_use]
    pub fn new(generation: NpuGeneration) -> Self {
        Evaluator { generation, gating: GatingParams::default() }
    }

    /// Creates an evaluator with custom gating parameters (sensitivity
    /// analysis, §6.5).
    #[must_use]
    pub fn with_gating(generation: NpuGeneration, gating: GatingParams) -> Self {
        Evaluator { generation, gating }
    }

    /// The gating parameters in use.
    #[must_use]
    pub fn gating(&self) -> &GatingParams {
        &self.gating
    }

    /// The targeted NPU generation.
    #[must_use]
    pub fn generation(&self) -> NpuGeneration {
        self.generation
    }

    /// Evaluates a workload on `num_chips` chips across every design point.
    #[must_use]
    pub fn evaluate(&self, workload: &Workload, num_chips: usize) -> WorkloadEvaluation {
        let chip = ChipConfig::new(self.generation, num_chips);
        let parallelism = workload
            .default_parallelism(chip.spec(), num_chips)
            .unwrap_or_else(|| ParallelismConfig::new(num_chips, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let simulation = Simulator::new(chip.clone()).run(&compiled);
        let model = PowerModel::new(chip.spec());

        let usage = Self::chip_usage(&compiled, &simulation);
        let baseline = EnergyBreakdown::no_power_gating(&model, &usage);

        let mut designs = BTreeMap::new();
        for design in Design::ALL {
            designs.insert(
                design,
                self.evaluate_design(design, &compiled, &simulation, &model, &baseline),
            );
        }
        WorkloadEvaluation {
            workload: *workload,
            generation: self.generation,
            num_chips,
            parallelism,
            designs,
            work_items: workload.work_items(),
            simulation,
        }
    }

    /// Builds the chip-activity counters for the dynamic-energy model.
    fn chip_usage(compiled: &CompiledGraph, sim: &SimulationResult) -> ChipUsage {
        let mut sa_flops = 0.0;
        let mut vu_flops = 0.0;
        for op in compiled.anchors() {
            match op.unit {
                ExecutionUnit::Sa => {
                    sa_flops += op.op.flops();
                    vu_flops += op.fused_vu_flops;
                }
                _ => vu_flops += op.op.flops() + op.fused_vu_flops,
            }
        }
        let hbm_bytes: f64 = sim.timings().iter().map(|t| t.hbm_bytes as f64).sum();
        let ici_bytes: f64 = sim.timings().iter().map(|t| t.ici_bytes as f64).sum();
        ChipUsage {
            busy_seconds: sim.total_seconds(),
            sa_flops,
            vu_flops,
            hbm_bytes,
            ici_bytes,
            sram_bytes: 3.0 * hbm_bytes,
            dma_bytes: hbm_bytes + ici_bytes,
        }
    }

    /// Evaluates one design point.
    fn evaluate_design(
        &self,
        design: Design,
        compiled: &CompiledGraph,
        sim: &SimulationResult,
        model: &PowerModel,
        baseline: &EnergyBreakdown,
    ) -> DesignEvaluation {
        let spec = model.spec();
        let cycle_s = spec.cycle_seconds();
        let anchors: Vec<_> = compiled.anchors().collect();
        let timings = sim.timings();
        let total_cycles: u64 = timings.iter().map(|t| t.duration_cycles).sum();
        let leak = self.gating.leakage;

        // Equivalent full-power cycles per component.
        let mut equivalent: BTreeMap<ComponentKind, f64> = BTreeMap::new();
        let mut overhead_cycles: f64 = 0.0;

        for (op, timing) in anchors.iter().zip(timings.iter()) {
            let d = timing.duration_cycles as f64;
            // --- Systolic arrays ---
            let sa_eq = self.sa_equivalent_cycles(design, op, timing);
            *equivalent.entry(ComponentKind::Sa).or_default() += sa_eq;
            // --- Vector units ---
            let vu_eq = self.vu_equivalent_cycles(design, timing);
            *equivalent.entry(ComponentKind::Vu).or_default() += vu_eq;
            // --- SRAM ---
            let live_frac = if spec.sram_bytes() == 0 {
                1.0
            } else {
                (timing.sram_live_bytes as f64 / spec.sram_bytes() as f64).min(1.0)
            };
            let sram_eq = match design {
                Design::NoPg => d,
                Design::ReGateBase | Design::ReGateHw => {
                    d * (live_frac + (1.0 - live_frac) * leak.sram_sleep)
                }
                Design::ReGateFull => d * (live_frac + (1.0 - live_frac) * leak.sram_off),
                Design::Ideal => d * live_frac,
            };
            *equivalent.entry(ComponentKind::Sram).or_default() += sram_eq;
            // --- HBM controller, ICI controller, DMA engine ---
            *equivalent.entry(ComponentKind::Hbm).or_default() += self.idle_detect_equivalent(
                design,
                d,
                timing.hbm_active_cycles as f64,
                self.gating.hbm_bet as f64,
            );
            *equivalent.entry(ComponentKind::Ici).or_default() += self.idle_detect_equivalent(
                design,
                d,
                timing.ici_active_cycles as f64,
                self.gating.ici_bet as f64,
            );
            let dma_active = (timing.hbm_active_cycles + timing.ici_active_cycles)
                .min(timing.duration_cycles) as f64;
            *equivalent.entry(ComponentKind::Dma).or_default() +=
                self.idle_detect_equivalent(design, d, dma_active, self.gating.hbm_bet as f64);
            // --- Peripheral logic is never gated ---
            *equivalent.entry(ComponentKind::Other).or_default() += d;

            overhead_cycles += self.op_overhead_cycles(design, op, timing);
        }

        let performance_overhead =
            if total_cycles == 0 { 0.0 } else { overhead_cycles / total_cycles as f64 };
        // Wake-up stalls extend the execution; every component leaks at its
        // design-specific *average* rate for those extra cycles. We charge
        // them at full power, which is conservative.
        let overhead_seconds = overhead_cycles * cycle_s;

        // Assemble the energy breakdown: dynamic energy is unchanged,
        // static energy uses the equivalent cycles.
        let mut components = BTreeMap::new();
        for kind in ComponentKind::ALL {
            let dynamic_j = baseline.component(kind).dynamic_j;
            let eq_cycles = equivalent.get(&kind).copied().unwrap_or(0.0);
            let static_j = model.static_power_w(kind) * (eq_cycles * cycle_s + overhead_seconds);
            components.insert(kind, ComponentEnergy { static_j, dynamic_j });
        }
        // Idle (out-of-duty-cycle) leakage: gating designs keep the whole
        // chip gated while idle; the Ideal roofline leaks nothing.
        let idle_static_j = match design {
            Design::NoPg => baseline.idle_static_j,
            Design::Ideal => 0.0,
            _ => baseline.idle_static_j * leak.logic_off.max(leak.sram_off),
        };
        let energy = EnergyBreakdown {
            components,
            busy_seconds: baseline.busy_seconds * (1.0 + performance_overhead),
            idle_seconds: baseline.idle_seconds,
            idle_static_j,
        };

        let peak_power_w = self.peak_power(design, model, timings, &energy);
        DesignEvaluation { design, energy, performance_overhead, peak_power_w }
    }

    /// Equivalent full-power SA cycles of one operator under a design.
    fn sa_equivalent_cycles(
        &self,
        design: Design,
        op: &npu_compiler::CompiledOp,
        timing: &OpTiming,
    ) -> f64 {
        let d = timing.duration_cycles as f64;
        let active = timing.sa_active_cycles as f64;
        let idle = d - active;
        let leak = self.gating.leakage.logic_off;
        let bet = self.gating.sa_full_bet as f64;
        let window = bet / 3.0;
        match design {
            Design::NoPg => d,
            Design::ReGateBase => {
                if active == 0.0 {
                    // Whole-SA idle detection at component granularity.
                    if d > bet {
                        window + (d - window) * leak
                    } else {
                        d
                    }
                } else {
                    // Component-level gating cannot exploit intra-operator
                    // idleness or spatial underutilization.
                    d
                }
            }
            Design::ReGateHw | Design::ReGateFull => {
                if active == 0.0 {
                    if d > bet {
                        window + (d - window) * leak
                    } else {
                        d
                    }
                } else {
                    // PE-level gating: rows/columns holding padded zero
                    // weights are off, and the diagonal wavefront keeps PEs
                    // in W_on outside the input wave.
                    let (m, k, n) = op.op.matmul_dims().unwrap_or((1, 1, 1));
                    let spec = npu_arch::NpuSpec::generation(self.generation);
                    let plan =
                        SaGatingPlan::from_matmul_dims(spec.sa_width, k as usize, n as usize);
                    let tile_m = m.min(spec.sa_width as u64 * 32);
                    let gated_frac = plan.gated_pe_cycle_fraction(tile_m, W_ON_RESIDUAL);
                    let active_eq = active * ((1.0 - gated_frac) + gated_frac * leak);
                    // Intra-operator SA idle cycles drop to W_on/off via the
                    // dataflow-propagated PE_on de-assertion.
                    let idle_eq = idle * leak;
                    active_eq + idle_eq
                }
            }
            Design::Ideal => active * timing.sa_spatial_utilization,
        }
    }

    /// Equivalent full-power VU cycles of one operator under a design.
    fn vu_equivalent_cycles(&self, design: Design, timing: &OpTiming) -> f64 {
        let d = timing.duration_cycles as f64;
        let active = timing.vu_active_cycles as f64;
        let idle = d - active;
        let leak = self.gating.leakage.logic_off;
        let bet = self.gating.vu_bet as f64;
        let delay = self.gating.vu_delay as f64;
        match design {
            Design::NoPg => d,
            Design::ReGateBase | Design::ReGateHw => {
                // Hardware idle detection only captures operators in which
                // the VU is completely unused; fragmented idleness between
                // SA pops is below the detection threshold.
                if active == 0.0 && d > bet {
                    let window = bet / 3.0;
                    window + (d - window) * leak
                } else {
                    d
                }
            }
            Design::ReGateFull => {
                // The compiler knows the exact idle intervals and gates all
                // of them longer than the BET, paying two transitions each.
                if idle > bet {
                    active + 2.0 * delay + (idle - 2.0 * delay).max(0.0) * leak
                } else {
                    d
                }
            }
            Design::Ideal => active,
        }
    }

    /// Equivalent full-power cycles for an idle-detection-gated component
    /// (HBM controller, ICI controller, DMA engine).
    fn idle_detect_equivalent(&self, design: Design, duration: f64, active: f64, bet: f64) -> f64 {
        let idle = duration - active;
        let leak = self.gating.leakage.logic_off;
        match design {
            Design::NoPg => duration,
            Design::Ideal => active,
            _ => {
                if idle > bet {
                    let window = bet / 3.0;
                    active + window + (idle - window) * leak
                } else {
                    duration
                }
            }
        }
    }

    /// Wake-up stall cycles charged to one operator under a design.
    fn op_overhead_cycles(
        &self,
        design: Design,
        op: &npu_compiler::CompiledOp,
        timing: &OpTiming,
    ) -> f64 {
        let g = &self.gating;
        match design {
            Design::NoPg | Design::Ideal => 0.0,
            Design::ReGateBase => {
                let mut o = 0.0;
                if timing.sa_active_cycles > 0 {
                    // The whole SA must be powered on before execution, and
                    // the naive idle-detection policy re-gates it between
                    // tile bursts, exposing the full-array wake-up each time.
                    let regate_events = (op.tile.num_tiles as f64
                        / (8.0 * op.op.matmul_batch().max(1) as f64))
                        .min(timing.sa_active_cycles as f64 / (2.0 * g.sa_full_bet as f64))
                        .max(1.0);
                    o += g.sa_full_delay as f64 * regate_events;
                }
                if timing.vu_active_cycles > 0 {
                    // VU wake-up delays are exposed on first use per burst.
                    let bursts = (timing.vu_active_cycles as f64 / g.vu_bet as f64).max(1.0);
                    o += g.vu_delay as f64 * bursts;
                }
                if timing.hbm_active_cycles > 0 {
                    o += g.hbm_delay as f64 * 0.5;
                }
                o
            }
            Design::ReGateHw => {
                let mut o = 0.0;
                if timing.sa_active_cycles > 0 {
                    // Execution starts after the first PE wakes; the rest of
                    // the wake-up overlaps with the dataflow.
                    o += g.sa_pe_delay as f64;
                }
                if timing.vu_active_cycles > 0 {
                    let bursts = (timing.vu_active_cycles as f64 / g.vu_bet as f64).max(1.0);
                    o += g.vu_delay as f64 * bursts;
                }
                if timing.hbm_active_cycles > 0 {
                    o += g.hbm_delay as f64 * 0.5;
                }
                o
            }
            Design::ReGateFull => {
                let mut o = 0.0;
                if timing.sa_active_cycles > 0 {
                    o += g.sa_pe_delay as f64;
                }
                // VU and SRAM wake-ups are hidden by early `setpm on`.
                if timing.hbm_active_cycles > 0 {
                    o += g.hbm_delay as f64 * 0.25;
                }
                o
            }
        }
    }

    /// Peak per-chip power: the average power of the most power-hungry
    /// operator under the design's static-power scaling.
    fn peak_power(
        &self,
        design: Design,
        model: &PowerModel,
        timings: &[OpTiming],
        energy: &EnergyBreakdown,
    ) -> f64 {
        let spec = model.spec();
        // Static power scales with the design's overall static reduction.
        let total_cycles: f64 = timings.iter().map(|t| t.duration_cycles as f64).sum();
        let nopg_static_w = model.total_static_power_w();
        let design_static_w = if total_cycles == 0.0 {
            nopg_static_w
        } else {
            energy.static_j() / (total_cycles * spec.cycle_seconds())
        };
        let _ = design;
        let mut peak = 0.0f64;
        for t in timings {
            let secs = t.duration_seconds(spec.frequency_hz());
            if secs <= 0.0 {
                continue;
            }
            let dynamic_j = model.sa_energy_per_flop() * t.flops
                + model.hbm_energy_per_byte() * t.hbm_bytes as f64
                + model.ici_energy_per_byte() * t.ici_bytes as f64
                + model.sram_energy_per_byte() * 3.0 * t.hbm_bytes as f64
                + model.other_dynamic_power_w() * secs;
            let power = dynamic_j / secs + design_static_w;
            peak = peak.max(power.min(spec.tdp_watts * 1.2));
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase};

    fn quick_diffusion() -> Workload {
        let mut wl = Workload::diffusion(DiffusionModel::DitXl);
        if let Workload::Diffusion(ref mut cfg) = wl {
            cfg.steps = 2;
        }
        wl
    }

    #[test]
    fn savings_are_ordered_across_designs() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        for workload in [
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Small),
            quick_diffusion(),
        ] {
            let eval = evaluator.evaluate(&workload, 8);
            let base = eval.energy_savings(Design::ReGateBase);
            let hw = eval.energy_savings(Design::ReGateHw);
            let full = eval.energy_savings(Design::ReGateFull);
            let ideal = eval.energy_savings(Design::Ideal);
            assert!(base >= -1e-9, "{workload}: Base savings {base}");
            assert!(hw >= base - 1e-9, "{workload}: HW {hw} < Base {base}");
            assert!(full >= hw - 1e-9, "{workload}: Full {full} < HW {hw}");
            assert!(ideal >= full - 1e-9, "{workload}: Ideal {ideal} < Full {full}");
            assert!(ideal < 0.8, "{workload}: Ideal saves at most the static share, got {ideal}");
        }
    }

    #[test]
    fn full_savings_magnitudes_match_paper_ranges() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        // LLM decode: paper reports 16%-20% savings.
        let decode = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let s = decode.energy_savings(Design::ReGateFull);
        assert!((0.08..0.45).contains(&s), "decode savings {s}");
        // DLRM: paper reports ~33% savings.
        let dlrm = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
        let s = dlrm.energy_savings(Design::ReGateFull);
        assert!((0.15..0.60).contains(&s), "DLRM savings {s}");
        // Prefill (compute-bound): smaller savings.
        let prefill =
            evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
        let sp = prefill.energy_savings(Design::ReGateFull);
        assert!((0.03..0.30).contains(&sp), "prefill savings {sp}");
        assert!(s > sp, "DLRM should save more than prefill");
    }

    #[test]
    fn performance_overhead_bounds() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        for workload in [
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Medium),
        ] {
            let eval = evaluator.evaluate(&workload, 8);
            assert_eq!(eval.performance_overhead(Design::NoPg), 0.0);
            assert_eq!(eval.performance_overhead(Design::Ideal), 0.0);
            let base = eval.performance_overhead(Design::ReGateBase);
            let hw = eval.performance_overhead(Design::ReGateHw);
            let full = eval.performance_overhead(Design::ReGateFull);
            assert!(base < 0.06, "{workload}: Base overhead {base}");
            assert!(hw <= base + 1e-12, "{workload}: HW {hw} > Base {base}");
            assert!(full <= hw + 1e-12, "{workload}: Full {full} > HW {hw}");
            assert!(full < 0.005, "{workload}: Full overhead {full} above 0.5%");
        }
    }

    #[test]
    fn average_power_drops_with_gating() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Large), 8);
        assert!(eval.average_power_w(Design::ReGateFull) < eval.average_power_w(Design::NoPg));
        assert!(eval.peak_power_w(Design::ReGateFull) <= eval.peak_power_w(Design::NoPg) + 1e-9);
        assert!(eval.peak_power_w(Design::NoPg) >= eval.average_power_w(Design::NoPg));
    }

    #[test]
    fn carbon_reduction_exceeds_energy_savings() {
        // Figure 24: operational carbon reduction (which includes the idle
        // portion) is much larger than the busy-time energy savings.
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let carbon = eval.operational_carbon_reduction(Design::ReGateFull);
        let energy = eval.energy_savings(Design::ReGateFull);
        assert!(carbon > energy, "carbon {carbon} <= energy {energy}");
        assert!(carbon > 0.25, "carbon reduction {carbon}");
    }

    #[test]
    fn savings_breakdown_sums_to_total_savings() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
        for design in Design::GATED {
            let parts: f64 = eval.savings_breakdown(design).values().sum();
            let total = eval.energy_savings(design);
            // The breakdown ignores the overhead-time static energy, so it
            // can differ slightly; they must agree within a percent or two.
            assert!((parts - total).abs() < 0.02, "{design}: parts {parts} vs total {total}");
        }
    }

    #[test]
    fn sensitivity_to_leakage_and_delay() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let default_eval = Evaluator::new(NpuGeneration::D).evaluate(&wl, 1);
        // Leakier gated state -> smaller savings.
        let leaky = GatingParams::default().with_leakage(npu_power::LeakageRatios {
            logic_off: 0.6,
            sram_sleep: 0.8,
            sram_off: 0.4,
        });
        let leaky_eval = Evaluator::with_gating(NpuGeneration::D, leaky).evaluate(&wl, 1);
        assert!(
            leaky_eval.energy_savings(Design::ReGateFull)
                < default_eval.energy_savings(Design::ReGateFull)
        );
        // Longer delays -> more overhead, fewer savings (never more).
        let slow = GatingParams::default().with_delay_scale(4.0);
        let slow_eval = Evaluator::with_gating(NpuGeneration::D, slow).evaluate(&wl, 1);
        assert!(
            slow_eval.energy_savings(Design::ReGateFull)
                <= default_eval.energy_savings(Design::ReGateFull) + 1e-9
        );
        assert!(
            slow_eval.performance_overhead(Design::ReGateBase)
                >= default_eval.performance_overhead(Design::ReGateBase)
        );
    }

    #[test]
    fn energy_per_work_uses_deployment_size() {
        let evaluator = Evaluator::new(NpuGeneration::D);
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(4096);
        let eval = evaluator.evaluate(&wl, 8);
        let per_request = eval.energy_per_work(Design::NoPg);
        assert!(per_request > 0.0);
        assert!(
            (per_request - eval.design(Design::NoPg).energy.total_j() * 8.0 / 4096.0).abs() < 1e-9
        );
    }
}
