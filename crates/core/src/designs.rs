//! The power-gating design points compared in the evaluation (paper §6.1).

use serde::{Deserialize, Serialize};

/// A power-gating design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Design {
    /// Baseline NPU chip without any power gating.
    NoPg,
    /// Conventional hardware-managed gating at component granularity with
    /// idle detection (detection window = BET/3); no PE-level SA gating.
    ReGateBase,
    /// `ReGate-Base` plus the PE-level spatial SA gating mechanism; all
    /// components in hardware-managed `auto` mode.
    ReGateHw,
    /// The full design: `ReGate-HW` plus software-managed (compiler
    /// `setpm`) gating for the vector units and the SRAM.
    ReGateFull,
    /// Roofline: zero leakage in the OFF state, zero transition delay, and
    /// every idle period perfectly gated.
    Ideal,
}

impl Design {
    /// All design points in the order plotted by the paper's figures.
    pub const ALL: [Design; 5] =
        [Design::NoPg, Design::ReGateBase, Design::ReGateHw, Design::ReGateFull, Design::Ideal];

    /// The four gating designs (everything except the `NoPG` baseline).
    pub const GATED: [Design; 4] =
        [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull, Design::Ideal];

    /// Label used in figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Design::NoPg => "NoPG",
            Design::ReGateBase => "ReGate-Base",
            Design::ReGateHw => "ReGate-HW",
            Design::ReGateFull => "ReGate-Full",
            Design::Ideal => "Ideal",
        }
    }

    /// Whether the systolic arrays are gated at PE granularity.
    #[must_use]
    pub fn has_pe_level_sa_gating(self) -> bool {
        matches!(self, Design::ReGateHw | Design::ReGateFull | Design::Ideal)
    }

    /// Whether the vector units and SRAM are gated by compiler-inserted
    /// `setpm` instructions (software-managed).
    #[must_use]
    pub fn has_software_gating(self) -> bool {
        matches!(self, Design::ReGateFull | Design::Ideal)
    }

    /// Whether any gating is enabled at all.
    #[must_use]
    pub fn has_gating(self) -> bool {
        !matches!(self, Design::NoPg)
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Design::NoPg.label(), "NoPG");
        assert_eq!(Design::ReGateBase.to_string(), "ReGate-Base");
        assert_eq!(Design::ReGateFull.label(), "ReGate-Full");
        assert_eq!(Design::ALL.len(), 5);
        assert_eq!(Design::GATED.len(), 4);
    }

    #[test]
    fn capability_lattice() {
        assert!(!Design::NoPg.has_gating());
        assert!(Design::ReGateBase.has_gating());
        assert!(!Design::ReGateBase.has_pe_level_sa_gating());
        assert!(Design::ReGateHw.has_pe_level_sa_gating());
        assert!(!Design::ReGateHw.has_software_gating());
        assert!(Design::ReGateFull.has_software_gating());
        assert!(Design::Ideal.has_software_gating() && Design::Ideal.has_pe_level_sa_gating());
    }
}
