//! # regate — fine-grained power gating for neural processing units
//!
//! This crate is the reproduction of the paper's primary contribution:
//! ReGate, a hardware/software co-design that power gates every major
//! component of an NPU chip — systolic arrays at processing-element
//! granularity, vector units, the SRAM scratchpad at 4 KiB-segment
//! granularity, and the HBM/ICI controllers — with hardware idle detection
//! by default and compiler-directed `setpm` instructions where software has
//! better information (§4).
//!
//! The crate provides:
//!
//! * [`pe_gating`] — the cycle-level, spatially power-gated systolic array:
//!   non-zero-weight row/column masks with OR-prefix sums (Figure 12) and
//!   diagonal `PE_on` propagation along the dataflow (Figure 13);
//! * [`power_state`] — the per-component power-state machine integrated
//!   with the core pipeline's structural-hazard/ready-bit mechanism;
//! * [`designs`] — the evaluated design points: `NoPG`, `ReGate-Base`,
//!   `ReGate-HW`, `ReGate-Full`, and the `Ideal` roofline;
//! * [`evaluate`] — the end-to-end evaluation engine: workload → compile →
//!   simulate → per-design energy/power/performance/carbon;
//! * [`policy`] — pluggable power-management policy selection: the five
//!   design points as presets of a per-component [`npu_power::PowerPolicy`]
//!   configuration, plus clock gating, DVFS, drowsy-everywhere,
//!   tile-grain re-gating, and contents-aware SRAM write-back;
//! * [`experiments`] — generators for every table and figure of the paper's
//!   characterization (§3) and evaluation (§6) sections.
//!
//! ## Example
//!
//! ```
//! use npu_arch::NpuGeneration;
//! use npu_models::{DlrmSize, Workload};
//! use regate::{Design, Evaluator};
//!
//! let evaluator = Evaluator::new(NpuGeneration::D);
//! let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
//! let savings = eval.energy_savings(Design::ReGateFull);
//! assert!(savings > 0.10, "ReGate-Full should save >10% on DLRM, got {savings}");
//! assert!(eval.performance_overhead(Design::ReGateFull) < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod designs;
pub mod evaluate;
pub mod experiments;
pub mod pe_gating;
pub mod pod;
pub mod policy;
pub mod power_state;

pub use designs::Design;
pub use evaluate::{
    DesignEvaluation, Evaluator, PolicyEvaluation, PolicySetEvaluation, WorkloadEvaluation,
};
pub use pe_gating::{PeMode, SaGatingPlan};
pub use pod::{pod_static_gating, PodGatingReport};
pub use policy::{IdleLeakModel, PolicyConfig, PolicyKind, SaActiveMode, SramPolicy};
pub use power_state::{ComponentPowerState, PowerStateManager};
