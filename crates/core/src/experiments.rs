//! Experiment drivers that regenerate the data behind every table and
//! figure of the paper (§3 characterization and §6 evaluation).
//!
//! Each function returns plain rows of numbers; the `regate-bench` harness
//! binaries print them in the same layout as the paper's figures, and the
//! integration tests assert the headline claims on them.

use serde::{Deserialize, Serialize};

use npu_arch::{ComponentKind, NpuGeneration};
use npu_compiler::instrument::{instrument_vu, SetPmPolicy};
use npu_compiler::vliw::{expand_operator, ExpansionLimits};
use npu_compiler::Compiler;
use npu_models::{EvalConfig, Workload};
use npu_power::{CarbonModel, GatingParams, LeakageRatios, LifespanPoint};

use crate::designs::Design;
use crate::evaluate::{Evaluator, WorkloadEvaluation};

/// One row of the characterization study (Figures 2–9): a workload on a
/// given NPU generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationRow {
    /// Workload label.
    pub workload: String,
    /// Workload group (figure column).
    pub group: String,
    /// NPU generation.
    pub generation: NpuGeneration,
    /// Number of chips used.
    pub num_chips: usize,
    /// Energy per unit of work without power gating (Figure 2).
    pub energy_per_work_j: f64,
    /// Unit of work label ("Iter", "Token", "Request", "Image").
    pub work_unit: String,
    /// Fraction of busy energy that is static (Figure 3).
    pub static_fraction: f64,
    /// Per-component share of total busy energy (Figure 3), in the order
    /// SA/VU/SRAM/ICI/HBM/Other (static, dynamic) pairs.
    pub component_energy_shares: Vec<(String, f64, f64)>,
    /// SA temporal utilization (Figure 4).
    pub sa_temporal_util: f64,
    /// SA spatial utilization (Figure 5).
    pub sa_spatial_util: f64,
    /// VU temporal utilization (Figure 6).
    pub vu_temporal_util: f64,
    /// ICI temporal utilization (Figure 8).
    pub ici_temporal_util: f64,
    /// HBM temporal utilization (Figure 9).
    pub hbm_temporal_util: f64,
    /// Execution-time-weighted SRAM demand percentiles in MiB
    /// (50th, 90th, 99th) — Figure 7.
    pub sram_demand_p50_p90_p99_mib: (f64, f64, f64),
}

/// Runs the characterization for one workload on one generation.
#[must_use]
pub fn characterize(
    workload: &Workload,
    generation: NpuGeneration,
    num_chips: usize,
) -> CharacterizationRow {
    let evaluator = Evaluator::new(generation);
    let eval = evaluator.evaluate(workload, num_chips);
    characterization_row(workload, &eval)
}

fn characterization_row(workload: &Workload, eval: &WorkloadEvaluation) -> CharacterizationRow {
    let nopg = &eval.design(Design::NoPg).energy;
    let activity = eval.simulation.activity();
    let shares: Vec<(String, f64, f64)> = ComponentKind::ALL
        .iter()
        .map(|&k| {
            let c = nopg.component(k);
            let total = nopg.total_j().max(1e-30);
            (k.label().to_string(), c.static_j / total, c.dynamic_j / total)
        })
        .collect();
    CharacterizationRow {
        workload: workload.label(),
        group: workload.group().to_string(),
        generation: eval.generation,
        num_chips: eval.num_chips,
        energy_per_work_j: eval.energy_per_work(Design::NoPg),
        work_unit: workload.work_unit().label().to_string(),
        static_fraction: nopg.static_fraction(),
        component_energy_shares: shares,
        sa_temporal_util: activity.temporal_utilization(ComponentKind::Sa),
        sa_spatial_util: activity.sa_spatial_utilization(),
        vu_temporal_util: activity.temporal_utilization(ComponentKind::Vu),
        ici_temporal_util: activity.temporal_utilization(ComponentKind::Ici),
        hbm_temporal_util: activity.temporal_utilization(ComponentKind::Hbm),
        sram_demand_p50_p90_p99_mib: (
            eval.simulation.sram_demand_percentile_mib(50.0),
            eval.simulation.sram_demand_percentile_mib(90.0),
            eval.simulation.sram_demand_percentile_mib(99.0),
        ),
    }
}

/// One row of the evaluation figures (17–19): one workload with the savings
/// and overheads of every design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationRow {
    /// Workload label.
    pub workload: String,
    /// NPU generation.
    pub generation: NpuGeneration,
    /// Number of chips.
    pub num_chips: usize,
    /// Energy savings vs `NoPG` per design (Base, HW, Full, Ideal) — Fig. 17.
    pub energy_savings: Vec<(String, f64)>,
    /// Per-component savings breakdown of `ReGate-Full` — Fig. 17 stacking.
    pub full_savings_breakdown: Vec<(String, f64)>,
    /// Average power per chip per design (NoPG first) — Fig. 18.
    pub average_power_w: Vec<(String, f64)>,
    /// Peak power per chip per design — Fig. 18.
    pub peak_power_w: Vec<(String, f64)>,
    /// Performance overhead per design (Base, HW, Full) — Fig. 19.
    pub performance_overhead: Vec<(String, f64)>,
    /// Operational carbon reduction of each design — Fig. 24.
    pub carbon_reduction: Vec<(String, f64)>,
}

/// Evaluates one Table 4 deployment and produces its evaluation row.
#[must_use]
pub fn evaluate_config(config: &EvalConfig, generation: NpuGeneration) -> EvaluationRow {
    let evaluator = Evaluator::new(generation);
    let eval = evaluator.evaluate(&config.workload, config.num_chips);
    evaluation_row(&eval)
}

fn evaluation_row(eval: &WorkloadEvaluation) -> EvaluationRow {
    let designs = [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull, Design::Ideal];
    EvaluationRow {
        workload: eval.workload.label(),
        generation: eval.generation,
        num_chips: eval.num_chips,
        energy_savings: designs
            .iter()
            .map(|&d| (d.label().to_string(), eval.energy_savings(d)))
            .collect(),
        full_savings_breakdown: eval
            .savings_breakdown(Design::ReGateFull)
            .into_iter()
            .map(|(k, v)| (k.label().to_string(), v))
            .collect(),
        average_power_w: Design::ALL
            .iter()
            .map(|&d| (d.label().to_string(), eval.average_power_w(d)))
            .collect(),
        peak_power_w: Design::ALL
            .iter()
            .map(|&d| (d.label().to_string(), eval.peak_power_w(d)))
            .collect(),
        performance_overhead: [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull]
            .iter()
            .map(|&d| (d.label().to_string(), eval.performance_overhead(d)))
            .collect(),
        carbon_reduction: designs
            .iter()
            .map(|&d| (d.label().to_string(), eval.operational_carbon_reduction(d)))
            .collect(),
    }
}

/// Runs the full workload × design × generation evaluation sweep with one
/// worker thread per workload (`std::thread::scope`). Each worker
/// compiles, simulates, and evaluates its workload on every requested
/// generation across all design points; the result rows come back in
/// `configs × generations` order, identical to the serial sweep.
///
/// The sweep is embarrassingly parallel across workloads (each owns its
/// graph, compiled stream, and timeline), which is what makes the Table 4
/// scale tractable on a laptop.
///
/// # Panics
///
/// Panics if a worker thread panics (the underlying evaluation failed).
#[must_use]
pub fn parallel_evaluation_sweep(
    configs: &[EvalConfig],
    generations: &[NpuGeneration],
) -> Vec<Vec<EvaluationRow>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|config| {
                scope.spawn(move || {
                    generations
                        .iter()
                        .map(|&generation| evaluate_config(config, generation))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    })
}

/// Figure 20: `setpm` instructions per 1,000 cycles for a workload, derived
/// by expanding a sample of its compiled operators into VLIW schedules and
/// running the instrumentation pass over them.
#[must_use]
pub fn setpm_rate(
    workload: &Workload,
    generation: NpuGeneration,
    num_chips: usize,
    sample: usize,
) -> f64 {
    let spec = npu_arch::NpuSpec::generation(generation);
    let chip = npu_arch::ChipConfig::new(generation, num_chips);
    let parallelism = workload
        .default_parallelism(&spec, num_chips)
        .unwrap_or_else(|| npu_arch::ParallelismConfig::new(num_chips, 1, 1));
    let graph = workload.build_graph(&parallelism);
    let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
    let policy = SetPmPolicy::new(GatingParams::default().vu_bet, GatingParams::default().vu_delay);
    let mut setpms = 0usize;
    let mut cycles = 0u64;
    for op in compiled.anchors().take(sample) {
        let (program, _) = expand_operator(op, &spec, ExpansionLimits { max_tiles: 16 });
        let result = instrument_vu(&program, policy);
        setpms += result.setpm_inserted;
        cycles += result.program.issue_cycles();
    }
    if cycles == 0 {
        0.0
    } else {
        setpms as f64 * 1000.0 / cycles as f64
    }
}

/// Figure 21/22 sensitivity rows: energy savings of each design under a
/// modified set of gating parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Label of the swept setting (leakage ratios or delay factor).
    pub setting: String,
    /// Savings per design (Base, HW, Full).
    pub savings: Vec<(String, f64)>,
    /// Performance overhead per design (Base, HW, Full).
    pub overhead: Vec<(String, f64)>,
}

/// Sweeps the gated-state leakage ratios (Figure 21).
#[must_use]
pub fn leakage_sensitivity(
    workload: &Workload,
    generation: NpuGeneration,
    num_chips: usize,
) -> Vec<SensitivityRow> {
    LeakageRatios::sensitivity_sweep()
        .into_iter()
        .map(|ratios| {
            let params = GatingParams::default().with_leakage(ratios);
            sensitivity_row(workload, generation, num_chips, ratios.label(), params)
        })
        .collect()
}

/// Sweeps the power-gate/wake-up delay scale (Figure 22).
#[must_use]
pub fn delay_sensitivity(
    workload: &Workload,
    generation: NpuGeneration,
    num_chips: usize,
) -> Vec<SensitivityRow> {
    [1.0, 1.5, 2.0, 3.0, 4.0]
        .into_iter()
        .map(|factor| {
            let params = GatingParams::default().with_delay_scale(factor);
            sensitivity_row(workload, generation, num_chips, format!("{factor}x"), params)
        })
        .collect()
}

fn sensitivity_row(
    workload: &Workload,
    generation: NpuGeneration,
    num_chips: usize,
    setting: String,
    params: GatingParams,
) -> SensitivityRow {
    let eval = Evaluator::with_gating(generation, params).evaluate(workload, num_chips);
    let designs = [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull];
    SensitivityRow {
        setting,
        savings: designs.iter().map(|&d| (d.label().to_string(), eval.energy_savings(d))).collect(),
        overhead: designs
            .iter()
            .map(|&d| (d.label().to_string(), eval.performance_overhead(d)))
            .collect(),
    }
}

/// Figure 23: energy savings of each design on every NPU generation.
#[must_use]
pub fn generation_sweep(
    workload: &Workload,
    num_chips: usize,
) -> Vec<(NpuGeneration, Vec<(String, f64)>)> {
    NpuGeneration::ALL
        .iter()
        .map(|&generation| {
            let eval = Evaluator::new(generation).evaluate(workload, num_chips);
            let savings = [Design::ReGateBase, Design::ReGateHw, Design::ReGateFull, Design::Ideal]
                .iter()
                .map(|&d| (d.label().to_string(), eval.energy_savings(d)))
                .collect();
            (generation, savings)
        })
        .collect()
}

/// Figure 25: carbon per unit of work versus device lifespan, with and
/// without ReGate-Full.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifespanSweep {
    /// Sweep without power gating.
    pub nopg: Vec<LifespanPoint>,
    /// Sweep with ReGate-Full.
    pub regate: Vec<LifespanPoint>,
    /// Optimal lifespan (years) without power gating.
    pub nopg_optimal_years: u32,
    /// Optimal lifespan (years) with ReGate-Full.
    pub regate_optimal_years: u32,
}

/// Runs the lifespan sweep for one workload deployment.
#[must_use]
pub fn lifespan_sweep(
    workload: &Workload,
    generation: NpuGeneration,
    num_chips: usize,
) -> LifespanSweep {
    let evaluator = Evaluator::new(generation);
    let eval = evaluator.evaluate(workload, num_chips);
    let carbon = CarbonModel::default();
    let seconds_per_batch =
        eval.design(Design::NoPg).energy.busy_seconds / npu_power::NPU_DUTY_CYCLE;
    let work_per_chip_year = if seconds_per_batch > 0.0 {
        eval.work_items / eval.num_chips as f64 * (365.25 * 86400.0) / seconds_per_batch
    } else {
        0.0
    };
    // Yearly efficiency gain: the NPU-D over NPU-C improvement annualized
    // over their three-year deployment gap (the paper's Figure 25 setup).
    let yearly_gain = 1.18;
    let embodied = CarbonModel::embodied_kg_per_chip(generation);
    let nopg_energy = eval.design(Design::NoPg).energy.facility_j() * eval.num_chips as f64
        / eval.work_items.max(1.0);
    let full_energy = eval.design(Design::ReGateFull).energy.facility_j() * eval.num_chips as f64
        / eval.work_items.max(1.0);
    let nopg = carbon.lifespan_sweep(nopg_energy, work_per_chip_year, embodied, yearly_gain, 10);
    let regate = carbon.lifespan_sweep(full_energy, work_per_chip_year, embodied, yearly_gain, 10);
    LifespanSweep {
        nopg_optimal_years: CarbonModel::optimal_lifespan(&nopg),
        regate_optimal_years: CarbonModel::optimal_lifespan(&regate),
        nopg,
        regate,
    }
}

/// Chooses, among a set of candidate chip counts, the most energy-efficient
/// configuration that meets the latency SLO (the Table 4 search, simplified
/// to chip count with the workload's default batch).
#[must_use]
pub fn best_config(
    workload: &Workload,
    generation: NpuGeneration,
    candidate_chips: &[usize],
    slo_seconds: f64,
) -> Option<(usize, f64)> {
    let evaluator = Evaluator::new(generation);
    let mut best: Option<(usize, f64)> = None;
    for &chips in candidate_chips {
        let spec = npu_arch::NpuSpec::generation(generation);
        if workload.default_parallelism(&spec, chips).is_none() {
            continue;
        }
        let eval = evaluator.evaluate(workload, chips);
        let latency = eval.design(Design::NoPg).energy.busy_seconds;
        if latency > slo_seconds {
            continue;
        }
        let energy = eval.energy_per_work(Design::NoPg);
        if best.is_none_or(|(_, e)| energy < e) {
            best = Some((chips, energy));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_models::{DlrmSize, LlamaModel, LlmPhase};

    #[test]
    fn characterization_row_has_expected_shape() {
        let row = characterize(
            &Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            NpuGeneration::D,
            1,
        );
        assert_eq!(row.work_unit, "Token");
        assert!(row.energy_per_work_j > 0.0);
        assert!((0.0..=1.0).contains(&row.static_fraction));
        assert!(row.hbm_temporal_util > 0.8, "decode HBM util {}", row.hbm_temporal_util);
        assert!(row.sa_temporal_util < 0.3);
        assert_eq!(row.component_energy_shares.len(), ComponentKind::ALL.len());
        let share_sum: f64 = row.component_energy_shares.iter().map(|(_, s, d)| s + d).sum();
        assert!((share_sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn evaluation_row_orders_designs() {
        let cfg = EvalConfig::dlrm(DlrmSize::Small);
        let row = evaluate_config(&cfg, NpuGeneration::D);
        assert_eq!(row.energy_savings.len(), 4);
        let full = row.energy_savings[2].1;
        let ideal = row.energy_savings[3].1;
        assert!(ideal >= full);
        assert!(row.average_power_w[0].1 >= row.average_power_w[3].1, "NoPG power >= Full power");
        assert!(row.performance_overhead.iter().all(|(_, o)| *o < 0.06));
    }

    #[test]
    fn setpm_rate_is_below_structural_bound() {
        let rate = setpm_rate(
            &Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            NpuGeneration::D,
            1,
            24,
        );
        assert!(rate >= 0.0);
        assert!(rate < 2.0 * 1000.0 / 32.0, "setpm rate {rate} exceeds the Figure 20 bound");
    }

    #[test]
    fn parallel_sweep_matches_serial_evaluation() {
        let configs = [
            EvalConfig::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            EvalConfig::dlrm(DlrmSize::Small),
        ];
        let generations = [NpuGeneration::C, NpuGeneration::D];
        let parallel = parallel_evaluation_sweep(&configs, &generations);
        assert_eq!(parallel.len(), configs.len());
        for (config, rows) in configs.iter().zip(&parallel) {
            assert_eq!(rows.len(), generations.len());
            for (&generation, row) in generations.iter().zip(rows) {
                let serial = evaluate_config(config, generation);
                assert_eq!(row, &serial, "{config}: parallel row diverges from serial");
            }
        }
    }

    #[test]
    fn leakage_sweep_is_monotone() {
        let rows = leakage_sensitivity(
            &Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            NpuGeneration::D,
            1,
        );
        assert_eq!(rows.len(), 5);
        let full_first = rows.first().unwrap().savings[2].1;
        let full_last = rows.last().unwrap().savings[2].1;
        assert!(full_first > full_last, "leakier gating saves less");
        assert!(full_last > 0.0, "even the leaky corner still saves energy");
    }

    #[test]
    fn generation_sweep_covers_all_generations() {
        let rows = generation_sweep(&Workload::dlrm(DlrmSize::Large), 8);
        assert_eq!(rows.len(), 5);
        for (_gen, savings) in &rows {
            assert!(savings.iter().all(|(_, s)| *s > 0.0));
        }
    }

    #[test]
    fn lifespan_sweep_extends_with_regate() {
        let sweep = lifespan_sweep(
            &Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            NpuGeneration::D,
            1,
        );
        assert_eq!(sweep.nopg.len(), 10);
        assert_eq!(sweep.regate.len(), 10);
        assert!(sweep.regate_optimal_years >= sweep.nopg_optimal_years);
        assert!(sweep.nopg_optimal_years >= 1);
    }

    #[test]
    fn best_config_prefers_fewer_chips_when_slo_is_loose() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let best = best_config(&wl, NpuGeneration::D, &[1, 2, 4], f64::INFINITY);
        let (chips, _) = best.expect("some configuration is feasible");
        assert_eq!(chips, 1, "with no SLO pressure the smallest deployment is most efficient");
    }
}
