//! Per-component power-state tracking in the NPU core pipeline (paper §4.1,
//! "Power state management in NPU core pipeline").
//!
//! A power-gated component is treated as a structural hazard: its ready bit
//! is cleared, an instruction that needs it stalls, and dispatching the
//! instruction raises a wake-up that sets the ready bit again after the
//! component's power-on delay. Components wake up and go down independently
//! because each has its own ready bit.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::ComponentId;
use npu_isa::PowerMode;

/// Power/readiness state of one component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentPowerState {
    /// Commanded power mode (`Auto` by default).
    pub mode: PowerMode,
    /// Whether the component is currently powered and ready to accept work.
    pub ready: bool,
    /// Cycle at which an in-progress wake-up completes (if any).
    pub ready_at_cycle: Option<u64>,
}

impl Default for ComponentPowerState {
    fn default() -> Self {
        ComponentPowerState { mode: PowerMode::Auto, ready: true, ready_at_cycle: None }
    }
}

/// Tracks the power state and ready bit of every component on a chip and
/// accounts for the stall cycles exposed by wake-ups.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerStateManager {
    states: BTreeMap<ComponentId, ComponentPowerState>,
    exposed_stall_cycles: u64,
    wakeups: u64,
}

impl PowerStateManager {
    /// Creates a manager with every component powered on in `Auto` mode.
    #[must_use]
    pub fn new(components: impl IntoIterator<Item = ComponentId>) -> Self {
        let states =
            components.into_iter().map(|id| (id, ComponentPowerState::default())).collect();
        PowerStateManager { states, exposed_stall_cycles: 0, wakeups: 0 }
    }

    /// Current state of a component (default if it was never registered).
    #[must_use]
    pub fn state(&self, id: ComponentId) -> ComponentPowerState {
        self.states.get(&id).copied().unwrap_or_default()
    }

    /// Applies a power-mode command (from a `setpm` or a hardware policy).
    ///
    /// Turning a component off clears its ready bit; turning it on starts a
    /// wake-up that completes after `power_on_delay` cycles.
    pub fn set_mode(
        &mut self,
        id: ComponentId,
        mode: PowerMode,
        now_cycle: u64,
        power_on_delay: u64,
    ) {
        let entry = self.states.entry(id).or_default();
        entry.mode = mode;
        match mode {
            PowerMode::Off | PowerMode::Sleep => {
                entry.ready = false;
                entry.ready_at_cycle = None;
            }
            PowerMode::On => {
                if !entry.ready && entry.ready_at_cycle.is_none() {
                    entry.ready_at_cycle = Some(now_cycle + power_on_delay);
                }
            }
            PowerMode::Auto => {}
        }
    }

    /// Dispatches an operation to a component at `now_cycle`.
    ///
    /// Returns the cycle at which the operation can actually start: if the
    /// component is ready this is `now_cycle`; otherwise the wake-up delay
    /// is exposed as a stall (and recorded).
    pub fn dispatch(&mut self, id: ComponentId, now_cycle: u64, power_on_delay: u64) -> u64 {
        let entry = self.states.entry(id).or_default();
        if entry.ready {
            return now_cycle;
        }
        self.wakeups += 1;
        let ready_at = match entry.ready_at_cycle {
            Some(at) if at <= now_cycle => now_cycle,
            Some(at) => at,
            None => now_cycle + power_on_delay,
        };
        let stall = ready_at.saturating_sub(now_cycle);
        self.exposed_stall_cycles += stall;
        entry.ready = true;
        entry.ready_at_cycle = None;
        ready_at
    }

    /// Marks a component as gated by a hardware idle-detection policy.
    pub fn gate(&mut self, id: ComponentId) {
        let entry = self.states.entry(id).or_default();
        entry.ready = false;
        entry.ready_at_cycle = None;
    }

    /// Total stall cycles exposed by wake-ups so far.
    #[must_use]
    pub fn exposed_stall_cycles(&self) -> u64 {
        self.exposed_stall_cycles
    }

    /// Number of wake-ups triggered by dispatches to gated components.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Number of components currently not ready (gated or waking up).
    #[must_use]
    pub fn gated_count(&self) -> usize {
        self.states.values().filter(|s| !s.ready).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::ComponentKind;

    fn ids() -> Vec<ComponentId> {
        vec![ComponentId::sa(0), ComponentId::sa(1), ComponentId::vu(0), ComponentId::hbm()]
    }

    #[test]
    fn components_start_ready_in_auto() {
        let mgr = PowerStateManager::new(ids());
        for id in ids() {
            let s = mgr.state(id);
            assert!(s.ready);
            assert_eq!(s.mode, PowerMode::Auto);
        }
        assert_eq!(mgr.gated_count(), 0);
    }

    #[test]
    fn dispatch_to_ready_component_does_not_stall() {
        let mut mgr = PowerStateManager::new(ids());
        assert_eq!(mgr.dispatch(ComponentId::sa(0), 100, 10), 100);
        assert_eq!(mgr.exposed_stall_cycles(), 0);
        assert_eq!(mgr.wakeups(), 0);
    }

    #[test]
    fn gated_component_exposes_wakeup_delay() {
        let mut mgr = PowerStateManager::new(ids());
        mgr.gate(ComponentId::vu(0));
        assert_eq!(mgr.gated_count(), 1);
        let start = mgr.dispatch(ComponentId::vu(0), 50, 2);
        assert_eq!(start, 52);
        assert_eq!(mgr.exposed_stall_cycles(), 2);
        assert_eq!(mgr.wakeups(), 1);
        // Once woken it stays ready.
        assert_eq!(mgr.dispatch(ComponentId::vu(0), 60, 2), 60);
    }

    #[test]
    fn software_prewake_hides_the_delay() {
        let mut mgr = PowerStateManager::new(ids());
        mgr.set_mode(ComponentId::vu(0), PowerMode::Off, 0, 2);
        assert!(!mgr.state(ComponentId::vu(0)).ready);
        // The compiler wakes the VU 10 cycles before it is needed.
        mgr.set_mode(ComponentId::vu(0), PowerMode::On, 40, 2);
        let start = mgr.dispatch(ComponentId::vu(0), 50, 2);
        assert_eq!(start, 50, "the wake-up finished at cycle 42, before the use");
        assert_eq!(mgr.exposed_stall_cycles(), 0);
    }

    #[test]
    fn late_prewake_exposes_partial_delay() {
        let mut mgr = PowerStateManager::new(ids());
        mgr.set_mode(ComponentId::hbm(), PowerMode::Off, 0, 60);
        mgr.set_mode(ComponentId::hbm(), PowerMode::On, 100, 60);
        let start = mgr.dispatch(ComponentId::hbm(), 120, 60);
        assert_eq!(start, 160, "wake-up completes at 160");
        assert_eq!(mgr.exposed_stall_cycles(), 40);
    }

    #[test]
    fn legal_transition_table() {
        // Exhaustive (from-mode → to-mode) command table. For every pair,
        // the resulting mode must equal the commanded mode and the ready
        // bit must follow the §4.1 semantics: Off/Sleep clear it, On
        // schedules a wake-up iff the component was not ready, Auto leaves
        // readiness to the hardware policy (unchanged here).
        const MODES: [PowerMode; 4] =
            [PowerMode::On, PowerMode::Off, PowerMode::Auto, PowerMode::Sleep];
        const DELAY: u64 = 8;
        for from in MODES {
            for to in MODES {
                let id = ComponentId::sa(0);
                let mut mgr = PowerStateManager::new([id]);
                mgr.set_mode(id, from, 0, DELAY);
                let was_ready = mgr.state(id).ready;
                mgr.set_mode(id, to, 100, DELAY);
                let s = mgr.state(id);
                assert_eq!(s.mode, to, "commanded mode sticks ({from:?} -> {to:?})");
                match to {
                    PowerMode::Off | PowerMode::Sleep => {
                        assert!(!s.ready, "{from:?} -> {to:?} must clear the ready bit");
                        assert_eq!(s.ready_at_cycle, None);
                    }
                    PowerMode::On => {
                        if was_ready {
                            assert!(s.ready, "{from:?} -> On keeps a ready component ready");
                            assert_eq!(s.ready_at_cycle, None, "no spurious wake-up");
                        } else {
                            assert!(!s.ready, "not ready until the wake-up completes");
                            assert_eq!(
                                s.ready_at_cycle,
                                Some(100 + DELAY),
                                "{from:?} -> On schedules a wake-up"
                            );
                        }
                    }
                    PowerMode::Auto => {
                        assert_eq!(s.ready, was_ready, "{from:?} -> Auto leaves readiness alone");
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_on_command_does_not_restart_wakeup() {
        let id = ComponentId::vu(0);
        let mut mgr = PowerStateManager::new([id]);
        mgr.set_mode(id, PowerMode::Off, 0, 10);
        mgr.set_mode(id, PowerMode::On, 20, 10);
        assert_eq!(mgr.state(id).ready_at_cycle, Some(30));
        // A second `On` while the wake-up is in flight must not push the
        // completion time out.
        mgr.set_mode(id, PowerMode::On, 25, 10);
        assert_eq!(mgr.state(id).ready_at_cycle, Some(30));
        assert_eq!(mgr.dispatch(id, 28, 10), 30);
        assert_eq!(mgr.exposed_stall_cycles(), 2);
    }

    #[test]
    fn independent_ready_bits() {
        let mut mgr = PowerStateManager::new(ids());
        mgr.gate(ComponentId::sa(0));
        assert!(mgr.state(ComponentId::sa(1)).ready, "other SA is unaffected");
        assert!(!mgr.state(ComponentId::sa(0)).ready);
        assert_eq!(mgr.state(ComponentId::sa(0)).mode, PowerMode::Auto);
        let _ = ComponentKind::Sa; // silence unused import in some cfgs
    }
}
