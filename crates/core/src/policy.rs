//! Power-management policy selection for the evaluation engine.
//!
//! [`PolicyKind`] names a chip-wide power-management strategy; its
//! [`config`](PolicyKind::config) method expands the name into a
//! [`PolicyConfig`] — one [`npu_power::PowerPolicy`] per gateable
//! component plus the SRAM and out-of-duty-cycle leakage treatments — that
//! [`crate::Evaluator`] walks over the simulated timeline. The five ReGate
//! design points of the paper are expressed as *presets* of the same
//! machinery ([`PolicyKind::Preset`]), with bit-identical results to the
//! original hard-coded evaluation; the extended kinds price the
//! neighbouring design space (clock gating, DVFS, drowsy-everywhere,
//! tile-grain re-gating, contents-aware SRAM write-back) on the *same*
//! timeline so the comparison is apples to apples.

use serde::{Deserialize, Serialize};

use npu_arch::NpuSpec;
use npu_power::{
    ClockGating, DvfsScaling, GatePolicy, GatingParams, IdealOff, IntervalGating, NoGating,
    PolicyInconsistency, PowerPolicy, SramGateMode, TileGrainRegating, WriteBackGating,
};

use crate::designs::Design;

/// A named chip-wide power-management strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// One of the paper's named design points (NoPG, ReGate-Base/-HW/
    /// -Full, Ideal), evaluated with the original preset arithmetic.
    Preset(Design),
    /// AUTOGATE-style clock gating: the clock tree stops instantly on
    /// idleness at zero transition cost, saving the clock/dynamic share
    /// of idle power while leakage survives as `residual`.
    ClockGating {
        /// Fraction of idle power that survives (the leakage share).
        residual: f64,
    },
    /// Race-to-idle DVFS: idle intervals are spent at a reduced
    /// voltage/frequency point, scaling their cost by `scale` instead of
    /// emptying them. No transition cost, no exposed latency.
    Dvfs {
        /// Idle-interval cost multiplier in `(0, 1]`.
        scale: f64,
    },
    /// Data-retaining sleep on *every* gateable component: logic reuses
    /// the SRAM drowsy mode's short break-even time and residual, with
    /// wake-ups hidden under the access pipeline (no exposed latency,
    /// but a 25% residual instead of the 3% of a full power-off).
    DrowsyEverywhere,
    /// ReGate-Base with tile-granular re-gating *inside* bursts (the
    /// Figure 19 overhead edge), on the systolic array and the vector
    /// units: wake-ups expose one tile's delay instead of the full
    /// unit's, at the price of one extra transition pair per gated
    /// interval.
    TileGrainBase,
    /// ReGate-Full with a contents-aware SRAM power-off that streams
    /// dirty segments back to HBM before cutting power, lifting the
    /// "only provably-dead segments" restriction.
    ContentsAwareFull,
    /// ReGate-Full plus *chip-level* gating: intervals in which every
    /// tracked component of the chip is simultaneously idle (the
    /// pipeline-stage bubbles of multi-chip serving) gate the whole chip
    /// — including the peripheral logic per-component gating can never
    /// touch — at a conservative chip-level break-even time.
    WholeChipFull,
}

impl PolicyKind {
    /// The extended (non-preset) policies with their default parameters,
    /// in table order.
    pub const EXTENDED: [PolicyKind; 5] = [
        PolicyKind::ClockGating { residual: 0.55 },
        PolicyKind::Dvfs { scale: 0.6 },
        PolicyKind::DrowsyEverywhere,
        PolicyKind::TileGrainBase,
        PolicyKind::ContentsAwareFull,
    ];

    /// Short human-readable name for table rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            PolicyKind::Preset(design) => design.label().to_string(),
            PolicyKind::ClockGating { residual } => format!("ClockGate@{residual}"),
            PolicyKind::Dvfs { scale } => format!("DVFS@{scale}"),
            PolicyKind::DrowsyEverywhere => "Drowsy-All".to_string(),
            PolicyKind::TileGrainBase => "TileGrain-Base".to_string(),
            PolicyKind::ContentsAwareFull => "WriteBack-Full".to_string(),
            PolicyKind::WholeChipFull => "WholeChip-Full".to_string(),
        }
    }

    /// Expands the name into per-component policies for `gating`
    /// parameters on a chip described by `spec`.
    #[must_use]
    pub fn config(self, gating: &GatingParams, spec: &NpuSpec) -> PolicyConfig {
        let leak = gating.leakage;
        // The ReGate interval walk for one component, with the full
        // wake-up delay exposed (`exposure` scales the exposed share).
        let interval = |bet: u64, delay: u64, policy: GatePolicy, exposure: f64| IntervalGating {
            bet,
            delay,
            leak: leak.logic_off,
            policy,
            stall_bet: bet,
            stall_delay: delay,
            wake_exposure: exposure,
        };
        let sram_walk = |mode: SramGateMode| {
            let g = gating.sram_gating(mode);
            SramPolicy::Walk(Box::new(IntervalGating {
                bet: g.bet,
                delay: g.delay,
                leak: g.leak,
                policy: g.policy,
                // Retention wake-ups are hidden under the access pipeline
                // and never charged to the critical path.
                stall_bet: g.bet,
                stall_delay: g.delay,
                wake_exposure: 0.0,
            }))
        };
        // The systolic array walks at PE-level parameters under HW/Full
        // but only *full-array* wake-ups (intervals past the full-array
        // BET) stall the pipeline — the diagonal wavefront hides the rest.
        let sa_pe_level = |policy: GatePolicy| IntervalGating {
            bet: gating.sa_pe_bet,
            delay: gating.sa_pe_delay,
            leak: leak.logic_off,
            policy,
            stall_bet: gating.sa_full_bet,
            stall_delay: gating.sa_pe_delay,
            wake_exposure: 1.0,
        };
        match self {
            PolicyKind::Preset(Design::NoPg) => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::FullPower,
                sa_idle: Box::new(NoGating),
                vu: Box::new(NoGating),
                hbm: Box::new(NoGating),
                ici: Box::new(NoGating),
                dma: Box::new(NoGating),
                sram: SramPolicy::FullPower,
                whole_chip: None,
                idle_leak: IdleLeakModel::Baseline,
            },
            PolicyKind::Preset(Design::ReGateBase) => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::FullPower,
                sa_idle: Box::new(interval(
                    gating.sa_full_bet,
                    gating.sa_full_delay,
                    GatePolicy::IdleDetect,
                    1.0,
                )),
                vu: Box::new(interval(gating.vu_bet, gating.vu_delay, GatePolicy::IdleDetect, 1.0)),
                hbm: Box::new(interval(
                    gating.hbm_bet,
                    gating.hbm_delay,
                    GatePolicy::IdleDetect,
                    1.0,
                )),
                ici: Box::new(interval(
                    gating.ici_bet,
                    gating.ici_delay,
                    GatePolicy::IdleDetect,
                    1.0,
                )),
                dma: Box::new(interval(
                    gating.hbm_bet,
                    gating.hbm_delay,
                    GatePolicy::IdleDetect,
                    1.0,
                )),
                sram: sram_walk(SramGateMode::Drowsy),
                whole_chip: None,
                idle_leak: IdleLeakModel::PerComponent {
                    logic: leak.logic_off,
                    sram: leak.sram_sleep,
                },
            },
            PolicyKind::Preset(Design::ReGateHw) => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::Spatial,
                sa_idle: Box::new(sa_pe_level(GatePolicy::IdleDetect)),
                vu: Box::new(interval(gating.vu_bet, gating.vu_delay, GatePolicy::IdleDetect, 1.0)),
                hbm: Box::new(interval(
                    gating.hbm_bet,
                    gating.hbm_delay,
                    GatePolicy::IdleDetect,
                    0.5,
                )),
                ici: Box::new(interval(
                    gating.ici_bet,
                    gating.ici_delay,
                    GatePolicy::IdleDetect,
                    0.5,
                )),
                dma: Box::new(interval(
                    gating.hbm_bet,
                    gating.hbm_delay,
                    GatePolicy::IdleDetect,
                    0.5,
                )),
                sram: sram_walk(SramGateMode::Drowsy),
                whole_chip: None,
                idle_leak: IdleLeakModel::PerComponent {
                    logic: leak.logic_off,
                    sram: leak.sram_sleep,
                },
            },
            PolicyKind::Preset(Design::ReGateFull) => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::Spatial,
                sa_idle: Box::new(sa_pe_level(GatePolicy::CompilerDirected)),
                // `setpm on` is issued ahead of the next use, hiding the
                // VU wake-up behind the preceding instructions.
                vu: Box::new(interval(
                    gating.vu_bet,
                    gating.vu_delay,
                    GatePolicy::CompilerDirected,
                    0.0,
                )),
                hbm: Box::new(interval(
                    gating.hbm_bet,
                    gating.hbm_delay,
                    GatePolicy::IdleDetect,
                    0.25,
                )),
                ici: Box::new(interval(
                    gating.ici_bet,
                    gating.ici_delay,
                    GatePolicy::IdleDetect,
                    0.25,
                )),
                dma: Box::new(interval(
                    gating.hbm_bet,
                    gating.hbm_delay,
                    GatePolicy::IdleDetect,
                    0.25,
                )),
                sram: sram_walk(SramGateMode::Off),
                whole_chip: None,
                idle_leak: IdleLeakModel::PerComponent {
                    logic: leak.logic_off,
                    sram: leak.sram_off,
                },
            },
            PolicyKind::Preset(Design::Ideal) => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::Utilization,
                sa_idle: Box::new(IdealOff),
                vu: Box::new(IdealOff),
                hbm: Box::new(IdealOff),
                ici: Box::new(IdealOff),
                dma: Box::new(IdealOff),
                sram: SramPolicy::Walk(Box::new(IdealOff)),
                whole_chip: None,
                idle_leak: IdleLeakModel::Zero,
            },
            PolicyKind::ClockGating { residual } => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::FullPower,
                sa_idle: Box::new(ClockGating { residual }),
                vu: Box::new(ClockGating { residual }),
                hbm: Box::new(ClockGating { residual }),
                ici: Box::new(ClockGating { residual }),
                dma: Box::new(ClockGating { residual }),
                // Clock gating cannot touch SRAM cell leakage: the
                // scratchpad stays at full static power.
                sram: SramPolicy::FullPower,
                whole_chip: None,
                idle_leak: IdleLeakModel::PerComponent { logic: residual, sram: 1.0 },
            },
            PolicyKind::Dvfs { scale } => PolicyConfig {
                kind: self,
                sa_active: SaActiveMode::FullPower,
                sa_idle: Box::new(DvfsScaling { scale }),
                vu: Box::new(DvfsScaling { scale }),
                hbm: Box::new(DvfsScaling { scale }),
                ici: Box::new(DvfsScaling { scale }),
                dma: Box::new(DvfsScaling { scale }),
                sram: SramPolicy::Walk(Box::new(DvfsScaling { scale })),
                whole_chip: None,
                idle_leak: IdleLeakModel::PerComponent { logic: scale, sram: scale },
            },
            PolicyKind::DrowsyEverywhere => {
                let drowsy = IntervalGating {
                    bet: gating.sram_sleep_bet,
                    delay: gating.sram_sleep_delay,
                    leak: leak.sram_sleep,
                    policy: GatePolicy::IdleDetect,
                    stall_bet: gating.sram_sleep_bet,
                    stall_delay: gating.sram_sleep_delay,
                    // Retention wake-ups hide under the pipeline.
                    wake_exposure: 0.0,
                };
                PolicyConfig {
                    kind: self,
                    sa_active: SaActiveMode::FullPower,
                    sa_idle: Box::new(drowsy),
                    vu: Box::new(drowsy),
                    hbm: Box::new(drowsy),
                    ici: Box::new(drowsy),
                    dma: Box::new(drowsy),
                    sram: sram_walk(SramGateMode::Drowsy),
                    whole_chip: None,
                    idle_leak: IdleLeakModel::PerComponent {
                        logic: leak.sram_sleep,
                        sram: leak.sram_sleep,
                    },
                }
            }
            PolicyKind::TileGrainBase => {
                let mut config = PolicyKind::Preset(Design::ReGateBase).config(gating, spec);
                config.kind = self;
                config.sa_idle = Box::new(TileGrainRegating {
                    bet: gating.sa_full_bet,
                    delay: gating.sa_full_delay,
                    leak: leak.logic_off,
                    tile_delay: gating.sa_pe_delay,
                });
                // Vector units re-gate per lane group: Table 3 has no
                // per-lane wake figure, so a tile wakes in half the
                // full-unit delay — decode traces, which never touch the
                // SA, see their Figure 19 overhead through this edge.
                config.vu = Box::new(TileGrainRegating {
                    bet: gating.vu_bet,
                    delay: gating.vu_delay,
                    leak: leak.logic_off,
                    tile_delay: (gating.vu_delay / 2).max(1),
                });
                config
            }
            PolicyKind::ContentsAwareFull => {
                let mut config = PolicyKind::Preset(Design::ReGateFull).config(gating, spec);
                config.kind = self;
                config.sram = SramPolicy::Walk(Box::new(WriteBackGating::for_segment(
                    gating,
                    spec.sram_geometry().segment_bytes(),
                    spec.hbm_bytes_per_cycle(),
                )));
                config
            }
            PolicyKind::WholeChipFull => {
                let mut config = PolicyKind::Preset(Design::ReGateFull).config(gating, spec);
                config.kind = self;
                // The uncore has no Table 3 row of its own: gating the
                // whole chip is priced conservatively at twice the
                // slowest component's break-even time and wake-up delay.
                let bet = 2 * gating
                    .sa_full_bet
                    .max(gating.vu_bet)
                    .max(gating.hbm_bet)
                    .max(gating.ici_bet);
                let delay = 2 * gating
                    .sa_full_delay
                    .max(gating.vu_delay)
                    .max(gating.hbm_delay)
                    .max(gating.ici_delay);
                config.whole_chip =
                    Some(Box::new(interval(bet, delay, GatePolicy::IdleDetect, 1.0)));
                config
            }
        }
    }
}

/// How the systolic array's *active* (computing) periods are priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaActiveMode {
    /// The whole array burns full static power while any PE computes
    /// (component-level gating cannot exploit spatial underutilization).
    FullPower,
    /// PE-level spatial gating: padded rows/columns are off and the
    /// diagonal wavefront parks PEs in `W_on` outside the input wave.
    Spatial,
    /// Oracle: pay exactly the spatially-utilized PE fraction.
    Utilization,
}

/// How the SRAM scratchpad's per-segment dead intervals are priced.
#[derive(Debug)]
pub enum SramPolicy {
    /// Every segment stays at full static power for the whole run.
    FullPower,
    /// Dead intervals are walked by a policy (live intervals always burn
    /// full power).
    Walk(Box<dyn PowerPolicy>),
}

/// How the out-of-duty-cycle idle leakage (the idleness the simulated
/// window cannot see) is attributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdleLeakModel {
    /// Full baseline idle leakage (nothing is gated between traces).
    Baseline,
    /// No idle leakage at all (the Ideal roofline).
    Zero,
    /// Baseline idle leakage scaled by each component's static-power
    /// share weighted with its own off-state residual.
    PerComponent {
        /// Residual of every non-SRAM component while the chip idles.
        logic: f64,
        /// Residual of the SRAM while the chip idles.
        sram: f64,
    },
}

/// Per-component power-management policies for one [`PolicyKind`].
#[derive(Debug)]
pub struct PolicyConfig {
    /// The kind this configuration was expanded from.
    pub kind: PolicyKind,
    /// Systolic-array active-period treatment.
    pub(crate) sa_active: SaActiveMode,
    /// Systolic-array idle-interval policy.
    pub(crate) sa_idle: Box<dyn PowerPolicy>,
    /// Vector-unit idle-interval policy.
    pub(crate) vu: Box<dyn PowerPolicy>,
    /// HBM-controller idle-interval policy.
    pub(crate) hbm: Box<dyn PowerPolicy>,
    /// ICI-controller idle-interval policy.
    pub(crate) ici: Box<dyn PowerPolicy>,
    /// DMA-engine idle-interval policy (wakes with the HBM path it feeds).
    pub(crate) dma: Box<dyn PowerPolicy>,
    /// SRAM per-segment dead-interval policy.
    pub(crate) sram: SramPolicy,
    /// Chip-level policy walking *whole-chip* idle intervals (every
    /// tracked component simultaneously quiet); `None` leaves the
    /// peripheral logic always on.
    pub(crate) whole_chip: Option<Box<dyn PowerPolicy>>,
    /// Out-of-duty-cycle leakage attribution.
    pub(crate) idle_leak: IdleLeakModel,
}

impl PolicyConfig {
    /// Every per-component policy in this configuration (for diagnostics
    /// and analyzer verification).
    #[must_use]
    pub fn component_policies(&self) -> Vec<&dyn PowerPolicy> {
        let mut out: Vec<&dyn PowerPolicy> = vec![
            self.sa_idle.as_ref(),
            self.vu.as_ref(),
            self.hbm.as_ref(),
            self.ici.as_ref(),
            self.dma.as_ref(),
        ];
        if let SramPolicy::Walk(policy) = &self.sram {
            out.push(policy.as_ref());
        }
        if let Some(policy) = &self.whole_chip {
            out.push(policy.as_ref());
        }
        out
    }

    /// Configuration-consistency findings across every component policy.
    #[must_use]
    pub fn consistency(&self) -> Vec<PolicyInconsistency> {
        self.component_policies().iter().flat_map(|policy| policy.consistency()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::NpuGeneration;

    #[test]
    fn every_default_policy_configuration_is_consistent() {
        let gating = GatingParams::default();
        let spec = NpuSpec::generation(NpuGeneration::D);
        for design in Design::ALL {
            let config = PolicyKind::Preset(design).config(&gating, &spec);
            assert!(config.consistency().is_empty(), "{design}: inconsistent preset");
        }
        for kind in PolicyKind::EXTENDED {
            let config = kind.config(&gating, &spec);
            assert!(config.consistency().is_empty(), "{}: inconsistent config", kind.label());
        }
    }

    #[test]
    fn broken_parameterizations_are_reported() {
        let gating = GatingParams::default();
        let spec = NpuSpec::generation(NpuGeneration::D);
        let broken = PolicyKind::Dvfs { scale: 1.5 }.config(&gating, &spec);
        // Every component runs the same broken scale: one finding each.
        assert_eq!(broken.consistency().len(), 6);
        let broken = PolicyKind::ClockGating { residual: -0.2 }.config(&gating, &spec);
        assert_eq!(broken.consistency().len(), 5);
    }

    #[test]
    fn whole_chip_full_extends_regate_full_with_a_chip_policy() {
        let gating = GatingParams::default();
        let spec = NpuSpec::generation(NpuGeneration::D);
        let config = PolicyKind::WholeChipFull.config(&gating, &spec);
        assert!(config.whole_chip.is_some(), "chip-level policy must be armed");
        assert!(config.consistency().is_empty(), "WholeChip-Full: inconsistent config");
        // ReGate-Full's six component policies plus the chip-level walk.
        assert_eq!(config.component_policies().len(), 7);
        let full = PolicyKind::Preset(Design::ReGateFull).config(&gating, &spec);
        assert!(full.whole_chip.is_none(), "presets never gate the uncore");
        assert_eq!(PolicyKind::WholeChipFull.label(), "WholeChip-Full");
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = Design::ALL
            .iter()
            .map(|&d| PolicyKind::Preset(d).label())
            .chain(PolicyKind::EXTENDED.iter().map(|k| k.label()))
            .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Design::ALL.len() + PolicyKind::EXTENDED.len());
    }
}
