//! Program container: an ordered sequence of VLIW bundles plus statistics
//! used by the instrumentation pass and the evaluation (e.g. the number of
//! executed `setpm` instructions per 1,000 cycles, Figure 20).

use serde::{Deserialize, Serialize};

use crate::bundle::{Slot, VliwBundle};
use crate::power::FunctionalUnitType;

#[cfg(test)]
use crate::bundle::SlotOp;

/// A statically scheduled NPU program: an ordered list of VLIW bundles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    bundles: Vec<VliwBundle>,
}

impl Program {
    /// Creates an empty program with a human-readable name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), bundles: Vec::new() }
    }

    /// Name of the program (typically the operator it implements).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a bundle at the end of the program.
    pub fn push(&mut self, bundle: VliwBundle) {
        self.bundles.push(bundle);
    }

    /// Inserts a bundle before position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, bundle: VliwBundle) {
        self.bundles.insert(index, bundle);
    }

    /// Number of bundles in the program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether the program has no bundles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// The bundles in issue order.
    #[must_use]
    pub fn bundles(&self) -> &[VliwBundle] {
        &self.bundles
    }

    /// Mutable access to the bundles (used by instrumentation passes).
    pub fn bundles_mut(&mut self) -> &mut Vec<VliwBundle> {
        &mut self.bundles
    }

    /// Iterator over `(issue_index, bundle)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &VliwBundle)> {
        self.bundles.iter().enumerate()
    }

    /// Total issue cycles of the program assuming one bundle per cycle plus
    /// explicit `nop N` stalls (the baseline, hazard-free schedule length).
    #[must_use]
    pub fn issue_cycles(&self) -> u64 {
        self.bundles.iter().map(|b| 1 + u64::from(b.extra_issue_cycles())).sum()
    }

    /// Number of `setpm` instructions in the program.
    #[must_use]
    pub fn setpm_count(&self) -> usize {
        self.bundles.iter().filter(|b| b.setpm().is_some()).count()
    }

    /// Number of `setpm` instructions targeting a specific unit type.
    #[must_use]
    pub fn setpm_count_for(&self, fu_type: FunctionalUnitType) -> usize {
        self.bundles.iter().filter_map(|b| b.setpm()).filter(|pm| pm.fu_type() == fu_type).count()
    }

    /// `setpm` instructions executed per 1,000 issue cycles (Figure 20's
    /// metric), for one unit type.
    #[must_use]
    pub fn setpm_per_kilocycle(&self, fu_type: FunctionalUnitType) -> f64 {
        let cycles = self.issue_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.setpm_count_for(fu_type) as f64 * 1000.0 / cycles as f64
    }

    /// Gathers per-slot occupancy statistics.
    #[must_use]
    pub fn stats(&self) -> ProgramStats {
        let mut stats = ProgramStats {
            bundles: self.bundles.len(),
            issue_cycles: self.issue_cycles(),
            ..Default::default()
        };
        for bundle in &self.bundles {
            for (slot, op) in bundle.iter() {
                match slot {
                    Slot::Sa(_) => stats.sa_ops += 1,
                    Slot::Vu(_) => stats.vu_ops += 1,
                    Slot::Dma => stats.dma_ops += 1,
                    Slot::Ici => stats.ici_ops += 1,
                    Slot::Misc => stats.misc_ops += 1,
                }
                if op.is_setpm() {
                    stats.setpm_ops += 1;
                }
            }
        }
        stats
    }

    /// Textual disassembly of the whole program, one bundle per line,
    /// prefixed with the issue index (`I0:`, `I1:`, …).
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, bundle) in self.iter() {
            out.push_str(&format!("I{i}: {}\n", bundle.disassemble()));
        }
        out
    }
}

/// Per-slot occupancy statistics of a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProgramStats {
    /// Total number of bundles.
    pub bundles: usize,
    /// Total issue cycles (bundles plus explicit stalls).
    pub issue_cycles: u64,
    /// Operations issued to SA slots.
    pub sa_ops: usize,
    /// Operations issued to VU slots.
    pub vu_ops: usize,
    /// Operations issued to the DMA slot.
    pub dma_ops: usize,
    /// Operations issued to the ICI slot.
    pub ici_ops: usize,
    /// Operations issued to the misc slot.
    pub misc_ops: usize,
    /// `setpm` instructions (subset of `misc_ops`).
    pub setpm_ops: usize,
}

impl ProgramStats {
    /// Fraction of bundles that contain a `setpm` (code-size inflation
    /// measure; the paper reports it is negligible).
    #[must_use]
    pub fn setpm_fraction(&self) -> f64 {
        if self.bundles == 0 {
            0.0
        } else {
            self.setpm_ops as f64 / self.bundles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{FuBitmap, PowerMode};
    use crate::setpm::SetPm;

    fn sample_program() -> Program {
        // Mirrors the Figure 15 code snippet: 2 SAs, 2 VUs.
        let mut p = Program::new("fig15");
        p.push(
            VliwBundle::new()
                .with_sa(0, SlotOp::sa_pop(8))
                .with_sa(1, SlotOp::sa_pop(8))
                .with_vu(0, SlotOp::vu_add(128))
                .with_vu(1, SlotOp::vu_add(128)),
        );
        p.push(
            VliwBundle::new()
                .with_vu(0, SlotOp::vu_add(128))
                .with_vu(1, SlotOp::vu_add(128))
                .with_misc(SlotOp::SetPm(SetPm::functional_units(
                    FuBitmap::from_bits(0b11),
                    FunctionalUnitType::Vu,
                    PowerMode::Off,
                ))),
        );
        p.push(
            VliwBundle::new()
                .with_sa(0, SlotOp::sa_pop(8))
                .with_sa(1, SlotOp::sa_pop(8))
                .with_misc(SlotOp::Nop { cycles: 6 }),
        );
        p.push(VliwBundle::new().with_misc(SlotOp::SetPm(SetPm::functional_units(
            FuBitmap::from_bits(0b11),
            FunctionalUnitType::Vu,
            PowerMode::On,
        ))));
        p
    }

    #[test]
    fn issue_cycles_include_nop_stalls() {
        let p = sample_program();
        // 4 bundles, one of which stalls 5 extra cycles (nop 6).
        assert_eq!(p.issue_cycles(), 4 + 5);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn setpm_counting() {
        let p = sample_program();
        assert_eq!(p.setpm_count(), 2);
        assert_eq!(p.setpm_count_for(FunctionalUnitType::Vu), 2);
        assert_eq!(p.setpm_count_for(FunctionalUnitType::Sram), 0);
        let per_kc = p.setpm_per_kilocycle(FunctionalUnitType::Vu);
        assert!((per_kc - 2.0 * 1000.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn stats_count_slots() {
        let stats = sample_program().stats();
        assert_eq!(stats.bundles, 4);
        assert_eq!(stats.sa_ops, 4);
        assert_eq!(stats.vu_ops, 4);
        assert_eq!(stats.misc_ops, 3);
        assert_eq!(stats.setpm_ops, 2);
        assert!((stats.setpm_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disassembly_has_one_line_per_bundle() {
        let p = sample_program();
        let text = p.disassemble();
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().next().unwrap().starts_with("I0:"));
        assert!(text.contains("setpm"));
    }

    #[test]
    fn insert_places_bundle_in_order() {
        let mut p = Program::new("t");
        p.push(VliwBundle::new().with_vu(0, SlotOp::vu_add(1)));
        p.insert(0, VliwBundle::new().with_vu(0, SlotOp::vu_add(2)));
        assert!(matches!(
            p.bundles()[0].slot(crate::bundle::Slot::Vu(0)),
            Some(SlotOp::VuOp { elements: 2 })
        ));
    }

    #[test]
    fn empty_program_stats() {
        let p = Program::new("empty");
        assert_eq!(p.issue_cycles(), 0);
        assert_eq!(p.setpm_per_kilocycle(FunctionalUnitType::Vu), 0.0);
        assert_eq!(p.stats().setpm_fraction(), 0.0);
    }
}
