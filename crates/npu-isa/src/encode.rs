//! Binary encoding of the `setpm` instruction (paper Figure 14).
//!
//! The instruction is encoded into a 32-bit miscellaneous-slot word:
//!
//! ```text
//!  31        24 23        16 15    13 12  11 10          3 2      0
//! +------------+------------+--------+------+-------------+--------+
//! | operand A  | operand B  | fu_type| mode |  bitmap[7:0]| variant|
//! +------------+------------+--------+------+-------------+--------+
//! ```
//!
//! * variant 0: SRAM range — operands A/B are the start/end scalar registers.
//! * variant 1: FU bitmap from register — operand A is the bitmap register.
//! * variant 2: FU bitmap immediate — bitmap field holds the immediate.
//!
//! The exact field widths of a production NPU depend on its specification
//! (the paper assumes an 8-bit bitmap for a chip with 8 SAs and 8 VUs); the
//! encoder below checks that immediates fit the 8-bit field.

use serde::{Deserialize, Serialize};

use crate::power::{FuBitmap, FunctionalUnitType, PowerMode};
use crate::setpm::{ScalarReg, SetPm};

/// A `setpm` instruction encoded into a 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncodedSetPm(pub u32);

/// Errors produced while encoding or decoding a `setpm`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The variant field holds an unknown value.
    UnknownVariant(u8),
    /// The functional-unit type field holds an unknown value.
    UnknownFuType(u8),
    /// The bitmap immediate does not fit in the 8-bit encoding field.
    BitmapTooWide(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownVariant(v) => write!(f, "unknown setpm variant {v}"),
            DecodeError::UnknownFuType(v) => write!(f, "unknown functional unit type {v}"),
            DecodeError::BitmapTooWide(bits) => {
                write!(f, "bitmap {bits:#b} does not fit the 8-bit immediate field")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const VARIANT_SRAM: u32 = 0;
const VARIANT_FU_REG: u32 = 1;
const VARIANT_FU_IMM: u32 = 2;

/// Encodes a `setpm` into its 32-bit miscellaneous-slot word.
///
/// The SRAM variant encodes only the register operands (the resolved
/// addresses live in the registers at run time), so decoding an SRAM-range
/// `setpm` yields a range of `[0, 0)` — the address resolution is a
/// compiler/simulator concern, not an encoding concern.
///
/// # Errors
///
/// Returns [`DecodeError::BitmapTooWide`] if an immediate bitmap does not
/// fit the 8-bit field.
pub fn encode_setpm(pm: &SetPm) -> Result<EncodedSetPm, DecodeError> {
    let word = match *pm {
        SetPm::SramRange { start_reg, end_reg, mode, .. } => {
            (u32::from(start_reg.0) << 24)
                | (u32::from(end_reg.0) << 16)
                | (u32::from(FunctionalUnitType::Sram.encode()) << 13)
                | (u32::from(mode.encode()) << 11)
                | VARIANT_SRAM
        }
        SetPm::FuRegister { bitmap_reg, fu_type, mode, .. } => {
            (u32::from(bitmap_reg.0) << 24)
                | (u32::from(fu_type.encode()) << 13)
                | (u32::from(mode.encode()) << 11)
                | VARIANT_FU_REG
        }
        SetPm::FuImmediate { bitmap, fu_type, mode } => {
            if bitmap.bits() > 0xFF {
                return Err(DecodeError::BitmapTooWide(bitmap.bits()));
            }
            (bitmap.bits() << 3)
                | (u32::from(fu_type.encode()) << 13)
                | (u32::from(mode.encode()) << 11)
                | VARIANT_FU_IMM
        }
    };
    Ok(EncodedSetPm(word))
}

/// Decodes a 32-bit miscellaneous-slot word back into a `setpm`.
///
/// # Errors
///
/// Returns an error if the variant or functional-unit type field is invalid.
///
/// # Panics
///
/// Never: the power-mode field is masked to two bits and all four values
/// decode.
pub fn decode_setpm(word: EncodedSetPm) -> Result<SetPm, DecodeError> {
    let w = word.0;
    let variant = w & 0b111;
    let mode = PowerMode::decode(((w >> 11) & 0b11) as u8).expect("2-bit mode always decodes");
    let fu_bits = ((w >> 13) & 0b111) as u8;
    let fu_type = FunctionalUnitType::decode(fu_bits).ok_or(DecodeError::UnknownFuType(fu_bits))?;
    match variant {
        VARIANT_SRAM => Ok(SetPm::SramRange {
            start_reg: ScalarReg(((w >> 24) & 0xFF) as u8),
            end_reg: ScalarReg(((w >> 16) & 0xFF) as u8),
            start_addr: 0,
            end_addr: 0,
            mode,
        }),
        VARIANT_FU_REG => Ok(SetPm::FuRegister {
            bitmap_reg: ScalarReg(((w >> 24) & 0xFF) as u8),
            bitmap: FuBitmap::empty(),
            fu_type,
            mode,
        }),
        VARIANT_FU_IMM => {
            Ok(SetPm::FuImmediate { bitmap: FuBitmap::from_bits((w >> 3) & 0xFF), fu_type, mode })
        }
        other => Err(DecodeError::UnknownVariant(other as u8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_roundtrip() {
        let pm = SetPm::functional_units(
            FuBitmap::from_bits(0b1011),
            FunctionalUnitType::Vu,
            PowerMode::Off,
        );
        let enc = encode_setpm(&pm).unwrap();
        let dec = decode_setpm(enc).unwrap();
        assert_eq!(dec, pm);
    }

    #[test]
    fn sram_variant_roundtrips_registers_and_mode() {
        let pm = SetPm::SramRange {
            start_reg: ScalarReg(3),
            end_reg: ScalarReg(4),
            start_addr: 0x1000,
            end_addr: 0x2000,
            mode: PowerMode::Sleep,
        };
        let dec = decode_setpm(encode_setpm(&pm).unwrap()).unwrap();
        match dec {
            SetPm::SramRange { start_reg, end_reg, mode, start_addr, end_addr } => {
                assert_eq!(start_reg, ScalarReg(3));
                assert_eq!(end_reg, ScalarReg(4));
                assert_eq!(mode, PowerMode::Sleep);
                // Addresses are runtime values and are not encoded.
                assert_eq!((start_addr, end_addr), (0, 0));
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn register_variant_roundtrips() {
        let pm = SetPm::FuRegister {
            bitmap_reg: ScalarReg(9),
            bitmap: FuBitmap::from_bits(0b111),
            fu_type: FunctionalUnitType::Sa,
            mode: PowerMode::On,
        };
        let dec = decode_setpm(encode_setpm(&pm).unwrap()).unwrap();
        match dec {
            SetPm::FuRegister { bitmap_reg, fu_type, mode, .. } => {
                assert_eq!(bitmap_reg, ScalarReg(9));
                assert_eq!(fu_type, FunctionalUnitType::Sa);
                assert_eq!(mode, PowerMode::On);
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn wide_bitmap_is_rejected() {
        let pm = SetPm::functional_units(
            FuBitmap::from_bits(0x1FF),
            FunctionalUnitType::Vu,
            PowerMode::Off,
        );
        assert_eq!(encode_setpm(&pm), Err(DecodeError::BitmapTooWide(0x1FF)));
    }

    #[test]
    fn unknown_fields_error() {
        // Craft a word with an invalid fu_type (0b111) and valid variant.
        let word = EncodedSetPm((0b111 << 13) | VARIANT_FU_IMM);
        assert!(matches!(decode_setpm(word), Err(DecodeError::UnknownFuType(0b111))));
        // Invalid variant.
        let word = EncodedSetPm(0b110);
        assert!(matches!(decode_setpm(word), Err(DecodeError::UnknownVariant(0b110))));
    }

    #[test]
    fn error_display_messages() {
        assert!(DecodeError::UnknownVariant(5).to_string().contains("variant"));
        assert!(DecodeError::BitmapTooWide(0x100).to_string().contains("8-bit"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    // The immediate-variant domain (256 bitmaps x 6 FU types x 4 modes) is
    // small enough to sweep exhaustively, which is strictly stronger than
    // the random sampling a property-testing framework would do.

    fn all_immediates() -> impl Iterator<Item = SetPm> {
        (0u32..=0xFF).flat_map(|bits| {
            (0u8..6).flat_map(move |fu| {
                (0u8..4).map(move |mode| {
                    SetPm::functional_units(
                        FuBitmap::from_bits(bits),
                        FunctionalUnitType::decode(fu).unwrap(),
                        PowerMode::decode(mode).unwrap(),
                    )
                })
            })
        })
    }

    #[test]
    fn immediate_setpm_roundtrips_exhaustively() {
        for pm in all_immediates() {
            let dec = decode_setpm(encode_setpm(&pm).unwrap()).unwrap();
            assert_eq!(dec, pm);
        }
    }

    #[test]
    fn encoding_is_injective_for_immediates() {
        // Injectivity over the full domain: no two distinct SetPm values may
        // share an encoding. A map from encoding to value checks every pair.
        use std::collections::HashMap;
        let mut seen: HashMap<u32, SetPm> = HashMap::new();
        for pm in all_immediates() {
            let bits = encode_setpm(&pm).unwrap().0;
            if let Some(prev) = seen.insert(bits, pm) {
                assert_eq!(prev, pm, "distinct SetPm values share encoding {bits:#010x}");
            }
        }
    }
}
