//! VLIW bundles and the slot operations that occupy them.
//!
//! The NPU core issues one bundle per cycle (when not stalled). A bundle has
//! one slot per systolic array, one per vector unit, a DMA slot, an ICI
//! slot, and a miscellaneous slot used by scalar control operations and the
//! `setpm` extension (paper §4.2, Figure 15).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::setpm::SetPm;

/// An operation occupying one slot of a VLIW bundle.
///
/// The operand fields carry just enough information for the performance
/// simulator: how many cycles the slot keeps its functional unit busy and
/// how many elements/bytes it touches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlotOp {
    /// Push a tile of input activations into a systolic array
    /// (`cycles` = number of rows fed, one per cycle).
    SaPush {
        /// Number of cycles the push occupies the SA input port.
        cycles: u32,
    },
    /// Pop a tile of results from a systolic array.
    SaPop {
        /// Number of cycles the pop occupies the SA output port.
        cycles: u32,
    },
    /// Load weights into a systolic array (weight-stationary dataflow).
    SaLoadWeights {
        /// Number of cycles needed to shift the weights in.
        cycles: u32,
    },
    /// A vector-unit ALU operation processing `elements` elements.
    VuOp {
        /// Number of vector elements processed.
        elements: u32,
    },
    /// DMA transfer between HBM (or a remote chip) and SRAM.
    Dma {
        /// Number of bytes transferred.
        bytes: u64,
        /// Whether the transfer is a remote DMA over the ICI.
        remote: bool,
    },
    /// An ICI collective/P2P step transferring `bytes` bytes.
    Ici {
        /// Number of bytes transferred over the ICI links.
        bytes: u64,
    },
    /// A `setpm` power-management instruction (miscellaneous slot).
    SetPm(SetPm),
    /// Scalar/control operation in the miscellaneous slot.
    Scalar,
    /// Explicit no-op that stalls issue for `cycles` cycles (used by the
    /// static scheduler to express known waits, as in Figure 15's `nop 6`).
    Nop {
        /// Number of cycles to wait before issuing the next bundle.
        cycles: u32,
    },
}

impl SlotOp {
    /// Convenience constructor for an SA push of `rows` rows.
    #[must_use]
    pub fn sa_push(rows: u32) -> Self {
        SlotOp::SaPush { cycles: rows }
    }

    /// Convenience constructor for an SA pop of `rows` rows.
    #[must_use]
    pub fn sa_pop(rows: u32) -> Self {
        SlotOp::SaPop { cycles: rows }
    }

    /// Convenience constructor for a vector add/mul/… over `elements`.
    #[must_use]
    pub fn vu_add(elements: u32) -> Self {
        SlotOp::VuOp { elements }
    }

    /// Whether this operation is a `setpm`.
    #[must_use]
    pub fn is_setpm(&self) -> bool {
        matches!(self, SlotOp::SetPm(_))
    }

    /// Short mnemonic used in disassembly.
    #[must_use]
    pub fn mnemonic(&self) -> String {
        match self {
            SlotOp::SaPush { cycles } => format!("push {cycles}"),
            SlotOp::SaPop { cycles } => format!("pop {cycles}"),
            SlotOp::SaLoadWeights { cycles } => format!("ldw {cycles}"),
            SlotOp::VuOp { elements } => format!("vop {elements}"),
            SlotOp::Dma { bytes, remote } => {
                if *remote {
                    format!("rdma {bytes}")
                } else {
                    format!("dma {bytes}")
                }
            }
            SlotOp::Ici { bytes } => format!("ici {bytes}"),
            SlotOp::SetPm(pm) => pm.disassemble(),
            SlotOp::Scalar => "scalar".to_string(),
            SlotOp::Nop { cycles } => format!("nop {cycles}"),
        }
    }
}

/// Slot position within a VLIW bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Slot {
    /// Systolic-array slot for SA instance `usize`.
    Sa(usize),
    /// Vector-unit slot for VU instance `usize`.
    Vu(usize),
    /// DMA slot.
    Dma,
    /// ICI slot.
    Ici,
    /// Miscellaneous (scalar / `setpm`) slot.
    Misc,
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Sa(i) => write!(f, "sa{i}"),
            Slot::Vu(i) => write!(f, "vu{i}"),
            Slot::Dma => write!(f, "dma"),
            Slot::Ici => write!(f, "ici"),
            Slot::Misc => write!(f, "misc"),
        }
    }
}

/// One VLIW instruction bundle: a partial assignment of operations to slots.
///
/// Empty slots implicitly hold no-ops. A bundle can hold at most one
/// operation per slot; the misc slot can hold at most one `setpm` per cycle,
/// which is why the bitmap form of `setpm` matters (§4.2).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VliwBundle {
    slots: BTreeMap<Slot, SlotOp>,
}

impl VliwBundle {
    /// Creates an empty bundle (all slots no-op).
    #[must_use]
    pub fn new() -> Self {
        VliwBundle::default()
    }

    /// Assigns `op` to the slot of systolic array `sa`.
    #[must_use]
    pub fn with_sa(mut self, sa: usize, op: SlotOp) -> Self {
        self.slots.insert(Slot::Sa(sa), op);
        self
    }

    /// Assigns `op` to the slot of vector unit `vu`.
    #[must_use]
    pub fn with_vu(mut self, vu: usize, op: SlotOp) -> Self {
        self.slots.insert(Slot::Vu(vu), op);
        self
    }

    /// Assigns `op` to the DMA slot.
    #[must_use]
    pub fn with_dma(mut self, op: SlotOp) -> Self {
        self.slots.insert(Slot::Dma, op);
        self
    }

    /// Assigns `op` to the ICI slot.
    #[must_use]
    pub fn with_ici(mut self, op: SlotOp) -> Self {
        self.slots.insert(Slot::Ici, op);
        self
    }

    /// Assigns `op` to the miscellaneous slot.
    #[must_use]
    pub fn with_misc(mut self, op: SlotOp) -> Self {
        self.slots.insert(Slot::Misc, op);
        self
    }

    /// Operation in a given slot, if any.
    #[must_use]
    pub fn slot(&self, slot: Slot) -> Option<&SlotOp> {
        self.slots.get(&slot)
    }

    /// Iterator over the occupied slots in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &SlotOp)> {
        self.slots.iter().map(|(s, op)| (*s, op))
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Whether the bundle contains no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The `setpm` in the misc slot, if present.
    #[must_use]
    pub fn setpm(&self) -> Option<&SetPm> {
        match self.slots.get(&Slot::Misc) {
            Some(SlotOp::SetPm(pm)) => Some(pm),
            _ => None,
        }
    }

    /// Number of cycles this bundle stalls issue beyond the usual single
    /// cycle (from an explicit `nop N` in any slot).
    #[must_use]
    pub fn extra_issue_cycles(&self) -> u32 {
        self.slots
            .values()
            .map(|op| match op {
                SlotOp::Nop { cycles } => cycles.saturating_sub(1),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Disassembles the bundle as `{slot: op; slot: op;}`.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut parts = Vec::with_capacity(self.slots.len());
        for (slot, op) in self.iter() {
            parts.push(format!("{slot}: {}", op.mnemonic()));
        }
        format!("{{{}}}", parts.join("; "))
    }
}

impl std::fmt::Display for VliwBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{FuBitmap, FunctionalUnitType, PowerMode};

    #[test]
    fn bundle_builder_and_lookup() {
        let b = VliwBundle::new()
            .with_sa(0, SlotOp::sa_push(8))
            .with_sa(1, SlotOp::sa_pop(8))
            .with_vu(0, SlotOp::vu_add(1024))
            .with_dma(SlotOp::Dma { bytes: 4096, remote: false });
        assert_eq!(b.occupancy(), 4);
        assert!(matches!(b.slot(Slot::Sa(0)), Some(SlotOp::SaPush { cycles: 8 })));
        assert!(matches!(b.slot(Slot::Vu(0)), Some(SlotOp::VuOp { elements: 1024 })));
        assert!(b.slot(Slot::Ici).is_none());
        assert!(!b.is_empty());
        assert!(b.setpm().is_none());
    }

    #[test]
    fn setpm_lives_in_misc_slot() {
        let pm =
            SetPm::functional_units(FuBitmap::first(2), FunctionalUnitType::Vu, PowerMode::Off);
        let b = VliwBundle::new().with_misc(SlotOp::SetPm(pm));
        assert_eq!(b.setpm(), Some(&pm));
        assert!(b.slot(Slot::Misc).unwrap().is_setpm());
    }

    #[test]
    fn extra_issue_cycles_from_nop() {
        let b = VliwBundle::new().with_misc(SlotOp::Nop { cycles: 6 });
        assert_eq!(b.extra_issue_cycles(), 5);
        let b2 = VliwBundle::new().with_vu(0, SlotOp::vu_add(8));
        assert_eq!(b2.extra_issue_cycles(), 0);
        assert_eq!(VliwBundle::new().extra_issue_cycles(), 0);
    }

    #[test]
    fn disassembly_lists_slots_in_order() {
        let b = VliwBundle::new().with_vu(1, SlotOp::vu_add(128)).with_sa(0, SlotOp::sa_pop(8));
        let text = b.disassemble();
        assert!(text.starts_with("{sa0: pop 8"), "{text}");
        assert!(text.contains("vu1: vop 128"));
        assert_eq!(b.to_string(), text);
    }

    #[test]
    fn slot_ordering_is_stable() {
        assert!(Slot::Sa(0) < Slot::Sa(1));
        assert!(Slot::Sa(7) < Slot::Vu(0));
        assert!(Slot::Vu(3) < Slot::Dma);
        assert!(Slot::Dma < Slot::Misc);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(SlotOp::sa_push(4).mnemonic(), "push 4");
        assert_eq!(SlotOp::Dma { bytes: 10, remote: true }.mnemonic(), "rdma 10");
        assert_eq!(SlotOp::Nop { cycles: 3 }.mnemonic(), "nop 3");
        assert_eq!(SlotOp::Scalar.mnemonic(), "scalar");
        assert_eq!(SlotOp::Ici { bytes: 5 }.mnemonic(), "ici 5");
        assert_eq!(SlotOp::SaLoadWeights { cycles: 128 }.mnemonic(), "ldw 128");
    }
}
