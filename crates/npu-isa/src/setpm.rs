//! The `setpm` (set power mode) instruction (paper §4.2, Figure 14).
//!
//! `setpm` is encoded in the miscellaneous slot of a VLIW bundle and has
//! three variants:
//!
//! 1. an SRAM variant taking start/end scalar registers that delimit a
//!    contiguous scratchpad region whose segments change power mode;
//! 2. a functional-unit variant whose instance bitmap comes from a scalar
//!    register;
//! 3. a functional-unit variant whose instance bitmap is an immediate.

use serde::{Deserialize, Serialize};

use crate::power::{FuBitmap, FunctionalUnitType, PowerMode};

/// Index of a scalar register used by register-operand `setpm` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScalarReg(pub u8);

impl std::fmt::Display for ScalarReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%s{}", self.0)
    }
}

/// A `setpm` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SetPm {
    /// `setpm %start, %end, sram, $mode` — change the power mode of the SRAM
    /// segments covering the byte range `[start, end)` held in two scalar
    /// registers. The resolved addresses (known to the compiler that emitted
    /// the instruction) are carried alongside for simulation.
    SramRange {
        /// Register holding the start byte address.
        start_reg: ScalarReg,
        /// Register holding the (exclusive) end byte address.
        end_reg: ScalarReg,
        /// Resolved start address.
        start_addr: u64,
        /// Resolved exclusive end address.
        end_addr: u64,
        /// New power mode for the covered segments.
        mode: PowerMode,
    },
    /// `setpm %fu_id, $fu_type, $mode` — bitmap read from a scalar register.
    FuRegister {
        /// Register holding the instance bitmap.
        bitmap_reg: ScalarReg,
        /// Resolved bitmap value.
        bitmap: FuBitmap,
        /// Targeted functional-unit type.
        fu_type: FunctionalUnitType,
        /// New power mode.
        mode: PowerMode,
    },
    /// `setpm $fu_id, $fu_type, $mode` — bitmap given as an immediate.
    FuImmediate {
        /// Instance bitmap immediate.
        bitmap: FuBitmap,
        /// Targeted functional-unit type.
        fu_type: FunctionalUnitType,
        /// New power mode.
        mode: PowerMode,
    },
}

impl SetPm {
    /// Convenience constructor for the immediate functional-unit variant.
    #[must_use]
    pub fn functional_units(
        bitmap: FuBitmap,
        fu_type: FunctionalUnitType,
        mode: PowerMode,
    ) -> Self {
        SetPm::FuImmediate { bitmap, fu_type, mode }
    }

    /// Convenience constructor for the SRAM-range variant with resolved
    /// addresses (registers default to `%s0`/`%s1`).
    ///
    /// # Panics
    ///
    /// Panics if `end_addr < start_addr`.
    #[must_use]
    pub fn sram_range(start_addr: u64, end_addr: u64, mode: PowerMode) -> Self {
        assert!(end_addr >= start_addr, "end address before start address");
        SetPm::SramRange {
            start_reg: ScalarReg(0),
            end_reg: ScalarReg(1),
            start_addr,
            end_addr,
            mode,
        }
    }

    /// The power mode set by this instruction.
    #[must_use]
    pub fn mode(&self) -> PowerMode {
        match *self {
            SetPm::SramRange { mode, .. }
            | SetPm::FuRegister { mode, .. }
            | SetPm::FuImmediate { mode, .. } => mode,
        }
    }

    /// The functional-unit type affected by this instruction.
    #[must_use]
    pub fn fu_type(&self) -> FunctionalUnitType {
        match *self {
            SetPm::SramRange { .. } => FunctionalUnitType::Sram,
            SetPm::FuRegister { fu_type, .. } | SetPm::FuImmediate { fu_type, .. } => fu_type,
        }
    }

    /// The instance bitmap affected (empty for the SRAM variant, which is
    /// addressed by byte range instead).
    #[must_use]
    pub fn bitmap(&self) -> FuBitmap {
        match *self {
            SetPm::SramRange { .. } => FuBitmap::empty(),
            SetPm::FuRegister { bitmap, .. } | SetPm::FuImmediate { bitmap, .. } => bitmap,
        }
    }

    /// The SRAM byte range affected, if this is the SRAM variant.
    #[must_use]
    pub fn sram_byte_range(&self) -> Option<(u64, u64)> {
        match *self {
            SetPm::SramRange { start_addr, end_addr, .. } => Some((start_addr, end_addr)),
            _ => None,
        }
    }

    /// Assembly text of the instruction.
    #[must_use]
    pub fn disassemble(&self) -> String {
        match *self {
            SetPm::SramRange { start_reg, end_reg, start_addr, end_addr, mode } => format!(
                "setpm {start_reg}, {end_reg}, sram, ${mode}  ; [{start_addr:#x}, {end_addr:#x})"
            ),
            SetPm::FuRegister { bitmap_reg, bitmap, fu_type, mode } => {
                format!("setpm {bitmap_reg}, ${fu_type}, ${mode}  ; bitmap={bitmap}")
            }
            SetPm::FuImmediate { bitmap, fu_type, mode } => {
                format!("setpm {bitmap}, {fu_type}, {mode}")
            }
        }
    }
}

impl std::fmt::Display for SetPm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_variant_accessors() {
        let pm = SetPm::functional_units(
            FuBitmap::from_bits(0b1011),
            FunctionalUnitType::Vu,
            PowerMode::Off,
        );
        assert_eq!(pm.mode(), PowerMode::Off);
        assert_eq!(pm.fu_type(), FunctionalUnitType::Vu);
        assert_eq!(pm.bitmap().bits(), 0b1011);
        assert_eq!(pm.sram_byte_range(), None);
        assert_eq!(pm.disassemble(), "setpm 0b1011, vu, off");
    }

    #[test]
    fn sram_variant_accessors() {
        let pm = SetPm::sram_range(0x1000, 0x3000, PowerMode::Sleep);
        assert_eq!(pm.fu_type(), FunctionalUnitType::Sram);
        assert_eq!(pm.sram_byte_range(), Some((0x1000, 0x3000)));
        assert!(pm.bitmap().is_empty());
        assert!(pm.disassemble().contains("sram"));
        assert!(pm.disassemble().contains("0x1000"));
    }

    #[test]
    fn register_variant_disassembly() {
        let pm = SetPm::FuRegister {
            bitmap_reg: ScalarReg(5),
            bitmap: FuBitmap::from_bits(0b11),
            fu_type: FunctionalUnitType::Sa,
            mode: PowerMode::On,
        };
        let text = pm.disassemble();
        assert!(text.contains("%s5"));
        assert!(text.contains("$sa"));
        assert!(text.contains("$on"));
    }

    #[test]
    #[should_panic(expected = "end address before start")]
    fn sram_range_rejects_inverted_range() {
        let _ = SetPm::sram_range(0x2000, 0x1000, PowerMode::Off);
    }

    #[test]
    fn display_matches_disassemble() {
        let pm = SetPm::functional_units(FuBitmap::first(2), FunctionalUnitType::Vu, PowerMode::On);
        assert_eq!(pm.to_string(), pm.disassemble());
    }
}
