//! # npu-isa — statically scheduled VLIW ISA with the ReGate power extension
//!
//! NPUs in the TPU family execute statically scheduled VLIW instruction
//! bundles: every cycle, the in-order core issues one bundle whose slots
//! drive the systolic arrays, vector units, DMA engine, ICI, and a
//! miscellaneous slot for scalar/control operations (§2.1, §4.2 of the
//! paper). ReGate extends this ISA with the `setpm` (set power mode)
//! instruction, encoded in the miscellaneous slot, which lets the compiler
//! switch components between the `on`, `off`, `auto`, and (for SRAM)
//! `sleep` power modes.
//!
//! This crate provides:
//!
//! * the power-mode and functional-unit vocabulary ([`PowerMode`],
//!   [`FunctionalUnitType`], [`FuBitmap`]);
//! * the `setpm` instruction with its three encoding variants
//!   ([`SetPm`], Figure 14 of the paper) and a binary encoder/decoder;
//! * slot operations and VLIW bundles ([`SlotOp`], [`VliwBundle`]);
//! * a [`Program`] container with a builder, per-slot statistics, and a
//!   textual disassembly used by the examples and the instrumentation
//!   tests.
//!
//! ## Example
//!
//! ```
//! use npu_isa::{FuBitmap, FunctionalUnitType, PowerMode, Program, SetPm, SlotOp, VliwBundle};
//!
//! let mut program = Program::new("matmul_postprocess");
//! program.push(
//!     VliwBundle::new()
//!         .with_sa(0, SlotOp::sa_pop(8))
//!         .with_vu(0, SlotOp::vu_add(128)),
//! );
//! program.push(
//!     VliwBundle::new()
//!         .with_misc(SlotOp::SetPm(SetPm::functional_units(
//!             FuBitmap::from_indices(&[0, 1]),
//!             FunctionalUnitType::Vu,
//!             PowerMode::Off,
//!         ))),
//! );
//! assert_eq!(program.len(), 2);
//! assert_eq!(program.setpm_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bundle;
pub mod encode;
pub mod power;
pub mod program;
pub mod setpm;

pub use bundle::{SlotOp, VliwBundle};
pub use encode::{DecodeError, EncodedSetPm};
pub use power::{FuBitmap, FunctionalUnitType, PowerMode};
pub use program::{Program, ProgramStats};
pub use setpm::SetPm;
