//! Power modes, functional-unit types, and functional-unit bitmaps used by
//! the `setpm` instruction (paper §4.2, Figure 14).

use serde::{Deserialize, Serialize};

/// Power mode of a component as seen by the ISA.
///
/// `Auto` is the default: hardware-managed idle-detection policies control
/// the component transparently. `On`/`Off` override the hardware policy so
/// the compiler can implement precise, software-defined gating. `Sleep` is
/// only meaningful for the SRAM: a reduced supply voltage that retains data
/// but still leaks more than a full power-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerMode {
    /// Component forced on; hardware gating disabled.
    On,
    /// Component forced off (Gated-Vdd); no data retention.
    Off,
    /// Hardware-managed gating (default).
    Auto,
    /// Data-retaining low-voltage mode (SRAM only).
    Sleep,
}

impl PowerMode {
    /// All modes in encoding order (the 2-bit `Power Mode` field of Fig. 14).
    pub const ALL: [PowerMode; 4] =
        [PowerMode::Auto, PowerMode::On, PowerMode::Off, PowerMode::Sleep];

    /// 2-bit encoding of the mode.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            PowerMode::Auto => 0b00,
            PowerMode::On => 0b01,
            PowerMode::Off => 0b10,
            PowerMode::Sleep => 0b11,
        }
    }

    /// Decodes a 2-bit mode field.
    #[must_use]
    pub fn decode(bits: u8) -> Option<PowerMode> {
        match bits & 0b11 {
            0b00 => Some(PowerMode::Auto),
            0b01 => Some(PowerMode::On),
            0b10 => Some(PowerMode::Off),
            0b11 => Some(PowerMode::Sleep),
            _ => None,
        }
    }

    /// Whether the mode allows the component to serve operations without a
    /// wake-up transition.
    #[must_use]
    pub fn is_available(self) -> bool {
        matches!(self, PowerMode::On | PowerMode::Auto)
    }
}

impl std::fmt::Display for PowerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerMode::On => write!(f, "on"),
            PowerMode::Off => write!(f, "off"),
            PowerMode::Auto => write!(f, "auto"),
            PowerMode::Sleep => write!(f, "sleep"),
        }
    }
}

/// Functional-unit type targeted by a `setpm` instruction (the 3-bit
/// `Functional Unit Type` field of Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionalUnitType {
    /// Systolic array.
    Sa,
    /// Vector unit.
    Vu,
    /// On-chip SRAM (uses the address-range `setpm` variant).
    Sram,
    /// HBM controller & PHY.
    Hbm,
    /// ICI controller & PHY.
    Ici,
    /// DMA engine.
    Dma,
}

impl FunctionalUnitType {
    /// All functional-unit types in encoding order.
    pub const ALL: [FunctionalUnitType; 6] = [
        FunctionalUnitType::Sa,
        FunctionalUnitType::Vu,
        FunctionalUnitType::Sram,
        FunctionalUnitType::Hbm,
        FunctionalUnitType::Ici,
        FunctionalUnitType::Dma,
    ];

    /// 3-bit encoding of the type.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            FunctionalUnitType::Sa => 0b000,
            FunctionalUnitType::Vu => 0b001,
            FunctionalUnitType::Sram => 0b010,
            FunctionalUnitType::Hbm => 0b011,
            FunctionalUnitType::Ici => 0b100,
            FunctionalUnitType::Dma => 0b101,
        }
    }

    /// Decodes a 3-bit type field.
    #[must_use]
    pub fn decode(bits: u8) -> Option<FunctionalUnitType> {
        match bits & 0b111 {
            0b000 => Some(FunctionalUnitType::Sa),
            0b001 => Some(FunctionalUnitType::Vu),
            0b010 => Some(FunctionalUnitType::Sram),
            0b011 => Some(FunctionalUnitType::Hbm),
            0b100 => Some(FunctionalUnitType::Ici),
            0b101 => Some(FunctionalUnitType::Dma),
            _ => None,
        }
    }

    /// Assembly mnemonic of the unit type.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FunctionalUnitType::Sa => "sa",
            FunctionalUnitType::Vu => "vu",
            FunctionalUnitType::Sram => "sram",
            FunctionalUnitType::Hbm => "hbm",
            FunctionalUnitType::Ici => "ici",
            FunctionalUnitType::Dma => "dma",
        }
    }
}

impl std::fmt::Display for FunctionalUnitType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Bitmap selecting which functional-unit instances a `setpm` affects.
///
/// The paper sizes the bitmap to the number of SAs/VUs on the chip (8 bits
/// for an NPU with 8 SAs and 8 VUs); we keep 32 bits so that projected
/// generations with more units still fit. Bit `i` selects instance `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FuBitmap(u32);

impl FuBitmap {
    /// Bitmap selecting no units.
    #[must_use]
    pub fn empty() -> Self {
        FuBitmap(0)
    }

    /// Bitmap selecting instances `0..count`.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    #[must_use]
    pub fn first(count: usize) -> Self {
        assert!(count <= 32, "bitmap supports at most 32 units");
        if count == 32 {
            FuBitmap(u32::MAX)
        } else {
            FuBitmap((1u32 << count) - 1)
        }
    }

    /// Bitmap from raw bits.
    #[must_use]
    pub fn from_bits(bits: u32) -> Self {
        FuBitmap(bits)
    }

    /// Bitmap selecting exactly the given instance indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is ≥ 32.
    #[must_use]
    pub fn from_indices(indices: &[usize]) -> Self {
        let mut bits = 0u32;
        for &i in indices {
            assert!(i < 32, "unit index {i} out of range");
            bits |= 1 << i;
        }
        FuBitmap(bits)
    }

    /// Raw bits of the bitmap.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.0
    }

    /// Whether instance `index` is selected.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        index < 32 && (self.0 >> index) & 1 == 1
    }

    /// Number of selected instances.
    #[must_use]
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no instance is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterator over the selected instance indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..32).filter(move |&i| self.contains(i))
    }
}

impl std::fmt::Display for FuBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0b{:b}", self.0)
    }
}

impl std::fmt::Binary for FuBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_mode_roundtrip() {
        for mode in PowerMode::ALL {
            assert_eq!(PowerMode::decode(mode.encode()), Some(mode));
        }
    }

    #[test]
    fn power_mode_availability() {
        assert!(PowerMode::On.is_available());
        assert!(PowerMode::Auto.is_available());
        assert!(!PowerMode::Off.is_available());
        assert!(!PowerMode::Sleep.is_available());
    }

    #[test]
    fn fu_type_roundtrip() {
        for fu in FunctionalUnitType::ALL {
            assert_eq!(FunctionalUnitType::decode(fu.encode()), Some(fu));
        }
        assert_eq!(FunctionalUnitType::decode(0b111), None);
        assert_eq!(FunctionalUnitType::decode(0b110), None);
    }

    #[test]
    fn bitmap_construction() {
        let b = FuBitmap::from_indices(&[0, 1, 3]);
        assert_eq!(b.bits(), 0b1011);
        assert_eq!(b.count(), 3);
        assert!(b.contains(3));
        assert!(!b.contains(2));
        assert_eq!(b.to_string(), "0b1011");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn bitmap_first_selects_prefix() {
        assert_eq!(FuBitmap::first(0), FuBitmap::empty());
        assert_eq!(FuBitmap::first(4).bits(), 0b1111);
        assert_eq!(FuBitmap::first(32).bits(), u32::MAX);
        assert!(FuBitmap::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_rejects_large_index() {
        let _ = FuBitmap::from_indices(&[32]);
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(PowerMode::Off.to_string(), "off");
        assert_eq!(FunctionalUnitType::Vu.to_string(), "vu");
        assert_eq!(FunctionalUnitType::Sram.to_string(), "sram");
    }
}
