//! Per-component static power and per-operation dynamic energy model.
//!
//! The model follows the paper's methodology: area per component from
//! microarchitectural parameters, static power proportional to area times
//! the node's leakage density, dynamic energy proportional to activity.
//! Coefficients are calibrated so that the NPU-D static-energy shares match
//! the per-component shares reported in §3 of the paper (SA ≈ 10%,
//! VU ≈ 3.5%, SRAM ≈ 21%, HBM controller ≈ 13%, ICI ≈ 8%, peripheral
//! "other" logic ≈ 43%).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::{ComponentKind, NpuSpec, TechnologyNode};

/// Datacenter power usage effectiveness assumed by the paper (§3).
pub const DATACENTER_PUE: f64 = 1.1;

/// Duty cycle (fraction of powered-on time spent running jobs) assumed by
/// the paper (§3), following production measurements.
pub const NPU_DUTY_CYCLE: f64 = 0.6;

/// Fraction of TDP dissipated as static (leakage) power when every
/// component is powered on, per technology node. Leakage grows relative to
/// dynamic power as the feature size shrinks (§3).
fn static_fraction(node: TechnologyNode) -> f64 {
    match node {
        TechnologyNode::N16 => 0.34,
        TechnologyNode::N7 => 0.42,
        TechnologyNode::N4 => 0.48,
    }
}

/// Relative-area coefficients calibrated against the paper's NPU-D shares.
mod coeff {
    /// Units per processing element.
    pub const PER_PE: f64 = 7.93e-5;
    /// Units per vector sub-lane ALU (a VU has `lanes × sublanes` of them).
    pub const PER_VU_LANE: f64 = 5.7e-4;
    /// Units per MiB of SRAM.
    pub const PER_SRAM_MIB: f64 = 0.163;
    /// Units per GB/s of HBM bandwidth (controller + PHY).
    pub const PER_HBM_GBPS: f64 = 4.63e-3;
    /// Units per GB/s of aggregate ICI bandwidth (controller + PHY).
    pub const PER_ICI_GBPS: f64 = 1.33e-2;
    /// Units for the DMA engine.
    pub const DMA: f64 = 1.5;
    /// Peripheral logic as a fraction of all other component units
    /// (yields the ≈43% "other" share of the paper).
    pub const OTHER_FRACTION_OF_REST: f64 = 0.754;
}

/// Share of the chip's dynamic power budget attributed to each component at
/// full activity (used to derive per-operation energies).
fn dynamic_share(kind: ComponentKind) -> f64 {
    match kind {
        ComponentKind::Sa => 0.50,
        ComponentKind::Vu => 0.08,
        ComponentKind::Sram => 0.12,
        ComponentKind::Hbm => 0.17,
        ComponentKind::Ici => 0.05,
        ComponentKind::Dma => 0.03,
        ComponentKind::Other => 0.05,
    }
}

/// Static-power and dynamic-energy model of one NPU generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    spec: NpuSpec,
    static_power_w: BTreeMap<ComponentKind, f64>,
    dynamic_budget_w: f64,
}

impl PowerModel {
    /// Builds the model for an NPU generation.
    #[must_use]
    pub fn new(spec: &NpuSpec) -> Self {
        let mut units: BTreeMap<ComponentKind, f64> = BTreeMap::new();
        units.insert(ComponentKind::Sa, spec.total_pes() as f64 * coeff::PER_PE);
        units.insert(
            ComponentKind::Vu,
            (spec.num_vu * spec.vu_lanes * spec.vu_sublanes) as f64 * coeff::PER_VU_LANE,
        );
        units.insert(ComponentKind::Sram, spec.sram_mib as f64 * coeff::PER_SRAM_MIB);
        units.insert(ComponentKind::Hbm, spec.hbm_bandwidth_gbps * coeff::PER_HBM_GBPS);
        units.insert(ComponentKind::Ici, spec.ici_total_gbps() * coeff::PER_ICI_GBPS);
        units.insert(ComponentKind::Dma, coeff::DMA);
        let rest: f64 = units.values().sum();
        units.insert(ComponentKind::Other, rest * coeff::OTHER_FRACTION_OF_REST);
        let total_units: f64 = units.values().sum();

        let total_static = static_fraction(spec.technology) * spec.tdp_watts;
        let static_power_w =
            units.iter().map(|(&kind, &u)| (kind, total_static * u / total_units)).collect();
        let dynamic_budget_w = spec.tdp_watts - total_static;
        PowerModel { spec: spec.clone(), static_power_w, dynamic_budget_w }
    }

    /// The modelled NPU specification.
    #[must_use]
    pub fn spec(&self) -> &NpuSpec {
        &self.spec
    }

    /// Static (leakage) power of one component kind, in watts, with the
    /// component fully powered on.
    #[must_use]
    pub fn static_power_w(&self, kind: ComponentKind) -> f64 {
        self.static_power_w.get(&kind).copied().unwrap_or(0.0)
    }

    /// Total chip static power with everything powered on, in watts.
    #[must_use]
    pub fn total_static_power_w(&self) -> f64 {
        self.static_power_w.values().sum()
    }

    /// Dynamic power budget of the chip at full activity, in watts.
    #[must_use]
    pub fn dynamic_budget_w(&self) -> f64 {
        self.dynamic_budget_w
    }

    /// Dynamic energy per systolic-array FLOP, in joules.
    #[must_use]
    pub fn sa_energy_per_flop(&self) -> f64 {
        dynamic_share(ComponentKind::Sa) * self.dynamic_budget_w / self.spec.peak_flops()
    }

    /// Dynamic energy per vector-unit FLOP, in joules.
    #[must_use]
    pub fn vu_energy_per_flop(&self) -> f64 {
        dynamic_share(ComponentKind::Vu) * self.dynamic_budget_w / self.spec.peak_vu_flops()
    }

    /// Dynamic energy per byte of HBM traffic, in joules.
    #[must_use]
    pub fn hbm_energy_per_byte(&self) -> f64 {
        dynamic_share(ComponentKind::Hbm) * self.dynamic_budget_w
            / (self.spec.hbm_bandwidth_gbps * 1.0e9)
    }

    /// Dynamic energy per byte of ICI traffic, in joules.
    #[must_use]
    pub fn ici_energy_per_byte(&self) -> f64 {
        dynamic_share(ComponentKind::Ici) * self.dynamic_budget_w
            / (self.spec.ici_total_gbps() * 1.0e9)
    }

    /// Dynamic energy per byte moved through the SRAM, in joules.
    ///
    /// The SRAM serves both compute units and DMA traffic; its bandwidth is
    /// approximated as twice the HBM bandwidth (read + write of streaming
    /// data) plus the compute-side accesses, which is folded into the
    /// coefficient.
    #[must_use]
    pub fn sram_energy_per_byte(&self) -> f64 {
        dynamic_share(ComponentKind::Sram) * self.dynamic_budget_w
            / (4.0 * self.spec.hbm_bandwidth_gbps * 1.0e9)
    }

    /// Dynamic energy per byte moved by the DMA engine, in joules.
    #[must_use]
    pub fn dma_energy_per_byte(&self) -> f64 {
        dynamic_share(ComponentKind::Dma) * self.dynamic_budget_w
            / ((self.spec.hbm_bandwidth_gbps + self.spec.ici_total_gbps()) * 1.0e9)
    }

    /// Baseline dynamic power of the peripheral logic while the chip is
    /// executing, in watts (clock trees, control, PCIe keep switching).
    #[must_use]
    pub fn other_dynamic_power_w(&self) -> f64 {
        dynamic_share(ComponentKind::Other) * self.dynamic_budget_w
    }

    /// Chip power when powered on but idle (outside its duty cycle):
    /// every component leaks but nothing switches, in watts.
    #[must_use]
    pub fn idle_power_w(&self) -> f64 {
        self.total_static_power_w()
    }

    /// Static-power share of one component (fraction of total static power).
    #[must_use]
    pub fn static_share(&self, kind: ComponentKind) -> f64 {
        self.static_power_w(kind) / self.total_static_power_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::NpuGeneration;

    #[test]
    fn npu_d_static_shares_match_paper_ranges() {
        let model = PowerModel::new(&NpuSpec::generation(NpuGeneration::D));
        let sa = model.static_share(ComponentKind::Sa);
        let vu = model.static_share(ComponentKind::Vu);
        let sram = model.static_share(ComponentKind::Sram);
        let hbm = model.static_share(ComponentKind::Hbm);
        let ici = model.static_share(ComponentKind::Ici);
        let other = model.static_share(ComponentKind::Other);
        assert!((0.08..=0.14).contains(&sa), "SA share {sa}");
        assert!((0.019..=0.056).contains(&vu), "VU share {vu}");
        assert!((0.15..=0.25).contains(&sram), "SRAM share {sram}");
        assert!((0.09..=0.23).contains(&hbm), "HBM share {hbm}");
        assert!((0.05..=0.12).contains(&ici), "ICI share {ici}");
        assert!((0.39..=0.46).contains(&other), "Other share {other}");
    }

    #[test]
    fn shares_sum_to_one() {
        for generation in NpuGeneration::ALL {
            let model = PowerModel::new(&NpuSpec::generation(generation));
            let sum: f64 = ComponentKind::ALL.iter().map(|&k| model.static_share(k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{generation}: shares sum to {sum}");
        }
    }

    #[test]
    fn static_plus_dynamic_equals_tdp() {
        for generation in NpuGeneration::ALL {
            let spec = NpuSpec::generation(generation);
            let model = PowerModel::new(&spec);
            let total = model.total_static_power_w() + model.dynamic_budget_w();
            assert!((total - spec.tdp_watts).abs() < 1e-6);
            assert!(model.idle_power_w() < spec.tdp_watts);
        }
    }

    #[test]
    fn newer_nodes_have_larger_static_fraction() {
        let a = PowerModel::new(&NpuSpec::generation(NpuGeneration::A));
        let d = PowerModel::new(&NpuSpec::generation(NpuGeneration::D));
        let frac_a = a.total_static_power_w() / a.spec().tdp_watts;
        let frac_d = d.total_static_power_w() / d.spec().tdp_watts;
        assert!(frac_d > frac_a);
    }

    #[test]
    fn per_operation_energies_are_positive_and_small() {
        let model = PowerModel::new(&NpuSpec::generation(NpuGeneration::D));
        assert!(model.sa_energy_per_flop() > 0.0);
        assert!(model.sa_energy_per_flop() < 1e-11, "an SA FLOP costs well under 10 pJ");
        assert!(model.hbm_energy_per_byte() > model.sram_energy_per_byte());
        assert!(model.vu_energy_per_flop() > model.sa_energy_per_flop());
        assert!(model.ici_energy_per_byte() > 0.0);
        assert!(model.dma_energy_per_byte() > 0.0);
        assert!(model.other_dynamic_power_w() > 0.0);
    }

    #[test]
    fn full_activity_stays_within_tdp() {
        // If every component ran at its peak rate simultaneously, the total
        // dynamic power equals the dynamic budget by construction.
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let sa = model.sa_energy_per_flop() * spec.peak_flops();
        let vu = model.vu_energy_per_flop() * spec.peak_vu_flops();
        let hbm = model.hbm_energy_per_byte() * spec.hbm_bandwidth_gbps * 1e9;
        let ici = model.ici_energy_per_byte() * spec.ici_total_gbps() * 1e9;
        let sram = model.sram_energy_per_byte() * 4.0 * spec.hbm_bandwidth_gbps * 1e9;
        let dma =
            model.dma_energy_per_byte() * (spec.hbm_bandwidth_gbps + spec.ici_total_gbps()) * 1e9;
        let total = sa + vu + hbm + ici + sram + dma + model.other_dynamic_power_w();
        assert!((total - model.dynamic_budget_w()).abs() / model.dynamic_budget_w() < 1e-9);
    }

    #[test]
    fn constants_match_paper() {
        assert!((DATACENTER_PUE - 1.1).abs() < 1e-12);
        assert!((NPU_DUTY_CYCLE - 0.6).abs() < 1e-12);
    }
}
