//! Power-over-time telemetry: folding per-component gating walks into a
//! piecewise-constant watts(t) waveform.
//!
//! The energy model ([`EnergyBreakdown`](crate::EnergyBreakdown)) prices a
//! run as *totals* — joules per component, summed over the whole
//! execution. This module keeps the identical arithmetic but preserves the
//! *time axis*: each component's busy intervals burn static plus
//! (uniformly spread) dynamic power, each idle gap either stays at full
//! static power (below the break-even time) or splits into the policy's
//! full-power entry window followed by the residual-leakage plateau —
//! exactly the per-interval terms of
//! [`GatingParams::idle_interval_equivalent_cycles`], so the integral of
//! the waveform reproduces the breakdown's totals to within f64 rounding.
//! That identity is the layer's correctness contract and is pinned by
//! tests here and cross-checked at export time by the `trace_export`
//! harness.
//!
//! Waveforms export two ways: [`PowerTimeline::counter_samples`] feeds a
//! trace recorder's counter tracks (watts over cycles, one track per
//! component), and [`PowerTimeline::waveform_json`] renders a
//! deterministic standalone JSON document.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use npu_arch::ComponentKind;

use crate::gating::{GatePolicy, GatingParams, SramGateMode};

/// One step of a piecewise-constant power waveform: `watts` over
/// `[start_cycle, end_cycle)`. Boundaries are `f64` because idle-detection
/// entry windows (a third of the break-even time) can be fractional.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerStep {
    /// First cycle the level applies to.
    pub start_cycle: f64,
    /// First cycle after the step.
    pub end_cycle: f64,
    /// Power level over the step, in watts.
    pub watts: f64,
}

impl PowerStep {
    /// Width of the step in cycles.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.end_cycle - self.start_cycle
    }
}

/// The gating parameters governing one component's idle gaps: the same
/// `(bet, delay, leak, policy)` bundle the interval walk consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentGating {
    /// Break-even time in cycles; shorter gaps stay at full power.
    pub bet: u64,
    /// Power-on/off transition delay in cycles.
    pub delay: u64,
    /// Residual leakage while gated, as a fraction of full static power.
    pub leak: f64,
    /// How gating is entered (idle detection vs compiler-directed).
    pub policy: GatePolicy,
}

impl ComponentGating {
    /// The default gating bundle for a component kind: logic components
    /// gate compiler-directed at their Table 3 break-even times with the
    /// `logic_off` residual, SRAM follows the selected retention mode,
    /// and peripheral logic (`Other`) cannot gate at all (`None`).
    #[must_use]
    pub fn for_kind(
        params: &GatingParams,
        kind: ComponentKind,
        sram_mode: SramGateMode,
    ) -> Option<ComponentGating> {
        match kind {
            ComponentKind::Other => None,
            ComponentKind::Sram => {
                let sram = params.sram_gating(sram_mode);
                Some(ComponentGating {
                    bet: sram.bet,
                    delay: sram.delay,
                    leak: sram.leak,
                    policy: sram.policy,
                })
            }
            _ => Some(ComponentGating {
                bet: params.component_bet(kind),
                delay: params.component_delay(kind),
                leak: params.leakage.logic_off,
                policy: GatePolicy::CompilerDirected,
            }),
        }
    }
}

/// One component's watts(t) waveform plus its gating statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentWaveform {
    kind: ComponentKind,
    static_w: f64,
    dynamic_j: f64,
    steps: Vec<PowerStep>,
    gated_intervals: u64,
    wakeups: u64,
}

impl ComponentWaveform {
    /// The component the waveform describes.
    #[must_use]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The piecewise-constant steps, contiguous from cycle 0 to the
    /// makespan, adjacent equal levels coalesced.
    #[must_use]
    pub fn steps(&self) -> &[PowerStep] {
        &self.steps
    }

    /// Idle gaps long enough to gate (each one implies a power-down /
    /// power-up transition pair).
    #[must_use]
    pub fn gated_intervals(&self) -> u64 {
        self.gated_intervals
    }

    /// Gated gaps followed by more work — the wake-ups a running
    /// execution actually pays (a gated gap that ends the run never
    /// wakes).
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Integral of the waveform in joules, given the cycle length.
    #[must_use]
    pub fn energy_j(&self, seconds_per_cycle: f64) -> f64 {
        self.steps.iter().map(|s| s.watts * s.cycles() * seconds_per_cycle).sum()
    }
}

/// A chip's power-over-time telemetry: one watts(t) waveform per
/// component, all spanning the same `[0, makespan)` window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTimeline {
    seconds_per_cycle: f64,
    makespan_cycles: u64,
    components: Vec<ComponentWaveform>,
}

impl PowerTimeline {
    /// An empty timeline over a `[0, makespan_cycles)` window.
    ///
    /// # Panics
    ///
    /// Panics unless `seconds_per_cycle` is finite and positive.
    #[must_use]
    pub fn new(seconds_per_cycle: f64, makespan_cycles: u64) -> Self {
        assert!(
            seconds_per_cycle.is_finite() && seconds_per_cycle > 0.0,
            "seconds_per_cycle must be finite and positive, got {seconds_per_cycle}"
        );
        PowerTimeline { seconds_per_cycle, makespan_cycles, components: Vec::new() }
    }

    /// Seconds per cycle the integrals use.
    #[must_use]
    pub fn seconds_per_cycle(&self) -> f64 {
        self.seconds_per_cycle
    }

    /// The window's end, in cycles.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.makespan_cycles
    }

    /// Folds one component into the timeline. `busy` holds the
    /// component's merged busy intervals (`[start, end)` cycle pairs,
    /// sorted, disjoint, inside the makespan): each burns `static_w` plus
    /// `dynamic_j` spread uniformly over the busy cycles. Gaps follow
    /// `gating` — `None` (or a gap below the break-even time) stays at
    /// full static power; a gated gap pays the policy's entry window at
    /// full power and the residual-leakage plateau after it, exactly the
    /// terms of [`GatingParams::idle_interval_equivalent_cycles`].
    ///
    /// # Panics
    ///
    /// Panics if `busy` is unsorted/overlapping, reaches past the
    /// makespan, or carries dynamic energy with zero busy cycles.
    pub fn add_component(
        &mut self,
        kind: ComponentKind,
        static_w: f64,
        dynamic_j: f64,
        busy: &[(u64, u64)],
        gating: Option<ComponentGating>,
    ) {
        let mut cursor = 0u64;
        let mut busy_cycles = 0u64;
        for &(start, end) in busy {
            assert!(
                start >= cursor && end >= start && end <= self.makespan_cycles,
                "busy intervals must be sorted, disjoint, and inside the makespan \
                 (got [{start}, {end}) after cycle {cursor} in a {}-cycle window)",
                self.makespan_cycles
            );
            cursor = end;
            busy_cycles += end - start;
        }
        assert!(
            busy_cycles > 0 || dynamic_j == 0.0,
            "{dynamic_j} J of dynamic energy with zero busy cycles has no time to burn in"
        );
        let dynamic_w = if busy_cycles > 0 {
            dynamic_j / (busy_cycles as f64 * self.seconds_per_cycle)
        } else {
            0.0
        };

        let mut wave = ComponentWaveform {
            kind,
            static_w,
            dynamic_j,
            steps: Vec::new(),
            gated_intervals: 0,
            wakeups: 0,
        };
        let mut cursor = 0u64;
        for &(start, end) in busy {
            if start > cursor {
                fold_gap(&mut wave, cursor as f64, start as f64, static_w, gating, false);
            }
            push_step(&mut wave.steps, start as f64, end as f64, static_w + dynamic_w);
            cursor = end;
        }
        if cursor < self.makespan_cycles {
            fold_gap(&mut wave, cursor as f64, self.makespan_cycles as f64, static_w, gating, true);
        }
        self.components.push(wave);
    }

    /// Every component waveform, in insertion order.
    #[must_use]
    pub fn components(&self) -> &[ComponentWaveform] {
        &self.components
    }

    /// One component's waveform, if it was added.
    #[must_use]
    pub fn component(&self, kind: ComponentKind) -> Option<&ComponentWaveform> {
        self.components.iter().find(|c| c.kind == kind)
    }

    /// Integral of one component's waveform, in joules.
    #[must_use]
    pub fn component_energy_j(&self, kind: ComponentKind) -> f64 {
        self.component(kind).map_or(0.0, |c| c.energy_j(self.seconds_per_cycle))
    }

    /// Integral of every waveform, in joules — the quantity the energy
    /// cross-check compares against an
    /// [`EnergyBreakdown`](crate::EnergyBreakdown) built from the same
    /// busy intervals and gating walks.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.components.iter().map(|c| c.energy_j(self.seconds_per_cycle)).sum()
    }

    /// Whether the waveform integral agrees with an externally computed
    /// total within a relative tolerance (the "to within rounding"
    /// contract; summation-order noise sits around 1e-15).
    #[must_use]
    pub fn energy_matches(&self, expected_j: f64, rel_tol: f64) -> bool {
        let total = self.total_energy_j();
        (total - expected_j).abs() <= rel_tol * expected_j.abs().max(1.0)
    }

    /// One component's waveform as `(cycle, watts)` counter samples for a
    /// trace recorder's counter track: one sample per step start plus a
    /// closing zero at the makespan.
    #[must_use]
    pub fn counter_samples(&self, kind: ComponentKind) -> Option<Vec<(f64, f64)>> {
        let wave = self.component(kind)?;
        let mut samples: Vec<(f64, f64)> =
            wave.steps.iter().map(|s| (s.start_cycle, s.watts)).collect();
        samples.push((self.makespan_cycles as f64, 0.0));
        Some(samples)
    }

    /// Renders the timeline as a deterministic standalone JSON document:
    /// per-component steps as `[start_cycle, end_cycle, watts]` triples
    /// plus the gating statistics and energy integrals.
    #[must_use]
    pub fn waveform_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":1,");
        let _ = write!(
            out,
            "\"seconds_per_cycle\":{},\"makespan_cycles\":{},\"components\":[",
            self.seconds_per_cycle, self.makespan_cycles
        );
        for (index, wave) in self.components.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"static_w\":{},\"dynamic_j\":{},\"gated_intervals\":{},\
                 \"wakeups\":{},\"energy_j\":{},\"steps\":[",
                wave.kind,
                wave.static_w,
                wave.dynamic_j,
                wave.gated_intervals,
                wave.wakeups,
                wave.energy_j(self.seconds_per_cycle)
            );
            for (si, step) in wave.steps.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{},{}]", step.start_cycle, step.end_cycle, step.watts);
            }
            out.push_str("]}");
        }
        let _ = write!(out, "],\"total_energy_j\":{}}}", self.total_energy_j());
        out.push('\n');
        out
    }
}

/// Appends a step, coalescing into the previous one when the level is
/// identical and the steps abut.
fn push_step(steps: &mut Vec<PowerStep>, start: f64, end: f64, watts: f64) {
    if end <= start {
        return;
    }
    if let Some(last) = steps.last_mut() {
        if last.end_cycle == start && last.watts == watts {
            last.end_cycle = end;
            return;
        }
    }
    steps.push(PowerStep { start_cycle: start, end_cycle: end, watts });
}

/// Folds one idle gap into a waveform under the component's gating: full
/// static power when ungated or below the break-even time, otherwise the
/// policy's entry window at full power followed by the residual plateau.
fn fold_gap(
    wave: &mut ComponentWaveform,
    start: f64,
    end: f64,
    static_w: f64,
    gating: Option<ComponentGating>,
    trailing: bool,
) {
    let len = end - start;
    let gated =
        gating.filter(|g| GatingParams::gates_interval(g.bet, len as u64)).filter(|_| len > 0.0);
    let Some(g) = gated else {
        push_step(&mut wave.steps, start, end, static_w);
        return;
    };
    let entry = match g.policy {
        GatePolicy::IdleDetect => (g.bet as f64 / 3.0).min(len),
        GatePolicy::CompilerDirected => (2.0 * g.delay as f64).min(len),
    };
    push_step(&mut wave.steps, start, start + entry, static_w);
    push_step(&mut wave.steps, start + entry, end, g.leak * static_w);
    wave.gated_intervals += 1;
    if !trailing {
        wave.wakeups += 1;
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use npu_arch::{NpuGeneration, NpuSpec};

    use super::*;
    use crate::energy::{ChipUsage, EnergyBreakdown};
    use crate::power::PowerModel;

    const SPC: f64 = 1e-9;

    #[test]
    fn ungated_component_burns_constant_static_power() {
        let mut tl = PowerTimeline::new(SPC, 1_000);
        tl.add_component(ComponentKind::Other, 5.0, 0.0, &[], None);
        let wave = tl.component(ComponentKind::Other).expect("waveform");
        assert_eq!(wave.steps().len(), 1, "one coalesced full-window step");
        assert_eq!(wave.gated_intervals(), 0);
        let expected = 5.0 * 1_000.0 * SPC;
        assert!((tl.total_energy_j() - expected).abs() < 1e-15);
    }

    #[test]
    fn waveform_integral_matches_the_interval_walk() {
        // VU-style gating over two busy bursts and three gaps (the middle
        // gap is below the BET and must stay at full power).
        let gating =
            ComponentGating { bet: 32, delay: 2, leak: 0.03, policy: GatePolicy::CompilerDirected };
        let busy = [(100u64, 200u64), (210, 300), (1_000, 1_200)];
        let makespan = 2_000u64;
        let static_w = 3.0;
        let dynamic_j = 4.5e-7;
        let mut tl = PowerTimeline::new(SPC, makespan);
        tl.add_component(ComponentKind::Vu, static_w, dynamic_j, &busy, Some(gating));

        let gaps = [100u64, 10, 700, 800];
        let walk = GatingParams::walk_idle_intervals(
            gaps.iter().copied(),
            gating.bet,
            gating.delay,
            gating.leak,
            gating.policy,
        );
        let busy_cycles: u64 = busy.iter().map(|(s, e)| e - s).sum();
        let expected = static_w * (busy_cycles as f64 + walk.equivalent_cycles) * SPC + dynamic_j;
        let total = tl.total_energy_j();
        assert!(
            (total - expected).abs() <= 1e-12 * expected,
            "waveform integral {total} vs interval walk {expected}"
        );
        let wave = tl.component(ComponentKind::Vu).expect("waveform");
        assert_eq!(wave.gated_intervals(), 3);
        assert_eq!(wave.wakeups(), 2, "the trailing gated gap never wakes");
    }

    #[test]
    fn integral_cross_checks_against_the_energy_breakdown() {
        // Build the same run two ways — EnergyBreakdown::gated over
        // walked equivalent-seconds, and the waveform fold — and require
        // agreement to within rounding for every gateable component.
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let params = GatingParams::default();
        let makespan = 50_000u64;
        let spc = spec.cycle_seconds();
        let busy: BTreeMap<ComponentKind, Vec<(u64, u64)>> = [
            (ComponentKind::Sa, vec![(0u64, 20_000u64), (30_000, 45_000)]),
            (ComponentKind::Vu, vec![(5_000, 21_000), (21_005, 40_000)]),
            (ComponentKind::Hbm, vec![(0, 18_000), (26_000, 50_000)]),
            (ComponentKind::Ici, vec![]),
            (ComponentKind::Dma, vec![(100, 17_000)]),
            (ComponentKind::Sram, vec![(0, 44_000)]),
            (ComponentKind::Other, vec![(0, 50_000)]),
        ]
        .into_iter()
        .collect();

        let usage = ChipUsage {
            busy_seconds: makespan as f64 * spc,
            sa_flops: 1e12,
            vu_flops: 2e11,
            hbm_bytes: 3e9,
            ici_bytes: 0.0,
            sram_bytes: 9e9,
            dma_bytes: 3e9,
        };
        let baseline = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, 1.0);

        let mut tl = PowerTimeline::new(spc, makespan);
        let mut equivalent_seconds = BTreeMap::new();
        for kind in ComponentKind::ALL {
            let intervals = &busy[&kind];
            let gating = ComponentGating::for_kind(&params, kind, SramGateMode::Drowsy);
            tl.add_component(
                kind,
                model.static_power_w(kind),
                baseline.component(kind).dynamic_j,
                intervals,
                gating,
            );
            let mut gaps = Vec::new();
            let mut cursor = 0u64;
            for &(s, e) in intervals {
                if s > cursor {
                    gaps.push(s - cursor);
                }
                cursor = e;
            }
            if cursor < makespan {
                gaps.push(makespan - cursor);
            }
            let busy_cycles: u64 = intervals.iter().map(|(s, e)| e - s).sum();
            let eq = match gating {
                None => makespan as f64,
                Some(g) => {
                    let walk = GatingParams::walk_idle_intervals(
                        gaps.into_iter(),
                        g.bet,
                        g.delay,
                        g.leak,
                        g.policy,
                    );
                    busy_cycles as f64 + walk.equivalent_cycles
                }
            };
            equivalent_seconds.insert(kind, eq * spc);
        }
        let gated = EnergyBreakdown::gated(&baseline, &model, &equivalent_seconds, 0.0, 0.0);
        assert!(
            tl.energy_matches(gated.total_j(), 1e-9),
            "waveform {} J vs breakdown {} J",
            tl.total_energy_j(),
            gated.total_j()
        );
        for kind in ComponentKind::ALL {
            let wave_j = tl.component_energy_j(kind);
            let breakdown_j = gated.component(kind).total_j();
            assert!(
                (wave_j - breakdown_j).abs() <= 1e-9 * breakdown_j.abs().max(1e-12),
                "{kind}: waveform {wave_j} J vs breakdown {breakdown_j} J"
            );
        }
    }

    #[test]
    fn counter_samples_step_at_boundaries_and_close_at_zero() {
        let gating =
            ComponentGating { bet: 30, delay: 5, leak: 0.0, policy: GatePolicy::CompilerDirected };
        let mut tl = PowerTimeline::new(SPC, 300);
        tl.add_component(ComponentKind::Sa, 2.0, 0.0, &[(0, 100)], Some(gating));
        let samples = tl.counter_samples(ComponentKind::Sa).expect("samples");
        // Busy+entry coalesce at 2.0 W, then the plateau, then the close.
        assert_eq!(samples, vec![(0.0, 2.0), (110.0, 0.0), (300.0, 0.0)]);
        assert!(tl.counter_samples(ComponentKind::Hbm).is_none());
    }

    #[test]
    fn waveform_json_is_deterministic_and_tagged() {
        let mut tl = PowerTimeline::new(SPC, 500);
        tl.add_component(ComponentKind::Sa, 2.0, 1e-8, &[(50, 400)], None);
        let json = tl.waveform_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"kind\":\"SA\""));
        assert!(json.contains("\"components\":["));
        assert_eq!(json, tl.waveform_json());
    }

    #[test]
    #[should_panic(expected = "sorted, disjoint")]
    fn overlapping_busy_intervals_are_rejected() {
        let mut tl = PowerTimeline::new(SPC, 1_000);
        tl.add_component(ComponentKind::Sa, 1.0, 0.0, &[(0, 100), (50, 200)], None);
    }

    #[test]
    fn for_kind_maps_components_to_their_gating_bundles() {
        let params = GatingParams::default();
        let sa = ComponentGating::for_kind(&params, ComponentKind::Sa, SramGateMode::Drowsy)
            .expect("SA gates");
        assert_eq!((sa.bet, sa.delay), (469, 10));
        let sram = ComponentGating::for_kind(&params, ComponentKind::Sram, SramGateMode::Off)
            .expect("SRAM gates");
        assert_eq!(sram.policy, GatePolicy::CompilerDirected);
        assert!((sram.leak - 0.002).abs() < 1e-12);
        assert!(ComponentGating::for_kind(&params, ComponentKind::Other, SramGateMode::Drowsy)
            .is_none());
    }
}
