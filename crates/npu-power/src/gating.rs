//! Power-gating hardware parameters (paper Table 3 and §4.4).
//!
//! These are the synthesized power-on/off delays and break-even times (BET)
//! of each gateable component, the residual leakage of gated / sleeping
//! circuits, and the chip-area overhead of the gating logic. The evaluation
//! treats them as configurable parameters (sensitivity analysis, §6.5).

use serde::{Deserialize, Serialize};

use npu_arch::ComponentKind;

/// Residual leakage of gated or sleeping circuits, as a fraction of the
/// component's powered-on static power (paper §6.1 defaults: 3% for gated
/// logic, 25% for sleeping SRAM, 0.2% for powered-off SRAM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageRatios {
    /// Leakage of power-gated logic relative to its ON static power.
    pub logic_off: f64,
    /// Leakage of SRAM cells in the data-retaining sleep (drowsy) mode.
    pub sram_sleep: f64,
    /// Leakage of fully power-gated SRAM cells.
    pub sram_off: f64,
}

impl Default for LeakageRatios {
    fn default() -> Self {
        LeakageRatios { logic_off: 0.03, sram_sleep: 0.25, sram_off: 0.002 }
    }
}

impl LeakageRatios {
    /// The five leakage settings swept by the paper's sensitivity analysis
    /// (Figure 21), from the default to a very leaky corner.
    #[must_use]
    pub fn sensitivity_sweep() -> Vec<LeakageRatios> {
        vec![
            LeakageRatios { logic_off: 0.03, sram_sleep: 0.25, sram_off: 0.002 },
            LeakageRatios { logic_off: 0.1, sram_sleep: 0.3, sram_off: 0.01 },
            LeakageRatios { logic_off: 0.2, sram_sleep: 0.4, sram_off: 0.1 },
            LeakageRatios { logic_off: 0.4, sram_sleep: 0.5, sram_off: 0.25 },
            LeakageRatios { logic_off: 0.6, sram_sleep: 0.8, sram_off: 0.4 },
        ]
    }

    /// Label used on the Figure 21 x-axis, e.g. `"0.03/0.25/0.002"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.logic_off, self.sram_sleep, self.sram_off)
    }
}

/// Power-gating timing parameters of every gateable component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatingParams {
    /// Power-on/off delay of a single systolic-array PE, in cycles.
    pub sa_pe_delay: u64,
    /// Break-even time of a single PE, in cycles.
    pub sa_pe_bet: u64,
    /// Power-on/off delay of an entire systolic array, in cycles.
    pub sa_full_delay: u64,
    /// Break-even time of an entire systolic array, in cycles.
    pub sa_full_bet: u64,
    /// Power-on/off delay of a vector unit, in cycles.
    pub vu_delay: u64,
    /// Break-even time of a vector unit, in cycles.
    pub vu_bet: u64,
    /// Power-on/off delay of the HBM controller & PHY, in cycles.
    pub hbm_delay: u64,
    /// Break-even time of the HBM controller & PHY, in cycles.
    pub hbm_bet: u64,
    /// Power-on/off delay of the ICI controller & PHY, in cycles.
    pub ici_delay: u64,
    /// Break-even time of the ICI controller & PHY, in cycles.
    pub ici_bet: u64,
    /// Delay to put a 4 KiB SRAM segment into sleep mode, in cycles.
    pub sram_sleep_delay: u64,
    /// Break-even time of SRAM sleep mode, in cycles.
    pub sram_sleep_bet: u64,
    /// Delay to fully power off a 4 KiB SRAM segment, in cycles.
    pub sram_off_delay: u64,
    /// Break-even time of SRAM off mode, in cycles.
    pub sram_off_bet: u64,
    /// Residual leakage ratios.
    pub leakage: LeakageRatios,
}

impl Default for GatingParams {
    /// The Table 3 values from the synthesized 7 nm prototype.
    fn default() -> Self {
        GatingParams {
            sa_pe_delay: 1,
            sa_pe_bet: 47,
            sa_full_delay: 10,
            sa_full_bet: 469,
            vu_delay: 2,
            vu_bet: 32,
            hbm_delay: 60,
            hbm_bet: 412,
            ici_delay: 60,
            ici_bet: 459,
            sram_sleep_delay: 4,
            sram_sleep_bet: 41,
            sram_off_delay: 10,
            sram_off_bet: 82,
            leakage: LeakageRatios::default(),
        }
    }
}

impl GatingParams {
    /// Power-on/off delay for gating one whole component of a given kind.
    #[must_use]
    pub fn component_delay(&self, kind: ComponentKind) -> u64 {
        match kind {
            ComponentKind::Sa => self.sa_full_delay,
            ComponentKind::Vu => self.vu_delay,
            ComponentKind::Sram => self.sram_off_delay,
            ComponentKind::Hbm => self.hbm_delay,
            ComponentKind::Ici => self.ici_delay,
            ComponentKind::Dma => self.vu_delay,
            ComponentKind::Other => u64::MAX,
        }
    }

    /// Break-even time for gating one whole component of a given kind.
    #[must_use]
    pub fn component_bet(&self, kind: ComponentKind) -> u64 {
        match kind {
            ComponentKind::Sa => self.sa_full_bet,
            ComponentKind::Vu => self.vu_bet,
            ComponentKind::Sram => self.sram_off_bet,
            ComponentKind::Hbm => self.hbm_bet,
            ComponentKind::Ici => self.ici_bet,
            ComponentKind::Dma => self.vu_bet,
            ComponentKind::Other => u64::MAX,
        }
    }

    /// Returns a copy with every delay and BET scaled by `factor` (the
    /// Figure 22 sensitivity sweep).
    #[must_use]
    pub fn with_delay_scale(&self, factor: f64) -> Self {
        let scale = |v: u64| ((v as f64 * factor).round() as u64).max(1);
        GatingParams {
            sa_pe_delay: scale(self.sa_pe_delay),
            sa_pe_bet: scale(self.sa_pe_bet),
            sa_full_delay: scale(self.sa_full_delay),
            sa_full_bet: scale(self.sa_full_bet),
            vu_delay: scale(self.vu_delay),
            vu_bet: scale(self.vu_bet),
            hbm_delay: scale(self.hbm_delay),
            hbm_bet: scale(self.hbm_bet),
            ici_delay: scale(self.ici_delay),
            ici_bet: scale(self.ici_bet),
            sram_sleep_delay: scale(self.sram_sleep_delay),
            sram_sleep_bet: scale(self.sram_sleep_bet),
            sram_off_delay: scale(self.sram_off_delay),
            sram_off_bet: scale(self.sram_off_bet),
            leakage: self.leakage,
        }
    }

    /// Returns a copy with different leakage ratios (the Figure 21 sweep).
    #[must_use]
    pub fn with_leakage(&self, leakage: LeakageRatios) -> Self {
        GatingParams { leakage, ..self.clone() }
    }

    /// The break-even time, transition delay, residual leakage, and gating
    /// policy for one SRAM segment retention mode (§4.3).
    ///
    /// The drowsy mode is what hardware idle detection can manage on its
    /// own — data survives, so a mispredicted sleep costs only the wake
    /// delay — which is why `ReGate-Base` and `ReGate-HW` use it. Powering
    /// a segment fully off destroys its contents and is therefore only
    /// safe when the compiler *knows* the segment is dead, so `Off` is
    /// driven by `setpm` (`ReGate-Full`), whose statically known interval
    /// bounds also skip the idle-detection window.
    #[must_use]
    pub fn sram_gating(&self, mode: SramGateMode) -> SramGating {
        match mode {
            SramGateMode::Drowsy => SramGating {
                bet: self.sram_sleep_bet,
                delay: self.sram_sleep_delay,
                leak: self.leakage.sram_sleep,
                policy: GatePolicy::IdleDetect,
            },
            SramGateMode::Off => SramGating {
                bet: self.sram_off_bet,
                delay: self.sram_off_delay,
                leak: self.leakage.sram_off,
                policy: GatePolicy::CompilerDirected,
            },
        }
    }

    /// Whether an idle interval of `len` cycles is worth gating against a
    /// break-even time: gating shorter intervals costs more transition
    /// energy than the leakage it saves.
    ///
    /// The boundary is *inclusive*: the paper defines the break-even time
    /// as the minimum interval for which the saved leakage amortizes the
    /// transition energy, so an interval of exactly `bet` cycles already
    /// breaks even and is gated. (`len > bet` was a subtle off-by-one that
    /// silently left every exactly-break-even interval at full power.)
    #[must_use]
    pub fn gates_interval(bet: u64, len: u64) -> bool {
        len >= bet
    }

    /// Equivalent full-power cycles of *one* idle interval of `len` cycles
    /// under a gating policy with break-even time `bet`, transition delay
    /// `delay`, and residual leakage `leak` (fraction of full static
    /// power).
    ///
    /// Intervals below the break-even time stay powered: the component
    /// leaks at full power for the whole interval. Intervals at or above
    /// it are gated ([`GatingParams::gates_interval`] — the boundary is
    /// inclusive) and pay the policy's entry cost at full power, leaking
    /// at `leak` for the remainder.
    #[must_use]
    pub fn idle_interval_equivalent_cycles(
        len: u64,
        bet: u64,
        delay: u64,
        leak: f64,
        policy: GatePolicy,
    ) -> f64 {
        let len_f = len as f64;
        if !Self::gates_interval(bet, len) {
            return len_f;
        }
        let entry = match policy {
            // Hardware idle detection must *observe* idleness before
            // committing: the detection window (a third of the BET, as in
            // the synthesized prototype's counter configuration) is spent
            // at full power.
            GatePolicy::IdleDetect => (bet as f64 / 3.0).min(len_f),
            // The compiler knows the interval bounds exactly and issues
            // `setpm off` at its start and `setpm on` ahead of the next
            // use; both transitions burn full power but no window.
            GatePolicy::CompilerDirected => (2.0 * delay as f64).min(len_f),
        };
        entry + (len_f - entry) * leak
    }

    /// Walks a component's real idle intervals and accumulates the
    /// equivalent full-power cycles plus gating statistics — the
    /// interval-accurate replacement for scaling aggregate idle-cycle
    /// counts.
    #[must_use]
    pub fn walk_idle_intervals(
        interval_lens: impl Iterator<Item = u64>,
        bet: u64,
        delay: u64,
        leak: f64,
        policy: GatePolicy,
    ) -> GatedIdleSummary {
        let mut summary = GatedIdleSummary::default();
        for len in interval_lens {
            summary.idle_cycles += len;
            summary.equivalent_cycles +=
                Self::idle_interval_equivalent_cycles(len, bet, delay, leak, policy);
            if Self::gates_interval(bet, len) {
                summary.gated_intervals += 1;
                summary.gated_cycles += len;
            }
        }
        summary
    }
}

/// One statically detectable defect in a gating parameterization.
///
/// The rules mirror the consistency conditions implicit in Table 3 and
/// §4.3: a break-even time below the mode's own amortization point makes
/// gating a net energy *loss* at the threshold the policy gates at, the
/// drowsy/off retention modes must be ordered (off is the deeper state),
/// and residual leakage is a fraction of full static power. The queries
/// are pure data — `npu-sim`'s static analyzer lifts them into
/// diagnostics, and sensitivity sweeps can call them directly to reject
/// nonsensical corners before simulating them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingInconsistency {
    /// Which consistency rule the parameterization violates.
    pub rule: GatingRule,
    /// Component or mode label the violation concerns (`"SA"`,
    /// `"SRAM sleep"`, …).
    pub component: String,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The statically checkable gating-consistency rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatingRule {
    /// A break-even time at or below the policy's amortization point:
    /// gating an exactly-break-even interval saves nothing (or loses
    /// energy), so the declared BET is inconsistent with the declared
    /// transition delay and leakage.
    BetBelowAmortization,
    /// The SRAM retention modes are mis-ordered: powering fully off is the
    /// deeper state, so its break-even threshold must be at least the
    /// drowsy threshold and its residual leakage at most the drowsy
    /// leakage.
    SramModeOrdering,
    /// A residual-leakage ratio outside `[0, 1)` — gated circuits cannot
    /// leak more than powered-on ones.
    LeakageOutOfRange,
}

impl GatingParams {
    /// Every gating-consistency violation in this parameterization, in a
    /// deterministic order (amortization per component, then mode
    /// ordering, then leakage ranges). An empty vector means the
    /// parameters are self-consistent.
    ///
    /// The amortization check evaluates
    /// [`GatingParams::idle_interval_equivalent_cycles`] at an
    /// exactly-break-even interval under the component's governing policy
    /// and requires a strict saving — the paper's definition of the
    /// break-even time as "the minimum interval for which the saved
    /// leakage amortizes the transition energy".
    #[must_use]
    pub fn consistency(&self) -> Vec<GatingInconsistency> {
        let mut out = Vec::new();
        // (label, bet, delay, leak, policy): the logic components under
        // compiler-directed gating (the stricter entry cost, 2×delay,
        // which ReGate-Full relies on), the per-PE grain under hardware
        // idle detection, and both SRAM retention modes under their
        // governing policies.
        let checks: [(&str, u64, u64, f64, GatePolicy); 8] = [
            (
                "SA",
                self.sa_full_bet,
                self.sa_full_delay,
                self.leakage.logic_off,
                GatePolicy::CompilerDirected,
            ),
            (
                "SA-PE",
                self.sa_pe_bet,
                self.sa_pe_delay,
                self.leakage.logic_off,
                GatePolicy::IdleDetect,
            ),
            (
                "VU",
                self.vu_bet,
                self.vu_delay,
                self.leakage.logic_off,
                GatePolicy::CompilerDirected,
            ),
            (
                "HBM",
                self.hbm_bet,
                self.hbm_delay,
                self.leakage.logic_off,
                GatePolicy::CompilerDirected,
            ),
            (
                "ICI",
                self.ici_bet,
                self.ici_delay,
                self.leakage.logic_off,
                GatePolicy::CompilerDirected,
            ),
            (
                "SRAM sleep",
                self.sram_sleep_bet,
                self.sram_sleep_delay,
                self.leakage.sram_sleep,
                GatePolicy::IdleDetect,
            ),
            (
                "SRAM off",
                self.sram_off_bet,
                self.sram_off_delay,
                self.leakage.sram_off,
                GatePolicy::CompilerDirected,
            ),
            (
                "DMA",
                self.vu_bet,
                self.vu_delay,
                self.leakage.logic_off,
                GatePolicy::CompilerDirected,
            ),
        ];
        for (label, bet, delay, leak, policy) in checks {
            let equivalent = Self::idle_interval_equivalent_cycles(bet, bet, delay, leak, policy);
            if equivalent >= bet as f64 {
                out.push(GatingInconsistency {
                    rule: GatingRule::BetBelowAmortization,
                    component: label.to_string(),
                    message: format!(
                        "{label}: gating an exactly-break-even interval of {bet} cycles costs \
                         {equivalent:.1} equivalent full-power cycles (delay {delay}, leakage \
                         {leak}) — the declared BET is below the policy's amortization point"
                    ),
                });
            }
        }
        if self.sram_off_bet < self.sram_sleep_bet {
            out.push(GatingInconsistency {
                rule: GatingRule::SramModeOrdering,
                component: "SRAM".to_string(),
                message: format!(
                    "SRAM off BET ({}) is below the drowsy BET ({}): the deeper retention mode \
                     must have the higher entry threshold",
                    self.sram_off_bet, self.sram_sleep_bet
                ),
            });
        }
        if self.leakage.sram_off > self.leakage.sram_sleep {
            out.push(GatingInconsistency {
                rule: GatingRule::SramModeOrdering,
                component: "SRAM".to_string(),
                message: format!(
                    "powered-off SRAM leaks more ({}) than sleeping SRAM ({}): the retention \
                     modes are mis-ordered",
                    self.leakage.sram_off, self.leakage.sram_sleep
                ),
            });
        }
        for (label, ratio) in [
            ("logic off", self.leakage.logic_off),
            ("SRAM sleep", self.leakage.sram_sleep),
            ("SRAM off", self.leakage.sram_off),
        ] {
            if !(0.0..1.0).contains(&ratio) || !ratio.is_finite() {
                out.push(GatingInconsistency {
                    rule: GatingRule::LeakageOutOfRange,
                    component: label.to_string(),
                    message: format!(
                        "{label} residual leakage {ratio} is outside [0, 1): gated circuits \
                         cannot leak more than powered-on ones"
                    ),
                });
            }
        }
        out
    }

    /// The largest power-on/off delay of any gateable component — the
    /// wake-up lead time a compiler-directed `setpm on` must be able to
    /// hide inside the consumer's dispatch window.
    #[must_use]
    pub fn max_component_delay(&self) -> u64 {
        ComponentKind::GATEABLE
            .into_iter()
            .map(|kind| self.component_delay(kind))
            .max()
            .unwrap_or(0)
    }
}

/// Retention mode a dead SRAM segment is gated into (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SramGateMode {
    /// Data-retaining sleep: the segment's cells are kept just above the
    /// retention voltage. State survives, leakage drops to
    /// [`LeakageRatios::sram_sleep`].
    Drowsy,
    /// Full power-off: the segment loses its contents and leaks only
    /// [`LeakageRatios::sram_off`]. Requires compiler knowledge that the
    /// segment holds no live data.
    Off,
}

/// Parameters for gating one dead SRAM segment in a retention mode: the
/// bundle [`GatingParams::sram_gating`] hands to the interval walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramGating {
    /// Break-even time of the mode's transition pair, in cycles.
    pub bet: u64,
    /// Power-down/power-up delay of the mode, in cycles.
    pub delay: u64,
    /// Residual leakage in the mode, as a fraction of full static power.
    pub leak: f64,
    /// How intervals are recognized and entered (hardware detection for
    /// drowsy, compiler-directed `setpm` for off).
    pub policy: GatePolicy,
}

/// How a gating mechanism decides to gate an idle interval (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatePolicy {
    /// Hardware idle detection: a counter observes idleness for a
    /// confirmation window before gating, and the component wakes on
    /// demand (exposing its wake-up delay unless hidden by the dataflow).
    IdleDetect,
    /// Compiler-directed `setpm`: the interval bounds are known statically,
    /// so the component is gated immediately and woken ahead of its next
    /// use.
    CompilerDirected,
}

/// Result of walking a component's idle intervals under one gating policy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GatedIdleSummary {
    /// Total idle cycles walked.
    pub idle_cycles: u64,
    /// Equivalent full-power cycles those idle cycles cost.
    pub equivalent_cycles: f64,
    /// Number of intervals long enough to gate (above the break-even
    /// time); each one implies a power-down/power-up transition pair.
    pub gated_intervals: u64,
    /// Idle cycles inside gated intervals.
    pub gated_cycles: u64,
}

/// Chip-area overhead of the ReGate power-gating logic (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaOverhead {
    /// Area overhead per PE for the per-PE gating transistors (6.36%).
    pub per_pe_fraction: f64,
    /// Resulting whole-chip overhead of SA spatial gating (0.68%).
    pub sa_chip_fraction: f64,
    /// Whole-chip overhead of VU gating (0.13%).
    pub vu_chip_fraction: f64,
    /// Whole-chip overhead of per-segment SRAM gating (2.5%).
    pub sram_chip_fraction: f64,
    /// Total chip overhead (3.3%).
    pub total_chip_fraction: f64,
}

impl Default for AreaOverhead {
    fn default() -> Self {
        AreaOverhead {
            per_pe_fraction: 0.0636,
            sa_chip_fraction: 0.0068,
            vu_chip_fraction: 0.0013,
            sram_chip_fraction: 0.025,
            total_chip_fraction: 0.033,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let p = GatingParams::default();
        assert_eq!((p.sa_pe_delay, p.sa_pe_bet), (1, 47));
        assert_eq!((p.sa_full_delay, p.sa_full_bet), (10, 469));
        assert_eq!((p.vu_delay, p.vu_bet), (2, 32));
        assert_eq!((p.hbm_delay, p.hbm_bet), (60, 412));
        assert_eq!((p.ici_delay, p.ici_bet), (60, 459));
        assert_eq!((p.sram_sleep_delay, p.sram_sleep_bet), (4, 41));
        assert_eq!((p.sram_off_delay, p.sram_off_bet), (10, 82));
    }

    #[test]
    fn default_leakage_ratios_match_paper() {
        let l = LeakageRatios::default();
        assert!((l.logic_off - 0.03).abs() < 1e-12);
        assert!((l.sram_sleep - 0.25).abs() < 1e-12);
        assert!((l.sram_off - 0.002).abs() < 1e-12);
        assert_eq!(l.label(), "0.03/0.25/0.002");
        assert_eq!(LeakageRatios::sensitivity_sweep().len(), 5);
    }

    #[test]
    fn component_lookup_is_consistent() {
        let p = GatingParams::default();
        assert_eq!(p.component_bet(ComponentKind::Vu), 32);
        assert_eq!(p.component_delay(ComponentKind::Hbm), 60);
        assert_eq!(p.component_bet(ComponentKind::Other), u64::MAX);
        for kind in ComponentKind::GATEABLE {
            assert!(p.component_bet(kind) > p.component_delay(kind));
        }
    }

    #[test]
    fn delay_scaling() {
        let p = GatingParams::default().with_delay_scale(2.0);
        assert_eq!(p.vu_delay, 4);
        assert_eq!(p.vu_bet, 64);
        assert_eq!(p.sa_full_bet, 938);
        let tiny = GatingParams::default().with_delay_scale(0.1);
        assert!(tiny.sa_pe_delay >= 1, "delays never scale to zero");
    }

    #[test]
    fn leakage_override() {
        let leaky = GatingParams::default().with_leakage(LeakageRatios {
            logic_off: 0.6,
            sram_sleep: 0.8,
            sram_off: 0.4,
        });
        assert!((leaky.leakage.logic_off - 0.6).abs() < 1e-12);
        assert_eq!(leaky.vu_bet, 32, "timing parameters are unchanged");
    }

    #[test]
    fn short_intervals_stay_at_full_power() {
        for policy in [GatePolicy::IdleDetect, GatePolicy::CompilerDirected] {
            let eq = GatingParams::idle_interval_equivalent_cycles(30, 32, 2, 0.03, policy);
            assert!((eq - 30.0).abs() < 1e-12, "{policy:?}: below-BET interval not gated");
        }
    }

    #[test]
    fn break_even_boundary_is_inclusive() {
        // The paper: intervals *at least* the break-even time amortize the
        // transition energy. Pin both sides of the boundary so neither an
        // off-by-one towards `>` (exactly-break-even intervals silently
        // left at full power) nor towards `> bet - 1` can sneak back in.
        assert!(GatingParams::gates_interval(32, 32), "an exactly-BET interval breaks even");
        assert!(!GatingParams::gates_interval(32, 31), "one cycle short of the BET does not");
        for policy in [GatePolicy::IdleDetect, GatePolicy::CompilerDirected] {
            let at_bet = GatingParams::idle_interval_equivalent_cycles(32, 32, 2, 0.03, policy);
            assert!(at_bet < 32.0, "{policy:?}: the exactly-BET interval must be gated");
            let below = GatingParams::idle_interval_equivalent_cycles(31, 32, 2, 0.03, policy);
            assert!((below - 31.0).abs() < 1e-12, "{policy:?}: below-BET stays at full power");
        }
    }

    #[test]
    fn compiler_directed_beats_idle_detection_on_long_intervals() {
        // VU parameters: BET 32, delay 2. A 1,000-cycle interval costs a
        // 10.7-cycle detection window under hardware detection but only two
        // 2-cycle transitions under setpm.
        let hw = GatingParams::idle_interval_equivalent_cycles(
            1000,
            32,
            2,
            0.03,
            GatePolicy::IdleDetect,
        );
        let sw = GatingParams::idle_interval_equivalent_cycles(
            1000,
            32,
            2,
            0.03,
            GatePolicy::CompilerDirected,
        );
        assert!(sw < hw, "setpm ({sw}) must beat idle detection ({hw})");
        assert!(hw < 1000.0, "both must beat staying on");
        let expected_hw = 32.0 / 3.0 + (1000.0 - 32.0 / 3.0) * 0.03;
        assert!((hw - expected_hw).abs() < 1e-9);
        let expected_sw = 4.0 + 996.0 * 0.03;
        assert!((sw - expected_sw).abs() < 1e-9);
    }

    #[test]
    fn interval_walk_accumulates_statistics() {
        // Three intervals: 10 (below BET), 100 and 1,000 (gated).
        let summary = GatingParams::walk_idle_intervals(
            [10u64, 100, 1000].into_iter(),
            32,
            2,
            0.0,
            GatePolicy::CompilerDirected,
        );
        assert_eq!(summary.idle_cycles, 1110);
        assert_eq!(summary.gated_intervals, 2);
        assert_eq!(summary.gated_cycles, 1100);
        // With zero residual leakage only the short interval and the two
        // transition pairs burn power.
        assert!((summary.equivalent_cycles - (10.0 + 4.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn interval_walk_beats_aggregate_scaling_when_idleness_is_fragmented() {
        // 1,000 idle cycles in 100 ten-cycle fragments cannot be gated at
        // all (every fragment is below the VU's 32-cycle BET), while the
        // same 1,000 cycles in one interval nearly vanish — the effect the
        // aggregate-scaling model could never represent.
        let fragmented = GatingParams::walk_idle_intervals(
            std::iter::repeat_n(10u64, 100),
            32,
            2,
            0.03,
            GatePolicy::IdleDetect,
        );
        let contiguous = GatingParams::walk_idle_intervals(
            std::iter::once(1000u64),
            32,
            2,
            0.03,
            GatePolicy::IdleDetect,
        );
        assert_eq!(fragmented.idle_cycles, contiguous.idle_cycles);
        assert!((fragmented.equivalent_cycles - 1000.0).abs() < 1e-9);
        assert!(contiguous.equivalent_cycles < 50.0);
        assert_eq!(fragmented.gated_intervals, 0);
        assert_eq!(contiguous.gated_intervals, 1);
    }

    #[test]
    fn sram_gating_modes_map_to_table3_parameters() {
        let p = GatingParams::default();
        let drowsy = p.sram_gating(SramGateMode::Drowsy);
        assert_eq!((drowsy.bet, drowsy.delay), (41, 4));
        assert!((drowsy.leak - 0.25).abs() < 1e-12);
        assert_eq!(drowsy.policy, GatePolicy::IdleDetect);
        let off = p.sram_gating(SramGateMode::Off);
        assert_eq!((off.bet, off.delay), (82, 10));
        assert!((off.leak - 0.002).abs() < 1e-12);
        assert_eq!(off.policy, GatePolicy::CompilerDirected);
        // Off is the deeper state: leakier entry threshold, lower residual.
        assert!(off.bet > drowsy.bet);
        assert!(off.leak < drowsy.leak);
    }

    #[test]
    fn sram_off_beats_drowsy_on_long_dead_intervals() {
        // A segment dead for 10,000 cycles: drowsy retains state at 25%
        // leakage, off drops to 0.2% — the §4.3 argument for compiler-
        // directed segment power-off when the data is provably dead.
        let p = GatingParams::default();
        let d = p.sram_gating(SramGateMode::Drowsy);
        let o = p.sram_gating(SramGateMode::Off);
        let drowsy_eq =
            GatingParams::idle_interval_equivalent_cycles(10_000, d.bet, d.delay, d.leak, d.policy);
        let off_eq =
            GatingParams::idle_interval_equivalent_cycles(10_000, o.bet, o.delay, o.leak, o.policy);
        assert!(off_eq < drowsy_eq, "off ({off_eq}) must beat drowsy ({drowsy_eq})");
        assert!(drowsy_eq < 10_000.0, "both must beat staying fully on");
    }

    #[test]
    fn default_parameters_are_self_consistent() {
        assert!(GatingParams::default().consistency().is_empty());
        // The sensitivity sweeps stay inside the consistent region too.
        for leakage in LeakageRatios::sensitivity_sweep() {
            let p = GatingParams::default().with_leakage(leakage);
            assert!(p.consistency().is_empty(), "leakage {} breaks consistency", leakage.label());
        }
        for scale in [0.25, 0.5, 2.0, 4.0] {
            let p = GatingParams::default().with_delay_scale(scale);
            assert!(p.consistency().is_empty(), "delay scale {scale} breaks consistency");
        }
    }

    #[test]
    fn bet_below_amortization_is_detected() {
        // A BET below twice the transition delay: a compiler-directed
        // down/up pair cannot amortize inside an exactly-BET interval.
        let p = GatingParams { vu_bet: 3, vu_delay: 2, ..GatingParams::default() };
        let violations = p.consistency();
        assert!(violations
            .iter()
            .any(|v| v.rule == GatingRule::BetBelowAmortization && v.component == "VU"));
        // DMA shares the VU parameters, so it fires too; nothing else does.
        assert!(violations.iter().all(|v| v.rule == GatingRule::BetBelowAmortization));
    }

    #[test]
    fn sram_mode_misordering_is_detected() {
        let p = GatingParams { sram_off_bet: 10, ..GatingParams::default() };
        assert!(p.consistency().iter().any(|v| v.rule == GatingRule::SramModeOrdering));
        let leaky_off = GatingParams::default().with_leakage(LeakageRatios {
            logic_off: 0.03,
            sram_sleep: 0.25,
            sram_off: 0.5,
        });
        assert!(leaky_off.consistency().iter().any(|v| v.rule == GatingRule::SramModeOrdering));
    }

    #[test]
    fn leakage_out_of_range_is_detected() {
        let p = GatingParams::default().with_leakage(LeakageRatios {
            logic_off: 1.5,
            sram_sleep: 0.25,
            sram_off: 0.002,
        });
        let violations = p.consistency();
        assert!(violations.iter().any(|v| v.rule == GatingRule::LeakageOutOfRange));
        let negative = GatingParams::default().with_leakage(LeakageRatios {
            logic_off: 0.03,
            sram_sleep: -0.1,
            sram_off: 0.002,
        });
        assert!(negative
            .consistency()
            .iter()
            .any(|v| v.rule == GatingRule::LeakageOutOfRange && v.component == "SRAM sleep"));
    }

    #[test]
    fn max_component_delay_spans_the_gateable_set() {
        let p = GatingParams::default();
        assert_eq!(p.max_component_delay(), 60, "HBM/ICI are the slowest to wake");
        assert_eq!(p.with_delay_scale(2.0).max_component_delay(), 120);
    }

    #[test]
    fn area_overhead_defaults() {
        let a = AreaOverhead::default();
        assert!((a.total_chip_fraction - 0.033).abs() < 1e-12);
        assert!(a.per_pe_fraction < 0.07);
        assert!(
            a.sa_chip_fraction + a.vu_chip_fraction + a.sram_chip_fraction
                < a.total_chip_fraction + 1e-3
        );
    }
}
