//! Carbon-efficiency model (paper §6.6, Figures 24 and 25).
//!
//! Operational carbon is the electricity consumed at runtime times the grid
//! carbon intensity; embodied carbon is the emission from manufacturing the
//! chip, amortized over its lifetime output. ReGate's energy savings reduce
//! the operational term, which both cuts total emissions and shifts the
//! optimal device lifespan upward (older chips stay carbon-competitive for
//! longer when their operating cost is lower).

use serde::{Deserialize, Serialize};

use npu_arch::NpuGeneration;

use crate::power::{DATACENTER_PUE, NPU_DUTY_CYCLE};

/// Grid carbon intensity assumed by the paper, in kgCO₂e per kWh.
pub const CARBON_INTENSITY_KG_PER_KWH: f64 = 0.0624;

/// Carbon model for a fleet of NPU chips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonModel {
    /// Grid carbon intensity in kgCO₂e/kWh.
    pub intensity_kg_per_kwh: f64,
    /// Datacenter power usage effectiveness.
    pub pue: f64,
    /// Fleet duty cycle (fraction of time running jobs).
    pub duty_cycle: f64,
}

impl Default for CarbonModel {
    fn default() -> Self {
        CarbonModel {
            intensity_kg_per_kwh: CARBON_INTENSITY_KG_PER_KWH,
            pue: DATACENTER_PUE,
            duty_cycle: NPU_DUTY_CYCLE,
        }
    }
}

impl CarbonModel {
    /// Embodied carbon of manufacturing one chip (package + HBM + board
    /// share), in kgCO₂e, per generation. Derived from published
    /// cradle-to-gate estimates for TPU-class accelerators.
    #[must_use]
    pub fn embodied_kg_per_chip(generation: NpuGeneration) -> f64 {
        match generation {
            NpuGeneration::A => 80.0,
            NpuGeneration::B => 100.0,
            NpuGeneration::C => 130.0,
            NpuGeneration::D => 160.0,
            NpuGeneration::E => 200.0,
        }
    }

    /// Operational carbon of consuming `energy_j` joules at the wall
    /// (facility level, including PUE), in kgCO₂e.
    #[must_use]
    pub fn operational_kg(&self, energy_j: f64) -> f64 {
        let kwh = energy_j / 3.6e6;
        kwh * self.pue * self.intensity_kg_per_kwh
    }

    /// Operational carbon reduction (fraction) when the per-work energy
    /// drops from `baseline_j` to `gated_j`, including the idle-time
    /// leakage term of each.
    #[must_use]
    pub fn operational_reduction(&self, baseline_j: f64, gated_j: f64) -> f64 {
        if baseline_j <= 0.0 {
            return 0.0;
        }
        1.0 - gated_j / baseline_j
    }

    /// Sweeps the device lifespan from 1 to `horizon_years` and returns the
    /// total (embodied + operational) carbon per unit of work for each
    /// lifespan choice (Figure 25).
    ///
    /// * `energy_per_work_j` — facility energy per unit of work on the
    ///   current generation;
    /// * `work_per_chip_year` — units of work one chip completes per year;
    /// * `embodied_kg` — embodied carbon per chip;
    /// * `yearly_efficiency_gain` — factor by which a *new* generation
    ///   improves energy per work each year (e.g. 1.15 = 15% better per
    ///   year). Keeping old chips for `L` years forgoes that improvement
    ///   for the later years of the window.
    ///
    /// # Panics
    ///
    /// Panics if `yearly_efficiency_gain` is below 1.0 — new generations
    /// never regress in this model.
    #[must_use]
    pub fn lifespan_sweep(
        &self,
        energy_per_work_j: f64,
        work_per_chip_year: f64,
        embodied_kg: f64,
        yearly_efficiency_gain: f64,
        horizon_years: u32,
    ) -> Vec<LifespanPoint> {
        assert!(yearly_efficiency_gain >= 1.0, "efficiency gain factor must be >= 1");
        let mut points = Vec::new();
        for lifespan in 1..=horizon_years {
            let mut total_kg = 0.0;
            let mut total_work = 0.0;
            // Over the horizon, chips are replaced every `lifespan` years;
            // a replacement bought in year y is `yearly_efficiency_gain^y`
            // more efficient than today's generation.
            let mut year = 0u32;
            while year < horizon_years {
                let purchase_year = year;
                let years_used = lifespan.min(horizon_years - purchase_year);
                let gen_energy =
                    energy_per_work_j / yearly_efficiency_gain.powi(purchase_year as i32);
                total_kg += embodied_kg;
                for _ in 0..years_used {
                    let work = work_per_chip_year;
                    total_kg += self.operational_kg(gen_energy * work);
                    total_work += work;
                }
                year += lifespan;
            }
            points.push(LifespanPoint {
                lifespan_years: lifespan,
                carbon_kg_per_work: total_kg / total_work,
            });
        }
        points
    }

    /// The lifespan (in years) minimizing carbon per unit of work.
    /// Returns 0 for an empty sweep.
    ///
    /// # Panics
    ///
    /// Panics if any point carries a NaN carbon value; the sweep only
    /// produces finite ones.
    #[must_use]
    pub fn optimal_lifespan(points: &[LifespanPoint]) -> u32 {
        points
            .iter()
            .min_by(|a, b| {
                a.carbon_kg_per_work
                    .partial_cmp(&b.carbon_kg_per_work)
                    .expect("carbon values are finite")
            })
            .map(|p| p.lifespan_years)
            .unwrap_or(0)
    }
}

/// One point of the lifespan sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifespanPoint {
    /// Device lifespan in years.
    pub lifespan_years: u32,
    /// Total carbon per unit of work in kgCO₂e.
    pub carbon_kg_per_work: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_carbon_scales_with_energy() {
        let model = CarbonModel::default();
        let one_kwh = model.operational_kg(3.6e6);
        assert!((one_kwh - 0.0624 * 1.1).abs() < 1e-9);
        assert!((model.operational_kg(7.2e6) - 2.0 * one_kwh).abs() < 1e-12);
    }

    #[test]
    fn reduction_fraction() {
        let model = CarbonModel::default();
        assert!((model.operational_reduction(100.0, 60.0) - 0.4).abs() < 1e-12);
        assert_eq!(model.operational_reduction(0.0, 10.0), 0.0);
    }

    #[test]
    fn embodied_carbon_grows_with_generation() {
        let mut prev = 0.0;
        for generation in NpuGeneration::ALL {
            let e = CarbonModel::embodied_kg_per_chip(generation);
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn lifespan_sweep_has_an_interior_optimum() {
        let model = CarbonModel::default();
        // Operational and embodied terms of comparable magnitude produce an
        // interior optimum: replacing every year wastes embodied carbon,
        // never replacing wastes efficiency gains.
        let points = model.lifespan_sweep(5.0e5, 5.0e4, 160.0, 1.20, 10);
        assert_eq!(points.len(), 10);
        let optimal = CarbonModel::optimal_lifespan(&points);
        assert!(optimal > 1 && optimal < 10, "optimal lifespan {optimal}");
        // Carbon per work is a convex-ish curve: the optimum beats both ends.
        let first = points.first().unwrap().carbon_kg_per_work;
        let last = points.last().unwrap().carbon_kg_per_work;
        let best = points.iter().map(|p| p.carbon_kg_per_work).fold(f64::MAX, f64::min);
        assert!(best < first && best <= last);
    }

    #[test]
    fn lower_operational_energy_extends_optimal_lifespan() {
        // The paper: ReGate extends the optimal lifespan range from 4-8 to
        // 5-9 years because operational carbon matters less.
        let model = CarbonModel::default();
        let base = model.lifespan_sweep(5.0e5, 5.0e4, 160.0, 1.20, 10);
        let gated = model.lifespan_sweep(5.0e5 * 0.7, 5.0e4, 160.0, 1.20, 10);
        assert!(
            CarbonModel::optimal_lifespan(&gated) >= CarbonModel::optimal_lifespan(&base),
            "gating must not shorten the optimal lifespan"
        );
    }

    #[test]
    fn optimal_lifespan_of_empty_sweep_is_zero() {
        assert_eq!(CarbonModel::optimal_lifespan(&[]), 0);
    }
}
