//! Pluggable power-management policies over the idle-interval walk.
//!
//! ReGate's Base/HW/Full designs price every idle interval with one fixed
//! recipe: below the break-even time the component stays on, at or above it
//! the component gates and pays a transition window plus residual leakage
//! ([`GatingParams::walk_idle_intervals`]). That recipe is one point in a
//! much larger power-management design space. This module abstracts the
//! per-component walk behind the [`PowerPolicy`] trait so the same
//! interval-accurate timeline can price alternative strategies head to
//! head:
//!
//! * [`IntervalGating`] — the ReGate walk itself, parameterized by BET,
//!   transition delay, residual leakage, and wake-up stall exposure;
//! * [`ClockGating`] — AUTOGATE-style clock gating: near-zero transition
//!   cost and no exposed latency, but only the clock-tree (dynamic) share
//!   of idle power is saved — leakage is untouched;
//! * [`DvfsScaling`] — race-to-idle DVFS: idle intervals are spent at a
//!   reduced voltage/frequency point, scaling their cost by a constant
//!   factor instead of emptying them;
//! * [`TileGrainRegating`] — the paper's Figure 19 edge: ReGate-Base with
//!   tile-granular re-gating inside bursts, trading extra transition
//!   energy for a much smaller exposed wake-up delay;
//! * [`WriteBackGating`] — a contents-aware SRAM power-off that charges
//!   dirty-segment write-back to HBM before cutting power;
//! * [`NoGating`] / [`IdealOff`] — the two bracketing baselines.
//!
//! Policies self-report configuration mistakes via
//! [`PowerPolicy::consistency`]; `npu_sim::analysis` maps those findings
//! onto its `policy.*` rule family.

use serde::{Deserialize, Serialize};

use crate::gating::{GatePolicy, GatingParams};

/// Result of pricing one component's idle intervals under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyWalk {
    /// Equivalent full-power cycles charged for all idle intervals.
    pub equivalent_cycles: f64,
    /// Execution-time stall cycles exposed by wake-ups on intervals that
    /// are followed by more work.
    pub wake_stall_cycles: f64,
    /// Number of intervals the policy acted on (gated, slept, or scaled).
    pub gated_intervals: u64,
}

/// One configuration-consistency finding reported by a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyInconsistency {
    /// Which rule family the finding belongs to.
    pub rule: PolicyRule,
    /// Human-readable description of the inconsistency.
    pub message: String,
}

/// Rule families for policy-configuration findings, mirrored as
/// `policy.*` diagnostics by `npu_sim::analysis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyRule {
    /// A DVFS scale factor outside `(0, 1]` — it must shrink (or at worst
    /// preserve) the interval cost, and a zero scale would claim free
    /// idleness.
    ScaleOutOfRange,
    /// A clock-gating residual outside `[0, 1]` — the surviving fraction
    /// of idle power cannot be negative or exceed the ungated cost.
    ResidualOutOfRange,
    /// A write-back cost inconsistent with the segment size, streaming
    /// bandwidth, or break-even time.
    WritebackInconsistent,
    /// A transition-cost configuration that contradicts the hardware
    /// structure it models (e.g. a tile waking slower than the full
    /// array it is a fraction of).
    TransitionInconsistent,
}

/// A per-component idle-interval pricing strategy.
///
/// Implementations receive the component's idle intervals twice: `all`
/// holds every interval, `waking` only the subset that is followed by more
/// work on the timeline (an interval that runs to the end of the trace
/// never has to wake anything up). Both slices are in timeline order.
pub trait PowerPolicy: std::fmt::Debug {
    /// Short human-readable name for tables and diagnostics.
    fn label(&self) -> String;

    /// Prices the idle intervals and the wake-up stalls they expose.
    fn walk_intervals(&self, all: &[u64], waking: &[u64]) -> PolicyWalk;

    /// Configuration-consistency findings (empty when well-formed).
    fn consistency(&self) -> Vec<PolicyInconsistency> {
        Vec::new()
    }
}

/// Counts the intervals in `lens` long enough to gate at `bet`.
fn gated_count(lens: &[u64], bet: u64) -> u64 {
    lens.iter().filter(|&&len| GatingParams::gates_interval(bet, len)).count() as u64
}

/// Keep everything powered: idle intervals cost their full length and no
/// wake-ups are ever needed. The NoPG baseline as a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NoGating;

impl PowerPolicy for NoGating {
    fn label(&self) -> String {
        "no-gating".into()
    }

    fn walk_intervals(&self, all: &[u64], _waking: &[u64]) -> PolicyWalk {
        PolicyWalk {
            equivalent_cycles: all.iter().sum::<u64>() as f64,
            wake_stall_cycles: 0.0,
            gated_intervals: 0,
        }
    }
}

/// Oracle gating: every idle interval costs nothing and transitions are
/// free. The Ideal upper bound as a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IdealOff;

impl PowerPolicy for IdealOff {
    fn label(&self) -> String {
        "ideal-off".into()
    }

    fn walk_intervals(&self, all: &[u64], _waking: &[u64]) -> PolicyWalk {
        PolicyWalk {
            equivalent_cycles: 0.0,
            wake_stall_cycles: 0.0,
            gated_intervals: all.len() as u64,
        }
    }
}

/// The ReGate idle-interval walk ([`GatingParams::walk_idle_intervals`])
/// as a [`PowerPolicy`] implementation.
///
/// The walk prices intervals at (`bet`, `delay`, `leak`, `policy`); the
/// stall model is separate because the systolic array walks at PE-level
/// parameters while only *full-array* wake-ups stall the pipeline: waking
/// intervals at or above `stall_bet` each expose
/// `stall_delay × wake_exposure` cycles (`wake_exposure` models partial
/// overlap with execution, e.g. 0.5 for ICI and 0.25 for DMA wake-ups).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalGating {
    /// Break-even time of the gating transition pair, in cycles.
    pub bet: u64,
    /// Power-down/up delay, in cycles.
    pub delay: u64,
    /// Residual leakage while gated, as a fraction of full static power.
    pub leak: f64,
    /// How intervals are recognized and entered.
    pub policy: GatePolicy,
    /// Waking intervals at or above this length stall the pipeline.
    pub stall_bet: u64,
    /// Stall cycles charged per stalling wake-up.
    pub stall_delay: u64,
    /// Fraction of each wake-up delay exposed on the critical path.
    pub wake_exposure: f64,
}

impl PowerPolicy for IntervalGating {
    fn label(&self) -> String {
        format!("interval-gating(bet={}, delay={})", self.bet, self.delay)
    }

    fn walk_intervals(&self, all: &[u64], waking: &[u64]) -> PolicyWalk {
        let walk = GatingParams::walk_idle_intervals(
            all.iter().copied(),
            self.bet,
            self.delay,
            self.leak,
            self.policy,
        );
        let wakeups = gated_count(waking, self.stall_bet);
        PolicyWalk {
            equivalent_cycles: walk.equivalent_cycles,
            wake_stall_cycles: wakeups as f64 * self.stall_delay as f64 * self.wake_exposure,
            gated_intervals: walk.gated_intervals,
        }
    }
}

/// AUTOGATE-style clock gating: the clock tree stops toggling the moment a
/// component goes idle and restarts instantly, so there is no break-even
/// time and no exposed wake-up latency. Only the clock/dynamic share of
/// idle power is saved — the cells keep leaking — so every idle cycle
/// still costs `residual` equivalent full-power cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockGating {
    /// Fraction of idle power that survives clock gating (the leakage
    /// share; the saved complement is the clock-tree dynamic share).
    pub residual: f64,
}

impl PowerPolicy for ClockGating {
    fn label(&self) -> String {
        format!("clock-gating(residual={})", self.residual)
    }

    fn walk_intervals(&self, all: &[u64], _waking: &[u64]) -> PolicyWalk {
        PolicyWalk {
            equivalent_cycles: all.iter().sum::<u64>() as f64 * self.residual,
            wake_stall_cycles: 0.0,
            gated_intervals: all.len() as u64,
        }
    }

    fn consistency(&self) -> Vec<PolicyInconsistency> {
        let mut findings = Vec::new();
        if !(0.0..=1.0).contains(&self.residual) {
            findings.push(PolicyInconsistency {
                rule: PolicyRule::ResidualOutOfRange,
                message: format!(
                    "clock-gating residual {} outside [0, 1]: the surviving idle-power \
                     fraction cannot be negative or exceed the ungated cost",
                    self.residual
                ),
            });
        }
        findings
    }
}

/// Race-to-idle DVFS: idle intervals are spent at a reduced
/// voltage/frequency point instead of being gated, scaling their cost by
/// `scale` (covering both the frequency drop and the leakage reduction at
/// the lower voltage). No transition cost and no exposed latency — the
/// voltage ramp is assumed to hide under the idle interval itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsScaling {
    /// Idle-interval cost multiplier in `(0, 1]`.
    pub scale: f64,
}

impl PowerPolicy for DvfsScaling {
    fn label(&self) -> String {
        format!("dvfs(scale={})", self.scale)
    }

    fn walk_intervals(&self, all: &[u64], _waking: &[u64]) -> PolicyWalk {
        PolicyWalk {
            equivalent_cycles: all.iter().sum::<u64>() as f64 * self.scale,
            wake_stall_cycles: 0.0,
            gated_intervals: all.len() as u64,
        }
    }

    fn consistency(&self) -> Vec<PolicyInconsistency> {
        let mut findings = Vec::new();
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            findings.push(PolicyInconsistency {
                rule: PolicyRule::ScaleOutOfRange,
                message: format!(
                    "DVFS scale factor {} outside (0, 1]: a zero or negative scale claims \
                     free idleness and a scale above 1 makes DVFS worse than doing nothing",
                    self.scale
                ),
            });
        }
        findings
    }
}

/// ReGate-Base with tile-granular re-gating inside bursts (the overhead
/// edge the paper leaves open in Figure 19).
///
/// Plain Base gates the whole systolic array per idle interval and exposes
/// the full-array wake-up `delay` on every wake. The tile-grain variant
/// keeps the array-level decision (same `bet`/`delay`/`leak` walk) but
/// wakes tiles incrementally as the burst front advances, so:
///
/// * only `tile_delay` cycles (one tile's wake) are exposed per waking
///   interval instead of the full-array `delay`, and
/// * each gated interval pays one extra `2 × tile_delay` transition pair
///   of equivalent full-power cycles for the re-gate sweep at the burst
///   edge.
///
/// Net effect: wake-up overhead drops sharply, energy rises slightly —
/// exactly the trade Figure 19 prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileGrainRegating {
    /// Full-array break-even time, in cycles.
    pub bet: u64,
    /// Full-array power-down/up delay, in cycles.
    pub delay: u64,
    /// Residual leakage while gated.
    pub leak: f64,
    /// Wake delay of a single tile (PE column group), in cycles.
    pub tile_delay: u64,
}

impl PowerPolicy for TileGrainRegating {
    fn label(&self) -> String {
        format!("tile-grain-regating(bet={}, tile_delay={})", self.bet, self.tile_delay)
    }

    fn walk_intervals(&self, all: &[u64], waking: &[u64]) -> PolicyWalk {
        let mut walk = PolicyWalk::default();
        for &len in all {
            walk.equivalent_cycles += GatingParams::idle_interval_equivalent_cycles(
                len,
                self.bet,
                self.delay,
                self.leak,
                GatePolicy::IdleDetect,
            );
            if GatingParams::gates_interval(self.bet, len) {
                walk.gated_intervals += 1;
                // The re-gate sweep at the burst edge: tiles power back
                // down behind the advancing front and wake again ahead of
                // it, one extra transition pair per gated interval.
                walk.equivalent_cycles += 2.0 * self.tile_delay as f64;
            }
        }
        walk.wake_stall_cycles = (gated_count(waking, self.bet) * self.tile_delay) as f64;
        walk
    }

    fn consistency(&self) -> Vec<PolicyInconsistency> {
        let mut findings = Vec::new();
        if self.tile_delay > self.delay {
            findings.push(PolicyInconsistency {
                rule: PolicyRule::TransitionInconsistent,
                message: format!(
                    "tile wake delay {} exceeds the full-array delay {}: a tile is a \
                     fraction of the array and must wake no slower than all of it",
                    self.tile_delay, self.delay
                ),
            });
        }
        findings
    }
}

/// Contents-aware SRAM power-off: before a segment powers down, its dirty
/// contents are written back to HBM so nothing is lost, removing the
/// compiler's "only gate provably-dead segments" restriction.
///
/// Each gated interval pays `2 × delay + writeback_cycles` of equivalent
/// full-power cycles up front (the transition pair plus the write-back
/// stream), capped at the interval length, then leaks at `leak`. Wake-ups
/// restore contents lazily on demand, off the critical path, so no stall
/// cycles are exposed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteBackGating {
    /// Break-even time, in cycles. Must amortize the full entry cost.
    pub bet: u64,
    /// Power-down/up delay of the SRAM segment, in cycles.
    pub delay: u64,
    /// Residual leakage of the powered-off cells.
    pub leak: f64,
    /// Cycles to stream one segment's contents to HBM.
    pub writeback_cycles: u64,
    /// Segment size in bytes (for consistency checking).
    pub segment_bytes: u64,
    /// HBM streaming bandwidth in bytes per cycle (for consistency
    /// checking).
    pub bytes_per_cycle: f64,
}

impl WriteBackGating {
    /// Builds a write-back policy for `segment_bytes`-sized segments from
    /// the Table 3 off-mode parameters, deriving the write-back cost from
    /// the streaming bandwidth and stretching the BET until it amortizes
    /// the full entry cost.
    #[must_use]
    pub fn for_segment(params: &GatingParams, segment_bytes: u64, bytes_per_cycle: f64) -> Self {
        let writeback_cycles = (segment_bytes as f64 / bytes_per_cycle).ceil() as u64;
        let entry = 2 * params.sram_off_delay + writeback_cycles;
        Self {
            bet: params.sram_off_bet.max(entry + 1),
            delay: params.sram_off_delay,
            leak: params.leakage.sram_off,
            writeback_cycles,
            segment_bytes,
            bytes_per_cycle,
        }
    }
}

impl PowerPolicy for WriteBackGating {
    fn label(&self) -> String {
        format!("writeback-gating(bet={}, writeback={})", self.bet, self.writeback_cycles)
    }

    fn walk_intervals(&self, all: &[u64], _waking: &[u64]) -> PolicyWalk {
        let mut walk = PolicyWalk::default();
        for &len in all {
            let len_f = len as f64;
            if !GatingParams::gates_interval(self.bet, len) {
                walk.equivalent_cycles += len_f;
                continue;
            }
            walk.gated_intervals += 1;
            let entry = ((2 * self.delay + self.writeback_cycles) as f64).min(len_f);
            walk.equivalent_cycles += entry + (len_f - entry) * self.leak;
        }
        walk
    }

    fn consistency(&self) -> Vec<PolicyInconsistency> {
        let mut findings = Vec::new();
        let streaming_cycles = self.segment_bytes as f64 / self.bytes_per_cycle;
        if (self.writeback_cycles as f64) < streaming_cycles {
            findings.push(PolicyInconsistency {
                rule: PolicyRule::WritebackInconsistent,
                message: format!(
                    "write-back cost {} cycles cannot stream a {}-byte segment at {} B/cycle \
                     (needs at least {:.0} cycles)",
                    self.writeback_cycles,
                    self.segment_bytes,
                    self.bytes_per_cycle,
                    streaming_cycles.ceil()
                ),
            });
        }
        let entry = 2 * self.delay + self.writeback_cycles;
        if self.bet <= entry {
            findings.push(PolicyInconsistency {
                rule: PolicyRule::WritebackInconsistent,
                message: format!(
                    "break-even time {} does not amortize the entry cost {} (2 x delay {} + \
                     write-back {}): gating at the BET would cost more than staying on",
                    self.bet, entry, self.delay, self.writeback_cycles
                ),
            });
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVALS: [u64; 4] = [3, 50, 500, 10_000];

    #[test]
    fn no_gating_charges_full_idle_and_never_stalls() {
        let walk = NoGating.walk_intervals(&INTERVALS, &INTERVALS);
        assert_eq!(walk.equivalent_cycles, 10_553.0);
        assert_eq!(walk.wake_stall_cycles, 0.0);
        assert_eq!(walk.gated_intervals, 0);
    }

    #[test]
    fn ideal_off_charges_nothing() {
        let walk = IdealOff.walk_intervals(&INTERVALS, &INTERVALS);
        assert_eq!(walk.equivalent_cycles, 0.0);
        assert_eq!(walk.wake_stall_cycles, 0.0);
        assert_eq!(walk.gated_intervals, INTERVALS.len() as u64);
    }

    #[test]
    fn interval_gating_matches_the_raw_walk_and_prices_stalls_separately() {
        let policy = IntervalGating {
            bet: 100,
            delay: 10,
            leak: 0.03,
            policy: GatePolicy::IdleDetect,
            stall_bet: 400,
            stall_delay: 10,
            wake_exposure: 0.5,
        };
        let raw = GatingParams::walk_idle_intervals(
            INTERVALS.iter().copied(),
            100,
            10,
            0.03,
            GatePolicy::IdleDetect,
        );
        let walk = policy.walk_intervals(&INTERVALS, &INTERVALS);
        assert_eq!(walk.equivalent_cycles, raw.equivalent_cycles);
        assert_eq!(walk.gated_intervals, raw.gated_intervals);
        // Two waking intervals (500 and 10 000) reach the stall BET of 400;
        // each exposes half of the 10-cycle delay.
        assert_eq!(walk.wake_stall_cycles, 2.0 * 10.0 * 0.5);
    }

    #[test]
    fn clock_gating_scales_idle_by_the_residual_with_zero_stall() {
        let policy = ClockGating { residual: 0.55 };
        let walk = policy.walk_intervals(&INTERVALS, &INTERVALS);
        assert_eq!(walk.equivalent_cycles, 10_553.0 * 0.55);
        assert_eq!(walk.wake_stall_cycles, 0.0);
        assert!(policy.consistency().is_empty());
        assert_eq!(
            ClockGating { residual: 1.5 }.consistency()[0].rule,
            PolicyRule::ResidualOutOfRange
        );
        assert_eq!(
            ClockGating { residual: -0.1 }.consistency()[0].rule,
            PolicyRule::ResidualOutOfRange
        );
    }

    #[test]
    fn dvfs_scales_idle_and_rejects_out_of_range_factors() {
        let policy = DvfsScaling { scale: 0.6 };
        let walk = policy.walk_intervals(&INTERVALS, &INTERVALS);
        assert_eq!(walk.equivalent_cycles, 10_553.0 * 0.6);
        assert!(policy.consistency().is_empty());
        assert_eq!(DvfsScaling { scale: 0.0 }.consistency()[0].rule, PolicyRule::ScaleOutOfRange);
        assert_eq!(DvfsScaling { scale: 1.5 }.consistency()[0].rule, PolicyRule::ScaleOutOfRange);
    }

    #[test]
    fn tile_grain_exposes_tile_delay_but_pays_extra_transitions() {
        let full = IntervalGating {
            bet: 469,
            delay: 10,
            leak: 0.03,
            policy: GatePolicy::IdleDetect,
            stall_bet: 469,
            stall_delay: 10,
            wake_exposure: 1.0,
        };
        let tile = TileGrainRegating { bet: 469, delay: 10, leak: 0.03, tile_delay: 1 };
        let full_walk = full.walk_intervals(&INTERVALS, &INTERVALS);
        let tile_walk = tile.walk_intervals(&INTERVALS, &INTERVALS);
        // Two intervals gate (500, 10 000): the tile-grain variant pays an
        // extra 2 x tile_delay each but stalls at 1 cycle per wake instead
        // of 10.
        assert_eq!(tile_walk.gated_intervals, full_walk.gated_intervals);
        assert_eq!(tile_walk.equivalent_cycles, full_walk.equivalent_cycles + 2.0 * 2.0);
        assert_eq!(full_walk.wake_stall_cycles, 20.0);
        assert_eq!(tile_walk.wake_stall_cycles, 2.0);
        assert!(tile.consistency().is_empty());
        assert!(!TileGrainRegating { bet: 469, delay: 1, leak: 0.03, tile_delay: 10 }
            .consistency()
            .is_empty());
    }

    #[test]
    fn writeback_gating_charges_the_writeback_before_the_off_leak() {
        let params = GatingParams::default();
        let policy = WriteBackGating::for_segment(&params, 4096, 64.0);
        assert_eq!(policy.writeback_cycles, 64);
        assert!(policy.consistency().is_empty());
        // The entry cost (2 x 10 + 64 = 84) exceeds the Table 3 off BET of
        // 82, so `for_segment` stretches the BET to 85.
        assert_eq!(policy.bet, 85);

        // A short gated interval is capped at its own length.
        let short = policy.walk_intervals(&[policy.bet], &[]);
        let entry = (2 * policy.delay + policy.writeback_cycles) as f64;
        assert_eq!(short.equivalent_cycles, entry + (policy.bet as f64 - entry) * policy.leak);
        // Sub-BET intervals stay powered at full cost.
        let sub = policy.walk_intervals(&[policy.bet - 1], &[]);
        assert_eq!(sub.equivalent_cycles, (policy.bet - 1) as f64);
        // No stalls: restore is lazy and off the critical path.
        assert_eq!(short.wake_stall_cycles, 0.0);
    }

    #[test]
    fn writeback_consistency_catches_understated_costs() {
        let inconsistent = WriteBackGating {
            bet: 1_000,
            delay: 10,
            leak: 0.002,
            writeback_cycles: 8,
            segment_bytes: 4096,
            bytes_per_cycle: 64.0,
        };
        let findings = inconsistent.consistency();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, PolicyRule::WritebackInconsistent);

        let unamortized = WriteBackGating {
            bet: 80,
            delay: 10,
            leak: 0.002,
            writeback_cycles: 64,
            segment_bytes: 4096,
            bytes_per_cycle: 64.0,
        };
        assert!(unamortized
            .consistency()
            .iter()
            .any(|f| f.rule == PolicyRule::WritebackInconsistent));
    }
}
