//! # npu-power — power, energy, and carbon models for NPU chips
//!
//! Implements the McPAT/NeuroMeter-style modelling methodology of the paper
//! (§4.4): per-component area is derived from microarchitectural parameters
//! and the technology node, static (leakage) power follows area and the
//! node's leakage density, and dynamic energy follows per-operation energy
//! costs. Combined with the activity statistics from `npu-sim`, this yields
//! the static/dynamic energy breakdowns of Figure 3 and every downstream
//! evaluation figure.
//!
//! The crate also carries:
//!
//! * [`gating`] — the synthesized power-gating parameters of Table 3
//!   (power-on/off delays and break-even times per component), the leakage
//!   ratios of gated/sleeping logic, and the area-overhead accounting;
//! * [`carbon`] — the operational/embodied carbon model of §6.6, including
//!   the device-lifespan sweep of Figure 25.
//!
//! ## Example
//!
//! ```
//! use npu_arch::{ComponentKind, NpuGeneration, NpuSpec};
//! use npu_power::PowerModel;
//!
//! let spec = NpuSpec::generation(NpuGeneration::D);
//! let model = PowerModel::new(&spec);
//! // Peripheral logic is the biggest static-power consumer (paper §3).
//! assert!(model.static_power_w(ComponentKind::Other) > model.static_power_w(ComponentKind::Sa));
//! assert!(model.total_static_power_w() < spec.tdp_watts);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod carbon;
pub mod energy;
pub mod gating;
pub mod policy;
pub mod power;
pub mod telemetry;

pub use carbon::{CarbonModel, LifespanPoint};
pub use energy::{ComponentEnergy, EnergyBreakdown};
pub use gating::{
    GatePolicy, GatedIdleSummary, GatingInconsistency, GatingParams, GatingRule, LeakageRatios,
    SramGateMode, SramGating,
};
pub use policy::{
    ClockGating, DvfsScaling, IdealOff, IntervalGating, NoGating, PolicyInconsistency, PolicyRule,
    PolicyWalk, PowerPolicy, TileGrainRegating, WriteBackGating,
};
pub use power::{PowerModel, DATACENTER_PUE, NPU_DUTY_CYCLE};
pub use telemetry::{ComponentGating, ComponentWaveform, PowerStep, PowerTimeline};
