//! Energy accounting: turning component activity into static/dynamic energy
//! per component (the Figure 3 breakdown), before any power gating.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::ComponentKind;

use crate::power::{PowerModel, DATACENTER_PUE, NPU_DUTY_CYCLE};

/// Activity counters of one chip over one unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChipUsage {
    /// Wall-clock busy time of the chip in seconds.
    pub busy_seconds: f64,
    /// FLOPs executed on the systolic arrays.
    pub sa_flops: f64,
    /// FLOPs executed on the vector units.
    pub vu_flops: f64,
    /// Bytes moved over the HBM interface.
    pub hbm_bytes: f64,
    /// Bytes moved over the ICI links.
    pub ici_bytes: f64,
    /// Bytes moved through the SRAM (compute + DMA sides).
    pub sram_bytes: f64,
    /// Bytes moved by the DMA engine.
    pub dma_bytes: f64,
}

/// Static and dynamic energy of one component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentEnergy {
    /// Static (leakage) energy in joules.
    pub static_j: f64,
    /// Dynamic (switching) energy in joules.
    pub dynamic_j: f64,
}

impl ComponentEnergy {
    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.static_j + self.dynamic_j
    }
}

/// Per-component energy breakdown of one chip over one unit of work.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy per component kind.
    pub components: BTreeMap<ComponentKind, ComponentEnergy>,
    /// Busy wall-clock time in seconds.
    pub busy_seconds: f64,
    /// Idle (powered on, no job) time attributed to this unit of work, in
    /// seconds, derived from the duty cycle.
    pub idle_seconds: f64,
    /// Static energy burned during the idle time, in joules.
    pub idle_static_j: f64,
}

impl EnergyBreakdown {
    /// Computes the baseline (no power gating) breakdown, attributing the
    /// out-of-duty-cycle idle leakage from the paper's fleet-average duty
    /// cycle ([`NPU_DUTY_CYCLE`]).
    #[must_use]
    pub fn no_power_gating(model: &PowerModel, usage: &ChipUsage) -> Self {
        Self::no_power_gating_with_duty(model, usage, NPU_DUTY_CYCLE)
    }

    /// Baseline breakdown under an explicit duty cycle — the fraction of
    /// wall-clock time the chip spends inside the simulated window.
    ///
    /// The scalar out-of-duty-cycle term models idleness the simulation
    /// *cannot see* (the chip sitting between traces). The serving layer
    /// simulates request arrivals directly, so its inter-request gaps are
    /// already inside `busy_seconds` and walked by the interval-accurate
    /// gating model; it passes `duty_cycle = 1.0` here to avoid charging
    /// the same idleness twice, and instead *measures* a duty cycle from
    /// the schedule to cross-check the paper's fleet average.
    ///
    /// # Panics
    ///
    /// Panics if `duty_cycle` is not in `(0, 1]`.
    #[must_use]
    pub fn no_power_gating_with_duty(
        model: &PowerModel,
        usage: &ChipUsage,
        duty_cycle: f64,
    ) -> Self {
        assert!(
            duty_cycle > 0.0 && duty_cycle <= 1.0,
            "duty cycle must be in (0, 1], got {duty_cycle}"
        );
        let mut components = BTreeMap::new();
        for kind in ComponentKind::ALL {
            let static_j = model.static_power_w(kind) * usage.busy_seconds;
            let dynamic_j = match kind {
                ComponentKind::Sa => model.sa_energy_per_flop() * usage.sa_flops,
                ComponentKind::Vu => model.vu_energy_per_flop() * usage.vu_flops,
                ComponentKind::Sram => model.sram_energy_per_byte() * usage.sram_bytes,
                ComponentKind::Hbm => model.hbm_energy_per_byte() * usage.hbm_bytes,
                ComponentKind::Ici => model.ici_energy_per_byte() * usage.ici_bytes,
                ComponentKind::Dma => model.dma_energy_per_byte() * usage.dma_bytes,
                ComponentKind::Other => model.other_dynamic_power_w() * usage.busy_seconds,
            };
            components.insert(kind, ComponentEnergy { static_j, dynamic_j });
        }
        // A chip at 60% duty cycle spends (1-duty)/duty idle seconds per
        // busy second; during that time the whole chip leaks.
        let idle_seconds = usage.busy_seconds * (1.0 - duty_cycle) / duty_cycle;
        let idle_static_j = model.idle_power_w() * idle_seconds;
        EnergyBreakdown {
            components,
            busy_seconds: usage.busy_seconds,
            idle_seconds,
            idle_static_j,
        }
    }

    /// Builds a gated design's breakdown from the `NoPG` baseline.
    ///
    /// Power gating removes leakage, not useful work: each component keeps
    /// the baseline's dynamic energy, while its static energy is charged
    /// over its *equivalent full-power seconds* — busy time, plus gated
    /// time weighted by the residual leakage, plus idle-detection windows
    /// and transition costs, as accumulated by walking the component's
    /// real idle intervals. Wake-up stalls extend the execution by
    /// `stall_seconds`; every component is (conservatively) charged full
    /// static power for them.
    #[must_use]
    pub fn gated(
        baseline: &EnergyBreakdown,
        model: &PowerModel,
        equivalent_seconds: &BTreeMap<ComponentKind, f64>,
        stall_seconds: f64,
        idle_static_j: f64,
    ) -> Self {
        let mut components = BTreeMap::new();
        for kind in ComponentKind::ALL {
            let dynamic_j = baseline.component(kind).dynamic_j;
            let eq_s = equivalent_seconds.get(&kind).copied().unwrap_or(0.0);
            let static_j = model.static_power_w(kind) * (eq_s + stall_seconds);
            components.insert(kind, ComponentEnergy { static_j, dynamic_j });
        }
        EnergyBreakdown {
            components,
            busy_seconds: baseline.busy_seconds + stall_seconds,
            idle_seconds: baseline.idle_seconds,
            idle_static_j,
        }
    }

    /// Energy of one component.
    #[must_use]
    pub fn component(&self, kind: ComponentKind) -> ComponentEnergy {
        self.components.get(&kind).copied().unwrap_or_default()
    }

    /// Total static energy while busy, in joules.
    #[must_use]
    pub fn static_j(&self) -> f64 {
        self.components.values().map(|c| c.static_j).sum()
    }

    /// Total dynamic energy while busy, in joules.
    #[must_use]
    pub fn dynamic_j(&self) -> f64 {
        self.components.values().map(|c| c.dynamic_j).sum()
    }

    /// Total busy energy (static + dynamic, excluding idle time), in joules.
    ///
    /// This matches the paper's default reporting, where "the reported
    /// numbers exclude the idle portion".
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.static_j() + self.dynamic_j()
    }

    /// Total energy including the idle-time leakage, in joules.
    #[must_use]
    pub fn total_with_idle_j(&self) -> f64 {
        self.total_j() + self.idle_static_j
    }

    /// Facility-level energy (including idle time and the datacenter PUE),
    /// in joules.
    #[must_use]
    pub fn facility_j(&self) -> f64 {
        self.total_with_idle_j() * DATACENTER_PUE
    }

    /// Fraction of busy energy that is static.
    #[must_use]
    pub fn static_fraction(&self) -> f64 {
        let total = self.total_j();
        if total == 0.0 {
            0.0
        } else {
            self.static_j() / total
        }
    }

    /// Average power while busy, in watts.
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        if self.busy_seconds == 0.0 {
            0.0
        } else {
            self.total_j() / self.busy_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{NpuGeneration, NpuSpec};

    fn usage_compute_bound(spec: &NpuSpec) -> ChipUsage {
        let busy = 1.0;
        ChipUsage {
            busy_seconds: busy,
            sa_flops: spec.peak_flops() * 0.8,
            vu_flops: spec.peak_vu_flops() * 0.1,
            hbm_bytes: spec.hbm_bandwidth_gbps * 1e9 * 0.2,
            ici_bytes: 0.0,
            sram_bytes: spec.hbm_bandwidth_gbps * 1e9 * 0.4,
            dma_bytes: spec.hbm_bandwidth_gbps * 1e9 * 0.2,
        }
    }

    #[test]
    fn static_fraction_in_paper_range() {
        // The paper: when the chip is busy, 30%-72% of energy is static.
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let busy_heavy = EnergyBreakdown::no_power_gating(&model, &usage_compute_bound(&spec));
        assert!(
            (0.25..=0.75).contains(&busy_heavy.static_fraction()),
            "static fraction {}",
            busy_heavy.static_fraction()
        );
        // A memory-bound usage has even higher static share.
        let light = ChipUsage {
            busy_seconds: 1.0,
            sa_flops: spec.peak_flops() * 0.01,
            vu_flops: spec.peak_vu_flops() * 0.05,
            hbm_bytes: spec.hbm_bandwidth_gbps * 1e9 * 0.9,
            ici_bytes: 0.0,
            sram_bytes: spec.hbm_bandwidth_gbps * 1e9 * 1.8,
            dma_bytes: spec.hbm_bandwidth_gbps * 1e9 * 0.9,
        };
        let mem_bound = EnergyBreakdown::no_power_gating(&model, &light);
        assert!(mem_bound.static_fraction() > busy_heavy.static_fraction());
    }

    #[test]
    fn average_power_stays_below_tdp() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let b = EnergyBreakdown::no_power_gating(&model, &usage_compute_bound(&spec));
        assert!(b.average_power_w() < spec.tdp_watts);
        assert!(b.average_power_w() > 0.3 * spec.tdp_watts);
    }

    #[test]
    fn idle_energy_matches_duty_cycle() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let b = EnergyBreakdown::no_power_gating(&model, &usage_compute_bound(&spec));
        // 60% duty cycle -> 2/3 of a busy second of idle time per busy second.
        assert!((b.idle_seconds - 2.0 / 3.0).abs() < 1e-9);
        assert!(b.idle_static_j > 0.0);
        assert!(b.total_with_idle_j() > b.total_j());
        assert!(b.facility_j() > b.total_with_idle_j());
        // The paper: 17%-32% of total energy is wasted on chip idleness.
        let idle_fraction = b.idle_static_j / b.total_with_idle_j();
        assert!((0.1..=0.45).contains(&idle_fraction), "idle fraction {idle_fraction}");
    }

    #[test]
    fn unit_duty_cycle_has_no_out_of_window_idle() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let usage = usage_compute_bound(&spec);
        let full = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, 1.0);
        assert_eq!(full.idle_seconds, 0.0);
        assert_eq!(full.idle_static_j, 0.0);
        assert_eq!(full.total_with_idle_j(), full.total_j());
        // A lower duty cycle attributes strictly more idle leakage.
        let half = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, 0.5);
        assert!((half.idle_seconds - usage.busy_seconds).abs() < 1e-12);
        assert!(half.idle_static_j > 0.0);
        // The default delegates to the paper's fleet average.
        let default = EnergyBreakdown::no_power_gating(&model, &usage);
        let explicit = EnergyBreakdown::no_power_gating_with_duty(&model, &usage, NPU_DUTY_CYCLE);
        assert_eq!(default, explicit);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_is_rejected() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let _ = EnergyBreakdown::no_power_gating_with_duty(&model, &ChipUsage::default(), 0.0);
    }

    #[test]
    fn gated_breakdown_preserves_dynamic_and_scales_static() {
        let spec = NpuSpec::generation(NpuGeneration::D);
        let model = PowerModel::new(&spec);
        let baseline = EnergyBreakdown::no_power_gating(&model, &usage_compute_bound(&spec));
        // Every component fully powered for half the baseline time.
        let mut eq = BTreeMap::new();
        for kind in ComponentKind::ALL {
            eq.insert(kind, 0.5 * baseline.busy_seconds);
        }
        let gated = EnergyBreakdown::gated(&baseline, &model, &eq, 0.0, 1.0);
        assert!((gated.dynamic_j() - baseline.dynamic_j()).abs() < 1e-9);
        assert!((gated.static_j() - 0.5 * baseline.static_j()).abs() < 1e-6);
        assert!((gated.idle_static_j - 1.0).abs() < 1e-12);
        // A wake-up stall charges every component at full static power.
        let stalled = EnergyBreakdown::gated(&baseline, &model, &eq, 0.1, 1.0);
        let expected = 0.5 * baseline.static_j() + 0.1 * model.total_static_power_w();
        assert!((stalled.static_j() - expected).abs() < 1e-6);
        assert!(stalled.busy_seconds > gated.busy_seconds);
    }

    #[test]
    fn component_accessor_and_totals_agree() {
        let spec = NpuSpec::generation(NpuGeneration::A);
        let model = PowerModel::new(&spec);
        let b = EnergyBreakdown::no_power_gating(&model, &usage_compute_bound(&spec));
        let sum: f64 = ComponentKind::ALL.iter().map(|&k| b.component(k).total_j()).sum();
        assert!((sum - b.total_j()).abs() < 1e-9);
        assert!(b.component(ComponentKind::Other).dynamic_j > 0.0);
    }

    #[test]
    fn empty_usage_has_zero_energy() {
        let spec = NpuSpec::generation(NpuGeneration::C);
        let model = PowerModel::new(&spec);
        let b = EnergyBreakdown::no_power_gating(&model, &ChipUsage::default());
        assert_eq!(b.total_j(), 0.0);
        assert_eq!(b.static_fraction(), 0.0);
        assert_eq!(b.average_power_w(), 0.0);
    }
}
