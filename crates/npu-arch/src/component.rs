//! Chip component taxonomy and power-domain identifiers.
//!
//! ReGate manages power gating per component instance (a specific systolic
//! array, a specific vector unit, an SRAM segment, the HBM controller & PHY,
//! the ICI controller & PHY). [`ComponentKind`] enumerates the kinds studied
//! in the paper; [`ComponentId`] names a concrete instance inside a chip;
//! [`PowerDomain`] names a gateable region (which can be finer than an
//! instance, e.g. one PE row or one SRAM segment).

use serde::{Deserialize, Serialize};

/// Kind of hardware component on an NPU chip (paper §2.1 and Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Systolic array (matrix unit).
    Sa,
    /// SIMD vector unit.
    Vu,
    /// On-chip SRAM scratchpad.
    Sram,
    /// HBM controller & PHY (the off-chip DRAM itself is modelled separately).
    Hbm,
    /// Inter-chip interconnect controller & PHY.
    Ici,
    /// DMA engine that moves data between HBM/ICI and SRAM.
    Dma,
    /// Peripheral logic (chip management, control, PCIe, misc. datapaths);
    /// never power gated by ReGate.
    Other,
}

impl ComponentKind {
    /// All component kinds, in the order used by the paper's breakdown plots.
    pub const ALL: [ComponentKind; 7] = [
        ComponentKind::Sa,
        ComponentKind::Vu,
        ComponentKind::Sram,
        ComponentKind::Ici,
        ComponentKind::Hbm,
        ComponentKind::Dma,
        ComponentKind::Other,
    ];

    /// The components ReGate considers for power gating (everything except
    /// the peripheral "other" logic, §3 "Other components").
    pub const GATEABLE: [ComponentKind; 6] = [
        ComponentKind::Sa,
        ComponentKind::Vu,
        ComponentKind::Sram,
        ComponentKind::Ici,
        ComponentKind::Hbm,
        ComponentKind::Dma,
    ];

    /// Short label used in reports and figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Sa => "SA",
            ComponentKind::Vu => "VU",
            ComponentKind::Sram => "SRAM",
            ComponentKind::Hbm => "HBM",
            ComponentKind::Ici => "ICI",
            ComponentKind::Dma => "DMA",
            ComponentKind::Other => "Other",
        }
    }

    /// Whether ReGate ever power gates this kind of component.
    #[must_use]
    pub fn is_gateable(self) -> bool {
        !matches!(self, ComponentKind::Other)
    }

    /// Whether the component retains architectural state that must survive
    /// power gating (only the SRAM does; execution units are stateless
    /// between operators).
    #[must_use]
    pub fn retains_state(self) -> bool {
        matches!(self, ComponentKind::Sram)
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a concrete component instance inside one chip.
///
/// The `index` distinguishes multiple instances of the same kind (e.g. SA 0
/// through SA 7 on NPU-D); singleton components use index 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId {
    /// Kind of the component.
    pub kind: ComponentKind,
    /// Instance index within the chip.
    pub index: usize,
}

impl ComponentId {
    /// Creates a component identifier.
    #[must_use]
    pub fn new(kind: ComponentKind, index: usize) -> Self {
        ComponentId { kind, index }
    }

    /// Convenience constructor for systolic array `index`.
    #[must_use]
    pub fn sa(index: usize) -> Self {
        Self::new(ComponentKind::Sa, index)
    }

    /// Convenience constructor for vector unit `index`.
    #[must_use]
    pub fn vu(index: usize) -> Self {
        Self::new(ComponentKind::Vu, index)
    }

    /// The (single) SRAM scratchpad.
    #[must_use]
    pub fn sram() -> Self {
        Self::new(ComponentKind::Sram, 0)
    }

    /// The (single) HBM controller & PHY.
    #[must_use]
    pub fn hbm() -> Self {
        Self::new(ComponentKind::Hbm, 0)
    }

    /// The (single) ICI controller & PHY.
    #[must_use]
    pub fn ici() -> Self {
        Self::new(ComponentKind::Ici, 0)
    }

    /// The (single) DMA engine.
    #[must_use]
    pub fn dma() -> Self {
        Self::new(ComponentKind::Dma, 0)
    }

    /// The aggregated peripheral logic.
    #[must_use]
    pub fn other() -> Self {
        Self::new(ComponentKind::Other, 0)
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.kind.label(), self.index)
    }
}

/// A gateable power domain, possibly finer-grained than a component.
///
/// ReGate power gates systolic arrays at processing-element granularity and
/// SRAM at 4 KiB-segment granularity; the remaining components are gated as
/// whole units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerDomain {
    /// An entire component instance.
    Component(ComponentId),
    /// One processing element of a systolic array (`sa`, `row`, `col`).
    ProcessingElement {
        /// Systolic array instance index.
        sa: usize,
        /// PE row (0-based, top to bottom in the weight-stationary layout).
        row: usize,
        /// PE column (0-based, left to right).
        col: usize,
    },
    /// One row of PEs in a systolic array.
    SaRow {
        /// Systolic array instance index.
        sa: usize,
        /// Row index.
        row: usize,
    },
    /// One column of PEs in a systolic array.
    SaColumn {
        /// Systolic array instance index.
        sa: usize,
        /// Column index.
        col: usize,
    },
    /// One SRAM segment (`segment_bytes`-sized slice of the scratchpad).
    SramSegment {
        /// Segment index within the scratchpad.
        segment: usize,
    },
}

impl PowerDomain {
    /// The component kind this power domain belongs to.
    #[must_use]
    pub fn kind(&self) -> ComponentKind {
        match self {
            PowerDomain::Component(id) => id.kind,
            PowerDomain::ProcessingElement { .. }
            | PowerDomain::SaRow { .. }
            | PowerDomain::SaColumn { .. } => ComponentKind::Sa,
            PowerDomain::SramSegment { .. } => ComponentKind::Sram,
        }
    }
}

impl std::fmt::Display for PowerDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerDomain::Component(id) => write!(f, "{id}"),
            PowerDomain::ProcessingElement { sa, row, col } => {
                write!(f, "SA{sa}.PE[{row},{col}]")
            }
            PowerDomain::SaRow { sa, row } => write!(f, "SA{sa}.row{row}"),
            PowerDomain::SaColumn { sa, col } => write!(f, "SA{sa}.col{col}"),
            PowerDomain::SramSegment { segment } => write!(f, "SRAM.seg{segment}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_are_labelled() {
        for kind in ComponentKind::ALL {
            assert!(!kind.label().is_empty());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn gateable_excludes_other() {
        assert!(!ComponentKind::Other.is_gateable());
        for kind in ComponentKind::GATEABLE {
            assert!(kind.is_gateable());
        }
        assert_eq!(ComponentKind::GATEABLE.len(), ComponentKind::ALL.len() - 1);
    }

    #[test]
    fn only_sram_retains_state() {
        for kind in ComponentKind::ALL {
            assert_eq!(kind.retains_state(), kind == ComponentKind::Sram);
        }
    }

    #[test]
    fn component_id_display() {
        assert_eq!(ComponentId::sa(3).to_string(), "SA3");
        assert_eq!(ComponentId::vu(1).to_string(), "VU1");
        assert_eq!(ComponentId::sram().to_string(), "SRAM0");
        assert_eq!(ComponentId::hbm().to_string(), "HBM0");
    }

    #[test]
    fn power_domain_kind() {
        assert_eq!(
            PowerDomain::ProcessingElement { sa: 0, row: 1, col: 2 }.kind(),
            ComponentKind::Sa
        );
        assert_eq!(PowerDomain::SramSegment { segment: 7 }.kind(), ComponentKind::Sram);
        assert_eq!(PowerDomain::Component(ComponentId::ici()).kind(), ComponentKind::Ici);
    }

    #[test]
    fn power_domain_display() {
        assert_eq!(
            PowerDomain::ProcessingElement { sa: 2, row: 0, col: 5 }.to_string(),
            "SA2.PE[0,5]"
        );
        assert_eq!(PowerDomain::SramSegment { segment: 12 }.to_string(), "SRAM.seg12");
        assert_eq!(PowerDomain::SaRow { sa: 1, row: 3 }.to_string(), "SA1.row3");
    }

    #[test]
    fn component_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ComponentId::sa(0));
        set.insert(ComponentId::sa(1));
        set.insert(ComponentId::sa(0));
        assert_eq!(set.len(), 2);
        assert!(ComponentId::sa(0) < ComponentId::sa(1));
    }
}
