//! NPU chip generation specifications (paper Table 2).
//!
//! NPU-A/B/C/D are derived from TPUv2/v3/v4/v5p; NPU-E is a projected
//! TPUv6p-class generation. Parameters marked with `*` in the paper are
//! inferred from public data and carried over verbatim here.

use serde::{Deserialize, Serialize};

use crate::memory::{HbmKind, SramGeometry};
use crate::topology::TorusKind;

/// Silicon technology node of an NPU generation.
///
/// The technology node drives the static-power scaling factors in the
/// `npu-power` crate (leakage per mm² grows, relatively, as feature size
/// shrinks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TechnologyNode {
    /// 16 nm FinFET (NPU-A, NPU-B).
    N16,
    /// 7 nm FinFET (NPU-C, NPU-D).
    N7,
    /// 4 nm class node (projected NPU-E).
    N4,
}

impl TechnologyNode {
    /// Nominal feature size in nanometres.
    #[must_use]
    pub fn feature_nm(self) -> f64 {
        match self {
            TechnologyNode::N16 => 16.0,
            TechnologyNode::N7 => 7.0,
            TechnologyNode::N4 => 4.0,
        }
    }

    /// Relative logic area density versus the 16 nm node (higher is denser).
    ///
    /// Used by the area model: the same microarchitecture occupies
    /// `1 / density` of the 16 nm area on a newer node.
    #[must_use]
    pub fn density_vs_16nm(self) -> f64 {
        match self {
            TechnologyNode::N16 => 1.0,
            TechnologyNode::N7 => 3.3,
            TechnologyNode::N4 => 5.6,
        }
    }

    /// Relative leakage power per unit area versus the 16 nm node.
    ///
    /// Leakage per transistor shrinks more slowly than area, so leakage per
    /// mm² effectively rises on newer nodes; this captures the paper's
    /// observation that static power remains a major contributor despite
    /// FinFET/GAA-FET.
    #[must_use]
    pub fn leakage_per_area_vs_16nm(self) -> f64 {
        match self {
            TechnologyNode::N16 => 1.0,
            TechnologyNode::N7 => 1.9,
            TechnologyNode::N4 => 2.6,
        }
    }

    /// Relative dynamic energy per operation versus the 16 nm node
    /// (lower is better).
    #[must_use]
    pub fn dynamic_energy_vs_16nm(self) -> f64 {
        match self {
            TechnologyNode::N16 => 1.0,
            TechnologyNode::N7 => 0.52,
            TechnologyNode::N4 => 0.38,
        }
    }

    /// Nominal supply voltage in volts.
    #[must_use]
    pub fn nominal_vdd(self) -> f64 {
        match self {
            TechnologyNode::N16 => 0.80,
            TechnologyNode::N7 => 0.75,
            TechnologyNode::N4 => 0.70,
        }
    }
}

impl std::fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechnologyNode::N16 => write!(f, "16nm"),
            TechnologyNode::N7 => write!(f, "7nm"),
            TechnologyNode::N4 => write!(f, "4nm"),
        }
    }
}

/// NPU chip generation identifier (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NpuGeneration {
    /// NPU-A, derived from TPUv2 (2017, 16 nm).
    A,
    /// NPU-B, derived from TPUv3 (2018, 16 nm).
    B,
    /// NPU-C, derived from TPUv4 (2020, 7 nm).
    C,
    /// NPU-D, derived from TPUv5p (2023, 7 nm).
    D,
    /// NPU-E, a projected TPUv6p-class generation (4 nm).
    E,
}

impl NpuGeneration {
    /// All generations in deployment order.
    pub const ALL: [NpuGeneration; 5] =
        [NpuGeneration::A, NpuGeneration::B, NpuGeneration::C, NpuGeneration::D, NpuGeneration::E];

    /// The four generations evaluated in the paper's characterization (§3),
    /// which excludes the projected NPU-E.
    pub const DEPLOYED: [NpuGeneration; 4] =
        [NpuGeneration::A, NpuGeneration::B, NpuGeneration::C, NpuGeneration::D];

    /// Single-letter label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NpuGeneration::A => "A",
            NpuGeneration::B => "B",
            NpuGeneration::C => "C",
            NpuGeneration::D => "D",
            NpuGeneration::E => "E",
        }
    }
}

impl std::fmt::Display for NpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NPU-{}", self.label())
    }
}

/// Full architectural specification of one NPU generation.
///
/// Field values follow Table 2 of the paper. Derived quantities (peak FLOPs,
/// bandwidth in bytes/cycle, …) are provided as methods so that every crate
/// computes them consistently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuSpec {
    /// Which generation this spec describes.
    pub generation: NpuGeneration,
    /// First deployment year (`None` for the projected NPU-E).
    pub deployment_year: Option<u32>,
    /// Silicon technology node.
    pub technology: TechnologyNode,
    /// Core clock frequency in MHz.
    pub frequency_mhz: u64,
    /// Width of a (square) systolic array in processing elements.
    pub sa_width: usize,
    /// Number of systolic arrays per chip.
    pub num_sa: usize,
    /// Number of vector units per chip.
    pub num_vu: usize,
    /// SIMD lanes per vector unit (the paper's VUs are 8×128 SIMD units).
    pub vu_lanes: usize,
    /// Sub-lanes per SIMD lane (8 in the 8×128 configuration).
    pub vu_sublanes: usize,
    /// On-chip SRAM (scratchpad) capacity in MiB.
    pub sram_mib: usize,
    /// Kind of HBM attached to the chip.
    pub hbm_kind: HbmKind,
    /// HBM bandwidth in GB/s.
    pub hbm_bandwidth_gbps: f64,
    /// HBM capacity in GiB.
    pub hbm_gib: usize,
    /// Inter-chip-interconnect bandwidth per link in GB/s.
    pub ici_link_gbps: f64,
    /// Number of ICI links per chip.
    pub ici_links: usize,
    /// Pod topology formed by the ICI links.
    pub ici_topology: TorusKind,
    /// Thermal design power of the chip in watts (inferred from public data).
    pub tdp_watts: f64,
}

impl NpuSpec {
    /// Returns the specification of a given NPU generation (paper Table 2).
    #[must_use]
    pub fn generation(generation: NpuGeneration) -> Self {
        match generation {
            NpuGeneration::A => NpuSpec {
                generation,
                deployment_year: Some(2017),
                technology: TechnologyNode::N16,
                frequency_mhz: 700,
                sa_width: 128,
                num_sa: 2,
                num_vu: 4,
                vu_lanes: 128,
                vu_sublanes: 8,
                sram_mib: 32,
                hbm_kind: HbmKind::Hbm2,
                hbm_bandwidth_gbps: 600.0,
                hbm_gib: 16,
                ici_link_gbps: 62.0,
                ici_links: 4,
                ici_topology: TorusKind::Torus2D,
                tdp_watts: 280.0,
            },
            NpuGeneration::B => NpuSpec {
                generation,
                deployment_year: Some(2018),
                technology: TechnologyNode::N16,
                frequency_mhz: 940,
                sa_width: 128,
                num_sa: 4,
                num_vu: 4,
                vu_lanes: 128,
                vu_sublanes: 8,
                sram_mib: 32,
                hbm_kind: HbmKind::Hbm2,
                hbm_bandwidth_gbps: 900.0,
                hbm_gib: 32,
                ici_link_gbps: 70.0,
                ici_links: 4,
                ici_topology: TorusKind::Torus2D,
                tdp_watts: 450.0,
            },
            NpuGeneration::C => NpuSpec {
                generation,
                deployment_year: Some(2020),
                technology: TechnologyNode::N7,
                frequency_mhz: 1050,
                sa_width: 128,
                num_sa: 8,
                num_vu: 4,
                vu_lanes: 128,
                vu_sublanes: 8,
                sram_mib: 128,
                hbm_kind: HbmKind::Hbm2,
                hbm_bandwidth_gbps: 1200.0,
                hbm_gib: 32,
                ici_link_gbps: 50.0,
                ici_links: 4,
                ici_topology: TorusKind::Torus2D,
                tdp_watts: 300.0,
            },
            NpuGeneration::D => NpuSpec {
                generation,
                deployment_year: Some(2023),
                technology: TechnologyNode::N7,
                frequency_mhz: 1750,
                sa_width: 128,
                num_sa: 8,
                num_vu: 6,
                vu_lanes: 128,
                vu_sublanes: 8,
                sram_mib: 128,
                hbm_kind: HbmKind::Hbm2e,
                hbm_bandwidth_gbps: 2765.0,
                hbm_gib: 95,
                ici_link_gbps: 100.0,
                ici_links: 6,
                ici_topology: TorusKind::Torus3D,
                tdp_watts: 500.0,
            },
            NpuGeneration::E => NpuSpec {
                generation,
                deployment_year: None,
                technology: TechnologyNode::N4,
                frequency_mhz: 2000,
                sa_width: 256,
                num_sa: 8,
                num_vu: 8,
                vu_lanes: 128,
                vu_sublanes: 8,
                sram_mib: 256,
                hbm_kind: HbmKind::Hbm3e,
                hbm_bandwidth_gbps: 7400.0,
                hbm_gib: 192,
                ici_link_gbps: 150.0,
                ici_links: 6,
                ici_topology: TorusKind::Torus3D,
                tdp_watts: 700.0,
            },
        }
    }

    /// Clock frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_mhz as f64 * 1.0e6
    }

    /// Duration of one clock cycle in seconds.
    #[must_use]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.frequency_hz()
    }

    /// Converts a cycle count into seconds on this chip.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_seconds()
    }

    /// Converts a duration in seconds into (rounded-up) cycles on this chip.
    #[must_use]
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.frequency_hz()).ceil() as u64
    }

    /// Number of processing elements in one systolic array.
    #[must_use]
    pub fn pes_per_sa(&self) -> usize {
        self.sa_width * self.sa_width
    }

    /// Number of processing elements in the whole chip.
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.pes_per_sa() * self.num_sa
    }

    /// Peak dense-matmul throughput of the chip in FLOP/s.
    ///
    /// Each PE performs one multiply-accumulate (2 FLOPs) per cycle.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.total_pes() as f64 * self.frequency_hz()
    }

    /// Peak vector-unit throughput of the chip in FLOP/s.
    ///
    /// Each VU lane performs one FLOP per cycle per sublane.
    #[must_use]
    pub fn peak_vu_flops(&self) -> f64 {
        (self.num_vu * self.vu_lanes * self.vu_sublanes) as f64 * self.frequency_hz()
    }

    /// Vector elements processed per VU per cycle (lanes × sublanes).
    #[must_use]
    pub fn vu_elems_per_cycle(&self) -> usize {
        self.vu_lanes * self.vu_sublanes
    }

    /// HBM bandwidth in bytes per core cycle.
    #[must_use]
    pub fn hbm_bytes_per_cycle(&self) -> f64 {
        self.hbm_bandwidth_gbps * 1.0e9 / self.frequency_hz()
    }

    /// Aggregate ICI bandwidth of the chip in GB/s (all links combined).
    #[must_use]
    pub fn ici_total_gbps(&self) -> f64 {
        self.ici_link_gbps * self.ici_links as f64
    }

    /// ICI per-link bandwidth in bytes per core cycle.
    #[must_use]
    pub fn ici_link_bytes_per_cycle(&self) -> f64 {
        self.ici_link_gbps * 1.0e9 / self.frequency_hz()
    }

    /// On-chip SRAM capacity in bytes.
    #[must_use]
    pub fn sram_bytes(&self) -> u64 {
        self.sram_mib as u64 * 1024 * 1024
    }

    /// HBM capacity in bytes.
    #[must_use]
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_gib as u64 * 1024 * 1024 * 1024
    }

    /// Default SRAM segment geometry (4 KiB segments, the vector-register
    /// size of the paper's NPU).
    #[must_use]
    pub fn sram_geometry(&self) -> SramGeometry {
        SramGeometry::new(self.sram_bytes(), 4096)
    }

    /// Arithmetic-intensity ridge point of the chip in FLOP/byte: operators
    /// below this ratio are HBM-bandwidth-bound, operators above it are
    /// compute-bound.
    #[must_use]
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops() / (self.hbm_bandwidth_gbps * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let a = NpuSpec::generation(NpuGeneration::A);
        assert_eq!(a.frequency_mhz, 700);
        assert_eq!(a.num_sa, 2);
        assert_eq!(a.num_vu, 4);
        assert_eq!(a.sram_mib, 32);
        assert_eq!(a.hbm_gib, 16);
        assert_eq!(a.ici_links, 4);
        assert_eq!(a.technology, TechnologyNode::N16);

        let b = NpuSpec::generation(NpuGeneration::B);
        assert_eq!(b.frequency_mhz, 940);
        assert_eq!(b.num_sa, 4);
        assert_eq!(b.hbm_bandwidth_gbps, 900.0);

        let c = NpuSpec::generation(NpuGeneration::C);
        assert_eq!(c.frequency_mhz, 1050);
        assert_eq!(c.num_sa, 8);
        assert_eq!(c.sram_mib, 128);
        assert_eq!(c.technology, TechnologyNode::N7);

        let d = NpuSpec::generation(NpuGeneration::D);
        assert_eq!(d.frequency_mhz, 1750);
        assert_eq!(d.num_vu, 6);
        assert_eq!(d.hbm_gib, 95);
        assert_eq!(d.ici_links, 6);
        assert_eq!(d.ici_topology, TorusKind::Torus3D);

        let e = NpuSpec::generation(NpuGeneration::E);
        assert_eq!(e.sa_width, 256);
        assert_eq!(e.sram_mib, 256);
        assert_eq!(e.hbm_bandwidth_gbps, 7400.0);
        assert_eq!(e.technology, TechnologyNode::N4);
        assert!(e.deployment_year.is_none());
    }

    #[test]
    fn peak_flops_increases_across_generations() {
        let mut prev = 0.0;
        for generation in NpuGeneration::ALL {
            let flops = NpuSpec::generation(generation).peak_flops();
            assert!(flops > prev, "{generation} peak FLOPs {flops} should exceed previous {prev}");
            prev = flops;
        }
    }

    #[test]
    fn npu_d_peak_flops_is_tpu_v5p_class() {
        // TPUv5p is ~459 bf16 TFLOPs; 8 SAs x 128x128 x 2 x 1.75 GHz = 459 TFLOPs.
        let d = NpuSpec::generation(NpuGeneration::D);
        let tflops = d.peak_flops() / 1e12;
        assert!((tflops - 458.75).abs() < 1.0, "got {tflops}");
    }

    #[test]
    fn cycle_conversions_roundtrip() {
        let d = NpuSpec::generation(NpuGeneration::D);
        let cycles = 1_750_000; // one millisecond at 1.75 GHz
        let secs = d.cycles_to_seconds(cycles);
        assert!((secs - 1e-3).abs() < 1e-9);
        assert_eq!(d.seconds_to_cycles(secs), cycles);
    }

    #[test]
    fn ridge_point_is_reasonable() {
        // NPU-D: 459 TFLOPs / 2765 GB/s ≈ 166 FLOP/byte.
        let d = NpuSpec::generation(NpuGeneration::D);
        let ridge = d.ridge_point();
        assert!(ridge > 100.0 && ridge < 250.0, "ridge {ridge}");
    }

    #[test]
    fn hbm_bytes_per_cycle() {
        let a = NpuSpec::generation(NpuGeneration::A);
        // 600 GB/s at 700 MHz ≈ 857 bytes/cycle.
        assert!((a.hbm_bytes_per_cycle() - 857.14).abs() < 1.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(NpuGeneration::C.to_string(), "NPU-C");
        assert_eq!(TechnologyNode::N7.to_string(), "7nm");
    }

    #[test]
    fn technology_scaling_monotonic() {
        assert!(TechnologyNode::N7.density_vs_16nm() > TechnologyNode::N16.density_vs_16nm());
        assert!(TechnologyNode::N4.density_vs_16nm() > TechnologyNode::N7.density_vs_16nm());
        assert!(
            TechnologyNode::N4.dynamic_energy_vs_16nm()
                < TechnologyNode::N7.dynamic_energy_vs_16nm()
        );
        assert!(
            TechnologyNode::N4.leakage_per_area_vs_16nm()
                > TechnologyNode::N16.leakage_per_area_vs_16nm()
        );
    }

    #[test]
    fn sram_geometry_segments() {
        let d = NpuSpec::generation(NpuGeneration::D);
        let geometry = d.sram_geometry();
        assert_eq!(geometry.segment_bytes(), 4096);
        assert_eq!(geometry.num_segments() as u64 * 4096, d.sram_bytes());
    }
}
