//! Memory-system description: HBM kinds and SRAM scratchpad geometry.

use serde::{Deserialize, Serialize};

/// Generation of high-bandwidth memory attached to an NPU chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HbmKind {
    /// HBM2 (NPU-A/B/C).
    Hbm2,
    /// HBM2e (NPU-D).
    Hbm2e,
    /// HBM3e (projected NPU-E).
    Hbm3e,
}

impl HbmKind {
    /// Typical random-access latency of the HBM stack in nanoseconds.
    ///
    /// The simulator charges this latency once per DMA transfer (DMA
    /// requests in NPUs are large, so latency is amortized, §4.1).
    #[must_use]
    pub fn access_latency_ns(self) -> f64 {
        match self {
            HbmKind::Hbm2 => 120.0,
            HbmKind::Hbm2e => 110.0,
            HbmKind::Hbm3e => 100.0,
        }
    }

    /// Interval between mandatory DRAM refreshes in microseconds.
    ///
    /// Even a power-gated HBM controller must wake up this often to issue
    /// auto-refresh (the paper cites 3.9 µs).
    #[must_use]
    pub fn refresh_interval_us(self) -> f64 {
        3.9
    }

    /// Energy per byte transferred, in picojoules (dynamic HBM energy).
    #[must_use]
    pub fn energy_pj_per_byte(self) -> f64 {
        match self {
            HbmKind::Hbm2 => 7.0,
            HbmKind::Hbm2e => 6.0,
            HbmKind::Hbm3e => 4.5,
        }
    }
}

impl std::fmt::Display for HbmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HbmKind::Hbm2 => write!(f, "HBM2"),
            HbmKind::Hbm2e => write!(f, "HBM2e"),
            HbmKind::Hbm3e => write!(f, "HBM3e"),
        }
    }
}

/// Geometry of the on-chip SRAM scratchpad: total capacity and the size of
/// one power-gateable segment.
///
/// ReGate divides the SRAM into equally sized segments (4 KiB by default,
/// the vector-register size) and gates each segment independently (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SramGeometry {
    total_bytes: u64,
    segment_bytes: u64,
}

impl SramGeometry {
    /// Creates a geometry with the given total capacity and segment size.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero or does not divide `total_bytes`.
    #[must_use]
    pub fn new(total_bytes: u64, segment_bytes: u64) -> Self {
        assert!(segment_bytes > 0, "segment size must be non-zero");
        assert!(
            total_bytes.is_multiple_of(segment_bytes),
            "segment size {segment_bytes} must divide total capacity {total_bytes}"
        );
        SramGeometry { total_bytes, segment_bytes }
    }

    /// Total scratchpad capacity in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Size of one power-gateable segment in bytes.
    #[must_use]
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Number of segments in the scratchpad.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        (self.total_bytes / self.segment_bytes) as usize
    }

    /// Segment index containing byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the scratchpad.
    #[must_use]
    pub fn segment_of(&self, addr: u64) -> usize {
        assert!(addr < self.total_bytes, "address {addr:#x} out of range");
        (addr / self.segment_bytes) as usize
    }

    /// Inclusive range of segment indices covering `[start, start + len)`.
    ///
    /// Returns `None` for an empty range.
    ///
    /// # Panics
    ///
    /// Panics if the range overflows or exceeds the scratchpad capacity.
    #[must_use]
    pub fn segments_for_range(&self, start: u64, len: u64) -> Option<(usize, usize)> {
        if len == 0 {
            return None;
        }
        let end = start.checked_add(len).expect("range overflow");
        assert!(end <= self.total_bytes, "range [{start:#x},{end:#x}) out of capacity");
        Some((self.segment_of(start), self.segment_of(end - 1)))
    }

    /// Number of segments needed to hold `bytes` of data (rounded up).
    #[must_use]
    pub fn segments_for_bytes(&self, bytes: u64) -> usize {
        (bytes.div_ceil(self.segment_bytes)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_kinds_have_sensible_latency() {
        assert!(HbmKind::Hbm3e.access_latency_ns() < HbmKind::Hbm2.access_latency_ns());
        assert!(HbmKind::Hbm2.refresh_interval_us() > 0.0);
        assert_eq!(HbmKind::Hbm2e.to_string(), "HBM2e");
    }

    #[test]
    fn energy_per_byte_improves_with_generation() {
        assert!(HbmKind::Hbm3e.energy_pj_per_byte() < HbmKind::Hbm2e.energy_pj_per_byte());
        assert!(HbmKind::Hbm2e.energy_pj_per_byte() < HbmKind::Hbm2.energy_pj_per_byte());
    }

    #[test]
    fn geometry_segment_count() {
        let g = SramGeometry::new(128 * 1024 * 1024, 4096);
        assert_eq!(g.num_segments(), 32768);
        assert_eq!(g.segment_bytes(), 4096);
        assert_eq!(g.total_bytes(), 128 * 1024 * 1024);
    }

    #[test]
    fn segment_of_addresses() {
        let g = SramGeometry::new(64 * 1024, 4096);
        assert_eq!(g.segment_of(0), 0);
        assert_eq!(g.segment_of(4095), 0);
        assert_eq!(g.segment_of(4096), 1);
        assert_eq!(g.segment_of(64 * 1024 - 1), 15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_of_out_of_range_panics() {
        let g = SramGeometry::new(64 * 1024, 4096);
        let _ = g.segment_of(64 * 1024);
    }

    #[test]
    fn segments_for_range_spans() {
        let g = SramGeometry::new(64 * 1024, 4096);
        assert_eq!(g.segments_for_range(0, 1), Some((0, 0)));
        assert_eq!(g.segments_for_range(0, 4097), Some((0, 1)));
        assert_eq!(g.segments_for_range(4000, 200), Some((0, 1)));
        assert_eq!(g.segments_for_range(8192, 8192), Some((2, 3)));
        assert_eq!(g.segments_for_range(100, 0), None);
    }

    #[test]
    fn segments_for_bytes_rounds_up() {
        let g = SramGeometry::new(64 * 1024, 4096);
        assert_eq!(g.segments_for_bytes(0), 0);
        assert_eq!(g.segments_for_bytes(1), 1);
        assert_eq!(g.segments_for_bytes(4096), 1);
        assert_eq!(g.segments_for_bytes(4097), 2);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn geometry_rejects_non_dividing_segment() {
        let _ = SramGeometry::new(10_000, 4096);
    }
}
