//! # npu-arch — NPU hardware architecture description
//!
//! This crate describes the hardware of a TPU-like neural processing unit
//! (NPU) as used by the ReGate reproduction: chip generations, the
//! components inside a chip (systolic arrays, vector units, SRAM, HBM, ICI,
//! DMA engine), pod topologies, multi-chip parallelism configurations, and
//! the service-level-objective (SLO) model used to select chip counts.
//!
//! The numbers follow Table 2 of the paper ("NPU specifications used in our
//! study"): NPU-A/B/C/D are derived from TPUv2/3/4/5p and NPU-E is a
//! projected TPUv6p-class part.
//!
//! ## Example
//!
//! ```
//! use npu_arch::{NpuGeneration, NpuSpec};
//!
//! let d = NpuSpec::generation(NpuGeneration::D);
//! assert_eq!(d.frequency_mhz, 1750);
//! assert_eq!(d.num_sa, 8);
//! // Peak dense matmul throughput in FLOP/s (two ops per MAC).
//! assert!(d.peak_flops() > 4.5e14);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chip;
pub mod component;
pub mod memory;
pub mod parallelism;
pub mod slo;
pub mod spec;
pub mod topology;

pub use chip::ChipConfig;
pub use component::{ComponentId, ComponentKind, PowerDomain};
pub use memory::{HbmKind, SramGeometry};
pub use parallelism::{ParallelismConfig, ShardingAxis};
pub use slo::{SloSpec, SloTarget};
pub use spec::{NpuGeneration, NpuSpec, TechnologyNode};
pub use topology::{FabricKind, Link, LinkGraph, PodTopology, TorusKind};
