//! Multi-chip parallelism configuration: data, tensor, and pipeline
//! parallelism degrees, plus enumeration of all valid factorizations for a
//! given chip count (used by the SLO-compliant configuration search).

use serde::{Deserialize, Serialize};

/// Axis along which an operator or model is sharded across chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardingAxis {
    /// Sharded across the batch dimension (data parallelism).
    Data,
    /// Sharded across hidden/head dimensions (tensor parallelism).
    Tensor,
    /// Sharded across layers (pipeline parallelism).
    Pipeline,
}

/// Degrees of data, tensor, and pipeline parallelism.
///
/// The product of the three degrees is the total number of chips used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Data-parallel replicas.
    pub data: usize,
    /// Tensor-parallel shards within a replica.
    pub tensor: usize,
    /// Pipeline stages within a replica.
    pub pipeline: usize,
}

impl ParallelismConfig {
    /// A single-chip (no parallelism) configuration.
    #[must_use]
    pub fn single() -> Self {
        ParallelismConfig { data: 1, tensor: 1, pipeline: 1 }
    }

    /// Creates a configuration; every degree must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if any degree is zero.
    #[must_use]
    pub fn new(data: usize, tensor: usize, pipeline: usize) -> Self {
        assert!(data >= 1 && tensor >= 1 && pipeline >= 1, "degrees must be >= 1");
        ParallelismConfig { data, tensor, pipeline }
    }

    /// Total number of chips used by this configuration.
    #[must_use]
    pub fn num_chips(&self) -> usize {
        self.data * self.tensor * self.pipeline
    }

    /// Degree along a given sharding axis.
    #[must_use]
    pub fn degree(&self, axis: ShardingAxis) -> usize {
        match axis {
            ShardingAxis::Data => self.data,
            ShardingAxis::Tensor => self.tensor,
            ShardingAxis::Pipeline => self.pipeline,
        }
    }

    /// Whether the configuration involves any cross-chip communication.
    #[must_use]
    pub fn is_distributed(&self) -> bool {
        self.num_chips() > 1
    }

    /// Enumerates every factorization `data × tensor × pipeline = num_chips`
    /// with degrees restricted to powers of two (the standard practice for
    /// torus-mapped shardings), subject to `max_pipeline` stages.
    #[must_use]
    pub fn enumerate(num_chips: usize, max_pipeline: usize) -> Vec<ParallelismConfig> {
        let mut out = Vec::new();
        if num_chips == 0 {
            return out;
        }
        let mut tensor = 1;
        while tensor <= num_chips {
            if num_chips.is_multiple_of(tensor) {
                let rest = num_chips / tensor;
                let mut pipeline = 1;
                while pipeline <= rest && pipeline <= max_pipeline {
                    if rest.is_multiple_of(pipeline) {
                        let data = rest / pipeline;
                        out.push(ParallelismConfig { data, tensor, pipeline });
                    }
                    pipeline *= 2;
                }
            }
            tensor *= 2;
        }
        out
    }
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        Self::single()
    }
}

impl std::fmt::Display for ParallelismConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DP{}xTP{}xPP{}", self.data, self.tensor, self.pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_count_is_product_of_degrees() {
        let p = ParallelismConfig::new(2, 4, 2);
        assert_eq!(p.num_chips(), 16);
        assert!(p.is_distributed());
        assert!(!ParallelismConfig::single().is_distributed());
    }

    #[test]
    fn degree_lookup() {
        let p = ParallelismConfig::new(2, 4, 8);
        assert_eq!(p.degree(ShardingAxis::Data), 2);
        assert_eq!(p.degree(ShardingAxis::Tensor), 4);
        assert_eq!(p.degree(ShardingAxis::Pipeline), 8);
    }

    #[test]
    fn enumerate_covers_all_power_of_two_factorizations() {
        let configs = ParallelismConfig::enumerate(8, 8);
        // tensor in {1,2,4,8}, pipeline power of two dividing the rest.
        assert!(configs.contains(&ParallelismConfig::new(8, 1, 1)));
        assert!(configs.contains(&ParallelismConfig::new(1, 8, 1)));
        assert!(configs.contains(&ParallelismConfig::new(1, 1, 8)));
        assert!(configs.contains(&ParallelismConfig::new(2, 2, 2)));
        for c in &configs {
            assert_eq!(c.num_chips(), 8);
        }
    }

    #[test]
    fn enumerate_respects_max_pipeline() {
        let configs = ParallelismConfig::enumerate(16, 2);
        assert!(configs.iter().all(|c| c.pipeline <= 2));
        assert!(configs.iter().any(|c| c.pipeline == 2));
    }

    #[test]
    fn enumerate_single_chip() {
        let configs = ParallelismConfig::enumerate(1, 8);
        assert_eq!(configs, vec![ParallelismConfig::single()]);
    }

    #[test]
    fn display_format() {
        assert_eq!(ParallelismConfig::new(4, 2, 1).to_string(), "DP4xTP2xPP1");
    }

    #[test]
    #[should_panic(expected = "degrees must be >= 1")]
    fn zero_degree_rejected() {
        let _ = ParallelismConfig::new(0, 1, 1);
    }
}
