//! Chip-level configuration: which generation, how many chips, and how the
//! chip's component instances are enumerated.

use serde::{Deserialize, Serialize};

use crate::component::{ComponentId, ComponentKind};
use crate::spec::{NpuGeneration, NpuSpec};
use crate::topology::PodTopology;

/// A concrete deployment configuration: an NPU generation plus the number of
/// chips the workload runs on (forming a pod slice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    spec: NpuSpec,
    num_chips: usize,
}

impl ChipConfig {
    /// Creates a configuration of `num_chips` chips of the given generation.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` is zero.
    #[must_use]
    pub fn new(generation: NpuGeneration, num_chips: usize) -> Self {
        assert!(num_chips > 0, "need at least one chip");
        ChipConfig { spec: NpuSpec::generation(generation), num_chips }
    }

    /// Creates a single-chip configuration.
    #[must_use]
    pub fn single(generation: NpuGeneration) -> Self {
        Self::new(generation, 1)
    }

    /// The chip's architectural specification.
    #[must_use]
    pub fn spec(&self) -> &NpuSpec {
        &self.spec
    }

    /// NPU generation of the chips.
    #[must_use]
    pub fn generation(&self) -> NpuGeneration {
        self.spec.generation
    }

    /// Number of chips in the deployment.
    #[must_use]
    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    /// The pod topology connecting the chips.
    #[must_use]
    pub fn topology(&self) -> PodTopology {
        PodTopology::for_chips(self.spec.ici_topology, self.num_chips)
    }

    /// Aggregate HBM capacity across all chips, in bytes.
    #[must_use]
    pub fn total_hbm_bytes(&self) -> u64 {
        self.spec.hbm_bytes() * self.num_chips as u64
    }

    /// Aggregate peak compute across all chips, in FLOP/s.
    #[must_use]
    pub fn total_peak_flops(&self) -> f64 {
        self.spec.peak_flops() * self.num_chips as f64
    }

    /// Enumerates every component instance on one chip.
    ///
    /// Returns one [`ComponentId`] per SA, per VU, and singletons for SRAM,
    /// HBM controller, ICI controller, DMA engine, and peripheral logic.
    #[must_use]
    pub fn components(&self) -> Vec<ComponentId> {
        let mut out = Vec::with_capacity(self.spec.num_sa + self.spec.num_vu + 5);
        for i in 0..self.spec.num_sa {
            out.push(ComponentId::sa(i));
        }
        for i in 0..self.spec.num_vu {
            out.push(ComponentId::vu(i));
        }
        out.push(ComponentId::sram());
        out.push(ComponentId::hbm());
        out.push(ComponentId::ici());
        out.push(ComponentId::dma());
        out.push(ComponentId::other());
        out
    }

    /// Number of component instances of a given kind on one chip.
    #[must_use]
    pub fn instance_count(&self, kind: ComponentKind) -> usize {
        match kind {
            ComponentKind::Sa => self.spec.num_sa,
            ComponentKind::Vu => self.spec.num_vu,
            ComponentKind::Sram
            | ComponentKind::Hbm
            | ComponentKind::Ici
            | ComponentKind::Dma
            | ComponentKind::Other => 1,
        }
    }

    /// Returns a copy of this configuration with a different chip count.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` is zero.
    #[must_use]
    pub fn with_chips(&self, num_chips: usize) -> Self {
        assert!(num_chips > 0, "need at least one chip");
        ChipConfig { spec: self.spec.clone(), num_chips }
    }
}

impl std::fmt::Display for ChipConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} x{}", self.spec.generation, self.num_chips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_enumeration_counts() {
        let cfg = ChipConfig::single(NpuGeneration::D);
        let comps = cfg.components();
        let sas = comps.iter().filter(|c| c.kind == ComponentKind::Sa).count();
        let vus = comps.iter().filter(|c| c.kind == ComponentKind::Vu).count();
        assert_eq!(sas, 8);
        assert_eq!(vus, 6);
        assert_eq!(comps.len(), 8 + 6 + 5);
    }

    #[test]
    fn instance_counts_match_spec() {
        let cfg = ChipConfig::single(NpuGeneration::A);
        assert_eq!(cfg.instance_count(ComponentKind::Sa), 2);
        assert_eq!(cfg.instance_count(ComponentKind::Vu), 4);
        assert_eq!(cfg.instance_count(ComponentKind::Sram), 1);
        assert_eq!(cfg.instance_count(ComponentKind::Other), 1);
    }

    #[test]
    fn totals_scale_with_chip_count() {
        let one = ChipConfig::single(NpuGeneration::C);
        let eight = one.with_chips(8);
        assert_eq!(eight.total_hbm_bytes(), 8 * one.total_hbm_bytes());
        assert!((eight.total_peak_flops() / one.total_peak_flops() - 8.0).abs() < 1e-12);
        assert_eq!(eight.topology().num_chips(), 8);
    }

    #[test]
    fn display_includes_generation_and_count() {
        assert_eq!(ChipConfig::new(NpuGeneration::B, 4).to_string(), "NPU-B x4");
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_rejected() {
        let _ = ChipConfig::new(NpuGeneration::A, 0);
    }
}
