//! NPU pod topology: 2D/3D torus formed by inter-chip interconnect links.
//!
//! The paper's pods are arranged as 2D or 3D tori optimized for all-reduce
//! bandwidth (§2.1). This module provides the topology geometry and the
//! analytic collective-communication cost model used by the simulator.

use serde::{Deserialize, Serialize};

/// Kind of torus formed by the ICI links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TorusKind {
    /// 2D torus (4 links per chip): NPU-A/B/C.
    Torus2D,
    /// 3D torus (6 links per chip): NPU-D/E.
    Torus3D,
}

impl TorusKind {
    /// Number of torus dimensions.
    #[must_use]
    pub fn dims(self) -> usize {
        match self {
            TorusKind::Torus2D => 2,
            TorusKind::Torus3D => 3,
        }
    }

    /// Number of ICI links per chip implied by the torus (two per dimension).
    #[must_use]
    pub fn links_per_chip(self) -> usize {
        self.dims() * 2
    }
}

impl std::fmt::Display for TorusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dims() {
            2 => write!(f, "2D Torus"),
            _ => write!(f, "3D Torus"),
        }
    }
}

/// A pod of NPU chips connected by ICI links in a torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PodTopology {
    kind: TorusKind,
    shape: [usize; 3],
}

impl PodTopology {
    /// Builds the most cube-like torus of `num_chips` chips for the given
    /// torus kind. A single chip yields a degenerate 1×1(×1) pod.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` is zero.
    #[must_use]
    pub fn for_chips(kind: TorusKind, num_chips: usize) -> Self {
        assert!(num_chips > 0, "a pod needs at least one chip");
        let shape = match kind.dims() {
            2 => {
                let (x, y) = balanced_factor2(num_chips);
                [x, y, 1]
            }
            _ => {
                let (x, y, z) = balanced_factor3(num_chips);
                [x, y, z]
            }
        };
        PodTopology { kind, shape }
    }

    /// Torus kind of the pod.
    #[must_use]
    pub fn kind(&self) -> TorusKind {
        self.kind
    }

    /// Shape of the torus as `[x, y, z]` (z = 1 for a 2D torus).
    #[must_use]
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Total number of chips in the pod.
    #[must_use]
    pub fn num_chips(&self) -> usize {
        self.shape.iter().product()
    }

    /// Number of usable ICI links per chip (links to distinct neighbours).
    ///
    /// In a dimension of size 1 there is no neighbour; in a dimension of
    /// size 2 both directions reach the same neighbour, so only one link's
    /// worth of distinct connectivity exists per such dimension.
    #[must_use]
    pub fn usable_links_per_chip(&self) -> usize {
        self.shape
            .iter()
            .map(|&extent| match extent {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            })
            .sum()
    }

    /// Bisection bandwidth of the pod in units of link bandwidth.
    ///
    /// For a torus, cutting the largest dimension in half severs
    /// `2 * (num_chips / largest_dim)` links (wrap-around counts).
    ///
    /// # Panics
    ///
    /// Panics if the topology shape is empty, which the constructors
    /// never produce.
    #[must_use]
    pub fn bisection_links(&self) -> usize {
        let largest = *self.shape.iter().max().expect("non-empty shape");
        if largest <= 1 {
            return 0;
        }
        2 * self.num_chips() / largest
    }

    /// Longest shortest-path hop count between any two chips in the torus.
    #[must_use]
    pub fn diameter_hops(&self) -> usize {
        self.shape.iter().map(|&extent| extent / 2).sum()
    }

    /// Time in seconds for a bandwidth-optimal ring/torus all-reduce of
    /// `bytes` bytes per chip, given per-link bandwidth `link_gbps` (GB/s).
    ///
    /// The standard cost model is `2 * (n-1)/n * bytes` traversing the
    /// slowest link, spread over the links usable by the collective.
    /// Latency per hop is charged via `hop_latency_s`.
    #[must_use]
    pub fn allreduce_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        let n = self.num_chips() as f64;
        if n <= 1.0 || bytes <= 0.0 {
            return 0.0;
        }
        let links = self.usable_links_per_chip().max(1) as f64;
        let wire = 2.0 * (n - 1.0) / n * bytes / (link_gbps * 1.0e9 * links);
        let latency = 2.0 * (n - 1.0) * hop_latency_s / links;
        wire + latency
    }

    /// Time in seconds for a reduce-scatter (or all-gather) of `bytes` bytes
    /// per chip: half the all-reduce traffic.
    #[must_use]
    pub fn reduce_scatter_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        let n = self.num_chips() as f64;
        if n <= 1.0 || bytes <= 0.0 {
            return 0.0;
        }
        let links = self.usable_links_per_chip().max(1) as f64;
        let wire = (n - 1.0) / n * bytes / (link_gbps * 1.0e9 * links);
        let latency = (n - 1.0) * hop_latency_s / links;
        wire + latency
    }

    /// Time in seconds for an all-to-all exchanging `bytes` bytes per chip.
    ///
    /// All-to-all stresses bisection bandwidth: each half of the machine
    /// sends half of its data across the bisection.
    #[must_use]
    pub fn alltoall_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        let n = self.num_chips() as f64;
        if n <= 1.0 || bytes <= 0.0 {
            return 0.0;
        }
        let bisection = self.bisection_links().max(1) as f64;
        let cross_bytes = bytes * n / 2.0 / 2.0; // half the chips send half their data across
        let wire = cross_bytes / (bisection * link_gbps * 1.0e9);
        let latency = self.diameter_hops() as f64 * hop_latency_s;
        wire + latency
    }

    /// Time in seconds for a point-to-point send of `bytes` bytes between
    /// neighbouring chips (used by pipeline parallelism).
    #[must_use]
    pub fn p2p_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / (link_gbps * 1.0e9) + hop_latency_s
    }
}

impl std::fmt::Display for PodTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.kind.dims() == 2 {
            write!(f, "{}x{} {}", self.shape[0], self.shape[1], self.kind)
        } else {
            write!(f, "{}x{}x{} {}", self.shape[0], self.shape[1], self.shape[2], self.kind)
        }
    }
}

// ---------------------------------------------------------------------------
// Explicit link graph: per-link endpoints + deterministic routing
// ---------------------------------------------------------------------------

/// One directed ICI link between two nodes of the pod fabric.
///
/// Nodes `0..num_chips` are chips; in the switched fat-tree variant the
/// nodes at `num_chips..num_nodes` are switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Source node (the sender side of the wire).
    pub src: usize,
    /// Destination node (the receiver side of the wire).
    pub dst: usize,
}

/// The fabric a [`LinkGraph`] was built as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// Torus wiring derived from a [`PodTopology`] (a 1-wide torus
    /// degenerates to a ring).
    Torus(TorusKind),
    /// A two-level switched fat tree (leaf switches + one spine).
    FatTree,
}

/// An explicit ICI link graph: every link's endpoints plus a deterministic
/// all-pairs shortest-path routing table.
///
/// Unlike [`PodTopology`] — which is pure geometry feeding the analytic
/// collective cost model — a `LinkGraph` names each physical link so the
/// simulator can give it its own busy track (and its own gateable idle
/// intervals). Links are directed: a torus chip owns one outgoing link per
/// usable direction per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkGraph {
    fabric: FabricKind,
    num_chips: usize,
    num_nodes: usize,
    links: Vec<Link>,
    /// `outgoing[node]`: link indices leaving `node`, ascending by
    /// destination — the deterministic BFS expansion order.
    outgoing: Vec<Vec<usize>>,
    /// Flattened all-pairs routing table: `routes[src * num_chips + dst]`
    /// is the link-id path from chip `src` to chip `dst` (empty for
    /// `src == dst`).
    routes: Vec<Vec<usize>>,
}

impl LinkGraph {
    /// Builds the torus link graph of a pod: chips are laid out row-major
    /// over the pod shape, and every dimension of extent ≥ 2 contributes
    /// wrap-around neighbour links (one direction for extent 2, where both
    /// directions reach the same neighbour; both directions otherwise).
    #[must_use]
    pub fn torus(pod: &PodTopology) -> Self {
        let [x, y, z] = pod.shape();
        let n = pod.num_chips();
        let coord = |chip: usize| [chip % x, (chip / x) % y, chip / (x * y)];
        let index = |c: [usize; 3]| (c[2] * y + c[1]) * x + c[0];
        let mut links = Vec::new();
        for chip in 0..n {
            let c = coord(chip);
            for (dim, &extent) in [x, y, z].iter().enumerate() {
                if extent < 2 {
                    continue;
                }
                let mut fwd = c;
                fwd[dim] = (c[dim] + 1) % extent;
                links.push(Link { src: chip, dst: index(fwd) });
                if extent > 2 {
                    let mut bwd = c;
                    bwd[dim] = (c[dim] + extent - 1) % extent;
                    links.push(Link { src: chip, dst: index(bwd) });
                }
            }
        }
        Self::from_links(FabricKind::Torus(pod.kind()), n, n, links)
    }

    /// Builds a two-level switched fat tree: `radix` chips per leaf
    /// switch, all leaf switches joined by one spine switch. Every edge is
    /// a pair of directed links (up and down).
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` or `radix` is zero.
    #[must_use]
    pub fn fat_tree(num_chips: usize, radix: usize) -> Self {
        assert!(num_chips > 0, "a fat tree needs at least one chip");
        assert!(radix > 0, "a fat-tree leaf switch needs a non-zero radix");
        let num_leaves = num_chips.div_ceil(radix);
        let leaf = |chip: usize| num_chips + chip / radix;
        let spine = num_chips + num_leaves;
        let num_nodes = if num_leaves > 1 { spine + 1 } else { num_chips + num_leaves };
        let mut links = Vec::new();
        for chip in 0..num_chips {
            links.push(Link { src: chip, dst: leaf(chip) });
        }
        for l in 0..num_leaves {
            for chip in 0..num_chips {
                if leaf(chip) == num_chips + l {
                    links.push(Link { src: num_chips + l, dst: chip });
                }
            }
            if num_leaves > 1 {
                links.push(Link { src: num_chips + l, dst: spine });
                links.push(Link { src: spine, dst: num_chips + l });
            }
        }
        Self::from_links(FabricKind::FatTree, num_chips, num_nodes, links)
    }

    /// Builds the link graph with the routing table filled in from
    /// deterministic BFS. This is also the analyzer-fixture back door:
    /// like `CompiledGraph::from_parts`, it does not validate endpoints —
    /// malformed link graphs are the `topo.*` rules' subject matter.
    #[must_use]
    pub fn from_links(
        fabric: FabricKind,
        num_chips: usize,
        num_nodes: usize,
        links: Vec<Link>,
    ) -> Self {
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for (id, link) in links.iter().enumerate() {
            if link.src < num_nodes {
                outgoing[link.src].push(id);
            }
        }
        for out in &mut outgoing {
            out.sort_by_key(|&id| (links[id].dst, id));
        }
        let mut graph = LinkGraph { fabric, num_chips, num_nodes, links, outgoing, routes: vec![] };
        graph.routes = graph.compute_routes();
        graph
    }

    /// Deterministic all-pairs shortest-path routes between chips:
    /// breadth-first search from each source, expanding neighbours in
    /// ascending `(destination, link id)` order so ties always break the
    /// same way. Unreachable pairs get an empty route (the `topo.*`
    /// analyzer rules flag them; `src == dst` is legitimately empty).
    fn compute_routes(&self) -> Vec<Vec<usize>> {
        let mut routes = vec![Vec::new(); self.num_chips * self.num_chips];
        for src in 0..self.num_chips {
            // `via[node]` = link that first discovered `node`.
            let mut via: Vec<Option<usize>> = vec![None; self.num_nodes];
            let mut frontier = std::collections::VecDeque::new();
            frontier.push_back(src);
            while let Some(node) = frontier.pop_front() {
                for &id in &self.outgoing[node] {
                    let next = self.links[id].dst;
                    if next < self.num_nodes && next != src && via[next].is_none() {
                        via[next] = Some(id);
                        frontier.push_back(next);
                    }
                }
            }
            for dst in 0..self.num_chips {
                if dst == src {
                    continue;
                }
                let mut path = Vec::new();
                let mut node = dst;
                while node != src {
                    match via[node] {
                        Some(id) => {
                            path.push(id);
                            node = self.links[id].src;
                        }
                        None => {
                            path.clear();
                            break;
                        }
                    }
                }
                path.reverse();
                routes[src * self.num_chips + dst] = path;
            }
        }
        routes
    }

    /// The fabric this graph was built as.
    #[must_use]
    pub fn fabric(&self) -> FabricKind {
        self.fabric
    }

    /// Number of chips (nodes `0..num_chips`).
    #[must_use]
    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    /// Number of nodes including switches.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All links, in construction order (link id = index).
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The shortest-path route from chip `src` to chip `dst` as link ids
    /// (empty when `src == dst` or no path exists).
    #[must_use]
    pub fn route(&self, src: usize, dst: usize) -> &[usize] {
        self.routes.get(src * self.num_chips + dst).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The deterministic ring embedding used by ring collectives: chip
    /// `i`'s hop to chip `(i + 1) % n`, as the routed link path of each
    /// hop. In a torus most hops are single neighbour links; row-crossing
    /// hops route through the table like any other traffic.
    #[must_use]
    pub fn collective_ring(&self) -> Vec<Vec<usize>> {
        let n = self.num_chips;
        if n < 2 {
            return Vec::new();
        }
        (0..n).map(|i| self.route(i, (i + 1) % n).to_vec()).collect()
    }
}

impl std::fmt::Display for LinkGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fabric = match self.fabric {
            FabricKind::Torus(kind) => kind.to_string(),
            FabricKind::FatTree => "Fat Tree".to_string(),
        };
        write!(f, "{} fabric: {} chips, {} links", fabric, self.num_chips, self.links.len())
    }
}

/// Factors `n` into two dimensions as close to square as possible.
fn balanced_factor2(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut x = 1;
    while x * x <= n {
        if n.is_multiple_of(x) {
            best = (x, n / x);
        }
        x += 1;
    }
    best
}

/// Factors `n` into three dimensions as close to a cube as possible.
fn balanced_factor3(n: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, n);
    let mut best_score = usize::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let (y, z) = balanced_factor2(n / x);
            let score = x.max(y).max(z) - x.min(y).min(z);
            if score < best_score {
                best_score = score;
                best = (x, y, z);
            }
        }
        x += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_kind_links() {
        assert_eq!(TorusKind::Torus2D.links_per_chip(), 4);
        assert_eq!(TorusKind::Torus3D.links_per_chip(), 6);
        assert_eq!(TorusKind::Torus2D.to_string(), "2D Torus");
    }

    #[test]
    fn balanced_factorizations() {
        assert_eq!(balanced_factor2(16), (4, 4));
        assert_eq!(balanced_factor2(8), (2, 4));
        assert_eq!(balanced_factor2(7), (1, 7));
        assert_eq!(balanced_factor3(64), (4, 4, 4));
        assert_eq!(balanced_factor3(8), (2, 2, 2));
        assert_eq!(balanced_factor3(16), (2, 2, 4));
        assert_eq!(balanced_factor3(12), (2, 2, 3));
        assert_eq!(balanced_factor3(1), (1, 1, 1));
    }

    #[test]
    fn pod_shapes() {
        let p = PodTopology::for_chips(TorusKind::Torus2D, 16);
        assert_eq!(p.shape(), [4, 4, 1]);
        assert_eq!(p.num_chips(), 16);
        let p3 = PodTopology::for_chips(TorusKind::Torus3D, 64);
        assert_eq!(p3.shape(), [4, 4, 4]);
        assert_eq!(p3.to_string(), "4x4x4 3D Torus");
    }

    #[test]
    fn single_chip_pod_has_no_links() {
        let p = PodTopology::for_chips(TorusKind::Torus3D, 1);
        assert_eq!(p.usable_links_per_chip(), 0);
        assert_eq!(p.bisection_links(), 0);
        assert_eq!(p.allreduce_seconds(1e9, 100.0, 1e-6), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_links() {
        let p = PodTopology::for_chips(TorusKind::Torus2D, 16);
        let t1 = p.allreduce_seconds(1e9, 100.0, 1e-6);
        let t2 = p.allreduce_seconds(2e9, 100.0, 1e-6);
        assert!(t2 > 1.8 * t1, "all-reduce should scale roughly linearly in bytes");
        // A larger pod with the same per-chip link count moves slightly more
        // data over the slowest link ((n-1)/n grows towards 1).
        let p_large = PodTopology::for_chips(TorusKind::Torus2D, 64);
        let t_large = p_large.allreduce_seconds(1e9, 100.0, 1e-6);
        assert!(t_large >= t1, "larger pods cannot be faster per byte");
    }

    #[test]
    fn reduce_scatter_is_half_allreduce_wire_time() {
        let p = PodTopology::for_chips(TorusKind::Torus2D, 16);
        let ar = p.allreduce_seconds(1e9, 100.0, 0.0);
        let rs = p.reduce_scatter_seconds(1e9, 100.0, 0.0);
        assert!((ar / rs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alltoall_uses_bisection() {
        let p = PodTopology::for_chips(TorusKind::Torus3D, 64);
        assert_eq!(p.bisection_links(), 2 * 64 / 4);
        let t = p.alltoall_seconds(1e8, 100.0, 1e-6);
        assert!(t > 0.0);
    }

    #[test]
    fn p2p_time_includes_latency() {
        let p = PodTopology::for_chips(TorusKind::Torus3D, 8);
        let t = p.p2p_seconds(1e9, 100.0, 2e-6);
        assert!((t - (0.01 + 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn diameter_grows_with_pod_size() {
        let small = PodTopology::for_chips(TorusKind::Torus2D, 4);
        let large = PodTopology::for_chips(TorusKind::Torus2D, 64);
        assert!(large.diameter_hops() > small.diameter_hops());
    }

    #[test]
    fn ring_link_graph_has_one_link_per_direction() {
        // A 1x4 "torus" is a ring: extent 4 > 2 gives both directions.
        let pod = PodTopology::for_chips(TorusKind::Torus2D, 4);
        let graph = LinkGraph::torus(&pod);
        assert_eq!(graph.num_chips(), 4);
        assert_eq!(graph.num_nodes(), 4);
        // Shape [2, 2]: each dimension has extent 2, so one link per
        // dimension per chip: 4 chips x 2 links.
        assert_eq!(pod.shape(), [2, 2, 1]);
        assert_eq!(graph.num_links(), 8);
        for link in graph.links() {
            assert!(link.src < 4 && link.dst < 4 && link.src != link.dst);
        }
    }

    #[test]
    fn torus_link_count_matches_usable_links() {
        for (kind, chips) in
            [(TorusKind::Torus2D, 16), (TorusKind::Torus3D, 8), (TorusKind::Torus3D, 64)]
        {
            let pod = PodTopology::for_chips(kind, chips);
            let graph = LinkGraph::torus(&pod);
            assert_eq!(
                graph.num_links(),
                chips * pod.usable_links_per_chip(),
                "{pod}: every chip owns one outgoing link per usable direction"
            );
        }
    }

    #[test]
    fn routes_cover_all_pairs_and_respect_the_diameter() {
        for (kind, chips) in [(TorusKind::Torus2D, 16), (TorusKind::Torus3D, 16)] {
            let pod = PodTopology::for_chips(kind, chips);
            let graph = LinkGraph::torus(&pod);
            for src in 0..chips {
                for dst in 0..chips {
                    let route = graph.route(src, dst);
                    if src == dst {
                        assert!(route.is_empty());
                        continue;
                    }
                    assert!(!route.is_empty(), "{pod}: no route {src} -> {dst}");
                    assert!(route.len() <= pod.diameter_hops(), "{pod}: route over diameter");
                    // The route is a connected walk from src to dst.
                    let mut at = src;
                    for &id in route {
                        assert_eq!(graph.links()[id].src, at);
                        at = graph.links()[id].dst;
                    }
                    assert_eq!(at, dst);
                }
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let pod = PodTopology::for_chips(TorusKind::Torus3D, 16);
        let a = LinkGraph::torus(&pod);
        let b = LinkGraph::torus(&pod);
        assert_eq!(a, b);
    }

    #[test]
    fn collective_ring_visits_every_chip_once() {
        let pod = PodTopology::for_chips(TorusKind::Torus2D, 8);
        let graph = LinkGraph::torus(&pod);
        let ring = graph.collective_ring();
        assert_eq!(ring.len(), 8);
        for (i, hop) in ring.iter().enumerate() {
            assert!(!hop.is_empty(), "hop {i} has no links");
            let mut at = i;
            for &id in hop {
                assert_eq!(graph.links()[id].src, at);
                at = graph.links()[id].dst;
            }
            assert_eq!(at, (i + 1) % 8);
        }
    }

    #[test]
    fn fat_tree_routes_traverse_switches() {
        let graph = LinkGraph::fat_tree(8, 4);
        assert_eq!(graph.fabric(), FabricKind::FatTree);
        assert_eq!(graph.num_chips(), 8);
        // 8 chips + 2 leaf switches + 1 spine.
        assert_eq!(graph.num_nodes(), 11);
        // Same-leaf chips route chip -> leaf -> chip (2 links).
        assert_eq!(graph.route(0, 1).len(), 2);
        // Cross-leaf chips route chip -> leaf -> spine -> leaf -> chip.
        assert_eq!(graph.route(0, 7).len(), 4);
        for src in 0..8 {
            for dst in 0..8 {
                if src != dst {
                    assert!(!graph.route(src, dst).is_empty());
                }
            }
        }
        // A single-leaf tree has no spine.
        let small = LinkGraph::fat_tree(3, 4);
        assert_eq!(small.num_nodes(), 4);
        assert_eq!(small.route(0, 2).len(), 2);
    }

    #[test]
    fn display_summarizes_the_fabric() {
        let pod = PodTopology::for_chips(TorusKind::Torus2D, 4);
        assert_eq!(LinkGraph::torus(&pod).to_string(), "2D Torus fabric: 4 chips, 8 links");
    }
}
