//! NPU pod topology: 2D/3D torus formed by inter-chip interconnect links.
//!
//! The paper's pods are arranged as 2D or 3D tori optimized for all-reduce
//! bandwidth (§2.1). This module provides the topology geometry and the
//! analytic collective-communication cost model used by the simulator.

use serde::{Deserialize, Serialize};

/// Kind of torus formed by the ICI links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TorusKind {
    /// 2D torus (4 links per chip): NPU-A/B/C.
    Torus2D,
    /// 3D torus (6 links per chip): NPU-D/E.
    Torus3D,
}

impl TorusKind {
    /// Number of torus dimensions.
    #[must_use]
    pub fn dims(self) -> usize {
        match self {
            TorusKind::Torus2D => 2,
            TorusKind::Torus3D => 3,
        }
    }

    /// Number of ICI links per chip implied by the torus (two per dimension).
    #[must_use]
    pub fn links_per_chip(self) -> usize {
        self.dims() * 2
    }
}

impl std::fmt::Display for TorusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.dims() {
            2 => write!(f, "2D Torus"),
            _ => write!(f, "3D Torus"),
        }
    }
}

/// A pod of NPU chips connected by ICI links in a torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PodTopology {
    kind: TorusKind,
    shape: [usize; 3],
}

impl PodTopology {
    /// Builds the most cube-like torus of `num_chips` chips for the given
    /// torus kind. A single chip yields a degenerate 1×1(×1) pod.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` is zero.
    #[must_use]
    pub fn for_chips(kind: TorusKind, num_chips: usize) -> Self {
        assert!(num_chips > 0, "a pod needs at least one chip");
        let shape = match kind.dims() {
            2 => {
                let (x, y) = balanced_factor2(num_chips);
                [x, y, 1]
            }
            _ => {
                let (x, y, z) = balanced_factor3(num_chips);
                [x, y, z]
            }
        };
        PodTopology { kind, shape }
    }

    /// Torus kind of the pod.
    #[must_use]
    pub fn kind(&self) -> TorusKind {
        self.kind
    }

    /// Shape of the torus as `[x, y, z]` (z = 1 for a 2D torus).
    #[must_use]
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Total number of chips in the pod.
    #[must_use]
    pub fn num_chips(&self) -> usize {
        self.shape.iter().product()
    }

    /// Number of usable ICI links per chip (links to distinct neighbours).
    ///
    /// In a dimension of size 1 there is no neighbour; in a dimension of
    /// size 2 both directions reach the same neighbour, so only one link's
    /// worth of distinct connectivity exists per such dimension.
    #[must_use]
    pub fn usable_links_per_chip(&self) -> usize {
        self.shape
            .iter()
            .map(|&extent| match extent {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            })
            .sum()
    }

    /// Bisection bandwidth of the pod in units of link bandwidth.
    ///
    /// For a torus, cutting the largest dimension in half severs
    /// `2 * (num_chips / largest_dim)` links (wrap-around counts).
    ///
    /// # Panics
    ///
    /// Panics if the topology shape is empty, which the constructors
    /// never produce.
    #[must_use]
    pub fn bisection_links(&self) -> usize {
        let largest = *self.shape.iter().max().expect("non-empty shape");
        if largest <= 1 {
            return 0;
        }
        2 * self.num_chips() / largest
    }

    /// Longest shortest-path hop count between any two chips in the torus.
    #[must_use]
    pub fn diameter_hops(&self) -> usize {
        self.shape.iter().map(|&extent| extent / 2).sum()
    }

    /// Time in seconds for a bandwidth-optimal ring/torus all-reduce of
    /// `bytes` bytes per chip, given per-link bandwidth `link_gbps` (GB/s).
    ///
    /// The standard cost model is `2 * (n-1)/n * bytes` traversing the
    /// slowest link, spread over the links usable by the collective.
    /// Latency per hop is charged via `hop_latency_s`.
    #[must_use]
    pub fn allreduce_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        let n = self.num_chips() as f64;
        if n <= 1.0 || bytes <= 0.0 {
            return 0.0;
        }
        let links = self.usable_links_per_chip().max(1) as f64;
        let wire = 2.0 * (n - 1.0) / n * bytes / (link_gbps * 1.0e9 * links);
        let latency = 2.0 * (n - 1.0) * hop_latency_s / links;
        wire + latency
    }

    /// Time in seconds for a reduce-scatter (or all-gather) of `bytes` bytes
    /// per chip: half the all-reduce traffic.
    #[must_use]
    pub fn reduce_scatter_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        let n = self.num_chips() as f64;
        if n <= 1.0 || bytes <= 0.0 {
            return 0.0;
        }
        let links = self.usable_links_per_chip().max(1) as f64;
        let wire = (n - 1.0) / n * bytes / (link_gbps * 1.0e9 * links);
        let latency = (n - 1.0) * hop_latency_s / links;
        wire + latency
    }

    /// Time in seconds for an all-to-all exchanging `bytes` bytes per chip.
    ///
    /// All-to-all stresses bisection bandwidth: each half of the machine
    /// sends half of its data across the bisection.
    #[must_use]
    pub fn alltoall_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        let n = self.num_chips() as f64;
        if n <= 1.0 || bytes <= 0.0 {
            return 0.0;
        }
        let bisection = self.bisection_links().max(1) as f64;
        let cross_bytes = bytes * n / 2.0 / 2.0; // half the chips send half their data across
        let wire = cross_bytes / (bisection * link_gbps * 1.0e9);
        let latency = self.diameter_hops() as f64 * hop_latency_s;
        wire + latency
    }

    /// Time in seconds for a point-to-point send of `bytes` bytes between
    /// neighbouring chips (used by pipeline parallelism).
    #[must_use]
    pub fn p2p_seconds(&self, bytes: f64, link_gbps: f64, hop_latency_s: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / (link_gbps * 1.0e9) + hop_latency_s
    }
}

impl std::fmt::Display for PodTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.kind.dims() == 2 {
            write!(f, "{}x{} {}", self.shape[0], self.shape[1], self.kind)
        } else {
            write!(f, "{}x{}x{} {}", self.shape[0], self.shape[1], self.shape[2], self.kind)
        }
    }
}

/// Factors `n` into two dimensions as close to square as possible.
fn balanced_factor2(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut x = 1;
    while x * x <= n {
        if n.is_multiple_of(x) {
            best = (x, n / x);
        }
        x += 1;
    }
    best
}

/// Factors `n` into three dimensions as close to a cube as possible.
fn balanced_factor3(n: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, n);
    let mut best_score = usize::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let (y, z) = balanced_factor2(n / x);
            let score = x.max(y).max(z) - x.min(y).min(z);
            if score < best_score {
                best_score = score;
                best = (x, y, z);
            }
        }
        x += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_kind_links() {
        assert_eq!(TorusKind::Torus2D.links_per_chip(), 4);
        assert_eq!(TorusKind::Torus3D.links_per_chip(), 6);
        assert_eq!(TorusKind::Torus2D.to_string(), "2D Torus");
    }

    #[test]
    fn balanced_factorizations() {
        assert_eq!(balanced_factor2(16), (4, 4));
        assert_eq!(balanced_factor2(8), (2, 4));
        assert_eq!(balanced_factor2(7), (1, 7));
        assert_eq!(balanced_factor3(64), (4, 4, 4));
        assert_eq!(balanced_factor3(8), (2, 2, 2));
        assert_eq!(balanced_factor3(16), (2, 2, 4));
        assert_eq!(balanced_factor3(12), (2, 2, 3));
        assert_eq!(balanced_factor3(1), (1, 1, 1));
    }

    #[test]
    fn pod_shapes() {
        let p = PodTopology::for_chips(TorusKind::Torus2D, 16);
        assert_eq!(p.shape(), [4, 4, 1]);
        assert_eq!(p.num_chips(), 16);
        let p3 = PodTopology::for_chips(TorusKind::Torus3D, 64);
        assert_eq!(p3.shape(), [4, 4, 4]);
        assert_eq!(p3.to_string(), "4x4x4 3D Torus");
    }

    #[test]
    fn single_chip_pod_has_no_links() {
        let p = PodTopology::for_chips(TorusKind::Torus3D, 1);
        assert_eq!(p.usable_links_per_chip(), 0);
        assert_eq!(p.bisection_links(), 0);
        assert_eq!(p.allreduce_seconds(1e9, 100.0, 1e-6), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_links() {
        let p = PodTopology::for_chips(TorusKind::Torus2D, 16);
        let t1 = p.allreduce_seconds(1e9, 100.0, 1e-6);
        let t2 = p.allreduce_seconds(2e9, 100.0, 1e-6);
        assert!(t2 > 1.8 * t1, "all-reduce should scale roughly linearly in bytes");
        // A larger pod with the same per-chip link count moves slightly more
        // data over the slowest link ((n-1)/n grows towards 1).
        let p_large = PodTopology::for_chips(TorusKind::Torus2D, 64);
        let t_large = p_large.allreduce_seconds(1e9, 100.0, 1e-6);
        assert!(t_large >= t1, "larger pods cannot be faster per byte");
    }

    #[test]
    fn reduce_scatter_is_half_allreduce_wire_time() {
        let p = PodTopology::for_chips(TorusKind::Torus2D, 16);
        let ar = p.allreduce_seconds(1e9, 100.0, 0.0);
        let rs = p.reduce_scatter_seconds(1e9, 100.0, 0.0);
        assert!((ar / rs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alltoall_uses_bisection() {
        let p = PodTopology::for_chips(TorusKind::Torus3D, 64);
        assert_eq!(p.bisection_links(), 2 * 64 / 4);
        let t = p.alltoall_seconds(1e8, 100.0, 1e-6);
        assert!(t > 0.0);
    }

    #[test]
    fn p2p_time_includes_latency() {
        let p = PodTopology::for_chips(TorusKind::Torus3D, 8);
        let t = p.p2p_seconds(1e9, 100.0, 2e-6);
        assert!((t - (0.01 + 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn diameter_grows_with_pod_size() {
        let small = PodTopology::for_chips(TorusKind::Torus2D, 4);
        let large = PodTopology::for_chips(TorusKind::Torus2D, 64);
        assert!(large.diameter_hops() > small.diameter_hops());
    }
}
