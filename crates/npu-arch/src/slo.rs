//! Service-level-objective (SLO) model.
//!
//! The paper compares NPU generations at equal service levels: for each
//! workload, the performance achieved on the minimum number of NPU-D chips
//! with the default batch size defines the baseline, and 1/5 of that
//! performance is the "1× SLO" (5× the latency for inference, 1/5 of the
//! throughput for training). Each generation is then evaluated with its most
//! energy-efficient SLO-compliant configuration; generations that cannot
//! meet the 1× SLO report the best relaxed SLO they can achieve (§3).

use serde::{Deserialize, Serialize};

/// Whether a workload is latency-bound (inference) or throughput-bound
/// (training), which determines how the SLO is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SloTarget {
    /// Maximum acceptable latency in seconds per request/iteration.
    LatencySeconds(f64),
    /// Minimum acceptable throughput in work-units per second
    /// (tokens/s, requests/s, images/s, or iterations/s).
    Throughput(f64),
}

impl SloTarget {
    /// Checks whether an achieved latency/throughput satisfies the target.
    #[must_use]
    pub fn is_met(&self, achieved_latency_s: f64, achieved_throughput: f64) -> bool {
        match *self {
            SloTarget::LatencySeconds(limit) => achieved_latency_s <= limit,
            SloTarget::Throughput(min) => achieved_throughput >= min,
        }
    }

    /// Returns the target relaxed by `factor` (≥ 1.0): latency limits grow,
    /// throughput floors shrink.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is below 1.0 — that would *tighten* the target.
    #[must_use]
    pub fn relaxed(&self, factor: f64) -> SloTarget {
        assert!(factor >= 1.0, "relaxation factor must be >= 1");
        match *self {
            SloTarget::LatencySeconds(limit) => SloTarget::LatencySeconds(limit * factor),
            SloTarget::Throughput(min) => SloTarget::Throughput(min / factor),
        }
    }
}

/// An SLO specification derived from a baseline measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    target: SloTarget,
    /// The multiple of the 1× SLO this spec represents (1.0 = 1× SLO).
    relaxation: f64,
}

impl SloSpec {
    /// SLO slack factor applied to the baseline performance (the paper uses
    /// 1/5 of the NPU-D baseline performance as the 1× SLO).
    pub const BASELINE_SLACK: f64 = 5.0;

    /// Builds the 1× SLO for a latency-bound workload from the baseline
    /// latency measured on the reference configuration.
    #[must_use]
    pub fn from_baseline_latency(baseline_latency_s: f64) -> Self {
        SloSpec {
            target: SloTarget::LatencySeconds(baseline_latency_s * Self::BASELINE_SLACK),
            relaxation: 1.0,
        }
    }

    /// Builds the 1× SLO for a throughput-bound workload from the baseline
    /// throughput measured on the reference configuration.
    #[must_use]
    pub fn from_baseline_throughput(baseline_throughput: f64) -> Self {
        SloSpec {
            target: SloTarget::Throughput(baseline_throughput / Self::BASELINE_SLACK),
            relaxation: 1.0,
        }
    }

    /// The underlying latency/throughput target.
    #[must_use]
    pub fn target(&self) -> SloTarget {
        self.target
    }

    /// The SLO multiple (1.0 = 1× SLO, 2.0 = 2× relaxed, …).
    #[must_use]
    pub fn relaxation(&self) -> f64 {
        self.relaxation
    }

    /// Whether an achieved latency/throughput meets this SLO.
    #[must_use]
    pub fn is_met(&self, achieved_latency_s: f64, achieved_throughput: f64) -> bool {
        self.target.is_met(achieved_latency_s, achieved_throughput)
    }

    /// Returns this SLO relaxed by an additional integer factor (2×, 4×, …).
    #[must_use]
    pub fn relaxed(&self, factor: f64) -> SloSpec {
        SloSpec { target: self.target.relaxed(factor), relaxation: self.relaxation * factor }
    }

    /// Finds the smallest relaxation factor from `candidates` (sorted
    /// ascending) under which the achieved performance meets the SLO.
    /// Returns `None` if even the largest candidate fails.
    #[must_use]
    pub fn smallest_feasible_relaxation(
        &self,
        achieved_latency_s: f64,
        achieved_throughput: f64,
        candidates: &[f64],
    ) -> Option<f64> {
        candidates
            .iter()
            .copied()
            .find(|&f| self.relaxed(f).is_met(achieved_latency_s, achieved_throughput))
    }

    /// Label used in figures, e.g. `"1x"` or `"2x"`.
    #[must_use]
    pub fn label(&self) -> String {
        if (self.relaxation - self.relaxation.round()).abs() < 1e-9 {
            format!("{}x", self.relaxation.round() as u64)
        } else {
            format!("{:.1}x", self.relaxation)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_slo_from_baseline() {
        let slo = SloSpec::from_baseline_latency(0.1);
        // 1x SLO is 5x the baseline latency.
        assert!(slo.is_met(0.5, 0.0));
        assert!(slo.is_met(0.49, 0.0));
        assert!(!slo.is_met(0.51, 0.0));
        assert_eq!(slo.label(), "1x");
    }

    #[test]
    fn throughput_slo_from_baseline() {
        let slo = SloSpec::from_baseline_throughput(100.0);
        assert!(slo.is_met(0.0, 20.0));
        assert!(!slo.is_met(0.0, 19.9));
    }

    #[test]
    fn relaxation_scales_targets() {
        let slo = SloSpec::from_baseline_latency(0.1);
        let relaxed = slo.relaxed(2.0);
        assert!(relaxed.is_met(0.9, 0.0));
        assert!(!slo.is_met(0.9, 0.0));
        assert_eq!(relaxed.label(), "2x");
        assert_eq!(relaxed.relaxation(), 2.0);
    }

    #[test]
    fn smallest_feasible_relaxation_picks_first_passing() {
        let slo = SloSpec::from_baseline_latency(0.1); // 1x limit = 0.5 s
        let candidates = [1.0, 2.0, 4.0, 8.0];
        assert_eq!(slo.smallest_feasible_relaxation(0.4, 0.0, &candidates), Some(1.0));
        assert_eq!(slo.smallest_feasible_relaxation(0.9, 0.0, &candidates), Some(2.0));
        assert_eq!(slo.smallest_feasible_relaxation(1.9, 0.0, &candidates), Some(4.0));
        assert_eq!(slo.smallest_feasible_relaxation(10.0, 0.0, &candidates), None);
    }

    #[test]
    fn fractional_relaxation_label() {
        let slo = SloSpec::from_baseline_throughput(10.0).relaxed(1.5);
        assert_eq!(slo.label(), "1.5x");
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn tightening_is_rejected() {
        let _ = SloTarget::LatencySeconds(1.0).relaxed(0.5);
    }
}
