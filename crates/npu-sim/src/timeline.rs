//! Event-timeline scheduling: per-resource occupancy tracks, merged busy
//! intervals on the global clock, and the idle-interval statistics the
//! ReGate gating model consumes.
//!
//! The engine replaces the old serial anchor walk: every operator is split
//! into a DMA prefetch phase and a main (compute / gather / collective)
//! phase, each phase waits only on its *dependencies* — the operator's
//! producer, its input data, and its execution resource — and phases of
//! different operators overlap freely. HBM prefetch is double buffered:
//! while operator `k` computes, the DMA engine may already stream operator
//! `k+1`'s operands into the second SRAM buffer, and the prefetch of
//! operator `k+2` waits until operator `k` releases its buffer.
//!
//! The output is a [`Schedule`]: per-operator phase times plus a
//! [`BusyTimeline`] of merged `[start, end)` busy intervals per component
//! on the global clock. Gating analyses walk the *gaps* of that timeline
//! ([`BusyTimeline::idle_intervals`], [`IdleHistogram`]) instead of
//! aggregate busy-cycle counts, which is what makes break-even filtering
//! and wake-up latency hiding representable (paper §4–§6).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::ComponentKind;

use crate::events::{EventKind, EventQueue};
use crate::observer::{NullObserver, SimObserver};

/// The *kind* of a schedulable hardware resource with a single in-order
/// issue port. A [`ResourceSet`] instantiates one resource of each kind
/// per chip (plus one ICI resource per fabric link); the single-chip set
/// has exactly one instance of each, with dense ids in this enum's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// The systolic arrays (issued as one gang).
    Sa,
    /// The vector units (issued as one gang).
    Vu,
    /// The HBM DMA queue (weight/activation streams and gathers).
    HbmDma,
    /// The inter-chip interconnect port of a chip (single-phase analytic
    /// collectives; per-hop collectives occupy link resources instead).
    Ici,
}

/// Dense index of one resource *instance* within a [`ResourceSet`] — the
/// key of the engine's `free_at` vector and per-resource busy tracks.
/// Replaces direct keying on the fixed [`Resource`] enum so a run can own
/// N chips' worth of units plus one resource per ICI link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The id as a dense vector index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<Resource> for ResourceId {
    /// Single-chip mapping: ids `0..4` in [`Resource`] enum order — chip
    /// 0's unit of each kind in [`ResourceSet::single_chip`].
    fn from(kind: Resource) -> Self {
        ResourceId(kind as u32)
    }
}

/// Per-chip resource kinds, in dense-id order within each chip's block.
const CHIP_UNITS: [Resource; 4] = [Resource::Sa, Resource::Vu, Resource::HbmDma, Resource::Ici];

/// The resource instances one engine run schedules over: `num_chips`
/// blocks of per-chip units ([`Resource::Sa`], [`Resource::Vu`],
/// [`Resource::HbmDma`], [`Resource::Ici`] — ids `4c .. 4c+4`), followed
/// by one ICI resource per fabric link (ids `4 * num_chips + l`). The
/// layout is fully determined by the two counts, so the set is a tiny
/// `Copy` descriptor rather than a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceSet {
    num_chips: usize,
    num_links: usize,
}

impl ResourceSet {
    /// The pre-refactor single-chip set: one unit of each [`Resource`]
    /// kind, ids `0..4` in enum order, no link resources.
    #[must_use]
    pub fn single_chip() -> Self {
        ResourceSet { num_chips: 1, num_links: 0 }
    }

    /// A pod of `num_chips` chips over a fabric with `num_links` links.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` is zero.
    #[must_use]
    pub fn pod(num_chips: usize, num_links: usize) -> Self {
        assert!(num_chips > 0, "a resource set needs at least one chip");
        ResourceSet { num_chips, num_links }
    }

    /// Number of chips in the set.
    #[must_use]
    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    /// Number of fabric-link resources in the set.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Total number of resource instances (`4 * chips + links`).
    #[must_use]
    pub fn num_resources(&self) -> usize {
        self.num_chips * CHIP_UNITS.len() + self.num_links
    }

    /// Whether `id` names a resource of this set.
    #[must_use]
    pub fn contains(&self, id: ResourceId) -> bool {
        id.index() < self.num_resources()
    }

    /// The id of one chip's unit of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    #[must_use]
    pub fn unit(&self, chip: usize, kind: Resource) -> ResourceId {
        assert!(chip < self.num_chips, "chip {chip} out of range ({} chips)", self.num_chips);
        ResourceId((chip * CHIP_UNITS.len() + kind as usize) as u32)
    }

    /// The id of one fabric link's resource.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn link(&self, link: usize) -> ResourceId {
        assert!(link < self.num_links, "link {link} out of range ({} links)", self.num_links);
        self.link_unchecked(link)
    }

    /// The id a fabric link *would* have, without range checking — used
    /// by fixture builders so the `topo.*` analyzer rules can flag
    /// out-of-range links instead of panicking during construction.
    #[must_use]
    pub fn link_unchecked(&self, link: usize) -> ResourceId {
        ResourceId((self.num_chips * CHIP_UNITS.len() + link) as u32)
    }

    /// The kind of a resource instance (link resources are ICI).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the set.
    #[must_use]
    pub fn kind(&self, id: ResourceId) -> Resource {
        assert!(self.contains(id), "resource {} out of range ({})", id.0, self.num_resources());
        let units = self.num_chips * CHIP_UNITS.len();
        if id.index() < units {
            CHIP_UNITS[id.index() % CHIP_UNITS.len()]
        } else {
            Resource::Ici
        }
    }

    /// The chip owning a resource instance, or `None` for fabric links
    /// (which belong to the inter-chip fabric, not to either endpoint).
    #[must_use]
    pub fn chip_of(&self, id: ResourceId) -> Option<usize> {
        let units = self.num_chips * CHIP_UNITS.len();
        if id.index() < units {
            Some(id.index() / CHIP_UNITS.len())
        } else {
            None
        }
    }

    /// The link index of a resource instance, or `None` for chip units.
    #[must_use]
    pub fn link_of(&self, id: ResourceId) -> Option<usize> {
        let units = self.num_chips * CHIP_UNITS.len();
        if (units..self.num_resources()).contains(&id.index()) {
            Some(id.index() - units)
        } else {
            None
        }
    }

    /// The per-chip unit ids of one chip, in [`Resource`] enum order.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    #[must_use]
    pub fn chip_units(&self, chip: usize) -> [ResourceId; 4] {
        [
            self.unit(chip, Resource::Sa),
            self.unit(chip, Resource::Vu),
            self.unit(chip, Resource::HbmDma),
            self.unit(chip, Resource::Ici),
        ]
    }
}

/// Per-hop schedule of a lowered collective: the fabric-link resources
/// the collective occupies and the duration of each of its steps. A ring
/// collective drives *every* ring link concurrently during each step, so
/// the engine gang-issues the whole link set for `sum(step_cycles)`
/// cycles (which must equal the phase's `main_cycles`); two collectives
/// sharing any link serialize on it naturally via the link's `free_at`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveSchedule {
    /// Link resources occupied for the collective's whole duration.
    pub links: Vec<ResourceId>,
    /// Per-step (per-hop) durations; their sum is the total transfer.
    pub step_cycles: Vec<u64>,
}

impl CollectiveSchedule {
    /// Total transfer cycles (sum over steps).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.step_cycles.iter().sum()
    }
}

/// A half-open busy interval `[start, end)` in cycles on the global clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleInterval {
    /// First busy cycle.
    pub start: u64,
    /// First cycle after the interval.
    pub end: u64,
}

impl CycleInterval {
    /// Length of the interval in cycles.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the interval is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether the interval contains cycle `at`.
    #[must_use]
    pub fn contains(&self, at: u64) -> bool {
        self.start <= at && at < self.end
    }
}

/// Sorts and merges intervals in place into a disjoint, sorted sequence
/// (overlapping and abutting intervals coalesce). Shared by the
/// per-component busy tracks and the per-segment SRAM timeline.
///
/// Allocation-free: coalescing happens behind a write cursor, and the sort
/// is skipped entirely when the input is already ordered — which
/// schedule-order recording guarantees for most tracks (the HBM track can
/// interleave prefetch-channel and demand-channel records out of order, so
/// the sortedness check is mandatory, not just an optimization).
pub(crate) fn merge_intervals(list: &mut Vec<CycleInterval>) {
    if list.len() < 2 {
        return;
    }
    let sorted = list.windows(2).all(|w| (w[0].start, w[0].end) <= (w[1].start, w[1].end));
    if !sorted {
        list.sort_by_key(|iv| (iv.start, iv.end));
    }
    let mut write = 0usize;
    for read in 1..list.len() {
        let iv = list[read];
        if iv.start <= list[write].end {
            list[write].end = list[write].end.max(iv.end);
        } else {
            write += 1;
            list[write] = iv;
        }
    }
    list.truncate(write + 1);
}

/// The idle gaps complementing a disjoint, sorted interval list over
/// `[0, total_cycles)`.
pub(crate) fn complement_intervals(
    intervals: &[CycleInterval],
    total_cycles: u64,
) -> Vec<CycleInterval> {
    let mut gaps = Vec::new();
    let mut cursor = 0u64;
    for iv in intervals {
        if iv.start > cursor {
            gaps.push(CycleInterval { start: cursor, end: iv.start.min(total_cycles) });
        }
        cursor = cursor.max(iv.end);
    }
    if total_cycles > cursor {
        gaps.push(CycleInterval { start: cursor, end: total_cycles });
    }
    gaps
}

/// Merged, sorted, disjoint busy intervals per component on the global
/// clock — the timeline the interval-accurate gating model walks.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BusyTimeline {
    intervals: BTreeMap<ComponentKind, Vec<CycleInterval>>,
}

impl BusyTimeline {
    /// Records a raw (possibly overlapping) busy interval. Call
    /// [`BusyTimeline::finalize`] once after recording everything.
    pub fn record(&mut self, kind: ComponentKind, start: u64, end: u64) {
        if end > start {
            self.intervals.entry(kind).or_default().push(CycleInterval { start, end });
        }
    }

    /// Sorts and merges every component's intervals into a disjoint,
    /// sorted sequence (overlapping and abutting intervals coalesce).
    pub fn finalize(&mut self) {
        for list in self.intervals.values_mut() {
            merge_intervals(list);
        }
    }

    /// Merged busy intervals of one component (empty if never busy).
    #[must_use]
    pub fn intervals(&self, kind: ComponentKind) -> &[CycleInterval] {
        self.intervals.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total busy cycles of one component (sum of merged interval lengths).
    #[must_use]
    pub fn busy_cycles(&self, kind: ComponentKind) -> u64 {
        self.intervals(kind).iter().map(CycleInterval::len).sum()
    }

    /// The idle gaps of one component over `[0, total_cycles)`, including
    /// the leading interval before first use and the trailing interval
    /// after last use. Complements [`BusyTimeline::intervals`] exactly:
    /// busy plus idle lengths sum to `total_cycles`.
    #[must_use]
    pub fn idle_intervals(&self, kind: ComponentKind, total_cycles: u64) -> Vec<CycleInterval> {
        complement_intervals(self.intervals(kind), total_cycles)
    }

    /// Merged union of the busy intervals of several components — the
    /// "any of these is working" timeline. The serving layer uses the
    /// union over every real component (excluding the always-on
    /// peripheral track) to *measure* the chip's duty cycle from the
    /// schedule, instead of assuming the paper's fleet-average scalar.
    #[must_use]
    pub fn union_intervals(&self, kinds: &[ComponentKind]) -> Vec<CycleInterval> {
        let mut all: Vec<CycleInterval> =
            kinds.iter().flat_map(|&k| self.intervals(k).iter().copied()).collect();
        merge_intervals(&mut all);
        all
    }

    /// Total cycles in which at least one of the given components is busy.
    #[must_use]
    pub fn union_busy_cycles(&self, kinds: &[ComponentKind]) -> u64 {
        self.union_intervals(kinds).iter().map(CycleInterval::len).sum()
    }

    /// The gaps over `[0, total_cycles)` in which *none* of the given
    /// components is busy — the whole-chip idle intervals when called
    /// with every real component. These are the pipeline-bubble windows
    /// a chip-level power policy can walk just like any per-component
    /// idle-interval list.
    #[must_use]
    pub fn union_idle_intervals(
        &self,
        kinds: &[ComponentKind],
        total_cycles: u64,
    ) -> Vec<CycleInterval> {
        complement_intervals(&self.union_intervals(kinds), total_cycles)
    }
}

/// Merged, sorted, disjoint busy intervals per resource *instance* — the
/// per-chip / per-link companion of the kind-level [`BusyTimeline`]. On a
/// pod schedule the kind tracks merge every chip's activity into one view
/// (good for fleet-level energy), while these tracks keep each SA, each
/// DMA queue, and each ICI link separate so link-level gating and
/// whole-chip idleness can be read off directly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceTimeline {
    tracks: Vec<Vec<CycleInterval>>,
}

impl ResourceTimeline {
    /// An empty timeline with one track per resource of the set.
    #[must_use]
    pub fn for_set(set: &ResourceSet) -> Self {
        ResourceTimeline { tracks: vec![Vec::new(); set.num_resources()] }
    }

    /// Records a raw (possibly overlapping) busy interval on one track.
    /// Call [`ResourceTimeline::finalize`] once after recording.
    pub fn record(&mut self, id: ResourceId, start: u64, end: u64) {
        if end > start && id.index() < self.tracks.len() {
            self.tracks[id.index()].push(CycleInterval { start, end });
        }
    }

    /// The single-chip tracks, derived from the kind-level timeline
    /// instead of recorded live. On a [`ResourceSet::single_chip`] run
    /// every `tracks.record` call pairs with a `timeline.record` of the
    /// unit's kind (the HBM-DMA unit with [`ComponentKind::Hbm`]), so the
    /// merged per-resource tracks are *identical* to the component tracks
    /// — deriving them after the fact keeps the doubled interval
    /// recording off the single-chip event loop, which is the serving
    /// replay hot path.
    #[must_use]
    pub fn single_chip_view(timeline: &BusyTimeline) -> Self {
        ResourceTimeline {
            tracks: [ComponentKind::Sa, ComponentKind::Vu, ComponentKind::Hbm, ComponentKind::Ici]
                .iter()
                .map(|&kind| timeline.intervals(kind).to_vec())
                .collect(),
        }
    }

    /// Sorts and merges every track into a disjoint, sorted sequence.
    pub fn finalize(&mut self) {
        for track in &mut self.tracks {
            merge_intervals(track);
        }
    }

    /// Number of tracks (resources of the set the schedule ran against).
    #[must_use]
    pub fn num_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Merged busy intervals of one resource (empty if never busy or out
    /// of range).
    #[must_use]
    pub fn track(&self, id: ResourceId) -> &[CycleInterval] {
        self.tracks.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total busy cycles of one resource.
    #[must_use]
    pub fn busy_cycles(&self, id: ResourceId) -> u64 {
        self.track(id).iter().map(CycleInterval::len).sum()
    }

    /// The idle gaps of one resource over `[0, total_cycles)` — the
    /// intervals a per-link (or per-unit) power policy walks.
    #[must_use]
    pub fn idle_intervals(&self, id: ResourceId, total_cycles: u64) -> Vec<CycleInterval> {
        complement_intervals(self.track(id), total_cycles)
    }

    /// Merged union of several resources' busy intervals.
    #[must_use]
    pub fn union_intervals(&self, ids: &[ResourceId]) -> Vec<CycleInterval> {
        let mut all: Vec<CycleInterval> =
            ids.iter().flat_map(|&id| self.track(id).iter().copied()).collect();
        merge_intervals(&mut all);
        all
    }

    /// The gaps over `[0, total_cycles)` in which none of the given
    /// resources is busy.
    #[must_use]
    pub fn union_idle_intervals(
        &self,
        ids: &[ResourceId],
        total_cycles: u64,
    ) -> Vec<CycleInterval> {
        complement_intervals(&self.union_intervals(ids), total_cycles)
    }

    /// The whole-chip idle intervals of one chip: the gaps in which none
    /// of the chip's units is busy. Pipeline-parallel stage bubbles show
    /// up here as long, contiguous, chip-wide gateable windows.
    #[must_use]
    pub fn chip_idle_intervals(
        &self,
        set: &ResourceSet,
        chip: usize,
        total_cycles: u64,
    ) -> Vec<CycleInterval> {
        self.union_idle_intervals(&set.chip_units(chip), total_cycles)
    }
}

/// One bucket of the idle-interval histogram: intervals with length in
/// `[lower, upper)` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleBucket {
    /// Smallest interval length in this bucket (inclusive), in cycles.
    pub lower: u64,
    /// Smallest length *not* in this bucket (exclusive), in cycles.
    pub upper: u64,
    /// Number of idle intervals in the bucket.
    pub count: u64,
    /// Total idle cycles contributed by intervals in the bucket.
    pub total_cycles: u64,
}

/// Chip-level histogram of idle-interval lengths per component, in
/// power-of-two buckets — the distribution §3 and Figure 15 argue gating
/// decisions must be made against.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IdleHistogram {
    buckets: BTreeMap<ComponentKind, Vec<IdleBucket>>,
}

impl IdleHistogram {
    /// Builds the histogram from a finalized timeline over
    /// `[0, total_cycles)`.
    #[must_use]
    pub fn from_timeline(timeline: &BusyTimeline, total_cycles: u64) -> Self {
        let mut buckets: BTreeMap<ComponentKind, Vec<IdleBucket>> = BTreeMap::new();
        for kind in ComponentKind::ALL {
            let mut per_exp: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
            for gap in timeline.idle_intervals(kind, total_cycles) {
                let len = gap.len();
                if len == 0 {
                    continue;
                }
                let exp = 63 - len.leading_zeros();
                let entry = per_exp.entry(exp).or_default();
                entry.0 += 1;
                entry.1 += len;
            }
            let list = per_exp
                .into_iter()
                .map(|(exp, (count, total))| IdleBucket {
                    lower: 1 << exp,
                    upper: if exp >= 63 { u64::MAX } else { 1 << (exp + 1) },
                    count,
                    total_cycles: total,
                })
                .collect();
            buckets.insert(kind, list);
        }
        IdleHistogram { buckets }
    }

    /// Buckets of one component, sorted by ascending interval length.
    #[must_use]
    pub fn buckets(&self, kind: ComponentKind) -> &[IdleBucket] {
        self.buckets.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total idle cycles of one component (sum over buckets).
    #[must_use]
    pub fn total_idle_cycles(&self, kind: ComponentKind) -> u64 {
        self.buckets(kind).iter().map(|b| b.total_cycles).sum()
    }

    /// Number of idle intervals of one component.
    #[must_use]
    pub fn interval_count(&self, kind: ComponentKind) -> u64 {
        self.buckets(kind).iter().map(|b| b.count).sum()
    }

    /// Idle cycles of one component sitting in intervals at least
    /// `min_len` cycles long (bucket-resolution approximation of the
    /// cycles a gating policy with break-even `min_len` could recover).
    #[must_use]
    pub fn gateable_cycles(&self, kind: ComponentKind, min_len: u64) -> u64 {
        self.buckets(kind).iter().filter(|b| b.lower >= min_len).map(|b| b.total_cycles).sum()
    }
}

/// Phase durations of one operator, as computed by the per-operator timing
/// model — the input to the timeline engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpPhases {
    /// Execution resource instance of the main phase. Single-chip phase
    /// vectors use the [`Resource`] enum-order ids (`Resource::Sa.into()`
    /// etc.); pod phase vectors address per-chip units and link resources
    /// through their run's [`ResourceSet`].
    pub unit: ResourceId,
    /// Main-phase duration in cycles (compute for SA/VU operators, the
    /// gather for HBM operators, the collective for ICI operators),
    /// excluding dispatch.
    pub main_cycles: u64,
    /// HBM prefetch cycles issued ahead of the main phase (zero for
    /// gathers, which *are* their transfer, and for collectives).
    pub dma_cycles: u64,
    /// Cycles of the prefetch the main phase must wait for before it can
    /// start consuming data (the first tile of a double-buffered stream).
    pub dma_lead_cycles: u64,
    /// Fused vector post-processing overlapped with an SA main phase.
    pub fused_vu_cycles: u64,
    /// Instruction fetch / scalar setup charged at main-phase issue.
    pub dispatch_cycles: u64,
    /// Cycles within the main phase the systolic arrays actually compute.
    pub sa_active_cycles: u64,
    /// Earliest cycle at which *any* phase of the operator may issue — the
    /// arrival/dispatch time of the request the operator belongs to.
    /// Before this cycle the operator's inputs do not exist, so neither
    /// the DMA prefetch nor the main phase may start; the gap a late
    /// release opens on every resource becomes an ordinary idle interval
    /// that the gating model prices like any other. `0` (every batch
    /// ready at the start, the pre-serving behaviour) is the identity.
    pub release_cycle: u64,
    /// Per-hop link occupation of a lowered collective. `None` (every
    /// single-chip operator, and analytic collectives) issues the main
    /// phase on `unit` alone; `Some` gang-issues the whole link set for
    /// `main_cycles` (which must equal the schedule's step sum). Boxed to
    /// keep the common no-collective `OpPhases` small — the phase vector
    /// is the engine's hottest working set.
    pub collective: Option<Box<CollectiveSchedule>>,
    /// Indices of the operators whose completion this operator's main
    /// phase must wait for (an empty set marks a source). Every index must
    /// be smaller than the operator's own position: the phase vector is a
    /// topological order of the DAG.
    pub producers: Vec<usize>,
}

impl OpPhases {
    /// Wires a phase vector into a linear chain (`k` depends on `k-1`),
    /// the dependency structure of a single-request operator stream.
    #[must_use]
    pub fn chain(mut phases: Vec<OpPhases>) -> Vec<OpPhases> {
        for (k, p) in phases.iter_mut().enumerate() {
            p.producers = if k == 0 { Vec::new() } else { vec![k - 1] };
        }
        phases
    }
}

/// Scheduled phase times of one operator on the global clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// DMA prefetch interval (equal `start`/`end` when the operator has no
    /// prefetch).
    pub dma_start: u64,
    /// End of the DMA prefetch.
    pub dma_end: u64,
    /// Main-phase issue cycle (dispatch begins here).
    pub main_start: u64,
    /// End of the main phase.
    pub main_end: u64,
    /// Completion of the operator (all phases done); successors may start.
    pub finish: u64,
}

impl ScheduledOp {
    /// First cycle at which any phase of the operator occupies hardware.
    #[must_use]
    pub fn span_start(&self) -> u64 {
        if self.dma_end > self.dma_start {
            self.dma_start.min(self.main_start)
        } else {
            self.main_start
        }
    }

    /// Occupancy span of the operator on the global clock.
    #[must_use]
    pub fn span_cycles(&self) -> u64 {
        self.finish.saturating_sub(self.span_start())
    }
}

/// Cheap, always-on counters of one engine run — the "how did the event
/// loop behave" numbers (queue pressure, release-clamp stalls, collective
/// occupancy) that end-of-run aggregates cannot reconstruct. Counted
/// inline in the event loop with plain integer arithmetic, so every run —
/// observed or not — carries them at no measurable cost.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunCounters {
    /// Events popped off the queue over the whole run.
    pub events_popped: u64,
    /// Largest number of scheduled events ever pending at once (sampled
    /// at every pop, which bounds the heap's true peak: the queue only
    /// grows between pops).
    pub heap_peak: u64,
    /// Operators retired (all phases complete).
    pub ops_retired: u64,
    /// Phases that were ready before their operator's release cycle and
    /// had to be clamped to it.
    pub release_stalls: u64,
    /// Total cycles of release clamping across those stalls.
    pub release_stall_cycles: u64,
    /// Lowered collectives gang-issued on link resources.
    pub collectives_issued: u64,
    /// Total per-hop steps across those collectives.
    pub collective_hops: u64,
    /// Busy cycles charged to each fabric link by collectives, indexed by
    /// link number (empty on single-chip runs, which have no links).
    pub link_busy_cycles: Vec<u64>,
}

impl RunCounters {
    /// A zeroed counter block sized for a resource set's links.
    #[must_use]
    pub fn for_set(set: &ResourceSet) -> Self {
        RunCounters { link_busy_cycles: vec![0; set.num_links()], ..RunCounters::default() }
    }

    /// Total link-busy cycles across every fabric link.
    #[must_use]
    pub fn total_link_busy_cycles(&self) -> u64 {
        self.link_busy_cycles.iter().sum()
    }
}

/// Result of scheduling a compiled operator stream on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-operator phase times, in anchor order.
    pub ops: Vec<ScheduledOp>,
    /// Completion time of the last phase (total execution length).
    pub makespan: u64,
    /// Merged per-component busy intervals (finalized). On pod runs every
    /// chip's activity of a kind merges into the one kind track.
    pub timeline: BusyTimeline,
    /// The resource set the schedule was produced against.
    pub resources: ResourceSet,
    /// Per-resource-instance busy tracks (finalized) — one per chip unit
    /// and one per ICI link.
    pub resource_timeline: ResourceTimeline,
    /// Event-loop counters of the run that produced the schedule.
    #[serde(default)]
    pub counters: RunCounters,
}

/// Scheduling state of one operator inside the engine.
#[derive(Debug, Clone, Copy, Default)]
struct OpState {
    pending_producers: usize,
    buffer_ready: bool,
    lead_ready: bool,
    dma_issued: bool,
    main_issued: bool,
    main_done: bool,
    dma_done: bool,
    finished: bool,
    dma_start: u64,
    dma_end: u64,
    main_start: u64,
    main_end: u64,
    finish: u64,
}

/// Reusable run-state buffers for [`TimelineEngine::run_with_scratch`]:
/// the per-operator state arena and the event queue's heap storage.
/// Holding one scratch across many runs (a serving sweep, a bench loop)
/// keeps the hot loop free of per-run allocations.
#[derive(Debug, Default)]
pub struct EngineScratch {
    state: Vec<OpState>,
    events: Vec<crate::events::ScheduledEvent>,
}

/// The event-driven timeline engine.
///
/// The phase vector is a topologically ordered operator DAG: every
/// operator carries an explicit [`OpPhases::producers`] set (empty for
/// sources), so independent subgraphs — DLRM's per-table gathers feeding
/// one all-to-all, or a batch of requests sharing a chip — overlap freely
/// instead of being serialized into a chain.
///
/// The engine itself is an immutable topology: the phase vector plus the
/// reverse producer and buffer edges flattened into CSR index ranges. All
/// per-run state (operator states, the event heap, the busy timeline)
/// lives in an [`EngineScratch`], so one engine can be run many times —
/// with different release vectors — without rebuilding or reallocating
/// anything, and event completion iterates edge slices instead of cloning
/// dependent lists.
///
/// Dependency rules, per operator `k` (topological order):
///
/// * **DMA prefetch** waits for the DMA engine's *prefetch channel* and
///   for a free input buffer — with double buffering, the buffer released
///   when the second-to-last DMA-using operator (in topological order)
///   finishes. Demand traffic (embedding gathers, whose main phase *is*
///   the transfer) runs on a separate demand channel with its own queue,
///   so a speculative prefetch never delays a gather on the producer
///   chain — which keeps the overlapped makespan provably at or below the
///   serial per-op sum.
/// * **Main phase** waits for *all* of its producers to finish, for the
///   lead portion of its own DMA, and for its execution unit. It does
///   *not* wait for unrelated phases of other operators, and never for
///   successors' prefetches.
/// * **Release times**: no phase of an operator issues before its
///   [`OpPhases::release_cycle`] — the arrival/dispatch time of the
///   request the operator serves. Queueing delay and inter-request gaps
///   therefore appear on every resource track as real idle intervals.
/// * The operator **finishes** when both its DMA stream and its main phase
///   (including fused vector post-processing) are complete.
#[derive(Debug)]
pub struct TimelineEngine {
    phases: Vec<OpPhases>,
    /// The resource instances the phase vector schedules over.
    resources: ResourceSet,
    /// CSR reverse producer edges: the operators whose main phase waits
    /// for `k` to finish are `dep_edges[dep_starts[k]..dep_starts[k + 1]]`.
    dep_starts: Vec<usize>,
    dep_edges: Vec<usize>,
    /// `buffer_dep[k]`: operator whose completion frees `k`'s input buffer.
    buffer_dep: Vec<Option<usize>>,
    /// CSR reverse edges of `buffer_dep`, laid out like `dep_*`.
    buf_starts: Vec<usize>,
    buf_edges: Vec<usize>,
}

/// Mutable state of one engine run, borrowed against the immutable
/// topology. `releases` (one entry per operator; empty = use the phases'
/// embedded release cycles) lets a prepared engine serve many release
/// vectors.
struct EngineRun<'a> {
    topo: &'a TimelineEngine,
    releases: &'a [u64],
    state: &'a mut [OpState],
    queue: EventQueue,
    timeline: BusyTimeline,
    tracks: ResourceTimeline,
    /// When each resource instance frees up, indexed by [`ResourceId`].
    free_at: Vec<u64>,
    /// When each chip's DMA prefetch channel frees up. Demand traffic
    /// (gather main phases) queues on the chip's [`Resource::HbmDma`]
    /// entry in `free_at` instead.
    prefetch_free: Vec<u64>,
    /// Inline event-loop counters, handed to the schedule at the end.
    counters: RunCounters,
}

impl TimelineEngine {
    /// How many operators' input buffers may be in flight at once
    /// (double buffering: compute tile `k` while prefetching `k+1`).
    pub const DMA_BUFFER_DEPTH: usize = 2;

    /// Builds the engine over a compiled operator DAG.
    ///
    /// # Panics
    ///
    /// Panics if a producer index is not smaller than its consumer's
    /// position — the phase vector must be a topological order, which the
    /// graph layer guarantees by construction.
    #[must_use]
    pub fn new(phases: Vec<OpPhases>) -> Self {
        Self::with_resources(phases, ResourceSet::single_chip())
    }

    /// Builds the engine over a compiled operator DAG scheduled against
    /// an explicit resource set — the multi-chip entry point. Phase units
    /// and collective link ids must all name resources of the set.
    ///
    /// # Panics
    ///
    /// Panics if the phase vector is not a topological order, or if any
    /// operator addresses a resource outside the set.
    #[must_use]
    pub fn with_resources(phases: Vec<OpPhases>, resources: ResourceSet) -> Self {
        for (k, p) in phases.iter().enumerate() {
            assert!(
                resources.contains(p.unit),
                "operator {k}: unit {} outside the resource set ({} resources)",
                p.unit.0,
                resources.num_resources()
            );
            if let Some(c) = &p.collective {
                for link in &c.links {
                    assert!(
                        resources.link_of(*link).is_some(),
                        "operator {k}: collective link {} is not a link resource",
                        link.0
                    );
                }
            }
        }
        let n = phases.len();
        // Reverse producer edges, flattened: count per producer, prefix
        // sum, then fill in consumer order — the same per-producer edge
        // order `Vec<Vec<usize>>` adjacency produced.
        let mut dep_starts = vec![0usize; n + 1];
        for (k, p) in phases.iter().enumerate() {
            for &producer in &p.producers {
                assert!(
                    producer < k,
                    "operator {k}: producer {producer} does not precede it (not a topological \
                     order)"
                );
                dep_starts[producer + 1] += 1;
            }
        }
        for i in 0..n {
            dep_starts[i + 1] += dep_starts[i];
        }
        let mut cursor = dep_starts.clone();
        let mut dep_edges = vec![0usize; dep_starts[n]];
        for (k, p) in phases.iter().enumerate() {
            for &producer in &p.producers {
                dep_edges[cursor[producer]] = k;
                cursor[producer] += 1;
            }
        }
        // The DMA of the j-th DMA-using operator waits for the
        // (j - DMA_BUFFER_DEPTH)-th DMA-using operator to release its
        // buffer.
        let mut buffer_dep = vec![None; n];
        let mut buf_starts = vec![0usize; n + 1];
        let dma_users: Vec<usize> = (0..n).filter(|&k| phases[k].dma_cycles > 0).collect();
        for (j, &k) in dma_users.iter().enumerate() {
            if j >= Self::DMA_BUFFER_DEPTH {
                let owner = dma_users[j - Self::DMA_BUFFER_DEPTH];
                buffer_dep[k] = Some(owner);
                buf_starts[owner + 1] += 1;
            }
        }
        for i in 0..n {
            buf_starts[i + 1] += buf_starts[i];
        }
        let mut cursor = buf_starts.clone();
        let mut buf_edges = vec![0usize; buf_starts[n]];
        for (k, dep) in buffer_dep.iter().enumerate() {
            if let Some(owner) = dep {
                buf_edges[cursor[*owner]] = k;
                cursor[*owner] += 1;
            }
        }
        TimelineEngine {
            phases,
            resources,
            dep_starts,
            dep_edges,
            buffer_dep,
            buf_starts,
            buf_edges,
        }
    }

    /// The resource set the engine schedules over.
    #[must_use]
    pub fn resources(&self) -> ResourceSet {
        self.resources
    }

    /// The per-operator phase durations the engine was built over, in
    /// topological order — the static view the schedule analyzer consumes
    /// to bound the makespan without running the event loop.
    #[must_use]
    pub fn phases(&self) -> &[OpPhases] {
        &self.phases
    }

    /// Runs the event loop to completion and returns the schedule.
    #[must_use]
    pub fn run(self) -> Schedule {
        self.run_with_scratch(&[], &mut EngineScratch::default())
    }

    /// Runs the event loop against reusable scratch buffers, optionally
    /// overriding every operator's release cycle. The engine is untouched
    /// and may be run again — the compile-once/run-many path of the
    /// serving layer. An empty `releases` uses the phases' embedded
    /// [`OpPhases::release_cycle`] values (identical to
    /// [`TimelineEngine::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `releases` is neither empty nor exactly one entry per
    /// operator.
    #[must_use]
    pub fn run_with_scratch(&self, releases: &[u64], scratch: &mut EngineScratch) -> Schedule {
        // `NullObserver`'s hooks are empty defaults on a zero-sized type,
        // so this instantiation monomorphizes to the unobserved loop —
        // bit-identical schedules, no extra work on the serving hot path.
        self.run_with_scratch_observed(releases, scratch, &mut NullObserver)
    }

    /// Runs the event loop like [`TimelineEngine::run_with_scratch`],
    /// reporting every issue, retirement, occupancy record, prefetch,
    /// collective gang-issue, and release-clamp stall to `obs`. Observers
    /// never influence scheduling: an observed run produces the same
    /// [`Schedule`], byte for byte, as an unobserved one.
    ///
    /// # Panics
    ///
    /// Panics if `releases` is neither empty nor exactly one entry per
    /// operator.
    #[must_use]
    pub fn run_with_scratch_observed<O: SimObserver>(
        &self,
        releases: &[u64],
        scratch: &mut EngineScratch,
        obs: &mut O,
    ) -> Schedule {
        let n = self.phases.len();
        assert!(
            releases.is_empty() || releases.len() == n,
            "release vector covers {} operators but the engine has {n}",
            releases.len()
        );
        scratch.state.clear();
        scratch.state.resize(n, OpState::default());
        let queue = EventQueue::with_buffer(std::mem::take(&mut scratch.events));
        let mut run = EngineRun {
            topo: self,
            releases,
            state: &mut scratch.state,
            queue,
            timeline: BusyTimeline::default(),
            // Single-chip per-resource tracks duplicate the kind-level
            // timeline record for record, so the hot loop skips them (an
            // empty-track `ResourceTimeline` drops every `record`) and the
            // view is derived from the merged component tracks below.
            tracks: if self.resources == ResourceSet::single_chip() {
                ResourceTimeline::default()
            } else {
                ResourceTimeline::for_set(&self.resources)
            },
            free_at: vec![0; self.resources.num_resources()],
            prefetch_free: vec![0; self.resources.num_chips()],
            counters: RunCounters::for_set(&self.resources),
        };
        // Seed the queue: buffer-free prefetches, then every source
        // operator (all producers already satisfied).
        for k in 0..n {
            run.state[k].buffer_ready = self.buffer_dep[k].is_none();
            run.state[k].pending_producers = self.phases[k].producers.len();
            if self.phases[k].dma_cycles > 0 {
                run.try_issue_dma(k, 0, obs);
            }
        }
        for k in 0..n {
            if run.state[k].pending_producers == 0 {
                run.try_issue_main(k, 0, obs);
            }
        }
        loop {
            // Sampling the queue length right before each pop captures the
            // true heap peak: the queue only grows between two pops.
            run.counters.heap_peak = run.counters.heap_peak.max(run.queue.len() as u64);
            let Some(ev) = run.queue.pop() else { break };
            run.counters.events_popped += 1;
            let t = ev.at;
            obs.event_popped(t, run.queue.len());
            match ev.kind {
                EventKind::IssueDma { op } => run.issue_dma(op, t, obs),
                EventKind::DmaLeadArrived { op } => {
                    run.state[op].lead_ready = true;
                    run.try_issue_main(op, t, obs);
                }
                EventKind::DmaComplete { op } => {
                    run.state[op].dma_done = true;
                    run.check_finish(op, t, obs);
                }
                EventKind::IssueMain { op } => run.issue_main(op, t, obs),
                EventKind::MainComplete { op } => {
                    run.state[op].main_done = true;
                    run.check_finish(op, t, obs);
                }
            }
        }
        let makespan = run.state.iter().map(|s| s.finish).max().unwrap_or(0);
        let ops = run
            .state
            .iter()
            .map(|s| ScheduledOp {
                dma_start: s.dma_start,
                dma_end: s.dma_end,
                main_start: s.main_start,
                main_end: s.main_end,
                finish: s.finish,
            })
            .collect();
        let mut timeline = run.timeline;
        let mut resource_timeline = run.tracks;
        // Hand the (drained) event heap back for the next run.
        scratch.events = run.queue.into_buffer();
        // The SRAM has no blanket busy interval here: the engine layer
        // above maps the allocator's per-segment lifetimes through the
        // scheduled operator spans and records the union of *live* segment
        // intervals instead (see `Simulator::run`). Peripheral logic is
        // genuinely always on.
        timeline.record(ComponentKind::Other, 0, makespan);
        timeline.finalize();
        if self.resources == ResourceSet::single_chip() {
            resource_timeline = ResourceTimeline::single_chip_view(&timeline);
        } else {
            resource_timeline.finalize();
        }
        Schedule {
            ops,
            makespan,
            timeline,
            resources: self.resources,
            resource_timeline,
            counters: run.counters,
        }
    }
}

impl EngineRun<'_> {
    fn release_of(&self, op: usize) -> u64 {
        if self.releases.is_empty() {
            self.topo.phases[op].release_cycle
        } else {
            self.releases[op]
        }
    }

    fn resource_free(&self, r: ResourceId) -> u64 {
        self.free_at[r.index()]
    }

    /// The chip an operator's phases run on (chip 0 for pure-link
    /// collective ops, whose DMA/prefetch phases are zero anyway).
    fn chip_of(&self, op: usize) -> usize {
        self.topo.resources.chip_of(self.topo.phases[op].unit).unwrap_or(0)
    }

    /// Counts (and reports) a phase that was ready at `now` but clamped
    /// to a later release cycle.
    fn note_release_clamp<O: SimObserver>(
        &mut self,
        op: usize,
        now: u64,
        release: u64,
        obs: &mut O,
    ) {
        if release > now {
            self.counters.release_stalls += 1;
            self.counters.release_stall_cycles += release - now;
            obs.release_stall(op, now, release);
        }
    }

    fn try_issue_dma<O: SimObserver>(&mut self, op: usize, now: u64, obs: &mut O) {
        if self.state[op].dma_issued || !self.state[op].buffer_ready {
            return;
        }
        self.state[op].dma_issued = true;
        // A prefetch may not run ahead of its operator's release: before
        // the request arrives there is nothing to stream.
        let release = self.release_of(op);
        self.note_release_clamp(op, now, release, obs);
        let at = now.max(release);
        self.queue.schedule(at, EventKind::IssueDma { op });
    }

    fn issue_dma<O: SimObserver>(&mut self, op: usize, now: u64, obs: &mut O) {
        let p = &self.topo.phases[op];
        let (dma_cycles, lead_cycles) = (p.dma_cycles, p.dma_lead_cycles.min(p.dma_cycles));
        // Prefetches queue on their chip's DMA prefetch channel only:
        // demand traffic (gathers) is never stuck behind speculation.
        let chip = self.chip_of(op);
        let start = now.max(self.prefetch_free[chip]);
        let end = start + dma_cycles;
        self.prefetch_free[chip] = end;
        self.state[op].dma_start = start;
        self.state[op].dma_end = end;
        self.timeline.record(ComponentKind::Hbm, start, end);
        self.timeline.record(ComponentKind::Dma, start, end);
        self.tracks.record(self.topo.resources.unit(chip, Resource::HbmDma), start, end);
        obs.dma_transfer(op, chip, start, end);
        self.queue.schedule(start + lead_cycles, EventKind::DmaLeadArrived { op });
        self.queue.schedule(end, EventKind::DmaComplete { op });
    }

    fn try_issue_main<O: SimObserver>(&mut self, op: usize, now: u64, obs: &mut O) {
        let s = &self.state[op];
        let needs_lead = self.topo.phases[op].dma_cycles > 0;
        if s.main_issued || s.pending_producers > 0 || (needs_lead && !s.lead_ready) {
            return;
        }
        self.state[op].main_issued = true;
        let release = self.release_of(op);
        self.note_release_clamp(op, now, release, obs);
        let at = now.max(release);
        self.queue.schedule(at, EventKind::IssueMain { op });
    }

    fn issue_main<O: SimObserver>(&mut self, op: usize, now: u64, obs: &mut O) {
        let q = &self.topo.phases[op];
        if q.collective.is_some() {
            self.issue_collective(op, now, obs);
            return;
        }
        obs.op_issued(op, now);
        let (unit, main_cycles, fused_vu_cycles, dispatch_cycles, sa_active_cycles) =
            (q.unit, q.main_cycles, q.fused_vu_cycles, q.dispatch_cycles, q.sa_active_cycles);
        let start = now.max(self.resource_free(unit));
        let active_start = start + dispatch_cycles;
        let unit_end = active_start + main_cycles;
        self.free_at[unit.index()] = unit_end;
        // Fused vector post-processing overlaps the SA drain but can
        // outlast it; the operator is complete only when both are done.
        let mut end = unit_end;
        match self.topo.resources.kind(unit) {
            Resource::Sa => {
                let sa_end = active_start + sa_active_cycles.min(main_cycles);
                self.timeline.record(ComponentKind::Sa, active_start, sa_end);
                self.tracks.record(unit, active_start, sa_end);
                obs.resource_busy(unit, op, active_start, sa_end);
                if fused_vu_cycles > 0 {
                    // Fused post-processing runs on the vector units,
                    // overlapped with the SA dataflow. It does not delay
                    // the SA issue, but it *does* queue on the VU gang:
                    // with DAG overlap an independent VU operator may
                    // already be in flight, and one gang cannot run both
                    // at once (in a chain the producer edge guarantees the
                    // VU is free by now, so this wait never fires there).
                    let chip = self.chip_of(op);
                    let vu = self.topo.resources.unit(chip, Resource::Vu);
                    let fused_start = active_start.max(self.resource_free(vu));
                    let fused_end = fused_start + fused_vu_cycles;
                    self.timeline.record(ComponentKind::Vu, fused_start, fused_end);
                    self.tracks.record(vu, fused_start, fused_end);
                    obs.resource_busy(vu, op, fused_start, fused_end);
                    self.free_at[vu.index()] = fused_end;
                    end = end.max(fused_end);
                }
            }
            Resource::Vu => {
                self.timeline.record(ComponentKind::Vu, active_start, unit_end);
                self.tracks.record(unit, active_start, unit_end);
                obs.resource_busy(unit, op, active_start, unit_end);
            }
            Resource::HbmDma => {
                self.timeline.record(ComponentKind::Hbm, active_start, unit_end);
                self.timeline.record(ComponentKind::Dma, active_start, unit_end);
                self.tracks.record(unit, active_start, unit_end);
                obs.resource_busy(unit, op, active_start, unit_end);
            }
            Resource::Ici => {
                self.timeline.record(ComponentKind::Ici, active_start, unit_end);
                self.timeline.record(ComponentKind::Dma, active_start, unit_end);
                self.tracks.record(unit, active_start, unit_end);
                obs.resource_busy(unit, op, active_start, unit_end);
            }
        }
        self.state[op].main_start = start;
        self.state[op].main_end = end;
        self.queue.schedule(end, EventKind::MainComplete { op });
    }

    /// Gang-issues a lowered collective: every link of the plan is held
    /// for the whole transfer (each step of a ring collective drives each
    /// ring link concurrently), so the issue waits for the *latest* of
    /// the links to free up and two collectives sharing any link
    /// serialize on it.
    fn issue_collective<O: SimObserver>(&mut self, op: usize, now: u64, obs: &mut O) {
        let topo = self.topo;
        let q = &topo.phases[op];
        let Some(c) = &q.collective else { return };
        obs.op_issued(op, now);
        let mut start = now;
        for link in &c.links {
            start = start.max(self.free_at[link.index()]);
        }
        let active_start = start + q.dispatch_cycles;
        let end = active_start + q.main_cycles;
        self.counters.collectives_issued += 1;
        self.counters.collective_hops += c.step_cycles.len() as u64;
        for link in &c.links {
            self.free_at[link.index()] = end;
            self.tracks.record(*link, active_start, end);
            obs.resource_busy(*link, op, active_start, end);
            if let Some(l) = topo.resources.link_of(*link) {
                self.counters.link_busy_cycles[l] += end - active_start;
            }
        }
        obs.collective_start(op, &c.links, active_start, end);
        self.timeline.record(ComponentKind::Ici, active_start, end);
        self.state[op].main_start = start;
        self.state[op].main_end = end;
        self.queue.schedule(end, EventKind::MainComplete { op });
    }

    fn check_finish<O: SimObserver>(&mut self, op: usize, now: u64, obs: &mut O) {
        let has_dma = self.topo.phases[op].dma_cycles > 0;
        let s = &self.state[op];
        if s.finished || !s.main_done || (has_dma && !s.dma_done) {
            return;
        }
        self.state[op].finished = true;
        self.state[op].finish = now;
        self.counters.ops_retired += 1;
        obs.op_retired(op, now);
        // Producer edges: consumers with no remaining producers may start.
        // Indexing the CSR slices (one copied edge at a time) keeps the
        // topology borrow disjoint from the state mutations — no cloned
        // dependent lists, no per-event allocation.
        for i in self.topo.dep_starts[op]..self.topo.dep_starts[op + 1] {
            let k = self.topo.dep_edges[i];
            self.state[k].pending_producers -= 1;
            if self.state[k].pending_producers == 0 {
                self.try_issue_main(k, now, obs);
            }
        }
        // Buffer edges: release this operator's input buffer.
        for i in self.topo.buf_starts[op]..self.topo.buf_starts[op + 1] {
            let k = self.topo.buf_edges[i];
            self.state[k].buffer_ready = true;
            self.try_issue_dma(k, now, obs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa_op(main: u64, dma: u64) -> OpPhases {
        OpPhases {
            unit: Resource::Sa.into(),
            main_cycles: main,
            dma_cycles: dma,
            dma_lead_cycles: (dma / 4).max(1).min(dma),
            fused_vu_cycles: 0,
            dispatch_cycles: 10,
            sa_active_cycles: main,
            release_cycle: 0,
            producers: Vec::new(),
            collective: None,
        }
    }

    #[test]
    fn empty_stream_schedules_nothing() {
        let schedule = TimelineEngine::new(Vec::new()).run();
        assert_eq!(schedule.makespan, 0);
        assert!(schedule.ops.is_empty());
        assert!(schedule.timeline.intervals(ComponentKind::Sa).is_empty());
    }

    #[test]
    fn dma_prefetch_overlaps_previous_compute() {
        // Two identical ops: op 1's DMA must stream while op 0 computes.
        let ops = OpPhases::chain(vec![sa_op(1000, 400), sa_op(1000, 400)]);
        let schedule = TimelineEngine::new(ops).run();
        let [a, b] = [schedule.ops[0], schedule.ops[1]];
        assert!(b.dma_start < a.main_end, "op 1's prefetch starts during op 0's compute");
        assert!(b.main_start >= a.finish, "op 1 computes only after its producer finishes");
        // Serial cost would be 2 * (max(1000, 400) + 10); overlap beats it.
        assert!(schedule.makespan < 2 * 1010 + 400);
    }

    #[test]
    fn consumer_never_starts_before_producer_finishes() {
        let ops =
            OpPhases::chain(vec![sa_op(100, 800), sa_op(50, 20), sa_op(700, 100), sa_op(5, 5)]);
        let schedule = TimelineEngine::new(ops).run();
        for pair in schedule.ops.windows(2) {
            assert!(pair[1].main_start >= pair[0].finish, "{pair:?}");
        }
    }

    #[test]
    fn double_buffering_throttles_prefetch_depth() {
        // Op 2's DMA may not start before op 0 releases its buffer, even
        // though the HBM queue is free much earlier.
        let ops = OpPhases::chain(vec![sa_op(10_000, 10), sa_op(10_000, 10), sa_op(10_000, 10)]);
        let schedule = TimelineEngine::new(ops).run();
        assert!(schedule.ops[1].dma_start < schedule.ops[0].finish, "depth-2 prefetch runs ahead");
        assert!(
            schedule.ops[2].dma_start >= schedule.ops[0].finish,
            "depth-3 prefetch waits for the buffer"
        );
    }

    #[test]
    fn busy_intervals_are_disjoint_and_sorted() {
        let ops = OpPhases::chain(vec![
            sa_op(300, 500),
            sa_op(40, 700),
            sa_op(900, 100),
            sa_op(10, 2000),
        ]);
        let schedule = TimelineEngine::new(ops).run();
        for kind in ComponentKind::ALL {
            let intervals = schedule.timeline.intervals(kind);
            for iv in intervals {
                assert!(iv.start < iv.end, "{kind:?}: empty interval {iv:?}");
            }
            for pair in intervals.windows(2) {
                assert!(pair[0].end < pair[1].start, "{kind:?}: overlapping/abutting {pair:?}");
            }
        }
    }

    #[test]
    fn idle_intervals_complement_busy_intervals() {
        let ops = OpPhases::chain(vec![sa_op(300, 500), sa_op(40, 700), sa_op(900, 100)]);
        let schedule = TimelineEngine::new(ops).run();
        let total = schedule.makespan;
        for kind in ComponentKind::ALL {
            let busy = schedule.timeline.busy_cycles(kind);
            let idle: u64 =
                schedule.timeline.idle_intervals(kind, total).iter().map(CycleInterval::len).sum();
            assert_eq!(busy + idle, total, "{kind:?}");
        }
    }

    #[test]
    fn histogram_buckets_account_for_every_idle_cycle() {
        let ops =
            OpPhases::chain(vec![sa_op(300, 500), sa_op(40, 700), sa_op(900, 100), sa_op(10, 90)]);
        let schedule = TimelineEngine::new(ops).run();
        let histogram = IdleHistogram::from_timeline(&schedule.timeline, schedule.makespan);
        for kind in ComponentKind::ALL {
            let idle: u64 = schedule
                .timeline
                .idle_intervals(kind, schedule.makespan)
                .iter()
                .map(CycleInterval::len)
                .sum();
            assert_eq!(histogram.total_idle_cycles(kind), idle, "{kind:?}");
            for bucket in histogram.buckets(kind) {
                assert!(bucket.count > 0);
                assert!(bucket.total_cycles >= bucket.count * bucket.lower);
                assert!(bucket.lower < bucket.upper);
            }
        }
    }

    #[test]
    fn merge_coalesces_overlapping_records() {
        let mut tl = BusyTimeline::default();
        tl.record(ComponentKind::Vu, 10, 20);
        tl.record(ComponentKind::Vu, 15, 30);
        tl.record(ComponentKind::Vu, 30, 40);
        tl.record(ComponentKind::Vu, 50, 60);
        tl.record(ComponentKind::Vu, 55, 55); // empty: dropped
        tl.finalize();
        assert_eq!(
            tl.intervals(ComponentKind::Vu),
            &[CycleInterval { start: 10, end: 40 }, CycleInterval { start: 50, end: 60 }]
        );
        assert_eq!(tl.busy_cycles(ComponentKind::Vu), 40);
        let gaps = tl.idle_intervals(ComponentKind::Vu, 100);
        assert_eq!(
            gaps,
            vec![
                CycleInterval { start: 0, end: 10 },
                CycleInterval { start: 40, end: 50 },
                CycleInterval { start: 60, end: 100 },
            ]
        );
    }

    fn gather_op(main: u64) -> OpPhases {
        OpPhases {
            unit: Resource::HbmDma.into(),
            main_cycles: main,
            dma_cycles: 0,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: 10,
            sa_active_cycles: 0,
            release_cycle: 0,
            producers: Vec::new(),
            collective: None,
        }
    }

    #[test]
    fn prefetch_never_delays_a_gather() {
        // Regression: op 1's prefetch used to be seeded at cycle 0 and
        // occupy the single HBM/DMA track before op 0 — a gather whose
        // *main* phase is the transfer — could issue, delaying the
        // producer chain by the entire prefetch. Demand traffic now runs
        // on its own channel.
        let schedule =
            TimelineEngine::new(OpPhases::chain(vec![gather_op(1000), sa_op(800, 500)])).run();
        let [g, s] = [schedule.ops[0], schedule.ops[1]];
        assert_eq!(g.main_start, 0, "the gather issues immediately");
        assert!(s.main_start >= g.finish, "the consumer still waits for its producer");
        // Serial: (1000 + 10) + (max(800, 500) + 10).
        assert!(schedule.makespan <= 1010 + 810, "makespan {} exceeds serial", schedule.makespan);
    }

    #[test]
    fn gathers_are_not_stuck_behind_a_long_speculative_prefetch() {
        // A huge prefetch admitted early (op 1, buffer-free) must not push
        // back the demand gathers of ops 2-3 on the producer chain.
        let ops = OpPhases::chain(vec![
            sa_op(50, 40),
            sa_op(50, 100_000),
            gather_op(200),
            gather_op(200),
        ]);
        let schedule = TimelineEngine::new(ops).run();
        let serial: u64 = (50 + 10) + (100_000 + 10) + (200 + 10) + (200 + 10);
        assert!(
            schedule.makespan <= serial,
            "makespan {} exceeds serial {serial}",
            schedule.makespan
        );
        // Each gather issues as soon as its producer finishes.
        assert_eq!(schedule.ops[2].main_start, schedule.ops[1].finish);
        assert_eq!(schedule.ops[3].main_start, schedule.ops[2].finish);
    }

    #[test]
    fn fused_vu_longer_than_compute_extends_the_op() {
        // Regression: fused post-processing outlasting the SA compute used
        // to leak a VU busy interval past the operator's finish (and, on
        // the last operator, past the makespan).
        let mut op = sa_op(100, 50);
        op.fused_vu_cycles = 700;
        let schedule = TimelineEngine::new(vec![op]).run();
        let s = schedule.ops[0];
        assert!(s.finish >= s.main_start + 10 + 700, "finish covers the fused tail");
        assert_eq!(schedule.makespan, s.finish);
        let total = schedule.makespan;
        for kind in ComponentKind::ALL {
            let busy = schedule.timeline.busy_cycles(kind);
            assert!(busy <= total, "{kind:?}: busy {busy} leaks past makespan {total}");
            let idle: u64 =
                schedule.timeline.idle_intervals(kind, total).iter().map(CycleInterval::len).sum();
            assert_eq!(busy + idle, total, "{kind:?}");
        }
    }

    #[test]
    fn independent_sources_overlap_across_units() {
        // A gather and an SA op with no edge between them must run
        // concurrently; chained, they would serialize.
        let dag = TimelineEngine::new(vec![gather_op(1000), sa_op(1000, 0)]).run();
        assert_eq!(dag.ops[0].main_start, 0);
        assert_eq!(dag.ops[1].main_start, 0);
        assert!(dag.makespan <= 1010, "independent ops serialized: {}", dag.makespan);
        let chained =
            TimelineEngine::new(OpPhases::chain(vec![gather_op(1000), sa_op(1000, 0)])).run();
        assert!(chained.makespan >= 2 * 1010 - 10);
    }

    #[test]
    fn fan_in_waits_for_every_producer() {
        // Diamond: 0 -> {1, 2} -> 3. Op 3 must wait for the slower branch.
        let mut ops = vec![sa_op(100, 0), gather_op(5000), sa_op(200, 0), sa_op(50, 0)];
        ops[1].producers = vec![0];
        ops[2].producers = vec![0];
        ops[3].producers = vec![1, 2];
        let schedule = TimelineEngine::new(ops).run();
        let [a, g, b, join] = [schedule.ops[0], schedule.ops[1], schedule.ops[2], schedule.ops[3]];
        assert!(g.main_start >= a.finish && b.main_start >= a.finish);
        assert_eq!(g.main_start, b.main_start, "both branches start when the source finishes");
        assert!(join.main_start >= g.finish.max(b.finish), "the join waits for both branches");
        assert!(g.finish > b.finish, "the gather is the slow branch in this topology");
    }

    #[test]
    fn fan_out_branches_share_a_resource_in_issue_order() {
        // 0 -> {1, 2}, both SA: the branches contend for the SA gang and
        // serialize on it, but neither waits for the other's *completion*
        // dependency-wise (op 2 issues the moment the SA frees up).
        let mut ops = vec![sa_op(100, 0), sa_op(1000, 0), sa_op(1000, 0)];
        ops[1].producers = vec![0];
        ops[2].producers = vec![0];
        let schedule = TimelineEngine::new(ops).run();
        let [_, b, c] = [schedule.ops[0], schedule.ops[1], schedule.ops[2]];
        assert_eq!(c.main_start, b.main_start + 10 + 1000, "SA issues back to back");
        assert!(schedule.makespan < 3 * 1010 + 10, "dispatch of the branches overlaps");
    }

    #[test]
    fn fused_tail_queues_behind_an_in_flight_vu_op() {
        // Regression: with DAG overlap, an SA op's fused VU tail and an
        // independent VU op can be in flight at once; the single VU gang
        // must serialize them instead of being double-booked.
        let vu = OpPhases {
            unit: Resource::Vu.into(),
            main_cycles: 10_000,
            dma_cycles: 0,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: 10,
            sa_active_cycles: 0,
            release_cycle: 0,
            producers: Vec::new(),
            collective: None,
        };
        let mut sa = sa_op(100, 0);
        sa.fused_vu_cycles = 5000;
        let schedule = TimelineEngine::new(vec![vu, sa]).run();
        let [v, s] = [schedule.ops[0], schedule.ops[1]];
        assert_eq!(v.main_end, 10_010);
        assert_eq!(s.finish, 15_010, "the fused tail starts only when the VU frees up");
        assert_eq!(
            schedule.timeline.busy_cycles(ComponentKind::Vu),
            15_000,
            "one VU gang cannot run the fused tail and the VU op at once"
        );
        assert_eq!(schedule.makespan, 15_010);
    }

    #[test]
    fn release_times_hold_back_every_phase() {
        // Two independent requests: the second is released at cycle 50,000,
        // long after the first finishes. Neither its prefetch nor its main
        // phase may start earlier, and the gap must surface as SA idle time.
        let mut late = sa_op(1000, 400);
        late.release_cycle = 50_000;
        let schedule = TimelineEngine::new(vec![sa_op(1000, 400), late]).run();
        let [a, b] = [schedule.ops[0], schedule.ops[1]];
        assert!(a.finish < 50_000, "the first request finishes well before the release");
        assert!(b.dma_start >= 50_000, "prefetch ran before the request arrived");
        assert!(b.main_start >= 50_000, "main phase ran before the request arrived");
        // The inter-request gap is a real idle interval on the SA track.
        let gaps = schedule.timeline.idle_intervals(ComponentKind::Sa, schedule.makespan);
        assert!(
            gaps.iter().any(|g| g.len() > 40_000),
            "no long inter-request idle interval: {gaps:?}"
        );
    }

    #[test]
    fn releases_at_or_below_the_natural_start_are_the_identity() {
        // Re-running a chain with each operator's release pinned to the
        // start it naturally achieved must reproduce the schedule exactly:
        // the release clamp only ever *delays* issue, it never reorders a
        // schedule that already satisfies it.
        let ops = OpPhases::chain(vec![sa_op(300, 500), sa_op(40, 700), sa_op(900, 100)]);
        let base = TimelineEngine::new(ops.clone()).run();
        let mut released = ops;
        for (p, s) in released.iter_mut().zip(base.ops.iter()) {
            p.release_cycle = s.span_start();
        }
        let with_releases = TimelineEngine::new(released).run();
        assert_eq!(base.ops, with_releases.ops);
        assert_eq!(base.makespan, with_releases.makespan);
        assert_eq!(base.timeline, with_releases.timeline);
    }

    #[test]
    fn release_later_than_producer_finish_delays_the_consumer() {
        // Chain 0 -> 1, but op 1's request only arrives at 10,000 even
        // though op 0 finishes much earlier.
        let mut ops = OpPhases::chain(vec![sa_op(100, 0), sa_op(100, 0)]);
        ops[1].release_cycle = 10_000;
        let schedule = TimelineEngine::new(ops).run();
        assert!(schedule.ops[0].finish < 1000);
        assert_eq!(schedule.ops[1].main_start, 10_000);
    }

    #[test]
    fn union_intervals_merge_across_components() {
        let mut tl = BusyTimeline::default();
        tl.record(ComponentKind::Sa, 0, 10);
        tl.record(ComponentKind::Vu, 5, 20);
        tl.record(ComponentKind::Hbm, 40, 50);
        tl.finalize();
        let union = tl.union_intervals(&[ComponentKind::Sa, ComponentKind::Vu, ComponentKind::Hbm]);
        assert_eq!(
            union,
            vec![CycleInterval { start: 0, end: 20 }, CycleInterval { start: 40, end: 50 }]
        );
        assert_eq!(
            tl.union_busy_cycles(&[ComponentKind::Sa, ComponentKind::Vu, ComponentKind::Hbm]),
            30
        );
        assert_eq!(tl.union_busy_cycles(&[ComponentKind::Ici]), 0);
    }

    #[test]
    #[should_panic(expected = "not a topological order")]
    fn forward_producer_edges_are_rejected() {
        let mut ops = vec![sa_op(100, 0), sa_op(100, 0)];
        ops[0].producers = vec![1];
        let _ = TimelineEngine::new(ops);
    }

    #[test]
    fn ici_op_does_not_prefetch() {
        let ops = vec![OpPhases {
            unit: Resource::Ici.into(),
            main_cycles: 500,
            dma_cycles: 0,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: 10,
            sa_active_cycles: 0,
            release_cycle: 0,
            producers: Vec::new(),
            collective: None,
        }];
        let schedule = TimelineEngine::new(ops).run();
        assert_eq!(schedule.makespan, 510);
        assert_eq!(schedule.timeline.busy_cycles(ComponentKind::Ici), 500);
        assert_eq!(schedule.timeline.busy_cycles(ComponentKind::Hbm), 0);
        assert_eq!(schedule.timeline.busy_cycles(ComponentKind::Dma), 500);
    }

    #[test]
    fn single_chip_resource_ids_match_enum_order() {
        let set = ResourceSet::single_chip();
        assert_eq!(set.num_resources(), 4);
        for kind in [Resource::Sa, Resource::Vu, Resource::HbmDma, Resource::Ici] {
            let id = ResourceId::from(kind);
            assert_eq!(set.unit(0, kind), id);
            assert_eq!(set.kind(id), kind);
            assert_eq!(set.chip_of(id), Some(0));
            assert_eq!(set.link_of(id), None);
        }
    }

    #[test]
    fn pod_layout_places_links_after_chip_units() {
        let set = ResourceSet::pod(4, 8);
        assert_eq!(set.num_resources(), 4 * 4 + 8);
        assert_eq!(set.unit(3, Resource::Ici), ResourceId(15));
        assert_eq!(set.link(0), ResourceId(16));
        assert_eq!(set.kind(set.link(7)), Resource::Ici);
        assert_eq!(set.chip_of(set.link(3)), None);
        assert_eq!(set.link_of(set.link(3)), Some(3));
        assert_eq!(set.link_of(set.unit(2, Resource::Vu)), None);
        assert_eq!(set.chip_of(set.unit(2, Resource::Vu)), Some(2));
    }

    #[test]
    fn chips_of_a_pod_compute_concurrently() {
        // The same two independent SA ops that would serialize on one
        // chip's array run fully overlapped on two chips.
        let set = ResourceSet::pod(2, 0);
        let mut a = sa_op(1000, 0);
        let mut b = sa_op(1000, 0);
        a.unit = set.unit(0, Resource::Sa);
        b.unit = set.unit(1, Resource::Sa);
        let schedule = TimelineEngine::with_resources(vec![a, b], set).run();
        assert_eq!(schedule.ops[0].main_start, 0);
        assert_eq!(schedule.ops[1].main_start, 0, "chip 1's SA is its own resource");
        assert_eq!(schedule.makespan, 1010);
        let sa0 = set.unit(0, Resource::Sa);
        let sa1 = set.unit(1, Resource::Sa);
        assert_eq!(schedule.resource_timeline.busy_cycles(sa0), 1000);
        assert_eq!(schedule.resource_timeline.busy_cycles(sa1), 1000);
    }

    #[test]
    fn collectives_sharing_a_link_serialize() {
        // Two independent collectives gang-occupy the same two-link ring:
        // the engine must serialize them on the shared links instead of
        // double-booking, and each link's busy track must show both.
        let set = ResourceSet::pod(2, 2);
        let links = vec![set.link(0), set.link(1)];
        let coll = || OpPhases {
            unit: set.link(0),
            main_cycles: 1000,
            dma_cycles: 0,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: 10,
            sa_active_cycles: 0,
            release_cycle: 0,
            producers: Vec::new(),
            collective: Some(Box::new(CollectiveSchedule {
                links: links.clone(),
                step_cycles: vec![500, 500],
            })),
        };
        let schedule = TimelineEngine::with_resources(vec![coll(), coll()], set).run();
        let [a, b] = [schedule.ops[0], schedule.ops[1]];
        assert_eq!(a.main_end, 1010);
        assert!(b.main_start >= a.main_end, "shared links must serialize the collectives");
        assert_eq!(schedule.makespan, 2020);
        for &link in &links {
            assert_eq!(schedule.resource_timeline.busy_cycles(link), 2000);
        }
        assert_eq!(schedule.timeline.busy_cycles(ComponentKind::Ici), 2000);
    }

    #[test]
    fn single_chip_resource_tracks_mirror_the_component_timeline() {
        // Single-chip runs derive the per-resource tracks from the
        // kind-level timeline instead of recording them live (the hot
        // loop skips the doubled recording); the published equivalence —
        // unit track == component track — must hold on a schedule that
        // exercises every unit kind plus a fused VU tail.
        let mut sa = sa_op(800, 400);
        sa.fused_vu_cycles = 300;
        let gather = gather_op(500);
        let ici = OpPhases {
            unit: Resource::Ici.into(),
            main_cycles: 600,
            dma_cycles: 0,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: 10,
            sa_active_cycles: 0,
            release_cycle: 0,
            producers: Vec::new(),
            collective: None,
        };
        let schedule = TimelineEngine::new(OpPhases::chain(vec![sa, gather, ici])).run();
        let set = schedule.resources;
        assert_eq!(set, ResourceSet::single_chip());
        for (kind, component) in [
            (Resource::Sa, ComponentKind::Sa),
            (Resource::Vu, ComponentKind::Vu),
            (Resource::HbmDma, ComponentKind::Hbm),
            (Resource::Ici, ComponentKind::Ici),
        ] {
            let unit = set.unit(0, kind);
            assert_eq!(
                schedule.resource_timeline.track(unit),
                schedule.timeline.intervals(component),
                "{kind:?} unit track must equal the {component:?} component track"
            );
            assert!(schedule.resource_timeline.busy_cycles(unit) > 0, "{kind:?} was exercised");
        }
    }

    #[test]
    fn chip_idle_intervals_surface_pipeline_bubbles() {
        // Chip 1 runs one op in the middle of a long chip-0 stream: its
        // whole-chip idle view is the leading and trailing bubble.
        let set = ResourceSet::pod(2, 0);
        let mut ops = OpPhases::chain(vec![sa_op(1000, 0), sa_op(1000, 0), sa_op(1000, 0)]);
        ops[1].unit = set.unit(1, Resource::Sa);
        let schedule = TimelineEngine::with_resources(ops, set).run();
        let bubbles = schedule.resource_timeline.chip_idle_intervals(&set, 1, schedule.makespan);
        assert_eq!(bubbles.len(), 2, "leading and trailing whole-chip bubbles: {bubbles:?}");
        assert!(bubbles[0].len() >= 1000 && bubbles[1].len() >= 1000);
    }
}
