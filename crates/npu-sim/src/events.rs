//! Discrete-event machinery for the timeline engine: a deterministic
//! min-time binary-heap event queue.
//!
//! `std::collections::BinaryHeap` is a max-heap, so [`ScheduledEvent`]
//! reverses its ordering to pop the earliest event first. Events carry a
//! monotonically increasing sequence number that breaks time ties, which
//! makes the simulation fully deterministic: two runs over the same
//! compiled graph schedule every phase at identical cycles.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened (or must be attempted) at an event's firing time.
///
/// All payloads reference operators by their anchor index in the compiled
/// graph; the [`crate::timeline::TimelineEngine`] owns the per-operator
/// state the handlers mutate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The operator's input buffer is free and its DMA prefetch may be
    /// issued to the HBM/DMA queue.
    IssueDma {
        /// Anchor index of the operator.
        op: usize,
    },
    /// Enough of the operator's DMA has landed in SRAM (the first tile of a
    /// double-buffered stream) for its main phase to begin consuming data.
    DmaLeadArrived {
        /// Anchor index of the operator.
        op: usize,
    },
    /// The operator's full DMA stream has finished.
    DmaComplete {
        /// Anchor index of the operator.
        op: usize,
    },
    /// All issue dependencies of the operator's main phase are satisfied
    /// and it may be dispatched to its execution unit.
    IssueMain {
        /// Anchor index of the operator.
        op: usize,
    },
    /// The operator's main (compute / gather / collective) phase finished.
    MainComplete {
        /// Anchor index of the operator.
        op: usize,
    },
}

/// An event scheduled at an absolute cycle, ordered for a min-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Absolute firing time in cycles on the global clock.
    pub at: u64,
    /// Insertion sequence number; breaks ties deterministically.
    pub seq: u64,
    /// Event payload.
    pub kind: EventKind,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest (and, on
        // ties, the first-scheduled) event first.
        match self.at.cmp(&other.at) {
            Ordering::Equal => self.seq.cmp(&other.seq),
            ord => ord,
        }
        .reverse()
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-time event queue driving the timeline engine.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    now: u64,
}

impl EventQueue {
    /// Creates an empty queue at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue at cycle 0 that reuses `buffer` as the
    /// heap's backing storage (its contents are discarded, its capacity
    /// kept) — pair with [`EventQueue::into_buffer`] to run many
    /// simulations without reallocating the heap.
    #[must_use]
    pub fn with_buffer(mut buffer: Vec<ScheduledEvent>) -> Self {
        buffer.clear();
        EventQueue { heap: BinaryHeap::from(buffer), next_seq: 0, now: 0 }
    }

    /// Consumes the queue and returns the heap's backing storage for
    /// reuse by a later [`EventQueue::with_buffer`].
    #[must_use]
    pub fn into_buffer(self) -> Vec<ScheduledEvent> {
        self.heap.into_vec()
    }

    /// The current simulation time (the firing time of the last popped
    /// event).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules an event at an absolute cycle.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past: the engine never rewinds the clock.
    pub fn schedule(&mut self, at: u64, kind: EventKind) {
        assert!(at >= self.now, "event at cycle {at} scheduled before now ({})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    /// Pops the earliest event and advances the clock to its firing time.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, EventKind::MainComplete { op: 2 });
        q.schedule(10, EventKind::IssueDma { op: 0 });
        q.schedule(20, EventKind::IssueMain { op: 1 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, EventKind::IssueDma { op: 7 });
        q.schedule(5, EventKind::IssueDma { op: 3 });
        q.schedule(5, EventKind::IssueDma { op: 9 });
        let ops: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::IssueDma { op } => op,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ops, vec![7, 3, 9], "same-cycle events fire in scheduling order");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(4, EventKind::DmaComplete { op: 0 });
        q.schedule(9, EventKind::DmaComplete { op: 1 });
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 4);
        q.schedule(9, EventKind::DmaLeadArrived { op: 1 });
        q.pop();
        q.pop();
        assert_eq!(q.now(), 9);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduled before now")]
    fn scheduling_in_the_past_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule(10, EventKind::IssueDma { op: 0 });
        q.pop();
        q.schedule(5, EventKind::IssueDma { op: 1 });
    }
}
