//! The simulator engine: executes a compiled graph on one chip of a
//! deployment and produces per-operator timings, a per-component busy
//! timeline on the global clock, and the aggregated component activity.
//!
//! Since the event-timeline rewrite the engine no longer walks anchors
//! serially: each operator's phase durations are computed analytically
//! (as before), but issue is dependency-aware — an operator waits on its
//! *producer set* (the compiled graph's DAG edges, remapped through the
//! fusion groups), on the start of its own double-buffered HBM prefetch,
//! and on its execution resource, so the DMA stream of operator `k+1`
//! overlaps the compute of operator `k`, and independent subgraphs (DLRM
//! per-table gathers, the chains of a multi-request batch) overlap freely
//! (see [`crate::timeline`]). Within an operator, compute consumes the
//! stream tile by tile and the operator completes at
//! `max(compute, stream)` — the same intra-operator double-buffering
//! idealization the serial cost model makes.

use serde::{Deserialize, Serialize};

use npu_arch::{ChipConfig, ComponentKind, PodTopology};
use npu_compiler::{CompiledGraph, CompiledOp, SegmentLifetime, SramAllocation};
use npu_models::{CollectiveKind, ExecutionUnit, OpKind};

use crate::activity::ComponentActivity;
use crate::observer::{NullObserver, SimObserver};
use crate::segments::SegmentTimeline;
use crate::timeline::{
    BusyTimeline, EngineScratch, IdleHistogram, OpPhases, Resource, ResourceSet, RunCounters,
    TimelineEngine,
};
use crate::timing::OpTiming;

/// Fixed per-operator dispatch overhead in cycles (instruction fetch,
/// scalar setup, DMA descriptor programming).
pub const DISPATCH_OVERHEAD_CYCLES: u64 = 100;

/// Effective HBM bandwidth fraction achieved by random-access embedding
/// gathers (row-granularity accesses cannot use the full burst bandwidth).
const GATHER_EFFICIENCY: f64 = 0.25;

/// Per-hop ICI latency in seconds.
const ICI_HOP_LATENCY_S: f64 = 1.0e-6;

/// Message granularity of an all-to-all exchange in bytes.
///
/// DLRM's embedding exchange moves one pooled embedding row per
/// (sample, table, destination) — a few hundred bytes — and these rows
/// cannot be aggregated into large transfers because every destination
/// receives a different, scattered subset. The exchange is therefore
/// dominated by per-message overheads rather than wire bandwidth, which is
/// why the paper observes 98–99% ICI temporal utilization for DLRM
/// (Figure 8) even though the payload is modest.
const ALLTOALL_MESSAGE_BYTES: f64 = 512.0;

/// Per-message processing overhead (descriptor handling, packetization)
/// charged to the ICI controller for all-to-all traffic, in seconds.
const ALLTOALL_PER_MESSAGE_OVERHEAD_S: f64 = 100.0e-9;

/// Tile-level performance simulator for one NPU chip of a deployment.
#[derive(Debug, Clone)]
pub struct Simulator {
    chip: ChipConfig,
    topology: PodTopology,
}

/// Per-operator phase durations plus the timing template the schedule
/// completes.
struct OpProfile {
    phases: OpPhases,
    timing: OpTiming,
}

impl Simulator {
    /// Creates a simulator for the given chip deployment.
    #[must_use]
    pub fn new(chip: ChipConfig) -> Self {
        let topology = chip.topology();
        Simulator { chip, topology }
    }

    /// The chip configuration being simulated.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Runs a compiled graph and returns the per-operator timings, the
    /// merged per-component busy timeline, and the aggregated activity.
    /// Every operator is ready at cycle 0 (the single-batch view);
    /// see [`Simulator::run_with_releases`] for arrival-driven serving.
    #[must_use]
    pub fn run(&self, graph: &CompiledGraph) -> SimulationResult {
        self.run_with_releases(graph, &[])
    }

    /// Runs a compiled graph whose operators carry *release times*: no
    /// phase of operator `id` issues before `op_releases[id]` cycles — the
    /// dispatch time of the serving batch the operator belongs to. The
    /// release of a fusion group is the maximum over its members, and an
    /// empty slice means every operator is released at cycle 0 (identical
    /// to [`Simulator::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `op_releases` is neither empty nor exactly one entry per
    /// compiled operator (`graph.len()`).
    #[must_use]
    pub fn run_with_releases(
        &self,
        graph: &CompiledGraph,
        op_releases: &[u64],
    ) -> SimulationResult {
        assert!(
            op_releases.is_empty() || op_releases.len() == graph.len(),
            "release vector covers {} operators but the graph has {}",
            op_releases.len(),
            graph.len()
        );
        self.prepare(graph).run_with_releases(op_releases)
    }

    /// Profiles, allocates, and builds the timeline engine for a compiled
    /// graph **once**, returning a [`PreparedSimulator`] that can replay
    /// the graph against many release vectors. Per replay only the event
    /// loop, the span-to-clock segment mapping, and the timing fill-in run
    /// — the per-anchor profiling, SRAM allocation sweep, and dependency
    /// flattening are all paid here. This is the compile-once/run-many
    /// path the serving layer's graph cache builds on.
    #[must_use]
    pub fn prepare(&self, graph: &CompiledGraph) -> PreparedSimulator {
        let spec = self.chip.spec();
        let allocation = SramAllocation::allocate(graph, spec.sram_geometry());
        // One sweep over the buffer list instead of a per-anchor
        // `live_bytes_at` point query (which is O(buffers) per anchor and
        // dominated the whole simulation on big graphs).
        let live_profile = allocation.live_bytes_profile();

        let anchor_producers = graph.anchor_producers();
        let num_anchors = graph.num_anchors();
        let mut phases = Vec::with_capacity(num_anchors);
        let mut timings = Vec::with_capacity(num_anchors);
        let mut anchor_ids = Vec::with_capacity(num_anchors);
        for (anchor_index, op) in graph.anchors().enumerate() {
            let mut profile = self.profile_operator(op);
            profile.timing.op_index = anchor_index;
            profile.timing.sram_live_bytes = live_profile[anchor_index];
            // Over-capacity live bytes are an allocator bug, not a value
            // downstream consumers may quietly clamp; see
            // `validation::SramCapacityReport` for the release-mode audit.
            debug_assert!(
                profile.timing.sram_live_bytes <= spec.sram_bytes(),
                "anchor {anchor_index}: allocator reports {} live bytes in a {}-byte scratchpad",
                profile.timing.sram_live_bytes,
                spec.sram_bytes()
            );
            profile.phases.producers = anchor_producers[anchor_index].clone();
            anchor_ids.push(op.op.id);
            phases.push(profile.phases);
            timings.push(profile.timing);
        }
        let fold_anchor =
            graph.ops().iter().enumerate().map(|(id, op)| op.folded_into.unwrap_or(id)).collect();
        PreparedSimulator {
            chip: self.chip.clone(),
            engine: TimelineEngine::new(phases),
            timings,
            anchor_producers,
            fold_anchor,
            anchor_ids,
            lifetimes: allocation.segment_lifetimes(),
            segment_bytes: allocation.geometry().segment_bytes(),
            num_segments: allocation.geometry().num_segments(),
        }
    }

    /// Computes the phase durations of a single anchor operator.
    fn profile_operator(&self, op: &CompiledOp) -> OpProfile {
        let spec = self.chip.spec();
        let hbm_bpc = spec.hbm_bytes_per_cycle();
        let hbm_latency_cycles = spec.seconds_to_cycles(spec.hbm_kind.access_latency_ns() * 1e-9);
        let vu_total_per_cycle = (spec.vu_elems_per_cycle() * spec.num_vu) as f64;

        let mut sa_active = 0u64;
        let mut sa_spatial = 0.0f64;
        let mut vu_active = 0u64;
        let mut hbm_active = 0u64;
        let mut ici_active = 0u64;
        let mut fused_vu = 0u64;

        // Streamed HBM prefetch of the operator's operands: transfer time
        // plus the first access latency. The main phase consumes the
        // stream tile by tile as it lands (intra-operator double
        // buffering), so it waits for no lead portion — the same
        // idealization the serial cost model's `max(compute, dma)` makes —
        // and the operator completes only when both the stream and the
        // compute are done. This keeps the overlapped makespan provably
        // at or below the serial per-op sum.
        let (hbm_cycles, hbm_lead) = if op.tile.hbm_bytes > 0 {
            let transfer = (op.tile.hbm_bytes as f64 / hbm_bpc).ceil() as u64;
            (transfer + hbm_latency_cycles, 0)
        } else {
            (0, 0)
        };

        let (unit, main_cycles, dma_cycles, dma_lead) = match op.unit {
            ExecutionUnit::Sa => {
                let (m, k, n) = op.op.matmul_dims().unwrap_or((1, 1, 1));
                let batch = op.op.matmul_batch().max(1);
                let w = spec.sa_width as u64;
                let k_tiles = k.div_ceil(w).max(1);
                let n_tiles = n.div_ceil(w).max(1);
                let passes = batch * k_tiles * n_tiles;
                let sas_used = (spec.num_sa as u64).min(passes).max(1);
                let passes_per_sa = passes.div_ceil(sas_used);
                // Weight-stationary dataflow: each pass shifts in a W-deep
                // weight panel (overlapped with the previous pass's drain
                // except for the very first) and streams m rows through.
                let sa_cycles = passes_per_sa * (m + w) + w;
                sa_active = sa_cycles;
                // Spatial utilization: achieved MACs over peak MACs of the
                // arrays that were switched on while active.
                let peak_macs = sa_active as f64 * sas_used as f64 * (w * w) as f64;
                sa_spatial = ((op.op.flops() / 2.0) / peak_macs).min(1.0);
                // Fused vector post-processing overlaps with the SA drain.
                let fused_cycles = (op.fused_vu_elements as f64 / vu_total_per_cycle).ceil() as u64;
                vu_active = fused_cycles;
                fused_vu = fused_cycles;
                hbm_active = hbm_cycles;
                (Resource::Sa, sa_cycles, hbm_cycles, hbm_lead)
            }
            ExecutionUnit::Vu => {
                let flops = op.op.flops() + op.fused_vu_flops;
                let vu_cycles = ((flops / vu_total_per_cycle).ceil() as u64).max(1);
                vu_active = vu_cycles;
                hbm_active = hbm_cycles;
                (Resource::Vu, vu_cycles, hbm_cycles, hbm_lead)
            }
            ExecutionUnit::Hbm => {
                // Random-access gathers achieve a fraction of the peak
                // bandwidth; the gather *is* the transfer, so there is no
                // separate prefetch phase to overlap.
                let bytes = op.tile.hbm_bytes as f64;
                let cycles =
                    (bytes / (hbm_bpc * GATHER_EFFICIENCY)).ceil() as u64 + hbm_latency_cycles;
                hbm_active = cycles;
                (Resource::HbmDma, cycles, 0, 0)
            }
            ExecutionUnit::Ici => {
                let bytes = op.op.ici_bytes() as f64;
                let seconds = match op.op.kind {
                    OpKind::Collective { kind, .. } => match kind {
                        CollectiveKind::AllReduce => self.topology.allreduce_seconds(
                            bytes,
                            spec.ici_link_gbps,
                            ICI_HOP_LATENCY_S,
                        ),
                        CollectiveKind::ReduceScatter | CollectiveKind::AllGather => self
                            .topology
                            .reduce_scatter_seconds(bytes, spec.ici_link_gbps, ICI_HOP_LATENCY_S),
                        CollectiveKind::AllToAll => {
                            let wire = self.topology.alltoall_seconds(
                                bytes,
                                spec.ici_link_gbps,
                                ICI_HOP_LATENCY_S,
                            );
                            let messages = bytes / ALLTOALL_MESSAGE_BYTES;
                            wire.max(messages * ALLTOALL_PER_MESSAGE_OVERHEAD_S)
                        }
                        CollectiveKind::PointToPoint => {
                            self.topology.p2p_seconds(bytes, spec.ici_link_gbps, ICI_HOP_LATENCY_S)
                        }
                    },
                    _ => 0.0,
                };
                let cycles = spec.seconds_to_cycles(seconds);
                ici_active = cycles;
                (Resource::Ici, cycles, 0, 0)
            }
        };

        // The serial-engine cost of the operator: intra-operator overlap of
        // compute, fused post-processing, and DMA, but no overlap across
        // operators. Kept for the overlap accounting (`serial_cycles`).
        let serial = main_cycles.max(dma_cycles).max(fused_vu) + DISPATCH_OVERHEAD_CYCLES;

        let phases = OpPhases {
            unit: unit.into(),
            main_cycles,
            dma_cycles,
            dma_lead_cycles: dma_lead,
            fused_vu_cycles: fused_vu,
            dispatch_cycles: DISPATCH_OVERHEAD_CYCLES,
            sa_active_cycles: sa_active,
            release_cycle: 0,
            producers: Vec::new(),
            collective: None,
        };
        let timing = OpTiming {
            op_index: 0,
            name: op.op.name.clone(),
            unit: op.unit,
            start_cycle: 0,
            compute_start_cycle: 0,
            duration_cycles: serial,
            serial_duration_cycles: serial,
            sa_active_cycles: sa_active.min(serial),
            sa_spatial_utilization: sa_spatial,
            vu_active_cycles: vu_active.min(serial),
            hbm_active_cycles: hbm_active.min(serial),
            ici_active_cycles: ici_active.min(serial),
            hbm_bytes: op.tile.hbm_bytes,
            ici_bytes: op.op.ici_bytes(),
            flops: op.op.flops() + op.fused_vu_flops,
            sram_live_bytes: 0,
            sram_demand_bytes: op.tile.sram_demand_bytes,
        };
        OpProfile { phases, timing }
    }
}

/// A compiled graph profiled, allocated, and dependency-flattened for
/// repeated simulation — see [`Simulator::prepare`].
///
/// All release-independent work lives here: per-anchor phase durations and
/// timing templates, the SRAM allocation's live-bytes profile and segment
/// lifetimes, and the timeline engine's CSR topology. Replaying against a
/// new release vector ([`PreparedSimulator::run_with_scratch`]) pays only
/// the event loop and the clock mapping, which is what makes a serving
/// sweep over repeated batch shapes cheap.
#[derive(Debug)]
pub struct PreparedSimulator {
    chip: ChipConfig,
    engine: TimelineEngine,
    /// Timing templates: everything but the schedule-dependent
    /// start/duration fields, filled per replay.
    timings: Vec<OpTiming>,
    anchor_producers: Vec<Vec<usize>>,
    /// Op id → op id of its fusion-group anchor (identity when unfused).
    fold_anchor: Vec<usize>,
    /// Anchor index → op id.
    anchor_ids: Vec<usize>,
    lifetimes: Vec<SegmentLifetime>,
    segment_bytes: u64,
    num_segments: usize,
}

impl PreparedSimulator {
    /// The chip configuration being simulated.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Number of compiled operators (anchors plus folded members) the
    /// release vector must cover.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.fold_anchor.len()
    }

    /// The engine's resource set — what an observer recording a replay
    /// (e.g. a [`crate::trace::TraceRecorder`]) must be sized for.
    #[must_use]
    pub fn resources(&self) -> ResourceSet {
        self.engine.resources()
    }

    /// Maps a per-compiled-operator release vector onto the engine's
    /// anchor order: the release of a fusion group is the maximum over
    /// its members, and an empty slice means every operator is released
    /// at cycle 0. Always returns one entry per anchor.
    ///
    /// # Panics
    ///
    /// Panics if `op_releases` is neither empty nor exactly one entry per
    /// compiled operator.
    #[must_use]
    pub fn anchor_releases(&self, op_releases: &[u64]) -> Vec<u64> {
        assert!(
            op_releases.is_empty() || op_releases.len() == self.fold_anchor.len(),
            "release vector covers {} operators but the graph has {}",
            op_releases.len(),
            self.fold_anchor.len()
        );
        let mut group_release = vec![0u64; self.fold_anchor.len()];
        for (id, &anchor) in self.fold_anchor.iter().enumerate() {
            let release = op_releases.get(id).copied().unwrap_or(0);
            group_release[anchor] = group_release[anchor].max(release);
        }
        self.anchor_ids.iter().map(|&id| group_release[id]).collect()
    }

    /// Runs the static schedule analyzer on the prepared graph: the
    /// phase-level DAG checks, the `[lower, upper]` makespan window under
    /// `op_releases`, the containment verdict when a measured makespan is
    /// supplied, and the static SRAM capacity audit against this chip's
    /// scratchpad — all without firing a single event. The serving layer
    /// and the evaluation binaries call this before (or instead of)
    /// [`PreparedSimulator::run_with_releases`].
    ///
    /// # Panics
    ///
    /// Panics if `op_releases` is neither empty nor exactly one entry per
    /// compiled operator (the same contract as the run path).
    #[must_use]
    pub fn analyze(
        &self,
        op_releases: &[u64],
        measured_makespan: Option<u64>,
    ) -> crate::analysis::AnalysisReport {
        let releases = self.anchor_releases(op_releases);
        let mut report =
            crate::analysis::analyze_phases(self.engine.phases(), &releases, measured_makespan);
        let capacity = self.chip.spec().sram_bytes();
        let peak = self.timings.iter().map(|t| t.sram_live_bytes).max().unwrap_or(0);
        let audit = crate::analysis::SramCapacityReport::from_parts(
            capacity,
            self.timings.iter().map(|t| t.sram_live_bytes),
            peak,
        );
        report.extend(audit.diagnostics());
        report
    }

    /// Replays the prepared graph under a release vector with one-shot
    /// scratch buffers. Semantics match [`Simulator::run_with_releases`]
    /// on the same graph, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `op_releases` is neither empty nor exactly one entry per
    /// compiled operator.
    #[must_use]
    pub fn run_with_releases(&self, op_releases: &[u64]) -> SimulationResult {
        self.run_with_scratch(op_releases, &mut EngineScratch::default())
    }

    /// Replays the prepared graph under a release vector, reusing the
    /// caller's [`EngineScratch`] across runs so the event loop allocates
    /// nothing per replay.
    ///
    /// # Panics
    ///
    /// Panics if `op_releases` is neither empty nor exactly one entry per
    /// compiled operator.
    #[must_use]
    pub fn run_with_scratch(
        &self,
        op_releases: &[u64],
        scratch: &mut EngineScratch,
    ) -> SimulationResult {
        self.run_with_scratch_observed(op_releases, scratch, &mut NullObserver)
    }

    /// Replays the prepared graph like
    /// [`PreparedSimulator::run_with_scratch`], reporting every engine
    /// event to `obs` (see [`crate::observer::SimObserver`]). The
    /// observer never influences the schedule: observed and unobserved
    /// replays are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `op_releases` is neither empty nor exactly one entry per
    /// compiled operator.
    #[must_use]
    pub fn run_with_scratch_observed<O: SimObserver>(
        &self,
        op_releases: &[u64],
        scratch: &mut EngineScratch,
        obs: &mut O,
    ) -> SimulationResult {
        // Release of each fusion group: the group runs as one unit, so it
        // is ready only when every member's request has arrived (in
        // practice all members share one batch).
        let releases = self.anchor_releases(op_releases);

        let schedule = self.engine.run_with_scratch_observed(&releases, scratch, obs);
        let mut timings = self.timings.clone();
        let mut sa_weighted_spatial = 0.0f64;
        for (timing, scheduled) in timings.iter_mut().zip(schedule.ops.iter()) {
            timing.start_cycle = scheduled.span_start();
            timing.compute_start_cycle = scheduled.main_start;
            timing.duration_cycles = scheduled.span_cycles();
            sa_weighted_spatial += timing.sa_spatial_utilization * timing.sa_active_cycles as f64;
        }
        // Per-segment SRAM liveness on the global clock: the allocator's
        // anchor-granularity lifetimes mapped through the scheduled spans.
        // The SRAM's busy track is the union of live segment intervals —
        // replacing the engine's former blanket `[0, makespan)` record,
        // which hid every dead-segment interval from the gating model.
        let segments = SegmentTimeline::from_lifetimes(
            &self.lifetimes,
            self.segment_bytes,
            self.num_segments,
            &schedule.ops,
            schedule.makespan,
            &releases,
        );
        let mut timeline = schedule.timeline;
        for iv in segments.live_union() {
            timeline.record(ComponentKind::Sram, iv.start, iv.end);
        }
        timeline.finalize();
        let activity =
            ComponentActivity::from_timeline(&timeline, schedule.makespan, sa_weighted_spatial);
        SimulationResult {
            chip: self.chip.clone(),
            timings,
            anchor_producers: self.anchor_producers.clone(),
            releases,
            activity,
            timeline,
            segments,
            makespan_cycles: schedule.makespan,
            counters: schedule.counters,
        }
    }
}

/// Result of simulating one compiled graph on one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    chip: ChipConfig,
    timings: Vec<OpTiming>,
    /// `anchor_producers[k]`: anchor indices operator `k` waited on.
    anchor_producers: Vec<Vec<usize>>,
    /// `releases[k]`: earliest cycle anchor `k` was allowed to issue (all
    /// zeros for a cycle-0 batch run).
    releases: Vec<u64>,
    activity: ComponentActivity,
    timeline: BusyTimeline,
    segments: SegmentTimeline,
    makespan_cycles: u64,
    /// Event-loop counters of the run that produced this result.
    #[serde(default)]
    counters: RunCounters,
}

impl SimulationResult {
    /// The chip configuration that was simulated.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Per-operator timings in execution order.
    #[must_use]
    pub fn timings(&self) -> &[OpTiming] {
        &self.timings
    }

    /// The last-issued timing whose operator name starts with `prefix`,
    /// or `None` if no operator matches — a gather-only DLRM slice has no
    /// `bottom_mlp` stack, for example, and callers must handle that
    /// rather than indexing on faith.
    #[must_use]
    pub fn last_timing_with_prefix(&self, prefix: &str) -> Option<&OpTiming> {
        self.timings.iter().rfind(|t| t.name.starts_with(prefix))
    }

    /// Anchor indices whose completion operator `index` waited on — the
    /// dependency DAG the schedule honoured (empty for sources).
    #[must_use]
    pub fn producers_of(&self, index: usize) -> &[usize] {
        self.anchor_producers.get(index).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Release cycle the schedule honoured for anchor `index` (0 unless
    /// the run came from [`Simulator::run_with_releases`]).
    #[must_use]
    pub fn release_of(&self, index: usize) -> u64 {
        self.releases.get(index).copied().unwrap_or(0)
    }

    /// Aggregated per-component activity.
    #[must_use]
    pub fn activity(&self) -> &ComponentActivity {
        &self.activity
    }

    /// Merged per-component busy intervals on the global clock.
    #[must_use]
    pub fn busy_timeline(&self) -> &BusyTimeline {
        &self.timeline
    }

    /// Event-loop counters of the run that produced this result: events
    /// popped, heap peak, release-clamp stalls, collective occupancy.
    #[must_use]
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Per-segment SRAM live intervals on the global clock — the input to
    /// segment-granularity SRAM power gating (§4.3).
    #[must_use]
    pub fn segment_timeline(&self) -> &SegmentTimeline {
        &self.segments
    }

    /// Chip-level histogram of idle-interval lengths per component — the
    /// distribution interval-accurate gating decisions are made against.
    #[must_use]
    pub fn idle_histogram(&self) -> IdleHistogram {
        IdleHistogram::from_timeline(&self.timeline, self.makespan_cycles)
    }

    /// Total execution length in cycles (the timeline makespan).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.makespan_cycles
    }

    /// What the execution would cost with the old serial engine (each
    /// operator in isolation, no cross-operator overlap). The makespan is
    /// at most this; the difference is the hidden DMA/dispatch time.
    #[must_use]
    pub fn serial_cycles(&self) -> u64 {
        self.timings.iter().map(|t| t.serial_duration_cycles).sum()
    }

    /// Total execution time in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.chip.spec().cycles_to_seconds(self.total_cycles())
    }

    /// Total FLOPs executed.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.timings.iter().map(|t| t.flops).sum()
    }

    /// Achieved FLOP/s of the chip over the whole execution.
    #[must_use]
    pub fn achieved_flops_per_second(&self) -> f64 {
        let secs = self.total_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.total_flops() / secs
        }
    }

    /// Per-operator `(SRAM demand in MiB, duration in cycles)` pairs — the
    /// input to the Figure 7 CDF, which weights demand by execution time.
    #[must_use]
    pub fn sram_demand_profile(&self) -> Vec<(f64, u64)> {
        self.timings
            .iter()
            .map(|t| (t.sram_demand_bytes as f64 / (1024.0 * 1024.0), t.duration_cycles))
            .collect()
    }

    /// Execution-time-weighted percentile of SRAM demand in MiB (e.g. the
    /// 50th or 99th percentile of Figure 7).
    ///
    /// # Panics
    ///
    /// Never: demands are converted from byte counts, so the sort keys
    /// are always finite.
    #[must_use]
    pub fn sram_demand_percentile_mib(&self, percentile: f64) -> f64 {
        let mut profile = self.sram_demand_profile();
        if profile.is_empty() {
            return 0.0;
        }
        profile.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("demand is finite"));
        let total: u64 = profile.iter().map(|p| p.1).sum();
        if total == 0 {
            // No execution time to weight by: every demand has zero weight,
            // so every percentile of the CDF is zero.
            return 0.0;
        }
        let target = (percentile.clamp(0.0, 100.0) / 100.0 * total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (demand, cycles) in profile {
            acc += cycles;
            if acc >= target {
                return demand;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{ComponentKind, NpuGeneration, NpuSpec, ParallelismConfig};
    use npu_compiler::Compiler;
    use npu_models::{DiffusionModel, DlrmSize, EvalConfig, LlamaModel, LlmPhase, Workload};

    fn simulate(workload: Workload, chips: usize) -> SimulationResult {
        let chip = ChipConfig::new(NpuGeneration::D, chips);
        let parallelism = workload
            .default_parallelism(chip.spec(), chips)
            .unwrap_or(ParallelismConfig::new(chips, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        Simulator::new(chip).run(&compiled)
    }

    #[test]
    fn prefill_is_sa_bound_decode_is_hbm_bound() {
        let prefill = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
        let decode = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        assert!(
            prefill.activity().temporal_utilization(ComponentKind::Sa) > 0.6,
            "prefill SA util {}",
            prefill.activity().temporal_utilization(ComponentKind::Sa)
        );
        assert!(
            decode.activity().temporal_utilization(ComponentKind::Hbm) > 0.8,
            "decode HBM util {}",
            decode.activity().temporal_utilization(ComponentKind::Hbm)
        );
        assert!(
            decode.activity().temporal_utilization(ComponentKind::Sa) < 0.3,
            "decode SA util {}",
            decode.activity().temporal_utilization(ComponentKind::Sa)
        );
    }

    #[test]
    fn prefill_sa_spatial_utilization_is_high() {
        let prefill = simulate(Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8);
        let spatial = prefill.activity().sa_spatial_utilization();
        assert!(spatial > 0.7, "prefill spatial util {spatial}");
    }

    #[test]
    fn dit_spatial_utilization_is_limited_by_head_size() {
        let mut wl = Workload::diffusion(DiffusionModel::DitXl);
        if let Workload::Diffusion(ref mut cfg) = wl {
            cfg.steps = 2;
        }
        let result = simulate(wl, 1);
        let spatial = result.activity().sa_spatial_utilization();
        // head_dim 72 over a 128-wide SA bounds the attention matmuls to
        // ~56% PE occupancy, pulling the average below a fully utilized SA.
        assert!(spatial < 0.85, "DiT spatial util {spatial}");
        assert!(spatial > 0.1);
        let prefill = simulate(Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8);
        assert!(
            spatial < prefill.activity().sa_spatial_utilization(),
            "DiT must utilize the SA worse than large-sequence LLM prefill"
        );
    }

    #[test]
    fn dlrm_is_ici_heavy_and_sa_idle() {
        let result = simulate(Workload::dlrm(DlrmSize::Medium), 8);
        let sa_util = result.activity().temporal_utilization(ComponentKind::Sa);
        let ici_util = result.activity().temporal_utilization(ComponentKind::Ici);
        assert!(sa_util < 0.1, "DLRM SA util {sa_util}");
        assert!(ici_util > 0.3, "DLRM ICI util {ici_util}");
    }

    #[test]
    fn prefill_ici_is_mostly_idle_with_tp() {
        let result = simulate(Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8);
        let ici_util = result.activity().temporal_utilization(ComponentKind::Ici);
        assert!(ici_util < 0.5, "prefill ICI util {ici_util}");
        assert!(ici_util > 0.0, "tensor parallel prefill does use the ICI");
    }

    #[test]
    fn faster_chip_finishes_sooner() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let graph = wl.build_graph(&ParallelismConfig::single());
        let chip_a = ChipConfig::new(NpuGeneration::A, 1);
        let chip_d = ChipConfig::new(NpuGeneration::D, 1);
        let on_a = Simulator::new(chip_a.clone())
            .run(&Compiler::new(chip_a.spec().clone()).compile(&graph));
        let on_d = Simulator::new(chip_d.clone())
            .run(&Compiler::new(chip_d.spec().clone()).compile(&graph));
        assert!(
            on_d.total_seconds() < on_a.total_seconds() / 3.0,
            "NPU-D ({}) should be much faster than NPU-A ({})",
            on_d.total_seconds(),
            on_a.total_seconds()
        );
    }

    #[test]
    fn achieved_flops_never_exceed_peak() {
        for wl in [
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Small),
        ] {
            let result = simulate(wl, 8);
            let spec = NpuSpec::generation(NpuGeneration::D);
            assert!(
                result.achieved_flops_per_second() <= spec.peak_flops() * 1.01,
                "{}: achieved {} > peak {}",
                wl.label(),
                result.achieved_flops_per_second(),
                spec.peak_flops()
            );
        }
    }

    #[test]
    fn sram_demand_percentiles_are_monotonic() {
        let result = simulate(Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), 1);
        let p50 = result.sram_demand_percentile_mib(50.0);
        let p95 = result.sram_demand_percentile_mib(95.0);
        assert!(p95 >= p50);
        assert!(p50 > 0.0);
    }

    #[test]
    fn decode_sram_demand_is_small() {
        let result = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        assert!(
            result.sram_demand_percentile_mib(95.0) < 128.0,
            "decode demand {} MiB",
            result.sram_demand_percentile_mib(95.0)
        );
    }

    #[test]
    fn timings_cover_all_anchors() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let graph = wl.build_graph(&ParallelismConfig::single());
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let result = Simulator::new(chip).run(&compiled);
        assert_eq!(result.timings().len(), compiled.num_anchors());
        for t in result.timings() {
            assert!(t.duration_cycles >= DISPATCH_OVERHEAD_CYCLES);
            assert!(t.sa_active_cycles <= t.duration_cycles);
            assert!(t.hbm_active_cycles <= t.duration_cycles);
            assert!(t.compute_start_cycle >= t.start_cycle);
        }
    }

    // ---- Timeline-engine invariants (event-driven issue, overlap) ----

    /// Every Table-4 workload, at a modest chip count so the net stays
    /// fast, with its default batch. Simulated once and shared by all the
    /// invariant tests below.
    fn table4_simulations() -> &'static [(String, SimulationResult)] {
        static SIMS: std::sync::OnceLock<Vec<(String, SimulationResult)>> =
            std::sync::OnceLock::new();
        SIMS.get_or_init(|| {
            EvalConfig::all()
                .into_iter()
                .map(|config| {
                    let chips = config.num_chips.min(8);
                    (config.workload.label(), simulate(config.workload, chips))
                })
                .collect()
        })
    }

    #[test]
    fn overlap_never_starts_an_op_before_its_producer_finishes() {
        for (label, result) in table4_simulations() {
            let timings = result.timings();
            for (index, timing) in timings.iter().enumerate() {
                for &p in result.producers_of(index) {
                    let producer = &timings[p];
                    let producer_finish = producer.start_cycle + producer.duration_cycles;
                    assert!(
                        timing.compute_start_cycle >= producer_finish,
                        "{label}: {} computes at {} before producer {} finishes at {}",
                        timing.name,
                        timing.compute_start_cycle,
                        producer.name,
                        producer_finish
                    );
                }
            }
        }
    }

    #[test]
    fn dependency_edges_survive_into_the_schedule() {
        // The compiled DAG must stay connected: only true sources (first
        // op of a chain, embedding gathers, independent request heads) may
        // have an empty producer set. For every Table-4 workload the
        // sources are a small minority — a remapping regression that
        // silently drops edges turns most operators into sources and
        // over-overlaps the schedule, so bound the source fraction, not
        // just its existence.
        for (label, result) in table4_simulations() {
            let n = result.timings().len();
            let sources = (0..n).filter(|&k| result.producers_of(k).is_empty()).count();
            assert!(sources >= 1, "{label}: no sources");
            assert!(
                sources * 2 <= n.max(2),
                "{label}: {sources}/{n} operators are sources — dependency edges were lost"
            );
            // Every non-source producer index must reference an earlier op.
            for k in 0..n {
                for &p in result.producers_of(k) {
                    assert!(p < k, "{label}: op {k} lists non-preceding producer {p}");
                }
            }
        }
    }

    #[test]
    fn busy_intervals_are_disjoint_sorted_and_bounded() {
        for (label, result) in table4_simulations() {
            let total = result.total_cycles();
            for kind in ComponentKind::ALL {
                let intervals = result.busy_timeline().intervals(kind);
                for iv in intervals {
                    assert!(iv.start < iv.end, "{label}/{kind:?}: empty interval");
                    assert!(iv.end <= total, "{label}/{kind:?}: interval past makespan");
                }
                for pair in intervals.windows(2) {
                    assert!(
                        pair[0].end < pair[1].start,
                        "{label}/{kind:?}: intervals overlap or abut: {pair:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlapped_total_never_exceeds_the_serial_sum() {
        let mut any_strictly_better = false;
        for (label, result) in table4_simulations() {
            assert!(
                result.total_cycles() <= result.serial_cycles(),
                "{label}: makespan {} exceeds serial sum {}",
                result.total_cycles(),
                result.serial_cycles()
            );
            if result.total_cycles() < result.serial_cycles() {
                any_strictly_better = true;
            }
        }
        assert!(any_strictly_better, "no workload shows any HBM/compute overlap");
    }

    #[test]
    fn decode_overlap_hides_measurable_time() {
        // LLM decode streams weights continuously: the DMA prefetch of
        // operator k+1 overlaps the compute of operator k, so the makespan
        // must be strictly below the serial per-op sum.
        let result = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        assert!(
            result.total_cycles() < result.serial_cycles(),
            "decode shows no overlap: makespan {} vs serial {}",
            result.total_cycles(),
            result.serial_cycles()
        );
    }

    #[test]
    fn dlrm_gathers_overlap_the_bottom_mlp() {
        // The DLRM DAG's per-table gathers are sources: the first gather
        // must stream while (not after) the dense branch computes.
        let wl = Workload::dlrm(DlrmSize::Medium);
        let chip = ChipConfig::new(NpuGeneration::D, 8);
        let parallelism = ParallelismConfig::new(8, 1, 1);
        let graph = wl.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let result = Simulator::new(chip).run(&compiled);
        let first_gather = result
            .timings()
            .iter()
            .find(|t| t.name.ends_with(".lookup"))
            .expect("DLRM has gather anchors");
        assert_eq!(first_gather.compute_start_cycle, 0, "gathers are DAG sources");
        let mlp_tail = result
            .last_timing_with_prefix("bottom_mlp")
            .expect("DLRM lowers a bottom_mlp stack; a gather-only graph would return None");
        assert!(
            first_gather.compute_start_cycle < mlp_tail.start_cycle + mlp_tail.duration_cycles,
            "gathers serialized behind the bottom MLP"
        );
    }

    #[test]
    fn multi_request_batch_overlaps_independent_chains() {
        // Request-level serving: N independent DLRM requests merged at a
        // final collective. One request's ICI exchange must overlap
        // another's embedding gathers, so the DAG lowering has to beat a
        // full serialization of the same operators (the pre-DAG engine's
        // view) by a wide margin.
        let wl = Workload::dlrm(DlrmSize::Medium).with_batch(1024);
        let chip = ChipConfig::new(NpuGeneration::D, 8);
        let parallelism = ParallelismConfig::new(8, 1, 1);
        let compiler = Compiler::new(chip.spec().clone());
        let request_graph = wl.build_request_graph(&parallelism, 4);
        let batched = Simulator::new(chip.clone()).run(&compiler.compile(&request_graph));
        assert!(
            batched.total_cycles() <= batched.serial_cycles(),
            "makespan {} exceeds the serial sum {}",
            batched.total_cycles(),
            batched.serial_cycles()
        );
        // The same operators issued as one linear chain (every op depends
        // on its predecessor — what the engine modelled before producer
        // sets existed).
        let sub = wl.with_batch(1024 / 4).build_graph(&parallelism);
        let mut chained_graph = npu_models::OperatorGraph::new("chained");
        for _ in 0..4 {
            chained_graph.extend(sub.iter().cloned());
        }
        let chained = Simulator::new(chip).run(&compiler.compile(&chained_graph));
        assert!(
            batched.total_cycles() < chained.total_cycles(),
            "request-level DAG ({}) should beat the serialized chain ({}); DLRM is ICI-bound so \
             the margin is modest, but it must be strictly positive",
            batched.total_cycles(),
            chained.total_cycles()
        );
        // Structural witness of the overlap: a later request's gather
        // streams while the first request's all-to-all is still on the
        // wire — impossible in the chained lowering.
        let timings = batched.timings();
        let first_a2a = timings
            .iter()
            .find(|t| t.name == "embedding_alltoall")
            .expect("distributed DLRM has an all-to-all");
        let a2a_finish = first_a2a.start_cycle + first_a2a.duration_cycles;
        assert!(
            timings.iter().any(|t| t.op_index > first_a2a.op_index
                && t.name.ends_with(".lookup")
                && t.compute_start_cycle < a2a_finish),
            "no later gather overlapped the first request's all-to-all"
        );
    }

    #[test]
    fn timing_prefix_lookup_is_none_on_gather_only_graphs() {
        // Regression: the DLRM overlap test used to `.unwrap()` the
        // bottom_mlp lookup, which panics on any DLRM-shaped graph that
        // lowers only embedding gathers (e.g. a sparse-side slice).
        use npu_models::{DataType, OpKind, Operator, OperatorGraph};
        let mut graph = OperatorGraph::new("gather-only");
        for t in 0..4 {
            graph.push_source(Operator::new(
                format!("table.{t}.lookup"),
                OpKind::EmbeddingLookup { lookups: 1024, dim: 128, table_bytes: 1 << 20 },
                DataType::Bf16,
            ));
        }
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let result = Simulator::new(chip).run(&compiled);
        assert!(result.last_timing_with_prefix("bottom_mlp").is_none());
        assert!(result.last_timing_with_prefix("table.").is_some());
        // And on a full DLRM graph the lookup finds the *last* MLP op.
        let full = simulate(Workload::dlrm(DlrmSize::Small), 1);
        let tail = full.last_timing_with_prefix("bottom_mlp").expect("full DLRM has a bottom MLP");
        let last_index =
            full.timings().iter().rposition(|t| t.name.starts_with("bottom_mlp")).unwrap();
        assert_eq!(tail.op_index, last_index);
    }

    #[test]
    fn prepared_simulator_replays_bit_for_bit() {
        // The prepare-once/run-many path must agree with the one-shot
        // engine exactly — timings, timeline, segments, activity — for
        // uniform-zero, empty, and staggered release vectors.
        let wl = Workload::dlrm(DlrmSize::Small).with_batch(64);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let graph = wl.build_graph(&ParallelismConfig::single());
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let sim = Simulator::new(chip);
        let prepared = sim.prepare(&compiled);
        assert_eq!(prepared.num_ops(), compiled.len());
        let mut scratch = crate::timeline::EngineScratch::default();
        let staggered: Vec<u64> = (0..compiled.len() as u64).map(|i| i * 37 % 5000).collect();
        for releases in [&[] as &[u64], &vec![0; compiled.len()][..], &staggered[..]] {
            let fresh = sim.run_with_releases(&compiled, releases);
            let replayed = prepared.run_with_scratch(releases, &mut scratch);
            assert_eq!(fresh, replayed, "prepared replay diverged from the one-shot engine");
        }
    }

    // ---- sram_demand_percentile_mib boundary semantics ----
    //
    // The percentile is execution-time weighted: sort demands ascending,
    // then walk until the accumulated cycles reach
    // `ceil(p/100 * total_cycles)`. These tests pin the edges.

    /// A result whose demand profile is exactly two operators of 50 cycles
    /// each: demands 1 MiB and 3 MiB.
    fn two_bucket_result() -> SimulationResult {
        let result = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        let mut doctored = result;
        doctored.timings.truncate(2);
        let mib = 1024 * 1024;
        doctored.timings[0].sram_demand_bytes = mib;
        doctored.timings[0].duration_cycles = 50;
        doctored.timings[1].sram_demand_bytes = 3 * mib;
        doctored.timings[1].duration_cycles = 50;
        doctored
    }

    #[test]
    fn percentile_zero_returns_the_smallest_demand() {
        // p = 0 → target = ceil(0) = 0, satisfied by the first bucket:
        // the 0th percentile is the minimum demand, never 0.0-by-fiat.
        let result = two_bucket_result();
        assert_eq!(result.sram_demand_percentile_mib(0.0), 1.0);
        // Out-of-range percentiles clamp, not extrapolate.
        assert_eq!(result.sram_demand_percentile_mib(-10.0), 1.0);
    }

    #[test]
    fn percentile_hundred_returns_the_largest_demand() {
        // p = 100 → target = total; only the full walk reaches it, so the
        // answer is the maximum demand even though `acc >= target` fires
        // exactly at the last bucket's edge.
        let result = two_bucket_result();
        assert_eq!(result.sram_demand_percentile_mib(100.0), 3.0);
        assert_eq!(result.sram_demand_percentile_mib(250.0), 3.0);
    }

    #[test]
    fn percentile_landing_exactly_on_a_bucket_edge_stays_in_that_bucket() {
        // p = 50 over 100 total cycles → target = 50 exactly — the edge of
        // the first bucket. `acc >= target` must include the boundary, so
        // the median of {1 MiB × 50cy, 3 MiB × 50cy} is 1 MiB, and any
        // nudge past the edge (ceil rounds up) tips into the next bucket.
        let result = two_bucket_result();
        assert_eq!(result.sram_demand_percentile_mib(50.0), 1.0);
        assert_eq!(result.sram_demand_percentile_mib(50.0001), 3.0);
    }

    #[test]
    fn idle_histogram_matches_activity_idle_cycles() {
        for (label, result) in table4_simulations() {
            let histogram = result.idle_histogram();
            for kind in ComponentKind::ALL {
                assert_eq!(
                    histogram.total_idle_cycles(kind),
                    result.activity().idle_cycles(kind),
                    "{label}/{kind:?}: histogram does not cover the idle cycles"
                );
            }
        }
    }

    #[test]
    fn activity_totals_match_timeline() {
        let result = simulate(Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), 1);
        assert_eq!(result.activity().total_cycles(), result.total_cycles());
        for kind in ComponentKind::ALL {
            assert_eq!(
                result.activity().busy_cycles(kind),
                result.busy_timeline().busy_cycles(kind)
            );
        }
    }
}
