//! The simulator engine: executes a compiled graph on one chip of a
//! deployment and produces per-operator timings.

use serde::{Deserialize, Serialize};

use npu_arch::{ChipConfig, PodTopology};
use npu_compiler::{CompiledGraph, CompiledOp, SramAllocation};
use npu_models::{CollectiveKind, ExecutionUnit, OpKind};

use crate::activity::ComponentActivity;
use crate::timing::OpTiming;

/// Fixed per-operator dispatch overhead in cycles (instruction fetch,
/// scalar setup, DMA descriptor programming).
const DISPATCH_OVERHEAD_CYCLES: u64 = 100;

/// Effective HBM bandwidth fraction achieved by random-access embedding
/// gathers (row-granularity accesses cannot use the full burst bandwidth).
const GATHER_EFFICIENCY: f64 = 0.25;

/// Per-hop ICI latency in seconds.
const ICI_HOP_LATENCY_S: f64 = 1.0e-6;

/// Message granularity of an all-to-all exchange in bytes.
///
/// DLRM's embedding exchange moves one pooled embedding row per
/// (sample, table, destination) — a few hundred bytes — and these rows
/// cannot be aggregated into large transfers because every destination
/// receives a different, scattered subset. The exchange is therefore
/// dominated by per-message overheads rather than wire bandwidth, which is
/// why the paper observes 98–99% ICI temporal utilization for DLRM
/// (Figure 8) even though the payload is modest.
const ALLTOALL_MESSAGE_BYTES: f64 = 512.0;

/// Per-message processing overhead (descriptor handling, packetization)
/// charged to the ICI controller for all-to-all traffic, in seconds.
const ALLTOALL_PER_MESSAGE_OVERHEAD_S: f64 = 100.0e-9;

/// Tile-level performance simulator for one NPU chip of a deployment.
#[derive(Debug, Clone)]
pub struct Simulator {
    chip: ChipConfig,
    topology: PodTopology,
}

impl Simulator {
    /// Creates a simulator for the given chip deployment.
    #[must_use]
    pub fn new(chip: ChipConfig) -> Self {
        let topology = chip.topology();
        Simulator { chip, topology }
    }

    /// The chip configuration being simulated.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Runs a compiled graph and returns the per-operator timings and the
    /// aggregated component activity.
    #[must_use]
    pub fn run(&self, graph: &CompiledGraph) -> SimulationResult {
        let spec = self.chip.spec();
        let allocation = SramAllocation::allocate(graph, spec.sram_geometry());
        let mut timings = Vec::with_capacity(graph.num_anchors());
        for (anchor_index, op) in graph.anchors().enumerate() {
            let mut timing = self.time_operator(op);
            timing.op_index = anchor_index;
            timing.sram_live_bytes = allocation.live_bytes_at(anchor_index);
            timings.push(timing);
        }
        let activity = ComponentActivity::from_timings(&timings);
        SimulationResult { chip: self.chip.clone(), timings, activity }
    }

    /// Times a single anchor operator.
    fn time_operator(&self, op: &CompiledOp) -> OpTiming {
        let spec = self.chip.spec();
        let hbm_bpc = spec.hbm_bytes_per_cycle();
        let hbm_latency_cycles = spec.seconds_to_cycles(spec.hbm_kind.access_latency_ns() * 1e-9);
        let vu_total_per_cycle = (spec.vu_elems_per_cycle() * spec.num_vu) as f64;

        let mut sa_active = 0u64;
        let mut sa_spatial = 0.0f64;
        let mut vu_active = 0u64;
        let mut hbm_active = 0u64;
        let mut ici_active = 0u64;

        let hbm_cycles = if op.tile.hbm_bytes > 0 {
            (op.tile.hbm_bytes as f64 / hbm_bpc).ceil() as u64 + hbm_latency_cycles
        } else {
            0
        };

        let duration = match op.unit {
            ExecutionUnit::Sa => {
                let (m, k, n) = op.op.matmul_dims().unwrap_or((1, 1, 1));
                let batch = op.op.matmul_batch().max(1);
                let w = spec.sa_width as u64;
                let k_tiles = k.div_ceil(w).max(1);
                let n_tiles = n.div_ceil(w).max(1);
                let passes = batch * k_tiles * n_tiles;
                let sas_used = (spec.num_sa as u64).min(passes).max(1);
                let passes_per_sa = passes.div_ceil(sas_used);
                // Weight-stationary dataflow: each pass shifts in a W-deep
                // weight panel (overlapped with the previous pass's drain
                // except for the very first) and streams m rows through.
                let sa_cycles = passes_per_sa * (m + w) + w;
                sa_active = sa_cycles;
                // Spatial utilization: achieved MACs over peak MACs of the
                // arrays that were switched on while active.
                let peak_macs = sa_active as f64 * sas_used as f64 * (w * w) as f64;
                sa_spatial = ((op.op.flops() / 2.0) / peak_macs).min(1.0);
                // Fused vector post-processing overlaps with the SA drain.
                let fused_cycles = (op.fused_vu_elements as f64 / vu_total_per_cycle).ceil() as u64;
                vu_active = fused_cycles;
                hbm_active = hbm_cycles;
                sa_cycles.max(hbm_cycles).max(fused_cycles)
            }
            ExecutionUnit::Vu => {
                let flops = op.op.flops() + op.fused_vu_flops;
                let vu_cycles = ((flops / vu_total_per_cycle).ceil() as u64).max(1);
                vu_active = vu_cycles;
                hbm_active = hbm_cycles;
                vu_cycles.max(hbm_cycles)
            }
            ExecutionUnit::Hbm => {
                // Random-access gathers achieve a fraction of the peak
                // bandwidth.
                let bytes = op.tile.hbm_bytes as f64;
                let cycles =
                    (bytes / (hbm_bpc * GATHER_EFFICIENCY)).ceil() as u64 + hbm_latency_cycles;
                hbm_active = cycles;
                cycles
            }
            ExecutionUnit::Ici => {
                let bytes = op.op.ici_bytes() as f64;
                let seconds = match op.op.kind {
                    OpKind::Collective { kind, .. } => match kind {
                        CollectiveKind::AllReduce => self.topology.allreduce_seconds(
                            bytes,
                            spec.ici_link_gbps,
                            ICI_HOP_LATENCY_S,
                        ),
                        CollectiveKind::ReduceScatter | CollectiveKind::AllGather => self
                            .topology
                            .reduce_scatter_seconds(bytes, spec.ici_link_gbps, ICI_HOP_LATENCY_S),
                        CollectiveKind::AllToAll => {
                            let wire = self.topology.alltoall_seconds(
                                bytes,
                                spec.ici_link_gbps,
                                ICI_HOP_LATENCY_S,
                            );
                            let messages = bytes / ALLTOALL_MESSAGE_BYTES;
                            wire.max(messages * ALLTOALL_PER_MESSAGE_OVERHEAD_S)
                        }
                        CollectiveKind::PointToPoint => {
                            self.topology.p2p_seconds(bytes, spec.ici_link_gbps, ICI_HOP_LATENCY_S)
                        }
                    },
                    _ => 0.0,
                };
                let cycles = spec.seconds_to_cycles(seconds);
                ici_active = cycles;
                cycles
            }
        };
        let duration = duration + DISPATCH_OVERHEAD_CYCLES;

        OpTiming {
            op_index: 0,
            name: op.op.name.clone(),
            unit: op.unit,
            duration_cycles: duration,
            sa_active_cycles: sa_active.min(duration),
            sa_spatial_utilization: sa_spatial,
            vu_active_cycles: vu_active.min(duration),
            hbm_active_cycles: hbm_active.min(duration),
            ici_active_cycles: ici_active.min(duration),
            hbm_bytes: op.tile.hbm_bytes,
            ici_bytes: op.op.ici_bytes(),
            flops: op.op.flops() + op.fused_vu_flops,
            sram_live_bytes: 0,
            sram_demand_bytes: op.tile.sram_demand_bytes,
        }
    }
}

/// Result of simulating one compiled graph on one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    chip: ChipConfig,
    timings: Vec<OpTiming>,
    activity: ComponentActivity,
}

impl SimulationResult {
    /// The chip configuration that was simulated.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Per-operator timings in execution order.
    #[must_use]
    pub fn timings(&self) -> &[OpTiming] {
        &self.timings
    }

    /// Aggregated per-component activity.
    #[must_use]
    pub fn activity(&self) -> &ComponentActivity {
        &self.activity
    }

    /// Total execution length in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.activity.total_cycles()
    }

    /// Total execution time in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.chip.spec().cycles_to_seconds(self.total_cycles())
    }

    /// Total FLOPs executed.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.timings.iter().map(|t| t.flops).sum()
    }

    /// Achieved FLOP/s of the chip over the whole execution.
    #[must_use]
    pub fn achieved_flops_per_second(&self) -> f64 {
        let secs = self.total_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.total_flops() / secs
        }
    }

    /// Per-operator `(SRAM demand in MiB, duration in cycles)` pairs — the
    /// input to the Figure 7 CDF, which weights demand by execution time.
    #[must_use]
    pub fn sram_demand_profile(&self) -> Vec<(f64, u64)> {
        self.timings
            .iter()
            .map(|t| (t.sram_demand_bytes as f64 / (1024.0 * 1024.0), t.duration_cycles))
            .collect()
    }

    /// Execution-time-weighted percentile of SRAM demand in MiB (e.g. the
    /// 50th or 99th percentile of Figure 7).
    #[must_use]
    pub fn sram_demand_percentile_mib(&self, percentile: f64) -> f64 {
        let mut profile = self.sram_demand_profile();
        if profile.is_empty() {
            return 0.0;
        }
        profile.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("demand is finite"));
        let total: u64 = profile.iter().map(|p| p.1).sum();
        let target = (percentile.clamp(0.0, 100.0) / 100.0 * total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (demand, cycles) in profile {
            acc += cycles;
            if acc >= target {
                return demand;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{ComponentKind, NpuGeneration, NpuSpec, ParallelismConfig};
    use npu_compiler::Compiler;
    use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase, Workload};

    fn simulate(workload: Workload, chips: usize) -> SimulationResult {
        let chip = ChipConfig::new(NpuGeneration::D, chips);
        let parallelism = workload
            .default_parallelism(chip.spec(), chips)
            .unwrap_or(ParallelismConfig::new(chips, 1, 1));
        let graph = workload.build_graph(&parallelism);
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        Simulator::new(chip).run(&compiled)
    }

    #[test]
    fn prefill_is_sa_bound_decode_is_hbm_bound() {
        let prefill = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
        let decode = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        assert!(
            prefill.activity().temporal_utilization(ComponentKind::Sa) > 0.6,
            "prefill SA util {}",
            prefill.activity().temporal_utilization(ComponentKind::Sa)
        );
        assert!(
            decode.activity().temporal_utilization(ComponentKind::Hbm) > 0.8,
            "decode HBM util {}",
            decode.activity().temporal_utilization(ComponentKind::Hbm)
        );
        assert!(
            decode.activity().temporal_utilization(ComponentKind::Sa) < 0.3,
            "decode SA util {}",
            decode.activity().temporal_utilization(ComponentKind::Sa)
        );
    }

    #[test]
    fn prefill_sa_spatial_utilization_is_high() {
        let prefill = simulate(Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8);
        let spatial = prefill.activity().sa_spatial_utilization();
        assert!(spatial > 0.7, "prefill spatial util {spatial}");
    }

    #[test]
    fn dit_spatial_utilization_is_limited_by_head_size() {
        let mut wl = Workload::diffusion(DiffusionModel::DitXl);
        if let Workload::Diffusion(ref mut cfg) = wl {
            cfg.steps = 2;
        }
        let result = simulate(wl, 1);
        let spatial = result.activity().sa_spatial_utilization();
        // head_dim 72 over a 128-wide SA bounds the attention matmuls to
        // ~56% PE occupancy, pulling the average below a fully utilized SA.
        assert!(spatial < 0.85, "DiT spatial util {spatial}");
        assert!(spatial > 0.1);
        let prefill = simulate(Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8);
        assert!(
            spatial < prefill.activity().sa_spatial_utilization(),
            "DiT must utilize the SA worse than large-sequence LLM prefill"
        );
    }

    #[test]
    fn dlrm_is_ici_heavy_and_sa_idle() {
        let result = simulate(Workload::dlrm(DlrmSize::Medium), 8);
        let sa_util = result.activity().temporal_utilization(ComponentKind::Sa);
        let ici_util = result.activity().temporal_utilization(ComponentKind::Ici);
        assert!(sa_util < 0.1, "DLRM SA util {sa_util}");
        assert!(ici_util > 0.3, "DLRM ICI util {ici_util}");
    }

    #[test]
    fn prefill_ici_is_mostly_idle_with_tp() {
        let result = simulate(Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill), 8);
        let ici_util = result.activity().temporal_utilization(ComponentKind::Ici);
        assert!(ici_util < 0.5, "prefill ICI util {ici_util}");
        assert!(ici_util > 0.0, "tensor parallel prefill does use the ICI");
    }

    #[test]
    fn faster_chip_finishes_sooner() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let graph = wl.build_graph(&ParallelismConfig::single());
        let chip_a = ChipConfig::new(NpuGeneration::A, 1);
        let chip_d = ChipConfig::new(NpuGeneration::D, 1);
        let on_a = Simulator::new(chip_a.clone())
            .run(&Compiler::new(chip_a.spec().clone()).compile(&graph));
        let on_d = Simulator::new(chip_d.clone())
            .run(&Compiler::new(chip_d.spec().clone()).compile(&graph));
        assert!(
            on_d.total_seconds() < on_a.total_seconds() / 3.0,
            "NPU-D ({}) should be much faster than NPU-A ({})",
            on_d.total_seconds(),
            on_a.total_seconds()
        );
    }

    #[test]
    fn achieved_flops_never_exceed_peak() {
        for wl in [
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            Workload::dlrm(DlrmSize::Small),
        ] {
            let result = simulate(wl, 8);
            let spec = NpuSpec::generation(NpuGeneration::D);
            assert!(
                result.achieved_flops_per_second() <= spec.peak_flops() * 1.01,
                "{}: achieved {} > peak {}",
                wl.label(),
                result.achieved_flops_per_second(),
                spec.peak_flops()
            );
        }
    }

    #[test]
    fn sram_demand_percentiles_are_monotonic() {
        let result = simulate(Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), 1);
        let p50 = result.sram_demand_percentile_mib(50.0);
        let p95 = result.sram_demand_percentile_mib(95.0);
        assert!(p95 >= p50);
        assert!(p50 > 0.0);
    }

    #[test]
    fn decode_sram_demand_is_small() {
        let result = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
        assert!(
            result.sram_demand_percentile_mib(95.0) < 128.0,
            "decode demand {} MiB",
            result.sram_demand_percentile_mib(95.0)
        );
    }

    #[test]
    fn timings_cover_all_anchors() {
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let graph = wl.build_graph(&ParallelismConfig::single());
        let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
        let result = Simulator::new(chip).run(&compiled);
        assert_eq!(result.timings().len(), compiled.num_anchors());
        for t in result.timings() {
            assert!(t.duration_cycles >= DISPATCH_OVERHEAD_CYCLES);
            assert!(t.sa_active_cycles <= t.duration_cycles);
            assert!(t.hbm_active_cycles <= t.duration_cycles);
        }
    }
}
