//! Deterministic, dependency-free pseudo-random number generation shared
//! by the seeded test harnesses and the serving-layer arrival processes.
//!
//! The workspace deliberately avoids external RNG crates: every stochastic
//! input (random DAG corpora, synthetic SRAM allocations, Poisson request
//! arrivals) must be reproducible bit for bit from a seed, on every
//! platform, with no feature flags. SplitMix64 is the simplest generator
//! that passes BigCrush-adjacent statistical muster while being four lines
//! of arithmetic — and having exactly one implementation here means a fix
//! to the stepping or the range draw cannot silently diverge between the
//! invariant suites and the arrival sampler.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// Deterministic for a given seed; `Clone` so corpora can fork streams.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi` (callers keep spans far below `u64::MAX`,
    /// so the modulo bias is negligible for test-corpus generation).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Uniform draw from the open-closed unit interval `(0, 1]` — the
    /// domain `-ln(u)` needs for exponential (Poisson inter-arrival)
    /// sampling without ever evaluating `ln(0)`.
    pub fn unit_open(&mut self) -> f64 {
        // 53 uniform mantissa bits, shifted into (0, 1] by the +1.
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds_and_hits_both_ends() {
        let mut rng = SplitMix64::new(7);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            let v = rng.range(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn unit_open_is_in_the_open_closed_interval() {
        let mut rng = SplitMix64::new(999);
        for _ in 0..10_000 {
            let u = rng.unit_open();
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
        }
    }
}
