//! Per-segment SRAM liveness on the global clock.
//!
//! ReGate gates the scratchpad at 4 KiB-segment granularity based on when
//! each segment's data is *live* (§4.3). The compiler's SRAM allocation
//! knows which anchors keep each segment live
//! ([`npu_compiler::SramAllocation::segment_lifetimes`]); this module maps
//! those anchor ranges through the scheduled operator spans onto the
//! global clock and merges them into a [`SegmentTimeline`]: per-segment
//! live intervals that the gating model walks exactly like any other
//! component's busy track — the *dead* gaps between them are the idle
//! intervals that break-even filtering and retention-mode transitions
//! apply to.
//!
//! Segments sharing one lifetime (a contiguous run covered by the same
//! buffers) are stored as a single [`SegmentBand`], so the structure stays
//! proportional to the number of distinct buffer shapes rather than the
//! tens of thousands of raw segments.

use serde::{Deserialize, Serialize};

use npu_compiler::{SegmentLifetime, SramAllocation};

use crate::timeline::{complement_intervals, merge_intervals, CycleInterval, ScheduledOp};

/// A run of consecutive SRAM segments sharing one live-interval list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentBand {
    /// First segment index of the run.
    pub first_segment: usize,
    /// Number of consecutive segments sharing these intervals.
    pub num_segments: usize,
    /// Merged live intervals on the global clock: sorted, disjoint,
    /// non-abutting, bounded by the makespan.
    pub live: Vec<CycleInterval>,
}

impl SegmentBand {
    /// Total live cycles of one segment in the band.
    #[must_use]
    pub fn live_cycles(&self) -> u64 {
        self.live.iter().map(CycleInterval::len).sum()
    }

    /// Whether a segment of the band holds live data at cycle `at`.
    #[must_use]
    pub fn is_live_at(&self, at: u64) -> bool {
        self.live.iter().any(|iv| iv.contains(at))
    }
}

/// Per-segment SRAM live intervals over one simulated execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentTimeline {
    segment_bytes: u64,
    num_segments: usize,
    makespan: u64,
    /// Ever-live segment runs, sorted by `first_segment`, disjoint.
    bands: Vec<SegmentBand>,
}

impl SegmentTimeline {
    /// Maps an allocation's segment lifetimes through the scheduled
    /// operator spans onto the global clock, with every operator released
    /// at cycle 0 (the single-batch view). See
    /// [`SegmentTimeline::build_with_releases`].
    ///
    /// # Panics
    ///
    /// Panics if the allocation does not cover exactly `ops.len()`
    /// anchors — the allocator guarantees every lifetime lies within its
    /// `num_anchors`, so a mismatched schedule is a caller bug that must
    /// not be silently truncated.
    #[must_use]
    pub fn build(allocation: &SramAllocation, ops: &[ScheduledOp], makespan: u64) -> Self {
        Self::build_with_releases(allocation, ops, makespan, &[])
    }

    /// Maps an allocation's segment lifetimes through the scheduled
    /// operator spans onto the global clock.
    ///
    /// A segment live for anchors `[a0, a1]` holds data from the first
    /// cycle any of those anchors occupies hardware (the prefetch into the
    /// buffer) until the last of them finishes — including the scheduling
    /// gaps in between, where the data sits waiting for its consumer.
    /// Ranges whose clock images overlap or abut are merged.
    ///
    /// `releases` (one entry per scheduled anchor; empty = all zero) marks
    /// the request-release boundaries of a serving trace: a lifetime hull
    /// may **not** bridge a release change, because the later batch's data
    /// cannot exist before its batch dispatched. The allocator's prefetch
    /// lead-in convention anchors a buffer one operator early, which on an
    /// arrival-driven schedule would otherwise stretch the first buffer of
    /// every batch across the whole inter-batch gap — keeping the SRAM
    /// spuriously "live" through exactly the idleness ReGate wants to
    /// gate. Splitting at release boundaries leaves those gaps dead while
    /// keeping the single-batch mapping (uniform releases) bit-for-bit
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics on an anchor-count mismatch with the allocation or a
    /// non-empty `releases` of the wrong length.
    #[must_use]
    pub fn build_with_releases(
        allocation: &SramAllocation,
        ops: &[ScheduledOp],
        makespan: u64,
        releases: &[u64],
    ) -> Self {
        assert_eq!(
            allocation.num_anchors(),
            ops.len(),
            "allocation covers {} anchors but the schedule has {} operators",
            allocation.num_anchors(),
            ops.len()
        );
        Self::from_lifetimes(
            &allocation.segment_lifetimes(),
            allocation.geometry().segment_bytes(),
            allocation.geometry().num_segments(),
            ops,
            makespan,
            releases,
        )
    }

    /// Maps precomputed segment lifetimes through the scheduled spans —
    /// the run-many path: [`npu_compiler::SramAllocation::segment_lifetimes`]
    /// is a sweep over every buffer, so a prepared simulator computes the
    /// lifetime list once and replays it against each release vector. Same
    /// semantics as [`SegmentTimeline::build_with_releases`], which
    /// delegates here.
    ///
    /// # Panics
    ///
    /// Panics if `releases` is non-empty but does not cover every
    /// scheduled operator.
    #[must_use]
    pub fn from_lifetimes(
        lifetimes: &[SegmentLifetime],
        segment_bytes: u64,
        num_segments: usize,
        ops: &[ScheduledOp],
        makespan: u64,
        releases: &[u64],
    ) -> Self {
        assert!(
            releases.is_empty() || releases.len() == ops.len(),
            "release vector covers {} anchors but the schedule has {} operators",
            releases.len(),
            ops.len()
        );
        let release = |k: usize| releases.get(k).copied().unwrap_or(0);
        let mut bands = Vec::new();
        for lifetime in lifetimes {
            let mut live = Vec::with_capacity(lifetime.anchor_ranges.len());
            for &(a0, a1) in &lifetime.anchor_ranges {
                // Split the range into maximal runs of equal release and
                // hull each run separately.
                let mut k = a0;
                while k <= a1 {
                    let mut j = k;
                    while j < a1 && release(j + 1) == release(k) {
                        j += 1;
                    }
                    let anchors = &ops[k..=j];
                    let start = anchors.iter().map(ScheduledOp::span_start).min().unwrap_or(0);
                    let end = anchors.iter().map(|s| s.finish).max().unwrap_or(0).min(makespan);
                    if end > start {
                        live.push(CycleInterval { start, end });
                    }
                    k = j + 1;
                }
            }
            merge_intervals(&mut live);
            if !live.is_empty() {
                bands.push(SegmentBand {
                    first_segment: lifetime.first_segment,
                    num_segments: lifetime.num_segments,
                    live,
                });
            }
        }
        SegmentTimeline { segment_bytes, num_segments, makespan, bands }
    }

    /// An all-dead timeline (no allocation, e.g. an empty graph).
    #[must_use]
    pub fn empty(segment_bytes: u64, num_segments: usize, makespan: u64) -> Self {
        SegmentTimeline { segment_bytes, num_segments, makespan, bands: Vec::new() }
    }

    /// Size of one power-gateable segment in bytes.
    #[must_use]
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Total number of segments in the scratchpad (live or dead).
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// The execution length the dead intervals complement against.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// The ever-live segment runs.
    #[must_use]
    pub fn bands(&self) -> &[SegmentBand] {
        &self.bands
    }

    /// Number of segments that are live at least once.
    #[must_use]
    pub fn ever_live_segments(&self) -> usize {
        self.bands.iter().map(|b| b.num_segments).sum()
    }

    /// Live intervals of one segment (empty for never-live segments).
    #[must_use]
    pub fn live_intervals(&self, segment: usize) -> &[CycleInterval] {
        self.bands
            .iter()
            .find(|b| b.first_segment <= segment && segment < b.first_segment + b.num_segments)
            .map(|b| b.live.as_slice())
            .unwrap_or(&[])
    }

    /// Dead intervals of one segment over `[0, makespan)` — the gaps the
    /// gating model walks. A never-live segment is dead for the whole run.
    #[must_use]
    pub fn dead_intervals(&self, segment: usize) -> Vec<CycleInterval> {
        complement_intervals(self.live_intervals(segment), self.makespan)
    }

    /// Dead intervals of every segment in a band.
    #[must_use]
    pub fn dead_intervals_of(&self, band: &SegmentBand) -> Vec<CycleInterval> {
        complement_intervals(&band.live, self.makespan)
    }

    /// Bytes of SRAM live at one instant: the union-weighted sum over all
    /// segments whose live intervals contain `at`.
    #[must_use]
    pub fn live_bytes_at(&self, at: u64) -> u64 {
        self.bands
            .iter()
            .filter(|b| b.is_live_at(at))
            .map(|b| b.num_segments as u64 * self.segment_bytes)
            .sum()
    }

    /// Peak instantaneous live bytes across the whole execution. The live
    /// set only grows at an interval start, so sampling every start visits
    /// every candidate maximum.
    #[must_use]
    pub fn peak_live_bytes(&self) -> u64 {
        self.bands
            .iter()
            .flat_map(|b| b.live.iter().map(|iv| iv.start))
            .map(|at| self.live_bytes_at(at))
            .max()
            .unwrap_or(0)
    }

    /// Merged union of every segment's live intervals: the cycles during
    /// which *any* part of the scratchpad holds live data — the SRAM's
    /// busy track on the component timeline.
    #[must_use]
    pub fn live_union(&self) -> Vec<CycleInterval> {
        let mut union: Vec<CycleInterval> =
            self.bands.iter().flat_map(|b| b.live.iter().copied()).collect();
        merge_intervals(&mut union);
        union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::SramGeometry;
    use npu_compiler::BufferLifetime;

    fn op(dma_start: u64, main_start: u64, finish: u64) -> ScheduledOp {
        ScheduledOp {
            dma_start,
            dma_end: if dma_start < main_start { main_start } else { dma_start },
            main_start,
            main_end: finish,
            finish,
        }
    }

    fn buffer(
        anchor: usize,
        start_addr: u64,
        size_bytes: u64,
        live_from: usize,
        live_to: usize,
    ) -> BufferLifetime {
        BufferLifetime { anchor_index: anchor, start_addr, size_bytes, live_from, live_to }
    }

    /// 64 KiB / 4 KiB geometry: 16 segments, halves at 0 and 8.
    fn geometry() -> SramGeometry {
        SramGeometry::new(64 * 1024, 4096)
    }

    #[test]
    fn lifetimes_map_through_scheduled_spans() {
        // Three chained ops; the bottom-half buffer is live for anchors
        // 0-1, reused for anchor 2 after a gap on the clock.
        let alloc = SramAllocation::from_buffers(
            geometry(),
            vec![buffer(0, 0, 8192, 0, 1), buffer(2, 0, 4096, 2, 2)],
            3,
        );
        let ops = [op(0, 0, 100), op(100, 120, 300), op(300, 500, 900)];
        let tl = SegmentTimeline::build(&alloc, &ops, 900);
        // Segment 0: [0, 300) from the first occupancy, [300, 900) from
        // the second — they abut on the clock and merge.
        assert_eq!(tl.live_intervals(0), &[CycleInterval { start: 0, end: 900 }]);
        // Segment 1: only the first buffer.
        assert_eq!(tl.live_intervals(1), &[CycleInterval { start: 0, end: 300 }]);
        assert_eq!(tl.dead_intervals(1), vec![CycleInterval { start: 300, end: 900 }]);
        // Never-live segments are dead for the whole run.
        assert!(tl.live_intervals(5).is_empty());
        assert_eq!(tl.dead_intervals(5), vec![CycleInterval { start: 0, end: 900 }]);
        assert_eq!(tl.ever_live_segments(), 2);
        assert_eq!(tl.num_segments(), 16);
    }

    #[test]
    fn concurrent_buffers_sum_their_bytes() {
        // Two operators overlapping on the clock, buffers in opposite
        // halves: while both run, both segment sets are live at once.
        let alloc = SramAllocation::from_buffers(
            geometry(),
            vec![buffer(0, 0, 8192, 0, 0), buffer(1, 32 * 1024, 12288, 1, 1)],
            2,
        );
        let ops = [op(0, 0, 500), op(100, 100, 400)];
        let tl = SegmentTimeline::build(&alloc, &ops, 500);
        assert_eq!(tl.live_bytes_at(50), 8192, "only the first buffer is live");
        assert_eq!(tl.live_bytes_at(200), 8192 + 12288, "concurrent live bytes sum");
        assert_eq!(tl.live_bytes_at(450), 8192, "the second op has finished");
        assert_eq!(tl.peak_live_bytes(), 8192 + 12288);
        assert!(tl.peak_live_bytes() <= geometry().total_bytes());
    }

    #[test]
    fn live_union_merges_across_bands() {
        let alloc = SramAllocation::from_buffers(
            geometry(),
            vec![buffer(0, 0, 4096, 0, 0), buffer(1, 32 * 1024, 4096, 1, 1)],
            2,
        );
        // Disjoint spans with a real gap between them.
        let ops = [op(0, 0, 100), op(200, 200, 300)];
        let tl = SegmentTimeline::build(&alloc, &ops, 400);
        assert_eq!(
            tl.live_union(),
            vec![CycleInterval { start: 0, end: 100 }, CycleInterval { start: 200, end: 300 }]
        );
    }

    #[test]
    fn release_boundaries_split_lifetime_hulls() {
        // One buffer whose prefetch lead-in anchor (0) belongs to an
        // earlier batch than its owner (1): anchors 0 and 1 are separated
        // by a long inter-batch gap. With uniform releases the hull
        // bridges the gap; with the release boundary between them the gap
        // must stay dead.
        let alloc = SramAllocation::from_buffers(geometry(), vec![buffer(1, 0, 4096, 0, 1)], 2);
        let ops = [op(0, 0, 100), op(50_000, 50_000, 50_200)];
        let hull = SegmentTimeline::build(&alloc, &ops, 50_200);
        assert_eq!(hull.live_intervals(0), &[CycleInterval { start: 0, end: 50_200 }]);
        let split = SegmentTimeline::build_with_releases(&alloc, &ops, 50_200, &[0, 50_000]);
        assert_eq!(
            split.live_intervals(0),
            &[CycleInterval { start: 0, end: 100 }, CycleInterval { start: 50_000, end: 50_200 }],
            "the inter-batch gap must be dead"
        );
        // Uniform releases reproduce the hull bit for bit.
        let uniform = SegmentTimeline::build_with_releases(&alloc, &ops, 50_200, &[7, 7]);
        assert_eq!(uniform.live_intervals(0), hull.live_intervals(0));
    }

    #[test]
    fn empty_timeline_is_all_dead() {
        let tl = SegmentTimeline::empty(4096, 16, 1000);
        assert_eq!(tl.ever_live_segments(), 0);
        assert_eq!(tl.peak_live_bytes(), 0);
        assert!(tl.live_union().is_empty());
        assert_eq!(tl.dead_intervals(3), vec![CycleInterval { start: 0, end: 1000 }]);
    }

    #[test]
    fn intervals_are_disjoint_sorted_and_bounded() {
        let alloc = SramAllocation::from_buffers(
            geometry(),
            vec![
                buffer(0, 0, 16384, 0, 1),
                buffer(1, 32 * 1024, 8192, 0, 2),
                buffer(2, 0, 8192, 3, 3),
            ],
            4,
        );
        let ops = [op(0, 0, 250), op(0, 250, 400), op(400, 420, 700), op(700, 800, 1000)];
        let tl = SegmentTimeline::build(&alloc, &ops, 1000);
        for band in tl.bands() {
            for iv in &band.live {
                assert!(iv.start < iv.end);
                assert!(iv.end <= tl.makespan());
            }
            for pair in band.live.windows(2) {
                assert!(pair[0].end < pair[1].start, "overlapping/abutting: {pair:?}");
            }
            let dead: u64 = tl.dead_intervals_of(band).iter().map(CycleInterval::len).sum();
            assert_eq!(band.live_cycles() + dead, tl.makespan());
        }
    }
}
