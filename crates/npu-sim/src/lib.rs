//! # npu-sim — tile-level NPU performance simulator
//!
//! Models the execution of a compiled operator graph on one NPU chip of a
//! (possibly multi-chip) deployment, reporting per-operator and
//! per-component activity: execution cycles, systolic-array active cycles
//! and spatial utilization, vector-unit active cycles, HBM/DMA busy cycles,
//! ICI busy cycles, and live SRAM bytes. These statistics are exactly what
//! the paper's characterization (§3, Figures 4–9) and the ReGate energy
//! model (§6) consume.
//!
//! The simulator follows the paper's methodology (§4.4): "the simulator
//! backend models the execution of operators at tile granularity and
//! reports statistics on each component, including the execution time in
//! cycles, memory/ICI traffic, and FLOPs utilization". Operators execute in
//! order (the NPU core is an in-order, statically scheduled pipeline);
//! double buffering overlaps DMA transfers with compute inside an operator.
//!
//! ## Example
//!
//! ```
//! use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
//! use npu_compiler::Compiler;
//! use npu_models::{LlamaModel, LlmPhase, Workload};
//! use npu_sim::Simulator;
//!
//! let chip = ChipConfig::new(NpuGeneration::D, 1);
//! let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
//! let graph = workload.build_graph(&ParallelismConfig::single());
//! let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
//! let result = Simulator::new(chip).run(&compiled);
//! assert!(result.total_cycles() > 0);
//! // Prefill keeps the systolic arrays busy most of the time.
//! assert!(result.activity().temporal_utilization(npu_arch::ComponentKind::Sa) > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod engine;
pub mod timing;
pub mod validation;

pub use activity::ComponentActivity;
pub use engine::{SimulationResult, Simulator};
pub use timing::OpTiming;
pub use validation::{correlation_r2, ValidationPoint, ValidationReport};
