//! # npu-sim — tile-level NPU performance simulator
//!
//! Models the execution of a compiled operator graph on one NPU chip of a
//! (possibly multi-chip) deployment, reporting per-operator and
//! per-component activity: execution cycles, systolic-array active cycles
//! and spatial utilization, vector-unit active cycles, HBM/DMA busy cycles,
//! ICI busy cycles, and live SRAM bytes. These statistics are exactly what
//! the paper's characterization (§3, Figures 4–9) and the ReGate energy
//! model (§6) consume.
//!
//! The simulator follows the paper's methodology (§4.4): "the simulator
//! backend models the execution of operators at tile granularity and
//! reports statistics on each component, including the execution time in
//! cycles, memory/ICI traffic, and FLOPs utilization". Execution is
//! event-driven on a global clock (see [`timeline`]): the compiled
//! operator DAG's producer edges are honoured directly — an operator
//! waits only on *its* producers, the start of its own HBM prefetch, and
//! its execution resource (completing at `max(compute, stream)`, the
//! intra-operator double-buffering idealization) — so the double-buffered
//! DMA stream of operator `k+1` overlaps the compute of operator `k`,
//! independent subgraphs (DLRM's per-table gathers, the chains of a
//! multi-request batch) overlap freely, and the result carries merged
//! per-component busy intervals ([`SimulationResult::busy_timeline`])
//! plus an idle-interval histogram
//! ([`SimulationResult::idle_histogram`]) for interval-accurate gating.
//!
//! ## Example
//!
//! ```
//! use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
//! use npu_compiler::Compiler;
//! use npu_models::{LlamaModel, LlmPhase, Workload};
//! use npu_sim::Simulator;
//!
//! let chip = ChipConfig::new(NpuGeneration::D, 1);
//! let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
//! let graph = workload.build_graph(&ParallelismConfig::single());
//! let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
//! let result = Simulator::new(chip).run(&compiled);
//! assert!(result.total_cycles() > 0);
//! // Prefill keeps the systolic arrays busy most of the time.
//! assert!(result.activity().temporal_utilization(npu_arch::ComponentKind::Sa) > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod analysis;
pub mod engine;
pub mod events;
pub mod observer;
pub mod pod;
pub mod rng;
pub mod segments;
pub mod timeline;
pub mod timing;
pub mod trace;
pub mod validation;

pub use activity::ComponentActivity;
pub use analysis::{
    AnalysisReport, Diagnostic, MakespanWindow, OpSpan, Severity, SramCapacityReport,
    SramCapacityViolation,
};
pub use engine::{PreparedSimulator, SimulationResult, Simulator};
pub use observer::{NullObserver, SimObserver};
pub use pod::PodBuilder;
pub use rng::SplitMix64;
pub use segments::{SegmentBand, SegmentTimeline};
pub use timeline::{
    BusyTimeline, CollectiveSchedule, CycleInterval, EngineScratch, IdleBucket, IdleHistogram,
    Resource, ResourceId, ResourceSet, ResourceTimeline, RunCounters, Schedule,
};
pub use timing::OpTiming;
pub use trace::{TraceRecorder, TraceSlice};
pub use validation::{correlation_r2, ValidationPoint, ValidationReport};
