//! Aggregated per-component activity over a whole simulation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_arch::ComponentKind;

use crate::timeline::BusyTimeline;
use crate::timing::OpTiming;

/// Busy-cycle totals per component kind plus the overall execution length.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentActivity {
    busy_cycles: BTreeMap<ComponentKind, u64>,
    /// Achieved FLOPs (for SA spatial utilization accounting).
    sa_weighted_spatial: f64,
    total_cycles: u64,
}

impl ComponentActivity {
    /// Builds the aggregate from a finalized busy timeline over
    /// `[0, total_cycles)`. Busy cycles are the merged interval lengths on
    /// the global clock, so overlapping per-operator activity is never
    /// double counted.
    #[must_use]
    pub fn from_timeline(
        timeline: &BusyTimeline,
        total_cycles: u64,
        sa_weighted_spatial: f64,
    ) -> Self {
        let mut busy: BTreeMap<ComponentKind, u64> = BTreeMap::new();
        for kind in ComponentKind::ALL {
            busy.insert(kind, timeline.busy_cycles(kind).min(total_cycles));
        }
        ComponentActivity { busy_cycles: busy, sa_weighted_spatial, total_cycles }
    }

    /// Builds the aggregate from per-operator timings, treating the
    /// operators as executing serially (the pre-timeline view; retained
    /// for per-operator analyses and tests).
    #[must_use]
    pub fn from_timings(timings: &[OpTiming]) -> Self {
        let mut busy: BTreeMap<ComponentKind, u64> = BTreeMap::new();
        let mut total = 0u64;
        let mut spatial = 0.0f64;
        for t in timings {
            total += t.duration_cycles;
            *busy.entry(ComponentKind::Sa).or_default() += t.sa_active_cycles;
            *busy.entry(ComponentKind::Vu).or_default() += t.vu_active_cycles;
            *busy.entry(ComponentKind::Hbm).or_default() += t.hbm_active_cycles;
            *busy.entry(ComponentKind::Ici).or_default() += t.ici_active_cycles;
            // The DMA engine moves both HBM and ICI traffic, but it cannot
            // be busy for longer than the operator runs: when the two
            // transfers overlap, the engine is simply busy on both at once.
            *busy.entry(ComponentKind::Dma).or_default() +=
                (t.hbm_active_cycles + t.ici_active_cycles).min(t.duration_cycles);
            // The SRAM and peripheral logic are active whenever the chip is.
            *busy.entry(ComponentKind::Sram).or_default() += t.duration_cycles;
            *busy.entry(ComponentKind::Other).or_default() += t.duration_cycles;
            spatial += t.sa_spatial_utilization * t.sa_active_cycles as f64;
        }
        ComponentActivity { busy_cycles: busy, sa_weighted_spatial: spatial, total_cycles: total }
    }

    /// Total execution length in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Busy cycles of one component kind.
    #[must_use]
    pub fn busy_cycles(&self, kind: ComponentKind) -> u64 {
        self.busy_cycles.get(&kind).copied().unwrap_or(0)
    }

    /// Idle cycles of one component kind.
    #[must_use]
    pub fn idle_cycles(&self, kind: ComponentKind) -> u64 {
        self.total_cycles.saturating_sub(self.busy_cycles(kind))
    }

    /// Floating-point slack tolerated before a clamped utilization is
    /// considered an accounting bug rather than rounding noise.
    const UTILIZATION_EPSILON: f64 = 1e-9;

    /// Temporal utilization of one component kind (Figures 4, 6, 8, 9).
    #[must_use]
    pub fn temporal_utilization(&self, kind: ComponentKind) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let fraction = self.busy_cycles(kind) as f64 / self.total_cycles as f64;
        // A busy fraction above 1 means a component was credited more busy
        // cycles than the clock has — an interval-merging or double-count
        // bug the clamp below would silently hide (the pattern that hid
        // the PR-4 SRAM capacity bug).
        debug_assert!(
            fraction <= 1.0 + Self::UTILIZATION_EPSILON,
            "{kind:?}: busy fraction {fraction} exceeds 1.0 — busy cycles were double counted"
        );
        fraction.min(1.0)
    }

    /// Average SA spatial utilization over SA-active cycles (Figure 5).
    #[must_use]
    pub fn sa_spatial_utilization(&self) -> f64 {
        let active = self.busy_cycles(ComponentKind::Sa);
        if active == 0 {
            return 0.0;
        }
        let fraction = self.sa_weighted_spatial / active as f64;
        // Weighted spatial utilization is a per-operator convex combination
        // of values in [0, 1] over at most `active` cycles; above 1 the
        // weights are wrong (or active cycles were lost), not the clamp's
        // problem to paper over.
        debug_assert!(
            fraction <= 1.0 + Self::UTILIZATION_EPSILON,
            "SA spatial utilization {fraction} exceeds 1.0 — weights exceed the active cycles"
        );
        fraction.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_models::ExecutionUnit;

    fn timing(duration: u64, sa: u64, vu: u64, hbm: u64, ici: u64) -> OpTiming {
        OpTiming {
            op_index: 0,
            name: "t".into(),
            unit: ExecutionUnit::Sa,
            start_cycle: 0,
            compute_start_cycle: 0,
            duration_cycles: duration,
            serial_duration_cycles: duration,
            sa_active_cycles: sa,
            sa_spatial_utilization: 0.5,
            vu_active_cycles: vu,
            hbm_active_cycles: hbm,
            ici_active_cycles: ici,
            hbm_bytes: 0,
            ici_bytes: 0,
            flops: 0.0,
            sram_live_bytes: 0,
            sram_demand_bytes: 0,
        }
    }

    #[test]
    fn aggregation_sums_busy_cycles() {
        let a = ComponentActivity::from_timings(&[
            timing(100, 80, 10, 20, 0),
            timing(100, 0, 50, 100, 0),
        ]);
        assert_eq!(a.total_cycles(), 200);
        assert_eq!(a.busy_cycles(ComponentKind::Sa), 80);
        assert_eq!(a.busy_cycles(ComponentKind::Vu), 60);
        assert_eq!(a.busy_cycles(ComponentKind::Hbm), 120);
        assert_eq!(a.busy_cycles(ComponentKind::Dma), 120);
        assert_eq!(a.busy_cycles(ComponentKind::Sram), 200);
        assert_eq!(a.idle_cycles(ComponentKind::Sa), 120);
        assert!((a.temporal_utilization(ComponentKind::Sa) - 0.4).abs() < 1e-12);
        assert!((a.sa_spatial_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_activity() {
        let a = ComponentActivity::from_timings(&[]);
        assert_eq!(a.total_cycles(), 0);
        assert_eq!(a.temporal_utilization(ComponentKind::Vu), 0.0);
        assert_eq!(a.sa_spatial_utilization(), 0.0);
    }

    #[test]
    fn per_op_dma_busy_is_clamped_to_the_duration() {
        // HBM and ICI transfers overlapping inside one operator must not
        // credit the DMA engine with more busy cycles than the operator
        // runs for — the idle count (and the energy model downstream) would
        // otherwise see a negative idle time hidden by saturating math.
        let a = ComponentActivity::from_timings(&[timing(100, 0, 0, 90, 90)]);
        assert_eq!(a.busy_cycles(ComponentKind::Dma), 100);
        assert_eq!(a.idle_cycles(ComponentKind::Dma), 0);
        assert!(a.temporal_utilization(ComponentKind::Dma) <= 1.0);
        // Across several such operators the invariant holds per operator.
        let b =
            ComponentActivity::from_timings(&[timing(100, 0, 0, 90, 90), timing(50, 0, 0, 10, 20)]);
        assert_eq!(b.busy_cycles(ComponentKind::Dma), 130);
        assert!(b.busy_cycles(ComponentKind::Dma) <= b.total_cycles());
    }

    #[test]
    fn utilization_at_exactly_one_is_the_boundary_not_a_bug() {
        // A fully busy component and a fully utilized SA sit exactly on
        // the clamp boundary: both must return 1.0 without tripping the
        // debug assertion (the assertion fires only *above* 1 + ε).
        let full = ComponentActivity {
            busy_cycles: BTreeMap::from([(ComponentKind::Sa, 100)]),
            sa_weighted_spatial: 100.0,
            total_cycles: 100,
        };
        assert_eq!(full.temporal_utilization(ComponentKind::Sa), 1.0);
        assert_eq!(full.sa_spatial_utilization(), 1.0);
        // Rounding noise within ε of 1.0 is clamped, not rejected.
        let noisy = ComponentActivity {
            busy_cycles: BTreeMap::from([(ComponentKind::Sa, 100)]),
            sa_weighted_spatial: 100.0 * (1.0 + 1e-12),
            total_cycles: 100,
        };
        assert_eq!(noisy.sa_spatial_utilization(), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "busy fraction")]
    fn overfull_busy_fraction_is_caught_in_debug() {
        // More busy cycles than the clock has is an accounting bug the
        // clamp used to hide silently.
        let broken = ComponentActivity {
            busy_cycles: BTreeMap::from([(ComponentKind::Hbm, 150)]),
            sa_weighted_spatial: 0.0,
            total_cycles: 100,
        };
        let _ = broken.temporal_utilization(ComponentKind::Hbm);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SA spatial utilization")]
    fn overfull_spatial_weights_are_caught_in_debug() {
        let broken = ComponentActivity {
            busy_cycles: BTreeMap::from([(ComponentKind::Sa, 10)]),
            sa_weighted_spatial: 20.0,
            total_cycles: 100,
        };
        let _ = broken.sa_spatial_utilization();
    }

    #[test]
    fn from_timeline_uses_merged_intervals() {
        let mut tl = BusyTimeline::default();
        tl.record(ComponentKind::Sa, 0, 40);
        tl.record(ComponentKind::Sa, 30, 60); // overlaps: merged, not summed
        tl.record(ComponentKind::Hbm, 10, 30);
        tl.record(ComponentKind::Sram, 0, 100);
        tl.finalize();
        let a = ComponentActivity::from_timeline(&tl, 100, 30.0);
        assert_eq!(a.total_cycles(), 100);
        assert_eq!(a.busy_cycles(ComponentKind::Sa), 60);
        assert_eq!(a.busy_cycles(ComponentKind::Hbm), 20);
        assert_eq!(a.idle_cycles(ComponentKind::Hbm), 80);
        assert!((a.sa_spatial_utilization() - 0.5).abs() < 1e-12);
        assert!((a.temporal_utilization(ComponentKind::Sram) - 1.0).abs() < 1e-12);
    }
}
